"""Legacy setup shim: lets ``pip install -e .`` work without the
``wheel`` package (offline environment; see note in pyproject.toml)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["networkx>=3.0", "numpy>=1.24"],
)
