"""Unit tests for ASAP/ALAP/mobility and CDFG loop enumeration."""

import pytest

from repro.cdfg import suite
from repro.cdfg.analysis import (
    alap_schedule,
    asap_schedule,
    cdfg_loops,
    critical_path_length,
    loop_variables,
    loops_broken_by,
    mobility,
    operations_on_loops,
    sequential_depth_estimate,
    unbroken_loops,
)
from repro.cdfg.graph import CDFGError


class TestSchedulingBounds:
    def test_figure1_asap(self, figure1):
        asap = asap_schedule(figure1)
        assert asap["+1"] == 1 and asap["+2"] == 2 and asap["+5"] == 3
        assert asap["+3"] == 1 and asap["+4"] == 2

    def test_figure1_cpl(self, figure1):
        assert critical_path_length(figure1) == 3

    def test_diffeq_cpl_includes_mult_delay(self, diffeq):
        # chain *1/*2 (2 cycles) -> *4 (2) -> -1 -> -2 = 2+2+1+1 = 6
        assert critical_path_length(diffeq) == 6

    def test_alap_respects_constraint(self, figure1):
        alap = alap_schedule(figure1, 5)
        assert alap["+5"] == 5
        assert alap["+1"] == 3

    def test_alap_infeasible(self, figure1):
        with pytest.raises(CDFGError):
            alap_schedule(figure1, 2)

    def test_alap_defaults_to_cpl(self, figure1):
        alap = alap_schedule(figure1)
        assert max(alap.values()) == 3

    def test_mobility_zero_on_critical_path(self, figure1):
        m = mobility(figure1)
        assert m["+1"] == 0 and m["+2"] == 0 and m["+5"] == 0
        assert m["+3"] == 1 and m["+4"] == 1

    def test_mobility_grows_with_latency(self, figure1):
        m = mobility(figure1, 6)
        assert all(v >= 1 for v in m.values())

    def test_asap_respects_carried(self, diffeq_loop):
        # Carried edges impose no precedence: ASAP must exist.
        asap = asap_schedule(diffeq_loop)
        assert len(asap) == len(diffeq_loop.operations)


class TestLoops:
    def test_acyclic_has_no_loops(self, figure1, diffeq):
        assert cdfg_loops(figure1) == []
        assert cdfg_loops(diffeq) == []

    def test_diffeq_loop_has_loops(self, diffeq_loop):
        loops = cdfg_loops(diffeq_loop)
        assert len(loops) == 5
        # x1 self-loop is the shortest
        assert ["x1"] in loops

    def test_iir_loops(self, iir2):
        loops = cdfg_loops(iir2)
        assert len(loops) == 4  # two per section (w1 and w2 feedback)

    def test_loop_variables(self, diffeq_loop):
        lv = loop_variables(diffeq_loop)
        assert "u1" in lv and "x1" in lv
        assert "c" not in lv

    def test_operations_on_loops(self, diffeq_loop):
        ops = operations_on_loops(diffeq_loop)
        assert "+1" in ops  # x1 accumulator
        assert "<1" not in ops

    def test_loops_broken_by(self, iir2):
        loops = cdfg_loops(iir2)
        assert loops_broken_by(loops, ["w0"]) == 2
        assert loops_broken_by(loops, []) == 0

    def test_unbroken_loops(self, iir2):
        loops = cdfg_loops(iir2)
        rest = unbroken_loops(loops, ["w0"])
        assert len(rest) == len(loops) - 2
        assert all("w0" not in l for l in rest)

    def test_bound_caps_enumeration(self, iir2):
        assert len(cdfg_loops(iir2, bound=2)) == 2


class TestDepth:
    def test_sequential_depth_estimate(self, figure1):
        assert sequential_depth_estimate(figure1) == 3

    def test_depth_on_empty(self):
        from repro.cdfg.graph import CDFG
        assert sequential_depth_estimate(CDFG()) == 0
