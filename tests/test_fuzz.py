"""The differential fuzzing subsystem: generator, bandit, oracles,
campaign journal/resume, and the delta-debugging minimizer.

Campaign-level tests run the injected-bug harness (predicate oracles,
no simulation) so they are fast and deterministic; a single small
real-oracle campaign proves the wiring end to end.
"""

from __future__ import annotations

import hashlib
import json
import os
import time

import pytest

from repro.fuzz import (
    DesignSpec,
    INJECTED_BUGS,
    LinUCB,
    ORACLES,
    UniformPolicy,
    build_arms,
    check_oracle,
    injected_divergence,
    minimize_netlist,
    reduce_netlist,
    run_campaign,
)
from repro.fuzz.campaign import CampaignConfig, load_journal
from repro.fuzz.minimize import emit_reproducer
from repro.fuzz.oracles import (
    Leg,
    LegRunner,
    compare_classifications,
    compare_legs,
)
from repro.gatelevel.kernel import have_kernel

pytestmark = pytest.mark.skipif(
    not have_kernel(), reason="fuzz oracles need the numpy kernel"
)


# -- picklable helpers for the LegRunner pool tests ------------------------

def _sleeper(seconds):
    time.sleep(seconds)
    return "done"


def _boom(_arg):
    raise RuntimeError("kaboom")


# -- generator -------------------------------------------------------------

class TestGenerator:
    def test_spec_build_is_deterministic(self):
        spec = DesignSpec(n_gates=120, seed=31, op_mix="xor_heavy")
        a, b = spec.build(), spec.build()
        assert [(g.name, g.kind, g.inputs) for g in a] == \
               [(g.name, g.kind, g.inputs) for g in b]

    def test_spec_dict_round_trip(self):
        spec = DesignSpec(n_gates=90, seed=4, op_mix="inverting",
                          profile="noscan", scan=False, width=1)
        assert DesignSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError, match="op_mix"):
            DesignSpec(n_gates=90, seed=0, op_mix="nope")

    def test_width_bounds(self):
        with pytest.raises(ValueError, match="width"):
            DesignSpec(n_gates=90, seed=0, width=65)

    def test_bist_spec_has_misr(self):
        arm = [a for a in build_arms(400) if a.bist][0]
        nl = arm.spec(7).build()
        assert "bist_en" in nl.gates
        assert any(g.name == "sr0_b0" for g in nl.dffs())

    def test_arm_features_unit_norm(self):
        for arm in build_arms(1500):
            x = arm.features()
            assert sum(v * v for v in x) == pytest.approx(1.0)

    def test_arm_grid_shape(self):
        arms = build_arms(400)
        assert len(arms) == 5 * 2 * 4  # mixes x sizes<=400 x profiles
        assert [a.index for a in arms] == list(range(len(arms)))
        assert len({a.features() for a in arms}) == len(arms)


# -- bandit ----------------------------------------------------------------

class TestLinUCB:
    def test_cold_model_sweeps_distinct_arms(self):
        contexts = [a.features() for a in build_arms(1500)]
        policy = LinUCB(dim=len(contexts[0]), alpha=1.0)
        seen = []
        for _ in range(8):
            i = policy.select(contexts)
            seen.append(i)
            policy.update(contexts[i], 0.0)
        assert len(set(seen)) == len(seen)  # no-replacement coverage

    def test_learns_rewarding_region(self):
        contexts = [a.features() for a in build_arms(1500)]
        arms = build_arms(1500)
        policy = LinUCB(dim=len(contexts[0]), alpha=0.5)
        # Reward exactly the xor_heavy arms for a while...
        for _ in range(40):
            i = policy.select(contexts)
            reward = 1.0 if arms[i].op_mix == "xor_heavy" else 0.0
            policy.update(contexts[i], reward)
        # ...then the greedy choice lands in that region.
        picks = [arms[policy.select(contexts)].op_mix
                 for _ in range(3)]
        assert all(p == "xor_heavy" for p in picks)

    def test_uniform_policy_is_seeded(self):
        contexts = [(1.0,)] * 10
        a = [UniformPolicy(seed=3).select(contexts) for _ in range(5)]
        b = [UniformPolicy(seed=3).select(contexts) for _ in range(5)]
        assert [UniformPolicy(seed=3).select(contexts)] and a != b or True
        p1, p2 = UniformPolicy(seed=3), UniformPolicy(seed=3)
        assert [p1.select(contexts) for _ in range(10)] == \
               [p2.select(contexts) for _ in range(10)]


# -- oracles ---------------------------------------------------------------

def _small_spec(**kw):
    base = dict(n_gates=80, seed=13, op_mix="balanced",
                profile="scan", n_faults=40, width=8, n_cycles=3)
    base.update(kw)
    return DesignSpec(**base)


class TestOracles:
    def test_backend_oracle_matches(self):
        spec = _small_spec()
        assert check_oracle("backend", spec.build(), spec) is None

    def test_collapse_oracle_matches(self):
        spec = _small_spec(seed=14)
        assert check_oracle("collapse", spec.build(), spec) is None

    def test_atpg_vs_sim_matches(self):
        spec = _small_spec(seed=15)
        assert check_oracle("atpg_vs_sim", spec.build(), spec) is None

    def test_bist_oracle_needs_bist_spec(self):
        spec = _small_spec()
        # Not BIST-wrapped -> oracle does not apply -> match.
        assert check_oracle("bist", spec.build(), spec) is None

    def test_compare_legs_locates_difference(self):
        detail = compare_legs(
            ["a", "b"],
            [[["n1", 0, 2], ["n2", 1, -1]],
             [["n1", 0, 2], ["n2", 1, 3]]],
        )
        assert detail is not None
        assert "$[1][2]" in detail["diff"]

    def test_classification_abort_is_wildcard(self):
        a = [["n1", 0, "det"], ["n2", 1, "abort"]]
        b = [["n1", 0, "det"], ["n2", 1, "unt"]]
        assert compare_classifications(["x", "y"], [a, b]) is None

    def test_classification_det_vs_unt_diverges(self):
        a = [["n1", 0, "det"]]
        b = [["n1", 0, "unt"]]
        detail = compare_classifications(["x", "y"], [a, b])
        assert detail is not None and "n1" in detail["diff"]


class TestLegRunner:
    def test_inproc_ok_and_crash(self):
        with LegRunner(mode="inproc") as r:
            assert r.run(Leg("ok", _sleeper, 0.0)) == ("ok", "done")
            status, info = r.run(Leg("bad", _boom, None))
            assert status == "crash" and "kaboom" in info

    def test_pool_hang_is_classified_and_killed(self):
        with LegRunner(mode="pool", timeout=1.0) as r:
            t0 = time.monotonic()
            status, elapsed = r.run(Leg("hang", _sleeper, 60.0))
            assert status == "hang"
            assert time.monotonic() - t0 < 30.0  # sleeper was killed
            # The runner recovers with a fresh pool.
            assert r.run(Leg("ok", _sleeper, 0.0)) == ("ok", "done")


class TestInjectedBugs:
    """Each bug fires only on its corner conjunction of features."""

    def test_xnor_noscan_needs_both_features(self):
        hot = _small_spec(op_mix="xor_heavy", profile="noscan",
                          scan=False, seed=21)
        assert injected_divergence("xnor_noscan", hot.build(),
                                   hot) is not None
        # Right mix, scanned state: quiet.
        scanned = _small_spec(op_mix="xor_heavy", seed=21)
        assert injected_divergence("xnor_noscan", scanned.build(),
                                   scanned) is None
        # Unscanned state, wrong mix: quiet.
        andor = _small_spec(op_mix="and_or", profile="noscan",
                            scan=False, seed=21)
        assert injected_divergence("xnor_noscan", andor.build(),
                                   andor) is None

    def test_nand_noscan_needs_both_features(self):
        hot = _small_spec(op_mix="inverting", profile="noscan",
                          scan=False, seed=22)
        assert injected_divergence("nand_noscan", hot.build(),
                                   hot) is not None
        scanned = _small_spec(op_mix="inverting", seed=22)
        assert injected_divergence("nand_noscan", scanned.build(),
                                   scanned) is None
        xh = _small_spec(op_mix="xor_heavy", profile="noscan",
                         scan=False, seed=22)
        assert injected_divergence("nand_noscan", xh.build(),
                                   xh) is None

    def test_noscan_bugs_ignore_misr_dffs(self):
        # MISR bits are scan=False by construction but are not "state
        # the designer forgot to scan"; sr0* must not trip the bug.
        spec = _small_spec(op_mix="xor_heavy", profile="bist",
                          bist=True, seed=23)
        assert injected_divergence("xnor_noscan", spec.build(),
                                   spec) is None

    def test_buf_bist_needs_both_features(self):
        hot = _small_spec(op_mix="buffered", profile="bist",
                          bist=True, seed=23)
        assert injected_divergence("buf_bist", hot.build(),
                                   hot) is not None
        nobist = _small_spec(op_mix="buffered", seed=23)
        assert injected_divergence("buf_bist", nobist.build(),
                                   nobist) is None
        nobuf = _small_spec(op_mix="balanced", profile="bist",
                            bist=True, seed=23)
        assert injected_divergence("buf_bist", nobuf.build(),
                                   nobuf) is None


# -- minimizer -------------------------------------------------------------

class TestMinimizer:
    def test_reduce_rewires_dangling_fanin(self):
        spec = _small_spec(seed=33)
        nl = spec.build()
        some = [g.name for g in nl if g.kind != "input"][10:14]
        small = reduce_netlist(nl, set(some))
        small.validate(strict=True)
        kept = {g.name for g in small}
        assert set(some) <= kept

    def test_shrinks_injected_bug_below_25_percent(self):
        spec = _small_spec(n_gates=300, op_mix="xor_heavy",
                           profile="noscan", scan=False, seed=34)
        nl = spec.build()
        assert injected_divergence("xnor_noscan", nl, spec) is not None

        def check(cand):
            return injected_divergence("xnor_noscan", cand,
                                       spec) is not None

        minimized, checks = minimize_netlist(nl, check)
        orig = sum(1 for g in nl if g.kind != "input")
        mini = sum(1 for g in minimized if g.kind != "input")
        assert mini <= orig * 0.25
        assert check(minimized)
        assert checks <= 160

    def test_emitted_reproducer_is_runnable(self, tmp_path):
        spec = _small_spec(n_gates=80, op_mix="xor_heavy",
                           profile="noscan", scan=False, seed=35)
        nl = spec.build()

        def check(cand):
            return injected_divergence("xnor_noscan", cand,
                                       spec) is not None

        minimized, _ = minimize_netlist(nl, check)
        finding = injected_divergence("xnor_noscan", minimized, spec)
        path = tmp_path / "test_repro_demo.py"
        emit_reproducer(str(path), minimized, spec, finding,
                        origin="unit test")
        ns: dict = {}
        exec(compile(path.read_text(), str(path), "exec"), ns)
        ns["test_injected_xnor_noscan_still_fires"]()


# -- campaign --------------------------------------------------------------

def _config(tmp_path, **kw):
    base = dict(
        seed=5, trials=10, inject="nand_noscan", max_gates=400,
        exec_mode="inproc",
        journal=str(tmp_path / "journal.jsonl"),
        repro_dir=str(tmp_path / "repros"),
    )
    base.update(kw)
    return CampaignConfig(**base)


def _sha(path):
    with open(path, "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()


class TestCampaign:
    def test_fixed_seed_is_deterministic(self, tmp_path):
        # Same seed + budget + paths -> byte-identical journals (the
        # journal records reproducer paths, so those are pinned too).
        shared = str(tmp_path / "repros")
        c1 = _config(tmp_path, journal=str(tmp_path / "a.jsonl"),
                     repro_dir=shared)
        c2 = _config(tmp_path, journal=str(tmp_path / "b.jsonl"),
                     repro_dir=shared)
        run_campaign(c1)
        run_campaign(c2)
        assert _sha(c1.journal) == _sha(c2.journal)

    def test_finds_injected_bug_and_minimizes(self, tmp_path):
        summary = run_campaign(_config(tmp_path))
        assert summary["outcomes"]["divergence"] >= 1
        finding = summary["findings"][0]
        assert finding["min_gates"] <= finding["orig_gates"] * 0.25
        assert os.path.exists(finding["repro"])

    def test_resume_after_torn_write_converges(self, tmp_path):
        shared = str(tmp_path / "repros")
        full = _config(tmp_path, journal=str(tmp_path / "full.jsonl"),
                       repro_dir=shared)
        run_campaign(full)
        want = _sha(full.journal)
        # Simulate a SIGKILL mid-append: keep 4 whole lines plus a torn
        # fragment of the 5th, then resume.
        torn = _config(tmp_path, journal=str(tmp_path / "torn.jsonl"),
                       repro_dir=shared)
        with open(full.journal, "rb") as fh:
            lines = fh.read().splitlines(keepends=True)
        with open(torn.journal, "wb") as fh:
            fh.write(b"".join(lines[:4]) + lines[4][:25])
        run_campaign(torn, resume=True)
        assert _sha(torn.journal) == want

    def test_resume_rejects_config_mismatch(self, tmp_path):
        cfg = _config(tmp_path)
        run_campaign(cfg)
        other = _config(tmp_path, seed=6)
        with pytest.raises(ValueError, match="does not match"):
            run_campaign(other, resume=True)

    def test_journal_shape_and_no_timing(self, tmp_path):
        cfg = _config(tmp_path)
        run_campaign(cfg)
        header, trials = load_journal(cfg.journal)
        assert header["kind"] == "header"
        assert header["seed"] == 5
        assert len(trials) == 10
        for line in trials:
            assert set(line) == {"kind", "trial", "arm", "spec",
                                 "outcome", "findings", "reward"}
            DesignSpec.from_dict(line["spec"])  # rebuildable

    def test_bandit_beats_uniform_on_injected_bugs(self, tmp_path):
        """The acceptance claim: over 3 seeded corner bugs, the bandit
        reaches the first find in fewer trials than uniform random on
        at least 2 of 3."""
        def first_find(policy, bug):
            d = tmp_path / f"{policy}-{bug}"
            os.makedirs(d)
            cfg = _config(d, policy=policy, seed=1, trials=40,
                          inject=bug, minimize=False)
            run_campaign(cfg)
            _, trials = load_journal(cfg.journal)
            hits = [t["trial"] for t in trials
                    if t["outcome"] == "divergence"]
            return hits[0] if hits else 41
        wins = sum(
            first_find("linucb", bug) < first_find("uniform", bug)
            for bug in ("xnor_noscan", "nand_noscan", "buf_bist")
        )
        assert wins >= 2

    def test_real_oracles_small_campaign_clean(self, tmp_path):
        cfg = _config(tmp_path, inject=None, trials=3, max_gates=100,
                      oracles=("backend", "collapse", "batch"))
        summary = run_campaign(cfg)
        assert summary["outcomes"]["match"] == 3


class TestCLI:
    def test_exit_zero_on_clean(self, tmp_path, capsys):
        from repro.fuzz.__main__ import main

        rc = main([
            "--trials", "2", "--seed", "1", "--exec", "inproc",
            "--max-gates", "100", "--oracles", "backend",
            "--journal", str(tmp_path / "j.jsonl"),
            "--repro-dir", str(tmp_path / "r"), "--quiet",
        ])
        assert rc == 0
        assert "campaign:" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        from repro.fuzz.__main__ import main

        rc = main([
            "--trials", "8", "--seed", "5", "--exec", "inproc",
            "--max-gates", "100", "--inject", "nand_noscan",
            "--journal", str(tmp_path / "j.jsonl"),
            "--repro-dir", str(tmp_path / "r"), "--quiet",
        ])
        assert rc == 1
        assert "finding:" in capsys.readouterr().out

    def test_exit_two_on_bad_oracle(self, tmp_path, capsys):
        from repro.fuzz.__main__ import main

        rc = main(["--oracles", "nonsense",
                   "--journal", str(tmp_path / "j.jsonl")])
        assert rc == 2
        assert "unknown oracle" in capsys.readouterr().err


class TestFuzzSmokeFlow:
    def test_registered_and_runs(self, tmp_path, monkeypatch):
        from repro.flow.flows import FLOWS, get_flow
        from repro.flow.runner import Runner

        assert "fuzz_smoke" in FLOWS
        monkeypatch.setenv("REPRO_FLOWCACHE", str(tmp_path / "fc"))
        flow = get_flow("fuzz_smoke", trials=2, max_gates=100,
                        oracles="backend,collapse")
        arts = Runner().run(flow)
        table = arts["table"]
        assert table["experiment"] == "FUZZ"
        assert table["rows"][0][0] == 2  # trials all matched
