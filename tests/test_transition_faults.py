"""Tests for the transition-fault model (survey §7b future work)."""

import pytest

from repro.cdfg import suite
from repro.gatelevel.expand import expand_datapath
from repro.gatelevel.gates import Netlist
from repro.gatelevel.transition_faults import (
    TransitionFault,
    all_transition_faults,
    random_pair_coverage,
    transition_coverage,
    transition_fault_detected,
)
from repro.scan import gate_level_partial_scan
from tests.conftest import synthesize


def buffer_chain() -> Netlist:
    nl = Netlist("chain")
    nl.add("a", "input")
    nl.add("n1", "not", "a")
    nl.add("n2", "not", "n1")
    nl.add_output("n2")
    return nl


class TestModel:
    def test_universe(self):
        nl = buffer_chain()
        faults = all_transition_faults(nl)
        assert TransitionFault("n1", True) in faults
        assert len(faults) == 4  # n1, n2, two polarities

    def test_rising_needs_zero_then_one(self):
        nl = buffer_chain()
        f = TransitionFault("n2", True)  # n2 follows a
        # a: 0 -> 1 launches a rising transition on n2
        assert transition_fault_detected(nl, f, ({"a": 0}, {"a": 1}),
                                         width=1)
        # a: 1 -> 0 does not exercise slow-to-rise on n2
        assert not transition_fault_detected(nl, f, ({"a": 1}, {"a": 0}),
                                             width=1)
        # no transition at all: undetectable by this pair
        assert not transition_fault_detected(nl, f, ({"a": 1}, {"a": 1}),
                                             width=1)

    def test_falling_polarity(self):
        nl = buffer_chain()
        f = TransitionFault("n2", False)
        assert transition_fault_detected(nl, f, ({"a": 1}, {"a": 0}),
                                         width=1)
        assert not transition_fault_detected(nl, f, ({"a": 0}, {"a": 1}),
                                             width=1)

    def test_inverter_net_polarity_flip(self):
        nl = buffer_chain()
        # n1 = not a: rising on n1 needs a: 1 -> 0
        f = TransitionFault("n1", True)
        assert transition_fault_detected(nl, f, ({"a": 1}, {"a": 0}),
                                         width=1)

    def test_packed_pairs(self):
        nl = buffer_chain()
        f = TransitionFault("n2", True)
        # bit0: 0->1 (detects), bit1: 1->1 (no transition)
        mask = transition_fault_detected(
            nl, f, ({"a": 0b10}, {"a": 0b11}), width=2
        )
        assert mask == 0b01

    def test_coverage_accumulates(self):
        nl = buffer_chain()
        pairs = [({"a": 0}, {"a": 1}), ({"a": 1}, {"a": 0})]
        assert transition_coverage(nl, pairs, width=1) == 1.0
        assert transition_coverage(nl, pairs[:1], width=1) == 0.5


class TestOnDatapaths:
    def test_scan_raises_transition_coverage(self):
        """Launch-on-capture pairs observe more with scan state access,
        mirroring the stuck-at story on the new fault model."""
        c = suite.iir_biquad(1, width=3)
        dp_plain, *_ = synthesize(c, slack=1.5)
        dp_scan, *_ = synthesize(c, slack=1.5)
        gate_level_partial_scan(dp_scan)
        nl_p, _ = expand_datapath(dp_plain)
        nl_s, _ = expand_datapath(dp_scan)
        faults_p = all_transition_faults(nl_p)[:120]
        faults_s = all_transition_faults(nl_s)[:120]
        cov_p = random_pair_coverage(nl_p, n_pairs=64, faults=faults_p)
        cov_s = random_pair_coverage(nl_s, n_pairs=64, faults=faults_s)
        assert cov_s >= cov_p

    def test_coverage_monotone_in_pairs(self):
        dp, *_ = synthesize(suite.figure1(width=3))
        nl, _ = expand_datapath(dp)
        faults = all_transition_faults(nl)[:80]
        c1 = random_pair_coverage(nl, n_pairs=16, faults=faults)
        c2 = random_pair_coverage(nl, n_pairs=96, faults=faults)
        assert c2 >= c1
