"""Tests for resource allocation."""

import pytest

from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro.hls.allocation import (
    Allocation,
    AllocationError,
    allocate_for_latency,
    minimal_allocation,
)


class TestAllocation:
    def test_unit_classes_default(self):
        a = Allocation({"alu": 1, "mult": 2})
        assert a.unit_class("+") == "alu"
        assert a.unit_class("-") == "alu"
        assert a.unit_class("*") == "mult"

    def test_unknown_kind_gets_own_class(self):
        a = Allocation({"weird": 1})
        assert a.unit_class("weird") == "weird"

    def test_unit_names(self):
        a = Allocation({"alu": 3})
        assert a.unit_names("alu") == ["alu0", "alu1", "alu2"]

    def test_validate_for(self, diffeq):
        with pytest.raises(AllocationError):
            Allocation({"alu": 1}).validate_for(diffeq)
        Allocation({"alu": 1, "mult": 1}).validate_for(diffeq)


class TestMinimal:
    def test_one_unit_per_class(self, diffeq):
        a = minimal_allocation(diffeq)
        assert a.count("alu") == 1
        assert a.count("mult") == 1


class TestForLatency:
    def test_lower_bound(self, diffeq):
        # 6 mults x 2 cycles = 12 unit-steps; at latency 6 -> 2 mults.
        a = allocate_for_latency(diffeq, 6)
        assert a.count("mult") == 2

    def test_relaxed_latency_needs_one(self, diffeq):
        a = allocate_for_latency(diffeq, 14)
        assert a.count("mult") == 1

    def test_below_cpl_rejected(self, diffeq):
        with pytest.raises(AllocationError):
            allocate_for_latency(diffeq, critical_path_length(diffeq) - 1)
