"""Zero-copy shard dispatch: transport selection, payload lifecycle,
warm-worker caches, ship-once discipline, and error surfacing.

The contract under test (docs/shard_dispatch.md): results are
byte-identical across ``{pickle, shm} x {1, 2, 4}`` shard configs, the
parent owns (and always unlinks) every shared-memory segment, a warm
worker unpickles and compiles each distinct netlist once per pool
generation, and worker exceptions are counted instead of swallowed.
"""

from __future__ import annotations

import glob
import multiprocessing
import pickle

import pytest
from hypothesis import given, settings

from repro.flow import shm
from repro.flow.metrics import collect
from repro.flow.resilience import run_sharded
from repro.gatelevel import fault_sim, genscale, kernel
from repro.gatelevel.faults import all_faults
from repro.knobs import KnobError
from repro.serve.registry import WarmPoolProvider
from tests.test_kernel_equivalence import _sequence, netlists

pytestmark = pytest.mark.skipif(
    not shm.shm_available(), reason="no usable shared memory here"
)


def _no_repro_segments() -> bool:
    return not glob.glob("/dev/shm/repro_*")


# -- transport resolution --------------------------------------------------

class TestTransportResolution:
    def test_explicit_arg_wins(self, monkeypatch):
        monkeypatch.setenv(shm.TRANSPORT_ENV, "shm")
        assert shm.resolve_transport("pickle") == "pickle"

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv(shm.TRANSPORT_ENV, "pickle")
        assert shm.resolve_transport() == "pickle"
        monkeypatch.setenv(shm.TRANSPORT_ENV, "shm")
        assert shm.resolve_transport() == "shm"

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(shm.TRANSPORT_ENV, "carrier-pigeon")
        with pytest.raises(KnobError):
            shm.resolve_transport()

    def test_degrades_to_pickle_without_shm(self, monkeypatch):
        monkeypatch.setattr(shm, "_SHM_PROBE", False)
        assert shm.resolve_transport() == "pickle"
        assert shm.resolve_transport("shm") == "pickle"


# -- payload plane lifecycle -----------------------------------------------

class TestPayloadPlane:
    def test_bytes_roundtrip_and_unlink(self):
        with shm.PayloadPlane() as plane:
            h = plane.publish_bytes(b"stuck-at-0")
            assert h.name.startswith(shm.SEGMENT_PREFIX)
            assert shm.attach_bytes(h) == b"stuck-at-0"
        assert _no_repro_segments()

    def test_array_roundtrip_zero_copy(self):
        np = pytest.importorskip("numpy")
        arr = np.arange(24, dtype=np.uint64).reshape(4, 6)
        with shm.PayloadPlane() as plane:
            h = plane.publish_array(arr)
            view = shm.attach_array(h)
            assert view.dtype == arr.dtype
            assert (view == arr).all()
            del view

    def test_object_roundtrip_digest_cached(self):
        payload = {"faults": list(range(64))}
        with shm.PayloadPlane() as plane:
            ref = plane.publish_object(payload)
            before = shm.worker_cache_stats()["object_misses"]
            assert shm.fetch_object(ref) == payload
            assert shm.fetch_object(ref) == payload
            stats = shm.worker_cache_stats()
        assert stats["object_misses"] == before + 1
        assert stats["object_hits"] >= 1

    def test_close_is_idempotent_and_exception_safe(self):
        plane = shm.PayloadPlane()
        plane.publish_bytes(b"x")
        with pytest.raises(RuntimeError):
            with plane:
                raise RuntimeError("shard blew up")
        plane.close()
        assert _no_repro_segments()


# -- content-hash netlist cache --------------------------------------------

class TestNetlistHash:
    def test_hash_is_content_determined(self):
        a = genscale.generate_netlist(60, seed=5)
        b = genscale.generate_netlist(60, seed=5)
        c = genscale.generate_netlist(60, seed=6)
        assert a is not b
        assert kernel.netlist_hash(a) == kernel.netlist_hash(b)
        assert kernel.netlist_hash(a) != kernel.netlist_hash(c)

    def test_hash_tracks_mutation(self):
        nl = genscale.generate_netlist(60, seed=5)
        before = kernel.netlist_hash(nl)
        nl.add("extra", "not", "i0")
        nl.add_output("extra")
        assert kernel.netlist_hash(nl) != before

    def test_resolve_netlist_caches_and_evicts(self, monkeypatch):
        monkeypatch.setenv(shm.CACHE_SIZE_ENV, "2")
        kernel._BY_HASH.clear()
        designs = [genscale.generate_netlist(40, seed=s)
                   for s in range(3)]
        blobs = [kernel.netlist_blob(nl) for nl in designs]
        first = kernel.resolve_netlist(blobs[0][0], blobs[0][1])
        assert kernel.resolve_netlist(blobs[0][0], None) is first
        kernel.resolve_netlist(blobs[1][0], blobs[1][1])
        kernel.resolve_netlist(blobs[2][0], blobs[2][1])  # evicts [0]
        again = kernel.resolve_netlist(blobs[0][0], blobs[0][1])
        assert again is not first
        assert pickle.dumps(again) == pickle.dumps(first)


# -- ship-once discipline --------------------------------------------------

def _probe_worker_caches(_arg):
    from repro.flow import shm as worker_shm
    from repro.gatelevel import kernel as worker_kernel

    return (worker_kernel.netlist_cache_stats(),
            worker_shm.worker_cache_stats())


@pytest.fixture
def warm_pool():
    from repro.flow.resilience import set_shard_pool_provider

    provider = WarmPoolProvider(jobs=1)
    provider.prewarm()
    set_shard_pool_provider(provider)
    yield provider
    set_shard_pool_provider(None)
    provider.close()


class TestShipOnce:
    def test_shm_serializes_netlist_once_across_calls(
        self, monkeypatch, warm_pool
    ):
        monkeypatch.setenv(shm.TRANSPORT_ENV, "shm")
        monkeypatch.setattr(fault_sim, "MIN_FAULTS_PER_SHARD", 4)
        nl = genscale.generate_netlist(120, seed=11)
        faults = all_faults(nl)[:16]
        seq = _sequence(nl, width=8, n_cycles=2)
        assert nl._pickles == 0
        results = []
        for _ in range(2):
            results.append(fault_sim.fault_simulate_cycles(
                nl, faults, seq, width=8, shards=2, backend="kernel",
            ))
        # netlist_blob memoises: one parent-side pickle total, vs one
        # per shard per call through the pool pipe under the old path.
        assert nl._pickles == 1
        assert results[0] == results[1]

    def test_pickle_transport_ships_per_shard(self, monkeypatch):
        monkeypatch.setenv(shm.TRANSPORT_ENV, "pickle")
        monkeypatch.setattr(fault_sim, "MIN_FAULTS_PER_SHARD", 4)
        nl = genscale.generate_netlist(120, seed=11)
        faults = all_faults(nl)[:16]
        seq = _sequence(nl, width=8, n_cycles=2)
        fault_sim.fault_simulate_cycles(
            nl, faults, seq, width=8, shards=2, backend="kernel",
        )
        assert nl._pickles >= 2  # one full copy per shard arg

    def test_warm_worker_unpickles_once_per_generation(
        self, monkeypatch, warm_pool
    ):
        monkeypatch.setenv(shm.TRANSPORT_ENV, "shm")
        monkeypatch.setattr(fault_sim, "MIN_FAULTS_PER_SHARD", 4)
        nl = genscale.generate_netlist(150, seed=12)
        faults = all_faults(nl)[:16]
        seq = _sequence(nl, width=8, n_cycles=2)
        # Forked workers inherit the parent's counters, so measure
        # deltas against a baseline probed in the worker itself.
        pool = warm_pool.acquire(1)
        base, _ = pool.submit(_probe_worker_caches, None).result(
            timeout=60)
        for _ in range(3):
            fault_sim.fault_simulate_cycles(
                nl, faults, seq, width=8, shards=2, backend="kernel",
            )
        net_stats, _obj_stats = pool.submit(
            _probe_worker_caches, None
        ).result(timeout=60)
        # Three sharded calls -> six shard tasks in the single warm
        # worker, but the netlist body crossed exactly once.
        assert net_stats["misses"] - base["misses"] == 1
        assert net_stats["hits"] - base["hits"] == 5
        assert net_stats["entries"] >= 1

    def test_shm_payload_refs_are_smaller(self, monkeypatch):
        monkeypatch.setattr(fault_sim, "MIN_FAULTS_PER_SHARD", 4)
        nl = genscale.generate_netlist(400, seed=13)
        faults = all_faults(nl)[:32]
        seq = _sequence(nl, width=8, n_cycles=2)
        sizes = {}
        for transport in ("pickle", "shm"):
            monkeypatch.setenv(shm.TRANSPORT_ENV, transport)
            with collect() as custom:
                fault_sim.fault_simulate_cycles(
                    nl, faults, seq, width=8, shards=2,
                    backend="kernel",
                )
            sizes[transport] = custom["payload_bytes"]
        assert sizes["shm"] * 5 <= sizes["pickle"]
        assert _no_repro_segments()


@pytest.fixture(autouse=True)
def _leak_guard():
    yield
    assert _no_repro_segments(), "leaked repro_* shared-memory segments"


# -- transport equivalence on random designs -------------------------------

@pytest.fixture(scope="class")
def eq_pool():
    """One warm 2-worker pool shared across hypothesis examples, so the
    test measures transport equivalence rather than pool spawn time."""
    from repro.flow.resilience import set_shard_pool_provider

    provider = WarmPoolProvider(jobs=2)
    provider.prewarm()
    set_shard_pool_provider(provider)
    yield provider
    set_shard_pool_provider(None)
    provider.close()


class TestTransportEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(nl=netlists())
    def test_shm_and_pickle_agree(self, eq_pool, nl):
        import os

        faults = all_faults(nl)
        if len(faults) < 8:
            return
        seq = _sequence(nl, width=8, n_cycles=3)
        saved = fault_sim.MIN_FAULTS_PER_SHARD
        fault_sim.MIN_FAULTS_PER_SHARD = 4
        got = {}
        try:
            for t in ("pickle", "shm"):
                os.environ[shm.TRANSPORT_ENV] = t
                got[t] = fault_sim.fault_simulate_cycles(
                    nl, faults, seq, width=8, shards=2,
                    backend="kernel",
                )
        finally:
            fault_sim.MIN_FAULTS_PER_SHARD = saved
            os.environ.pop(shm.TRANSPORT_ENV, None)
        serial = fault_sim.fault_simulate_cycles(
            nl, faults, seq, width=8, shards=1, backend="kernel",
        )
        assert got["pickle"] == serial
        assert got["shm"] == serial
        assert list(got["shm"]) == list(serial)


# -- scale-proof generator -------------------------------------------------

class TestGenscale:
    def test_seeded_and_reproducible(self):
        a = genscale.generate_netlist(300, seed=9, signature_bits=8)
        b = genscale.generate_netlist(300, seed=9, signature_bits=8)
        c = genscale.generate_netlist(300, seed=10, signature_bits=8)
        assert kernel.netlist_hash(a) == kernel.netlist_hash(b)
        assert kernel.netlist_hash(a) != kernel.netlist_hash(c)
        a.validate()
        assert len(a) >= 270  # ~n_gates budget, mop-up included
        assert any(g.scan for g in a.dffs())

    def test_bist_wrap(self):
        nl = genscale.generate_netlist(200, seed=2, signature_bits=8)
        hw = genscale.bist_wrap(nl)
        assert hw.signature_registers == ("sr0",)
        assert len(hw.signature_bit_nets()["sr0"]) == 8
        with pytest.raises(ValueError):
            genscale.bist_wrap(genscale.generate_netlist(200, seed=2))

    def test_patterns_and_faults_deterministic(self):
        nl = genscale.generate_netlist(120, seed=4)
        assert (genscale.random_patterns(nl, 5, seed=1)
                == genscale.random_patterns(nl, 5, seed=1))
        assert (genscale.sample_faults(nl, 20, seed=1)
                == genscale.sample_faults(nl, 20, seed=1))
        assert len(genscale.sample_faults(nl, 10**9)) == len(
            all_faults(nl))


# -- error surfacing (satellite: no silently swallowed workers) ------------

def _fails_in_workers_only(args):
    i, x = args
    if multiprocessing.parent_process() is not None:
        raise ValueError(f"worker refused shard {i}")
    return x * 10


def _always_fails(args):
    i, _x = args
    raise ValueError(f"shard {i} is cursed")


class TestErrorSurfacing:
    def test_worker_errors_are_counted_not_swallowed(self):
        results, info = run_sharded(
            _fails_in_workers_only, [(i, i) for i in range(3)],
            max_workers=2,
        )
        assert results == [0, 10, 20]  # in-process fallback rescued
        assert info["shard_errors"] >= 3
        assert info["shard_fallbacks"] == 3
        count, last = info["shard_error_detail"][0]
        assert count >= 1
        assert "worker refused shard 0" in last

    def test_exhausted_shard_raises_with_worker_history(self):
        with pytest.raises(ValueError) as excinfo:
            run_sharded(_always_fails, [(0, 0)], max_workers=1)
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("also failed" in n and "worker processes" in n
                   for n in notes)
