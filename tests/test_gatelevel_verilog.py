"""Tests for the structural Verilog exporters."""

import re

import pytest

from repro.cdfg import suite
from repro.gatelevel.expand import expand_datapath
from repro.gatelevel.verilog import datapath_to_verilog, netlist_to_verilog
from tests.conftest import synthesize


@pytest.fixture
def dp():
    d, *_ = synthesize(suite.figure1(width=4))
    return d


class TestNetlistExport:
    def test_module_header_and_footer(self, dp):
        nl, _ = expand_datapath(dp)
        v = netlist_to_verilog(nl)
        assert v.startswith("module ")
        assert v.rstrip().endswith("endmodule")

    def test_every_pi_is_port(self, dp):
        nl, _ = expand_datapath(dp)
        v = netlist_to_verilog(nl)
        for pi in nl.inputs():
            assert re.search(rf"input {re.escape(pi)};", v), pi

    def test_dffs_in_always_block(self, dp):
        nl, _ = expand_datapath(dp)
        v = netlist_to_verilog(nl)
        assert "always @(posedge clk)" in v
        assert v.count("<=") == len(nl.dffs())

    def test_scan_annotation(self, dp):
        dp.mark_scan(dp.registers[0].name)
        nl, _ = expand_datapath(dp)
        v = netlist_to_verilog(nl)
        assert v.count("// scan") == dp.registers[0].width

    def test_gate_counts_match(self, dp):
        nl, _ = expand_datapath(dp)
        v = netlist_to_verilog(nl)
        for prim in ("xor", "and", "or"):
            declared = len(re.findall(rf"^  {prim} g\d+ ", v, re.M))
            actual = sum(1 for g in nl if g.kind == prim)
            assert declared == actual, prim

    def test_po_assignments(self, dp):
        nl, _ = expand_datapath(dp)
        v = netlist_to_verilog(nl)
        assert v.count("assign po_") == len(nl.outputs)

    def test_custom_module_name(self, dp):
        nl, _ = expand_datapath(dp)
        v = netlist_to_verilog(nl, module_name="my_top")
        assert "module my_top (" in v


class TestDatapathExport:
    def test_word_level_ports(self, dp):
        v = datapath_to_verilog(dp)
        assert "input [3:0] pi_a;" in v
        assert "output [3:0] po_g;" in v

    def test_register_declarations(self, dp):
        v = datapath_to_verilog(dp)
        for r in dp.registers:
            assert f"reg [3:0] {r.name};" in v

    def test_load_enables_guard_writes(self, dp):
        v = datapath_to_verilog(dp)
        writes = re.findall(r"if \((\w+)_load\) (\w+) <=", v)
        assert writes
        for guard, target in writes:
            assert guard == target

    def test_operators_present(self, dp):
        v = datapath_to_verilog(dp)
        assert re.search(r"alu\d+_p0 \+ alu\d+_p1", v)

    def test_scan_comment(self, dp):
        dp.mark_scan(dp.registers[0].name)
        v = datapath_to_verilog(dp)
        assert "// scan" in v

    def test_multi_kind_unit_gets_fn_select(self):
        d, *_ = synthesize(suite.tseng(width=4))
        v = datapath_to_verilog(d)
        assert re.search(r"input \[3:0\] alu\d+_fn;", v)
