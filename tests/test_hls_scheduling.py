"""Tests for the schedulers."""

import pytest

from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro.cdfg.graph import CDFGError
from repro.hls.allocation import Allocation, AllocationError, allocate_for_latency
from repro.hls.scheduling import (
    Schedule,
    alap,
    asap,
    force_directed_schedule,
    list_schedule,
    mobility_path_schedule,
)


class TestScheduleObject:
    def test_length(self, figure1):
        s = asap(figure1)
        assert s.length == 3
        assert s.length_with_delays(figure1) == 3

    def test_length_with_multicycle(self, diffeq):
        s = asap(diffeq)
        assert s.length_with_delays(diffeq) == critical_path_length(diffeq)

    def test_operations_in_step_spans_delay(self, diffeq):
        s = asap(diffeq)
        start = s.step_of("*1")
        assert "*1" in s.operations_in_step(diffeq, start)
        assert "*1" in s.operations_in_step(diffeq, start + 1)

    def test_verify_catches_dependency_violation(self, figure1):
        bad = Schedule({"+1": 1, "+2": 1, "+3": 1, "+4": 2, "+5": 3})
        with pytest.raises(CDFGError):
            bad.verify(figure1)

    def test_verify_catches_missing_op(self, figure1):
        with pytest.raises(CDFGError):
            Schedule({"+1": 1}).verify(figure1)

    def test_verify_catches_resource_violation(self, figure1):
        s = asap(figure1)  # two adds in step 1
        with pytest.raises(AllocationError):
            s.verify(figure1, Allocation({"alu": 1}))


class TestListSchedule:
    def test_respects_single_alu(self, figure1):
        alloc = Allocation({"alu": 1})
        s = list_schedule(figure1, alloc)
        s.verify(figure1, alloc)
        assert s.length_with_delays(figure1) == 5  # 5 adds serialized

    def test_two_alus_reach_cpl(self, figure1):
        alloc = Allocation({"alu": 2})
        s = list_schedule(figure1, alloc)
        assert s.length_with_delays(figure1) == 3

    def test_multicycle_occupancy(self, diffeq):
        alloc = Allocation({"alu": 1, "mult": 1})
        s = list_schedule(diffeq, alloc)
        s.verify(diffeq, alloc)
        # 6 mults at 2 cycles on one unit: at least 12 cycles spent
        assert s.length_with_delays(diffeq) >= 12

    def test_missing_unit_class_rejected(self, diffeq):
        with pytest.raises(AllocationError):
            list_schedule(diffeq, Allocation({"alu": 1}))

    @pytest.mark.parametrize("name", ["iir2", "ar4", "ewf"])
    def test_suite_feasibility(self, name):
        c = suite.standard_suite()[name]
        alloc = allocate_for_latency(c, 2 * critical_path_length(c))
        s = list_schedule(c, alloc)
        s.verify(c, alloc)


class TestForceDirected:
    def test_meets_latency(self, figure1):
        s = force_directed_schedule(figure1, 4)
        s.verify(figure1)
        assert s.length_with_delays(figure1) <= 4

    def test_balances_distribution(self, figure1):
        """FDS at latency 5 should not pile all adds in one step."""
        s = force_directed_schedule(figure1, 5)
        per_step = {}
        for op, st in s.steps.items():
            per_step[st] = per_step.get(st, 0) + 1
        assert max(per_step.values()) <= 2

    def test_diffeq(self, diffeq):
        s = force_directed_schedule(diffeq)
        s.verify(diffeq)

    def test_peak_mult_usage_not_worse_than_asap(self, diffeq):
        def peak(sched, kind):
            count = {}
            for o in diffeq.operations:
                if diffeq.operation(o).kind != kind:
                    continue
                st = sched.steps[o]
                for d in range(diffeq.operation(o).delay):
                    count[st + d] = count.get(st + d, 0) + 1
            return max(count.values())

        lat = critical_path_length(diffeq) + 2
        fds = force_directed_schedule(diffeq, lat)
        naive = asap(diffeq)
        assert peak(fds, "*") <= peak(naive, "*")


class TestMobilityPath:
    def test_valid_schedule(self, diffeq):
        s = mobility_path_schedule(diffeq)
        s.verify(diffeq)

    def test_latency_respected(self, figure1):
        s = mobility_path_schedule(figure1, 5)
        assert s.length_with_delays(figure1) <= 5

    def test_with_allocation(self, figure1):
        alloc = Allocation({"alu": 2})
        s = mobility_path_schedule(figure1, 4, allocation=alloc)
        s.verify(figure1, alloc)
