"""``run_signatures`` semantics and kernel/interpreter state equality.

The checkpointed signature reader is the measurement instrument of
every section-5 experiment, so its semantics are pinned down here:
checkpoint lists are deduplicated and ordered, ``forced=`` overrides
``config`` pins on both engines identically, and the compiled kernel's
``state_checkpoints`` matches a cycle-by-cycle interpreter free-run on
random sequential netlists.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cdfg import suite
from repro.bist import assign_test_roles
from repro.gatelevel.bist_session import (
    build_bist_hardware,
    run_signature,
    run_signatures,
    session_configuration,
)
from repro.gatelevel.kernel import compiled, have_kernel
from repro.gatelevel.simulate import parallel_simulate
from tests.conftest import synthesize
from tests.test_kernel_equivalence import netlists

pytestmark = pytest.mark.skipif(
    not have_kernel(), reason="kernel backend needs numpy"
)

BACKENDS = ["kernel", "interp"]


@pytest.fixture(scope="module")
def hardware():
    dp, *_ = synthesize(suite.iir_biquad(1, width=4), slack=1.5)
    _cfg, envs = assign_test_roles(dp)
    return build_bist_hardware(dp, envs), envs


class TestCheckpoints:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dedup_and_ordering(self, hardware, backend):
        """Duplicated, unsorted checkpoints collapse to one snapshot
        each, keyed by cycle in ascending order."""
        hw, envs = hardware
        cfg = session_configuration(hw, [envs[0].unit])
        sigs = run_signatures(hw, cfg, (24, 8, 16, 8, 24),
                              backend=backend)
        assert list(sigs) == [8, 16, 24]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_checkpoint_equals_direct_run(self, hardware, backend):
        """The snapshot at cycle c is exactly the signature of a c-cycle
        session: checkpointing never perturbs the machine."""
        hw, envs = hardware
        cfg = session_configuration(hw, [envs[0].unit])
        sigs = run_signatures(hw, cfg, (6, 17, 32), backend=backend)
        for cycle, sig in sigs.items():
            assert sig == run_signature(hw, cfg, cycle, backend=backend)

    def test_backends_agree(self, hardware):
        hw, envs = hardware
        cfg = session_configuration(hw, [envs[0].unit])
        marks = (1, 7, 20)
        assert (run_signatures(hw, cfg, marks, backend="kernel")
                == run_signatures(hw, cfg, marks, backend="interp"))


class TestForced:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_forced_overrides_config_pin(self, hardware, backend):
        """A net pinned by ``config`` and contradicted by ``forced=``
        follows ``forced`` -- fault injection beats session setup."""
        hw, envs = hardware
        cfg = session_configuration(hw, [envs[0].unit])
        en = hw.control["bist_en"]
        assert cfg[en] == 1
        dead = run_signatures(hw, cfg, (16,), forced={en: 0},
                              backend=backend)
        zeroed = run_signatures(hw, dict(cfg, **{en: 0}), (16,),
                                backend=backend)
        assert dead == zeroed
        assert dead != run_signatures(hw, cfg, (16,), backend=backend)

    def test_forced_agrees_across_backends(self, hardware):
        """Forcing an internal (non-PI) net mid-cone must produce the
        same signatures on both engines."""
        hw, envs = hardware
        cfg = session_configuration(hw, [envs[0].unit])
        net = next(
            g.name for g in hw.netlist.gates.values()
            if g.kind not in ("input", "const0", "const1", "dff")
        )
        for stuck in (0, 1):
            sigs = {
                backend: run_signatures(
                    hw, cfg, (4, 12), forced={net: stuck},
                    backend=backend,
                )
                for backend in BACKENDS
            }
            assert sigs["kernel"] == sigs["interp"]


class TestStateCheckpoints:
    @settings(max_examples=30, deadline=None)
    @given(nl=netlists(), marks=st.sets(st.integers(1, 8), min_size=1),
           data=st.data())
    def test_matches_interpreter_free_run(self, nl, marks, data):
        """``state_checkpoints`` equals a cycle-by-cycle interpreter
        free-run with the same constant inputs and forced nets."""
        piv = {
            pi: data.draw(st.integers(0, 1)) for pi in nl.inputs()
        }
        forced = None
        if data.draw(st.booleans()):
            nets = nl.topo_order()
            net = nets[data.draw(st.integers(0, len(nets) - 1))]
            forced = {net: data.draw(st.integers(0, 1))}
        got = compiled(nl).state_checkpoints(
            piv, sorted(marks), width=1, forced=forced
        )
        order = nl.topo_order()
        state: dict[str, int] = {}
        ref: dict[int, dict[str, int]] = {}
        for cycle in range(1, max(marks) + 1):
            _v, state = parallel_simulate(
                nl, piv, state, width=1, order=order, forced=forced
            )
            if cycle in marks:
                ref[cycle] = {
                    d.name: state.get(d.name, 0) for d in nl.dffs()
                }
        assert got == ref
