"""Unit tests for variable lifetimes under a schedule."""

import pytest

from repro.cdfg import suite
from repro.cdfg.analysis import asap_schedule
from repro.cdfg.graph import CDFGError
from repro.cdfg.lifetimes import (
    Lifetime,
    lifetimes_overlap,
    schedule_length,
    variable_lifetimes,
)


class TestLifetimeObject:
    def test_birth_death_length(self):
        lt = Lifetime("v", frozenset({2, 3, 4}))
        assert lt.birth == 2 and lt.death == 4 and lt.length == 3

    def test_overlap(self):
        a = Lifetime("a", frozenset({1, 2}))
        b = Lifetime("b", frozenset({2, 3}))
        c = Lifetime("c", frozenset({3, 4}))
        assert a.overlaps(b) and b.overlaps(c)
        assert not a.overlaps(c)


class TestFigure1Lifetimes:
    @pytest.fixture
    def lts(self, figure1):
        return variable_lifetimes(figure1, asap_schedule(figure1))

    def test_input_alive_from_step1(self, lts):
        assert lts["a"].birth == 1

    def test_intermediate_born_after_producer(self, lts):
        # +1 at step 1 -> c occupies from step 2
        assert lts["c"].birth == 2
        assert lts["c"].death == 2  # consumed by +2 at step 2

    def test_output_held_past_end(self, figure1, lts):
        n = schedule_length(figure1, asap_schedule(figure1))
        assert lts["g"].death == n + 1

    def test_input_held_to_last_use(self, lts):
        assert lts["f"].death == 3  # +5 reads f at step 3


class TestMultiCycle:
    def test_mult_result_timing(self, diffeq):
        sched = asap_schedule(diffeq)
        lts = variable_lifetimes(diffeq, sched)
        # *1 at step 1 with delay 2 -> m1 born at step 3
        assert lts["m1"].birth == sched["*1"] + 2

    def test_bad_schedule_rejected(self, figure1):
        bad = dict(asap_schedule(figure1))
        bad["+2"] = 1  # reads c before it exists
        with pytest.raises(CDFGError, match="violates"):
            variable_lifetimes(figure1, bad)


class TestCarriedWraparound:
    def test_carried_variable_wraps(self, diffeq_loop):
        sched = asap_schedule(diffeq_loop)
        lts = variable_lifetimes(diffeq_loop, sched)
        n = schedule_length(diffeq_loop, sched)
        # u1 is read carried by *2 at step 1: alive at the start of the
        # iteration AND around the end-of-iteration boundary.
        assert 1 in lts["u1"].steps
        assert lts["u1"].death >= n

    def test_helper_overlap(self, figure1):
        lts = variable_lifetimes(figure1, asap_schedule(figure1))
        assert lifetimes_overlap(lts, "a", "b")
        assert not lifetimes_overlap(lts, "a", "g")
