"""Shard-level resilience: killing workers must never change results.

Every ``shards=`` path in the gate-level kernels now runs on
:func:`repro.flow.resilience.run_sharded`.  These tests first pin the
harness itself (retry, in-process fallback, pool rebuild, hang
recycling), then kill or crash individual shards of real 4-shard
``fault_simulate_cycles`` / ``generate_tests`` /
``bist_fault_attribution`` runs and assert the merged result is
byte-identical to an uninjected serial run, with the recovery visible
in the recorded metrics.
"""

from __future__ import annotations

import time

import pytest

from repro.flow import chaos
from repro.flow.chaos import Injection
from repro.flow.metrics import collect
from repro.flow.resilience import run_sharded
from repro.gatelevel.fault_sim import fault_simulate_cycles
from repro.gatelevel.faults import all_faults
from repro.gatelevel.kernel import have_kernel

pytestmark = pytest.mark.skipif(
    not have_kernel(), reason="kernel backend needs numpy"
)


# -- harness unit tests (picklable module-level workers) -------------------

def _chaos_square(args):
    i, x = args
    chaos.checkpoint(f"rs_shard:{i}")
    return x * x


ARGS = [(i, i) for i in range(4)]
WANT = [0, 1, 4, 9]


class TestRunSharded:
    def test_clean_run(self):
        results, info = run_sharded(_chaos_square, ARGS, max_workers=2)
        assert results == WANT
        assert info == {"shard_retries": 0, "shard_fallbacks": 0,
                        "pool_rebuilds": 0, "shard_errors": 0,
                        "shard_error_detail": {}}

    def test_crashed_shard_is_retried(self, tmp_path):
        with chaos.active(
            [Injection("rs_shard:2", "crash", times=1)], tmp_path
        ):
            results, info = run_sharded(_chaos_square, ARGS)
        assert results == WANT
        assert info["shard_retries"] >= 1
        assert info["shard_fallbacks"] == 0

    def test_persistent_crash_runs_in_process(self, tmp_path):
        with chaos.active(
            [Injection("rs_shard:2", "crash", times=2)], tmp_path
        ):
            results, info = run_sharded(_chaos_square, ARGS)
        assert results == WANT
        assert info["shard_fallbacks"] >= 1

    def test_killed_shard_rebuilds_pool(self, tmp_path):
        with chaos.active(
            [Injection("rs_shard:1", "kill", times=1)], tmp_path
        ):
            results, info = run_sharded(_chaos_square, ARGS)
        assert results == WANT
        assert info["pool_rebuilds"] >= 1

    def test_hung_shard_is_killed_and_retried(self, tmp_path):
        with chaos.active(
            [Injection("rs_shard:3", "hang", times=1,
                       hang_seconds=60.0)],
            tmp_path,
        ):
            t0 = time.monotonic()
            results, info = run_sharded(_chaos_square, ARGS, timeout=1.0)
            elapsed = time.monotonic() - t0
        assert results == WANT
        assert info["pool_rebuilds"] >= 1
        assert elapsed < 30.0  # the 60 s sleeper really was killed

    def test_hang_records_checkpoint_and_elapsed(self, tmp_path):
        """A timed-out shard lands in ``shard_error_detail`` naming the
        chaos checkpoint and how long it ran -- even when the retry
        rescues it, so the hang is never silent."""
        with chaos.active(
            [Injection("rs_shard:2", "hang", times=1,
                       hang_seconds=60.0)],
            tmp_path,
        ):
            results, info = run_sharded(
                _chaos_square, ARGS, timeout=1.0, label="rs_shard"
            )
        assert results == WANT
        count, msg = info["shard_error_detail"][2]
        assert count >= 1
        assert "rs_shard:2" in msg
        assert "timed out after" in msg
        assert "limit 1.0s" in msg


# -- fault simulation ------------------------------------------------------

def _mesh():
    from tests.test_kernel_equivalence import _mesh_netlist, _sequence

    nl = _mesh_netlist()
    return nl, all_faults(nl), _sequence(nl, width=8, n_cycles=3)


class TestFaultSimShardLoss:
    @pytest.fixture(scope="class")
    def serial(self):
        nl, faults, seq = _mesh()
        return fault_simulate_cycles(
            nl, faults, seq, width=8, backend="kernel", shards=1
        )

    @pytest.mark.parametrize("times,expect", [
        (1, "shard_retries"),   # first retry (fresh pool) succeeds
        (2, "shard_fallbacks"), # retry dies too -> in-process rescue
    ])
    def test_killed_shard_is_byte_identical(
        self, tmp_path, serial, times, expect
    ):
        nl, faults, seq = _mesh()
        assert len(faults) >= 64  # enough for a genuine 4-shard run
        with chaos.active(
            [Injection("faultsim_shard:1", "kill", times=times)],
            tmp_path,
        ):
            with collect() as custom:
                sharded = fault_simulate_cycles(
                    nl, faults, seq, width=8, backend="kernel", shards=4
                )
        assert sharded == serial
        assert list(sharded) == list(serial)  # ordering too
        assert custom.get(expect, 0) >= 1
        assert custom.get("shard_pool_rebuilds", 0) >= 1


# -- deterministic ATPG ----------------------------------------------------

class TestAtpgShardLoss:
    @pytest.fixture(scope="class")
    def scan_case(self):
        from repro.cdfg import suite
        from repro.gatelevel.expand import expand_datapath
        from tests.conftest import synthesize

        dp, *_ = synthesize(suite.standard_suite(width=3)["tseng"])
        dp.mark_scan(*[r.name for r in dp.registers])
        nl, _ = expand_datapath(dp)
        return nl, all_faults(nl)[:60]

    def test_killed_shard_is_byte_identical(self, tmp_path, scan_case):
        from repro.gatelevel.test_generation import generate_tests

        nl, faults = scan_case
        serial = generate_tests(nl, faults=faults, predrop=0, shards=1)
        with chaos.active(
            [Injection("podem_shard:1", "kill", times=1)], tmp_path
        ):
            with collect() as custom:
                sharded = generate_tests(
                    nl, faults=faults, predrop=0, shards=4
                )
        assert sharded.vectors == serial.vectors
        assert sharded.partial_vectors == serial.partial_vectors
        assert sharded.detected == serial.detected
        assert sharded.untestable == serial.untestable
        assert sharded.aborted == serial.aborted
        assert custom.get("shard_pool_rebuilds", 0) >= 1


# -- BIST fault attribution ------------------------------------------------

class TestBistShardLoss:
    @pytest.fixture(scope="class")
    def bist_case(self):
        from repro.bist import assign_test_roles, schedule_sessions
        from repro.cdfg import suite
        from repro.gatelevel.bist_session import build_bist_hardware
        from tests.conftest import synthesize

        dp, *_ = synthesize(suite.standard_suite(width=4)["iir2"])
        _cfg, envs = assign_test_roles(dp)
        hw = build_bist_hardware(dp, envs)
        return hw, schedule_sessions(list(envs))

    def test_killed_shard_is_byte_identical(self, tmp_path, bist_case):
        from repro.gatelevel.bist_session import bist_fault_attribution

        hw, sessions = bist_case
        faults = all_faults(hw.netlist)[:64]
        kw = dict(sessions=sessions, cycles=16, faults=faults)
        serial = bist_fault_attribution(hw, shards=1, **kw)
        with chaos.active(
            [Injection("bist_shard:2", "kill", times=1)], tmp_path
        ):
            with collect() as custom:
                sharded = bist_fault_attribution(hw, shards=4, **kw)
        assert sharded == serial
        assert list(sharded) == list(serial)
        assert custom.get("shard_pool_rebuilds", 0) >= 1
