"""genscale edge cases the fuzzer leans on.

The campaign generates pack width 1, pure-combinational (zero-DFF)
designs, and minimizes divergences down to single-gate netlists -- all
three must compile and simulate byte-identically on both backends, and
the generator's new shape knobs must stay validated and deterministic.
"""

from __future__ import annotations

import pytest

from repro.gatelevel.fault_sim import fault_simulate_cycles
from repro.gatelevel.faults import all_faults
from repro.gatelevel.gates import Netlist
from repro.gatelevel.genscale import (
    generate_netlist,
    random_patterns,
    sample_faults,
)
from repro.gatelevel.kernel import have_kernel

pytestmark = pytest.mark.skipif(
    not have_kernel(), reason="kernel backend needs numpy"
)


def _both_backends(netlist, faults, seq, width):
    kernel = fault_simulate_cycles(
        netlist, faults, seq, width=width, backend="kernel"
    )
    interp = fault_simulate_cycles(
        netlist, faults, seq, width=width, backend="interp"
    )
    return kernel, interp


class TestWidthOne:
    def test_width1_patterns_fit_one_bit(self):
        nl = generate_netlist(80, seed=5)
        seq = random_patterns(nl, 4, seed=5, width=1)
        assert all(v in (0, 1) for cyc in seq for v in cyc.values())

    def test_width1_backends_identical(self):
        nl = generate_netlist(80, seed=5)
        faults = sample_faults(nl, 40, seed=5)
        seq = random_patterns(nl, 4, seed=5, width=1)
        kernel, interp = _both_backends(nl, faults, seq, width=1)
        assert kernel == interp


class TestZeroDFF:
    def test_dff_ratio_zero_is_pure_combinational(self):
        nl = generate_netlist(80, seed=2, dff_ratio=0.0)
        assert list(nl.dffs()) == []
        nl.validate(strict=True)

    def test_negative_ratio_also_zero(self):
        nl = generate_netlist(80, seed=2, dff_ratio=-1.0)
        assert list(nl.dffs()) == []

    def test_zero_dff_backends_identical(self):
        nl = generate_netlist(120, seed=9, dff_ratio=0.0)
        faults = sample_faults(nl, 48, seed=9)
        seq = random_patterns(nl, 3, seed=9, width=16)
        kernel, interp = _both_backends(nl, faults, seq, width=16)
        assert kernel == interp

    def test_default_ratio_still_has_state(self):
        nl = generate_netlist(80, seed=2)
        assert len(list(nl.dffs())) >= 1


class TestSingleGate:
    """The minimizer's end state: one gate fed by surrogate PIs."""

    @pytest.mark.parametrize("kind,n_in", [
        ("and", 2), ("xnor", 2), ("not", 1), ("buf", 1),
    ])
    def test_single_gate_backends_identical(self, kind, n_in):
        nl = Netlist(f"one_{kind}")
        pis = [nl.add(f"i{k}", "input") for k in range(n_in)]
        nl.add("g0", kind, *pis)
        nl.add_output("g0")
        nl.validate(strict=True)
        faults = all_faults(nl)
        seq = random_patterns(nl, 2, seed=1, width=4)
        kernel, interp = _both_backends(nl, faults, seq, width=4)
        assert kernel == interp

    def test_single_dff_feedback_backends_identical(self):
        nl = Netlist("one_dff")
        nl.add("i0", "input")
        nl.add("g0", "xor", "i0", "d0")
        nl.add("d0", "dff", "g0", scan=True)
        nl.add_output("g0")
        nl.validate(strict=True)
        faults = all_faults(nl)
        seq = random_patterns(nl, 3, seed=2, width=2)
        kernel, interp = _both_backends(nl, faults, seq, width=2)
        assert kernel == interp


class TestShapeKnobs:
    def test_kind_pool_respected(self):
        nl = generate_netlist(
            100, seed=4, kind_pool=("xor", "xnor", "not")
        )
        kinds = {g.kind for g in nl if g.name.startswith("g")}
        assert kinds <= {"xor", "xnor", "not"}

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind_pool"):
            generate_netlist(100, seed=4, kind_pool=("dff",))

    def test_bad_pool_every_rejected(self):
        with pytest.raises(ValueError, match="pool_every"):
            generate_netlist(100, seed=4, pool_every=0)

    def test_defaults_unchanged(self):
        """The new knobs default to the historical output exactly."""
        base = generate_netlist(120, seed=7)
        expl = generate_netlist(
            120, seed=7, window=24, pool_every=8,
            kind_pool=("and", "or", "xor", "xor", "nand", "nand",
                       "nor", "xnor", "not"),
        )
        assert [(g.name, g.kind, g.inputs) for g in base] == \
               [(g.name, g.kind, g.inputs) for g in expl]
        assert base.outputs == expl.outputs

    def test_same_args_same_netlist(self):
        a = generate_netlist(150, seed=11, window=6, pool_every=3,
                             kind_pool=("xor", "and", "not"))
        b = generate_netlist(150, seed=11, window=6, pool_every=3,
                             kind_pool=("xor", "and", "not"))
        assert [(g.name, g.kind, g.inputs, g.scan) for g in a] == \
               [(g.name, g.kind, g.inputs, g.scan) for g in b]
