"""Tests for faults, fault simulation, PODEM, and sequential ATPG."""

import pytest

from repro.gatelevel.atpg import combinational_atpg, sim3
from repro.gatelevel.faults import Fault, all_faults, collapse_faults, coverage
from repro.gatelevel.fault_sim import detected_faults, fault_simulate
from repro.gatelevel.gates import Netlist
from repro.gatelevel.seq_atpg import sequential_atpg, unroll


def c17ish() -> Netlist:
    """Small all-NAND combinational circuit (c17 style)."""
    nl = Netlist("c17")
    for pi in ("i1", "i2", "i3", "i4", "i5"):
        nl.add(pi, "input")
    nl.add("n1", "nand", "i1", "i3")
    nl.add("n2", "nand", "i3", "i4")
    nl.add("n3", "nand", "i2", "n2")
    nl.add("n4", "nand", "n2", "i5")
    nl.add("o1", "nand", "n1", "n3")
    nl.add("o2", "nand", "n3", "n4")
    nl.add_output("o1")
    nl.add_output("o2")
    return nl


def counterish(scan: bool = False) -> Netlist:
    """2-bit register ring with an inverter (sequential).

    ``en=0`` synchronously clears both registers, so the state is
    initializable from the primary inputs (a 3-valued sequential ATPG
    cannot do anything with a circuit that has no reset path).
    """
    nl = Netlist("ring")
    nl.add("en", "input")
    nl.add("zero", "const0")
    nl.add("q0", "dff", "d0", scan=scan)
    nl.add("q1", "dff", "d1", scan=scan)
    nl.add("d0", "mux", "en", "nq1", "zero")
    nl.add("d1", "mux", "en", "q0", "zero")
    nl.add("nq1", "not", "q1")
    nl.add_output("q1")
    return nl


class TestFaults:
    def test_universe_size(self):
        nl = c17ish()
        faults = all_faults(nl)
        assert len(faults) == 2 * (5 + 6)  # inputs + gates

    def test_collapse_drops_buffer_stems(self):
        nl = Netlist("t")
        nl.add("a", "input")
        nl.add("b", "buf", "a")
        nl.add("y", "not", "b")
        nl.add_output("y")
        faults = all_faults(nl)
        kept = collapse_faults(nl, faults)
        assert len(kept) < len(faults)
        assert Fault("y", 0) in kept

    def test_coverage_helper(self):
        assert coverage(5, 10) == 0.5
        assert coverage(0, 0) == 1.0


class TestSim3:
    def test_x_propagation(self):
        nl = c17ish()
        vals = sim3(nl, nl.topo_order(), {"i1": 1})
        assert vals["o1"] is None  # unknowns dominate

    def test_controlling_value_beats_x(self):
        nl = Netlist("t")
        nl.add("a", "input")
        nl.add("b", "input")
        nl.add("y", "and", "a", "b")
        nl.add_output("y")
        vals = sim3(nl, nl.topo_order(), {"a": 0})
        assert vals["y"] == 0


class TestPODEM:
    def test_detects_all_c17_faults(self):
        nl = c17ish()
        for f in all_faults(nl):
            res = combinational_atpg(nl, f, backtrack_limit=200)
            assert res.detected, f

    def test_generated_tests_verified_by_fault_sim(self):
        nl = c17ish()
        faults = all_faults(nl)
        for f in faults[:8]:
            res = combinational_atpg(nl, f)
            assert res.detected
            piv = {pi: res.test.get(pi, 0) for pi in nl.inputs()}
            sim = fault_simulate(nl, [f], [piv], width=1)
            assert sim[f], f

    def test_redundant_fault_undetected(self):
        nl = Netlist("red")
        nl.add("a", "input")
        nl.add("na", "not", "a")
        nl.add("y", "and", "a", "na")  # constant 0
        nl.add_output("y")
        res = combinational_atpg(nl, Fault("y", 0))
        assert not res.detected and not res.aborted

    def test_effort_accounting(self):
        nl = c17ish()
        res = combinational_atpg(nl, Fault("o1", 0))
        assert res.effort == res.decisions + res.backtracks


class TestSequential:
    def test_unroll_frame_count(self):
        nl = counterish()
        u, maps = unroll(nl, 3)
        assert len(maps) == 3
        assert len(u.inputs()) == 3  # one 'en' per frame

    def test_unscanned_needs_multiple_frames(self):
        nl = counterish()
        res = sequential_atpg(nl, Fault("nq1", 0), max_frames=6)
        assert res.detected
        assert res.frames >= 2

    def test_scan_detects_in_one_frame(self):
        nl = counterish(scan=True)
        res = sequential_atpg(nl, Fault("nq1", 0), max_frames=3)
        assert res.detected and res.frames == 1

    def test_scan_reduces_effort(self):
        hard = sequential_atpg(counterish(), Fault("d0", 1), max_frames=6)
        easy = sequential_atpg(
            counterish(scan=True), Fault("d0", 1), max_frames=6
        )
        assert easy.detected
        if hard.detected:
            assert easy.effort <= hard.effort


class TestFaultSim:
    def test_stuck_outputs_detected(self):
        nl = c17ish()
        piv = [{pi: p for pi in nl.inputs()} for p in (0b0101,)]
        res = fault_simulate(
            nl, [Fault("o1", 0), Fault("o1", 1)], piv, width=4
        )
        assert any(res.values())

    def test_sequence_detects_state_fault(self):
        nl = counterish()
        seq = [{"en": 1}] * 8
        res = fault_simulate(nl, [Fault("nq1", 1)], seq, width=1)
        # q1 is observable; the inverted feedback fault shows up.
        assert res[Fault("nq1", 1)]

    def test_detected_faults_helper(self):
        res = {Fault("a", 0): True, Fault("b", 1): False}
        assert detected_faults(res) == [Fault("a", 0)]
