"""Event-driven PODEM vs the reference engine: exact equivalence.

The event-driven search state (:mod:`repro.gatelevel.atpg`) must
reproduce the reference engine's :class:`ATPGResult` *exactly* --
same detection, same test cube, same decision and backtrack counts --
on every netlist and fault, because the two engines share one search
loop and differ only in how the simulation state, D-frontier, and
detection views are computed.  Randomized netlists reuse the
structural generator of the kernel equivalence suite (DAGs over
inputs, constants, and forward-declared DFF outputs).

The generation pipeline gets the same treatment: sharded
``generate_tests`` must be byte-identical to a serial run for any
shard count, and the random-pattern pre-drop stage must keep the
coverage bookkeeping invariants intact.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.gatelevel.atpg import (
    combinational_atpg,
    resolve_atpg_backend,
)
from repro.gatelevel.fault_sim import fault_simulate
from repro.gatelevel.faults import Fault, all_faults
from repro.gatelevel.gates import Netlist
from repro.gatelevel.kernel import have_kernel
from repro.gatelevel.seq_atpg import sequential_atpg
from repro.gatelevel.test_generation import (
    TestSet,
    generate_tests,
    resolve_atpg_shards,
    resolve_predrop,
)
from tests.conftest import synthesize
from tests.test_kernel_equivalence import netlists


def _same_testset(a: TestSet, b: TestSet) -> bool:
    return (
        a.vectors == b.vectors
        and a.partial_vectors == b.partial_vectors
        and a.detected == b.detected
        and a.untestable == b.untestable
        and a.aborted == b.aborted
        and a.total_faults == b.total_faults
    )


@pytest.fixture(scope="module")
def fullscan_nl() -> Netlist:
    from repro.cdfg import suite
    from repro.gatelevel.expand import expand_datapath

    dp, *_ = synthesize(suite.standard_suite(width=3)["tseng"])
    dp.mark_scan(*[r.name for r in dp.registers])
    nl, _ = expand_datapath(dp)
    return nl


class TestEventEnginePODEM:
    @settings(max_examples=60, deadline=None)
    @given(netlists(), st.integers(0, 10_000), st.booleans())
    def test_event_matches_reference(self, nl, pick, stuck):
        faults = all_faults(nl)
        fault = Fault(faults[pick % len(faults)].net, int(stuck))
        ref = combinational_atpg(
            nl, fault, backtrack_limit=60, backend="reference"
        )
        ev = combinational_atpg(
            nl, fault, backtrack_limit=60, backend="event"
        )
        assert ref == ev  # detected, aborted, test, backtracks, decisions

    def test_event_matches_reference_fullscan(self, fullscan_nl):
        for fault in all_faults(fullscan_nl)[:40]:
            ref = combinational_atpg(
                fullscan_nl, fault, backtrack_limit=200,
                backend="reference",
            )
            ev = combinational_atpg(
                fullscan_nl, fault, backtrack_limit=200, backend="event"
            )
            assert ref == ev, fault

    def test_sequential_atpg_backends_agree(self):
        nl = Netlist("ring")
        nl.add("en", "input")
        nl.add("zero", "const0")
        nl.add("q0", "dff", "d0")
        nl.add("q1", "dff", "d1")
        nl.add("d0", "mux", "en", "nq1", "zero")
        nl.add("d1", "mux", "en", "q0", "zero")
        nl.add("nq1", "not", "q1")
        nl.add_output("q1")
        for fault in all_faults(nl)[:6]:
            ref = sequential_atpg(nl, fault, max_frames=4,
                                  backtrack_limit=80, backend="reference")
            ev = sequential_atpg(nl, fault, max_frames=4,
                                 backtrack_limit=80, backend="event")
            assert (ref.detected, ref.frames, ref.effort,
                    ref.backtracks) == (ev.detected, ev.frames,
                                        ev.effort, ev.backtracks), fault

    def test_backend_resolution(self, monkeypatch):
        assert resolve_atpg_backend("event") == "event"
        assert resolve_atpg_backend("reference") == "reference"
        assert resolve_atpg_backend("interp") == "reference"
        monkeypatch.setenv("REPRO_ATPG_BACKEND", "reference")
        assert resolve_atpg_backend() == "reference"
        monkeypatch.delenv("REPRO_ATPG_BACKEND")
        assert resolve_atpg_backend() == "event"
        with pytest.raises(ValueError):
            resolve_atpg_backend("fancy")


class TestShardedGeneration:
    def test_sharded_identical_to_serial(self, fullscan_nl):
        faults = all_faults(fullscan_nl)
        serial = generate_tests(fullscan_nl, faults=faults, shards=1)
        for shards in (2, 4):
            sharded = generate_tests(
                fullscan_nl, faults=faults, shards=shards
            )
            assert _same_testset(serial, sharded), shards

    def test_sharded_identical_without_predrop(self, fullscan_nl):
        faults = all_faults(fullscan_nl)[:60]
        serial = generate_tests(
            fullscan_nl, faults=faults, predrop=0, shards=1
        )
        for shards in (2, 4):
            sharded = generate_tests(
                fullscan_nl, faults=faults, predrop=0, shards=shards
            )
            assert _same_testset(serial, sharded), shards

    def test_backends_identical(self, fullscan_nl):
        faults = all_faults(fullscan_nl)[:80]
        ref = generate_tests(
            fullscan_nl, faults=faults, backend="interp",
            atpg_backend="reference",
        )
        if have_kernel():
            acc = generate_tests(
                fullscan_nl, faults=faults, backend="kernel",
                atpg_backend="event",
            )
            assert _same_testset(ref, acc)

    def test_shard_resolution(self, monkeypatch):
        assert resolve_atpg_shards(3) == 3
        assert resolve_atpg_shards(0) == 1
        monkeypatch.setenv("REPRO_ATPG_SHARDS", "5")
        assert resolve_atpg_shards() == 5


class TestPredropBookkeeping:
    def test_predrop_resolution(self, monkeypatch):
        assert resolve_predrop(32) == 32
        assert resolve_predrop(0) == 0
        monkeypatch.setenv("REPRO_ATPG_PREDROP", "7")
        assert resolve_predrop() == 7
        monkeypatch.delenv("REPRO_ATPG_PREDROP")
        assert resolve_predrop() == 64

    def test_every_fault_classified_once(self, fullscan_nl):
        faults = all_faults(fullscan_nl)
        ts = generate_tests(fullscan_nl, faults=faults)
        classified = (
            len(ts.detected) + len(ts.untestable) + len(ts.aborted)
        )
        assert classified == ts.total_faults == len(faults)
        assert not ts.detected & set(ts.untestable)
        assert not ts.detected & set(ts.aborted)
        assert not set(ts.untestable) & set(ts.aborted)

    def test_predrop_vectors_replay(self, fullscan_nl):
        """Replaying the mixed random+PODEM vectors re-detects every
        claimed fault (the bookkeeping contract of TestSet)."""
        ts = generate_tests(fullscan_nl, predrop=64)
        scan = {g.name for g in fullscan_nl.scan_dffs()}
        remaining = sorted(ts.detected)
        redetected: set[Fault] = set()
        for vec in ts.vectors:
            piv = {k: v for k, v in vec.items() if k not in scan}
            state = {k: v for k, v in vec.items() if k in scan}
            hits = fault_simulate(
                fullscan_nl, remaining, [piv], width=1,
                initial_state=state,
            )
            redetected.update(f for f, d in hits.items() if d)
            remaining = [f for f in remaining if f not in redetected]
        assert redetected == ts.detected

    def test_predrop_deterministic(self, fullscan_nl):
        a = generate_tests(fullscan_nl, predrop=64)
        b = generate_tests(fullscan_nl, predrop=64)
        assert _same_testset(a, b)

    def test_predrop_only_appends_detecting_vectors(self, fullscan_nl):
        """Every pre-drop vector pays its way: disabling pre-drop must
        not shrink the vector list by an order of magnitude."""
        with_pre = generate_tests(fullscan_nl, predrop=64)
        assert with_pre.coverage >= 0.95
        for vec in with_pre.vectors:
            assert set(vec) == set(with_pre.vectors[0])


class TestDefensiveAccounting:
    """Regression for the 'PODEM said detected but the completed vector
    missed it' branch: the target must be classified exactly once (as
    aborted), generation must terminate, and the coverage accounting
    must stay consistent."""

    def _lying_atpg(self, netlist, fault, **_kw):
        from repro.gatelevel.atpg import ATPGResult

        # Claims detection with an empty test cube; the zero-filled
        # vector cannot detect anything on this circuit.
        return ATPGResult(fault, True, False, {}, 0, 1)

    def test_target_aborted_exactly_once(self, monkeypatch):
        import repro.gatelevel.test_generation as tg

        nl = Netlist("defensive")
        nl.add("a", "input")
        nl.add("b", "input")
        nl.add("y", "and", "a", "b")
        nl.add_output("y")
        fault = Fault("y", 0)  # needs a=b=1; zero-fill misses it
        monkeypatch.setattr(tg, "combinational_atpg", self._lying_atpg)
        ts = tg.generate_tests(nl, faults=[fault], predrop=0, shards=1)
        assert ts.aborted == [fault]
        assert ts.detected == set()
        assert ts.untestable == []
        # the bogus vector was recorded, but the accounting still sums
        assert len(ts.vectors) == 1
        assert len(ts.detected) + len(ts.untestable) + len(ts.aborted) \
            == ts.total_faults

    def test_other_faults_still_dropped(self, monkeypatch):
        import repro.gatelevel.test_generation as tg

        nl = Netlist("defensive2")
        nl.add("a", "input")
        nl.add("b", "input")
        nl.add("na", "not", "a")
        nl.add("y", "and", "a", "b")
        nl.add_output("na")
        nl.add_output("y")
        target = Fault("y", 0)
        rider = Fault("na", 0)  # the zero-filled vector detects this
        monkeypatch.setattr(tg, "combinational_atpg", self._lying_atpg)
        ts = tg.generate_tests(
            nl, faults=[target, rider], predrop=0, shards=1
        )
        assert ts.aborted == [target]
        assert rider in ts.detected
        assert len(ts.detected) + len(ts.untestable) + len(ts.aborted) \
            == ts.total_faults
