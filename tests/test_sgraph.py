"""Tests for S-graph construction, cycles, MFVS, and the ATPG cost model."""

import networkx as nx
import pytest

from repro.cdfg import suite
from repro.sgraph import (
    build_sgraph,
    estimate_cost,
    exact_mfvs,
    greedy_mfvs,
    is_loop_free,
    minimum_feedback_vertex_set,
    nontrivial_cycles,
    self_loops,
    sequential_depth,
    sgraph_without_scan,
)
from repro.sgraph.atpg_cost import LOOP_BASE
from repro.sgraph.cycles import input_to_output_depth
from repro.survey import figure1_datapath
from tests.conftest import synthesize


def ring(n: int) -> nx.DiGraph:
    g = nx.DiGraph()
    for i in range(n):
        g.add_edge(f"r{i}", f"r{(i + 1) % n}")
    return g


class TestBuild:
    def test_nodes_are_registers(self, figure1_dp):
        g = build_sgraph(figure1_dp)
        assert set(g.nodes) == {r.name for r in figure1_dp.registers}

    def test_edges_follow_transfers(self, figure1_dp):
        g = build_sgraph(figure1_dp)
        for t in figure1_dp.transfers:
            for src in t.source_registers:
                assert g.has_edge(src, t.dest_register)

    def test_scan_removal(self, figure1_dp):
        g = build_sgraph(figure1_dp)
        name = figure1_dp.registers[0].name
        figure1_dp.mark_scan(name)
        g2 = sgraph_without_scan(build_sgraph(figure1_dp))
        assert name not in g2
        assert name in g

    def test_edge_operations_annotated(self, figure1_dp):
        g = build_sgraph(figure1_dp)
        ops = {
            o for _u, _v, d in g.edges(data=True) for o in d["operations"]
        }
        assert ops == set(figure1_dp.cdfg.operations)


class TestCycles:
    def test_figure1_b_has_assignment_loop(self):
        g = build_sgraph(figure1_datapath("b"))
        cycles = nontrivial_cycles(g)
        assert len(cycles) == 1 and len(cycles[0]) == 2

    def test_figure1_c_self_loops_only(self):
        g = build_sgraph(figure1_datapath("c"))
        assert nontrivial_cycles(g) == []
        assert len(self_loops(g)) == 2
        assert is_loop_free(g)

    def test_is_loop_free_strict(self):
        g = build_sgraph(figure1_datapath("c"))
        assert not is_loop_free(g, tolerate_self_loops=False)

    def test_sequential_depth_on_chain(self):
        g = nx.DiGraph()
        nx.add_path(g, ["a", "b", "c", "d"])
        assert sequential_depth(g) == 3

    def test_sequential_depth_ignores_self_loops(self):
        g = nx.DiGraph()
        nx.add_path(g, ["a", "b"])
        g.add_edge("a", "a")
        assert sequential_depth(g) == 1

    def test_sequential_depth_on_scc(self):
        g = ring(4)
        g.add_edge("in", "r0")
        assert sequential_depth(g) == 4  # 1 entry edge + 3 in-ring

    def test_input_to_output_depth(self, figure1_dp):
        g = build_sgraph(figure1_dp)
        d = input_to_output_depth(g)
        assert d is not None and d >= 1


class TestMFVS:
    def test_ring_needs_one(self):
        assert len(exact_mfvs(ring(5))) == 1

    def test_two_disjoint_rings_need_two(self):
        g = ring(3)
        g2 = nx.relabel_nodes(ring(3), {f"r{i}": f"s{i}" for i in range(3)})
        g.update(g2)
        assert len(exact_mfvs(g)) == 2

    def test_shared_node_rings_need_one(self):
        g = nx.DiGraph()
        nx.add_cycle(g, ["x", "a", "b"])
        nx.add_cycle(g, ["x", "c", "d"])
        assert len(exact_mfvs(g)) == 1

    def test_self_loops_never_selected(self):
        g = nx.DiGraph()
        g.add_edge("a", "a")
        assert exact_mfvs(g) == set()
        assert greedy_mfvs(g) == set()

    def test_greedy_breaks_all(self, iir2_dp):
        g = build_sgraph(iir2_dp)
        chosen = greedy_mfvs(g)
        h = g.copy()
        h.remove_nodes_from(chosen)
        assert is_loop_free(h)

    def test_exact_not_worse_than_greedy(self, iir2_dp):
        g = build_sgraph(iir2_dp)
        assert len(exact_mfvs(g)) <= len(greedy_mfvs(g))

    def test_dispatcher(self, iir2_dp):
        g = build_sgraph(iir2_dp)
        chosen = minimum_feedback_vertex_set(g)
        h = g.copy()
        h.remove_nodes_from(chosen)
        assert is_loop_free(h)

    def test_exact_size_guard(self):
        big = ring(30)
        with pytest.raises(ValueError):
            exact_mfvs(big, max_nodes=10)


class TestCostModel:
    def test_acyclic_cost_is_depth_plus_selfloops(self):
        g = nx.DiGraph()
        nx.add_path(g, ["a", "b", "c"])
        c = estimate_cost(g)
        assert c.num_cycles == 0
        assert c.score == pytest.approx(c.depth)

    def test_cost_exponential_in_cycle_length(self):
        short = estimate_cost(ring(2)).score
        longer = estimate_cost(ring(4)).score
        assert longer > short * LOOP_BASE

    def test_cost_linear_in_depth(self):
        g1, g2 = nx.DiGraph(), nx.DiGraph()
        nx.add_path(g1, [f"n{i}" for i in range(5)])
        nx.add_path(g2, [f"n{i}" for i in range(10)])
        d = estimate_cost(g2).score - estimate_cost(g1).score
        assert d == pytest.approx(5.0)

    def test_scan_respected(self, iir2_dp):
        g = build_sgraph(iir2_dp)
        before = estimate_cost(g).score
        mfvs = minimum_feedback_vertex_set(g)
        iir2_dp.mark_scan(*mfvs)
        after = estimate_cost(build_sgraph(iir2_dp)).score
        assert after < before

    def test_str(self):
        c = estimate_cost(ring(3))
        assert "cycles=1" in str(c)
