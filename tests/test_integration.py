"""Integration tests: full flows across packages.

Each test exercises one end-to-end pipeline a downstream user would
run, checking cross-module invariants rather than unit behavior.
"""

import pytest

from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro import bist, hls, rtl, scan, sgraph
from repro.bist.sessions import path_based_sessions
from repro.gatelevel import (
    all_faults,
    expand_datapath,
    fault_simulate,
    random_pattern_coverage,
)
from repro.gatelevel.random_patterns import bist_coverage_curve
from repro.hier import (
    hierarchical_test_suite,
    module_test_environments,
)
from repro.scan.scan_select import assign_registers_with_plan
from tests.conftest import synthesize


class TestPartialScanFlow:
    """Behavior -> loop-aware synthesis -> S-graph -> gate level."""

    def test_end_to_end_iir(self):
        c = suite.iir_biquad(2, width=4)
        lat = int(1.5 * critical_path_length(c))
        alloc = hls.allocate_for_latency(c, lat)
        dp, plan = scan.loop_aware_synthesis(c, alloc, num_steps=lat)
        g = sgraph.build_sgraph(dp)
        assert sgraph.is_loop_free(sgraph.sgraph_without_scan(g))
        nl, _ = expand_datapath(dp)
        assert len(nl.scan_dffs()) == sum(
            r.width for r in dp.scan_registers()
        )

    def test_scan_improves_random_coverage(self):
        """Scanning loop registers raises pseudorandom coverage of the
        sequential data path (scan FFs observe and control state)."""
        c = suite.iir_biquad(1, width=3)
        dp_plain, *_ = synthesize(c, slack=1.5)
        dp_scan, *_ = synthesize(c, slack=1.5)
        scan.gate_level_partial_scan(dp_scan)
        nl_p, _ = expand_datapath(dp_plain)
        nl_s, _ = expand_datapath(dp_scan)
        faults_p = all_faults(nl_p)[:150]
        faults_s = all_faults(nl_s)[:150]
        cov_p = random_pattern_coverage(
            nl_p, n_patterns=64, sequence_length=3, faults=faults_p
        )
        cov_s = random_pattern_coverage(
            nl_s, n_patterns=64, sequence_length=3, faults=faults_s
        )
        assert cov_s >= cov_p

    def test_plan_register_assignment_flow(self):
        c = suite.ar_lattice(4)
        alloc = hls.allocate_for_latency(
            c, int(1.5 * critical_path_length(c))
        )
        sched = hls.list_schedule(c, alloc)
        plan = scan.select_scan_variables(c, sched)
        ra = assign_registers_with_plan(c, sched, plan)
        fub = hls.bind_functional_units(c, sched, alloc)
        dp = hls.build_datapath(c, sched, fub, ra)
        names = {
            dp.register_of_variable(v).name for v in plan.variables
        }
        assert len(names) == plan.num_scan_registers


class TestBISTFlow:
    def test_roles_then_sessions(self):
        c = suite.ewf(width=4)
        lat = int(1.6 * critical_path_length(c))
        alloc = hls.allocate_for_latency(c, lat)
        sched = hls.list_schedule(c, alloc)
        fub = hls.bind_functional_units(c, sched, alloc)
        ra = bist.sharing_register_assignment(c, sched, fub)
        dp = hls.build_datapath(c, sched, fub, ra)
        cfg, envs = bist.assign_test_roles(dp)
        sessions = bist.schedule_sessions(envs)
        paths = path_based_sessions(dp)
        assert len(paths) <= len(sessions)
        assert cfg.converted_registers <= len(dp.registers)

    def test_lfsr_bist_coverage_curve_monotone(self):
        dp, *_ = synthesize(suite.figure1(width=3))
        dp.mark_scan(*[r.name for r in dp.registers][:2])
        nl, _ = expand_datapath(dp)
        curve = bist_coverage_curve(
            nl, checkpoints=(8, 32, 96), faults=all_faults(nl)[:120]
        )
        covs = [c for _n, c in curve]
        assert covs == sorted(covs)
        assert covs[-1] > 0.6


class TestHierFlow:
    def test_compose_and_fault_simulate(self):
        """Hierarchical tests, applied at chip level through the gate
        netlist, detect faults inside the targeted module."""
        c = suite.figure1(width=4)
        alloc = hls.Allocation({"alu": 2})
        sched = hls.list_schedule(c, alloc)
        fub = hls.bind_functional_units(c, sched, alloc)
        envs = module_test_environments(c, fub)
        tests, uncovered = hierarchical_test_suite(
            c, envs, width=4, budget_per_module=6
        )
        assert not uncovered
        assert tests
        # Interpreter-level application: expected outputs already
        # verified during composition; here we assert suite structure.
        units = {t.unit for t in tests}
        assert units == set(fub.units())


class TestRTLFlow:
    def test_test_points_versus_scan_bits(self):
        """[15]'s economics: k=1 test points cost fewer bits than the
        scan registers the k=0 policy needs."""
        c = suite.ar_lattice(6)
        dp1, *_ = synthesize(c, slack=1.5)
        dp2, *_ = synthesize(c, slack=1.5)
        tp1 = rtl.insert_k_level_test_points(dp1, k=1)
        rep = scan.gate_level_partial_scan(dp2)
        bits_tp = sum(t.width for t in tp1)
        assert bits_tp <= rep.scan_bits
