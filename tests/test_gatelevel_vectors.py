"""Tests for the test-vector file format."""

import pytest

from repro.cdfg import suite
from repro.gatelevel.expand import expand_datapath
from repro.gatelevel.faults import Fault
from repro.gatelevel.test_generation import generate_tests
from repro.gatelevel.vectors import (
    check_vectors,
    read_vectors,
    write_vectors,
)
from tests.conftest import synthesize


@pytest.fixture
def nl_and_tests():
    dp, *_ = synthesize(suite.figure1(width=3))
    dp.mark_scan(*[r.name for r in dp.registers])
    nl, _ = expand_datapath(dp)
    ts = generate_tests(nl)
    return nl, ts


class TestRoundTrip:
    def test_write_read_identity(self, nl_and_tests):
        nl, ts = nl_and_tests
        text = write_vectors(nl, ts.vectors)
        vf = read_vectors(text)
        assert len(vf) == len(ts.vectors)
        for (vec, _exp), orig in zip(vf.vectors, ts.vectors):
            for col in vf.inputs:
                assert vec[col] == (orig.get(col, 0) & 1)

    def test_file_is_self_checking(self, nl_and_tests):
        nl, ts = nl_and_tests
        vf = read_vectors(write_vectors(nl, ts.vectors))
        assert check_vectors(nl, vf) == []

    def test_detects_netlist_change(self, nl_and_tests):
        """A corrupted circuit must fail some recorded vector."""
        nl, ts = nl_and_tests
        vf = read_vectors(write_vectors(nl, ts.vectors))
        from repro.gatelevel.gates import Netlist

        bad = Netlist(nl.name)
        for g in nl:
            kind = "xnor" if g.kind == "xor" else g.kind
            bad.add(g.name, kind, *g.inputs, scan=g.scan)
        bad.outputs = list(nl.outputs)
        assert check_vectors(bad, vf) != []


class TestFormat:
    def test_header_required(self):
        with pytest.raises(ValueError, match="header"):
            read_vectors("inputs a\noutputs y\n0 -> 1\n")

    def test_bit_count_checked(self, nl_and_tests):
        nl, ts = nl_and_tests
        text = write_vectors(nl, ts.vectors[:1])
        lines = text.splitlines()
        lines[-1] = lines[-1][1:]  # drop one bit
        with pytest.raises(ValueError, match="mismatch"):
            read_vectors("\n".join(lines))

    def test_malformed_line(self):
        with pytest.raises(ValueError):
            read_vectors(
                "# repro test vectors v1\ninputs a\noutputs y\nnope\n"
            )

    def test_columns_cover_scan_state(self, nl_and_tests):
        nl, ts = nl_and_tests
        vf = read_vectors(write_vectors(nl, ts.vectors[:1]))
        scan_ffs = {g.name for g in nl.scan_dffs()}
        assert scan_ffs <= set(vf.inputs)
