"""Tests for data-path construction and the controller."""

import pytest

from repro.cdfg import suite
from repro.hls import (
    Allocation,
    area_estimate,
    assign_registers_left_edge,
    bind_functional_units,
    build_controller,
    build_datapath,
    list_schedule,
)
from repro.hls.estimate import overhead_percent, register_area, unit_area
from tests.conftest import synthesize


class TestDatapath:
    def test_every_variable_has_register(self, figure1_dp):
        for v in figure1_dp.cdfg.variables:
            assert figure1_dp.register_of_variable(v) is not None

    def test_io_register_flags(self, figure1_dp):
        in_regs = figure1_dp.input_registers()
        out_regs = figure1_dp.output_registers()
        assert in_regs and out_regs
        pi_regs = {
            figure1_dp.register_of_variable(v.name).name
            for v in figure1_dp.cdfg.primary_inputs()
        }
        assert pi_regs == {r.name for r in in_regs}

    def test_transfer_per_operation(self, figure1_dp):
        assert len(figure1_dp.transfers) == len(figure1_dp.cdfg.operations)

    def test_transfer_consistency(self, figure1_dp):
        for t in figure1_dp.transfers:
            op = figure1_dp.cdfg.operation(t.operation)
            assert t.dest_register == (
                figure1_dp.register_of_variable(op.output).name
            )
            assert len(t.source_registers) == len(op.inputs)

    def test_mark_scan(self, figure1_dp):
        name = figure1_dp.registers[0].name
        figure1_dp.mark_scan(name)
        assert [r.name for r in figure1_dp.scan_registers()] == [name]

    def test_mux_count_positive_when_shared(self, iir2_dp):
        assert iir2_dp.mux_count() > 0

    def test_unit_input_sources_shape(self, figure1_dp):
        srcs = figure1_dp.unit_input_sources()
        for unit, ports in srcs.items():
            assert len(ports) == 2  # binary operations

    def test_register_sources_include_pi(self, figure1_dp):
        srcs = figure1_dp.register_sources()
        pi_marks = {
            s for regs in srcs.values() for s in regs if s.startswith("PI:")
        }
        assert len(pi_marks) == len(figure1_dp.cdfg.primary_inputs())


class TestController:
    @pytest.fixture
    def ctrl(self, figure1_dp):
        return build_controller(figure1_dp)

    def test_word_count(self, figure1_dp, ctrl):
        n = figure1_dp.schedule.length_with_delays(figure1_dp.cdfg)
        assert ctrl.num_steps == n + 1  # prologue word 0

    def test_prologue_loads_inputs(self, figure1_dp, ctrl):
        w0 = ctrl.words[0]
        for v in figure1_dp.cdfg.primary_inputs():
            reg = figure1_dp.register_of_variable(v.name)
            assert w0.value(f"{reg.name}.load") == 1

    def test_each_register_loaded_when_written(self, figure1_dp, ctrl):
        for t in figure1_dp.transfers:
            assert t.finish_step in ctrl.load_steps(t.dest_register)

    def test_fn_signal_matches_kind(self, figure1_dp, ctrl):
        for t in figure1_dp.transfers:
            op = figure1_dp.cdfg.operation(t.operation)
            w = ctrl.words[t.step]
            assert w.value(f"{t.unit}.fn") == op.kind

    def test_column_extraction(self, ctrl):
        sig = ctrl.signal_names()[0]
        assert len(ctrl.column(sig)) == ctrl.num_steps


class TestAreaEstimate:
    def test_breakdown_sums(self, figure1_dp):
        a = area_estimate(figure1_dp)
        assert a["total"] == pytest.approx(
            a["registers"] + a["units"] + a["muxes"]
        )

    def test_scan_costs_more(self, figure1_dp):
        before = area_estimate(figure1_dp)["total"]
        figure1_dp.mark_scan(figure1_dp.registers[0].name)
        after = area_estimate(figure1_dp)["total"]
        assert after > before

    def test_register_area_roles(self):
        assert register_area(8, role="CBILBO") > register_area(8, role="BILBO")
        assert register_area(8, role="BILBO") > register_area(8)
        assert register_area(8, scan=True) > register_area(8)

    def test_mult_quadratic(self):
        assert unit_area("mult", 16) > 3 * unit_area("mult", 8)

    def test_overhead_percent(self):
        assert overhead_percent(100, 110) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            overhead_percent(0, 5)

    def test_bigger_behavior_bigger_area(self):
        small, *_ = synthesize(suite.fir(4))
        big, *_ = synthesize(suite.fir(10))
        assert area_estimate(big)["total"] > area_estimate(small)["total"]
