"""Tests for the gate-level MFVS baseline and RTL partial scan."""

import pytest

from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro.scan.gate_level import gate_level_partial_scan
from repro.scan.report import minimize_scan_registers
from repro.scan.rtl_partial_scan import rtl_partial_scan
from repro.sgraph import build_sgraph, is_loop_free, sgraph_without_scan
from tests.conftest import synthesize


class TestGateLevelBaseline:
    @pytest.mark.parametrize("name", ["diffeq_loop", "iir2", "ar4"])
    def test_achieves_loop_freedom(self, name):
        dp, *_ = synthesize(suite.standard_suite()[name], slack=1.5)
        rep = gate_level_partial_scan(dp)
        assert rep.loop_free
        assert rep.scan_registers >= 1
        assert rep.scan_bits == sum(
            r.width for r in dp.scan_registers()
        )

    def test_cost_decreases(self, iir2_dp):
        rep = gate_level_partial_scan(iir2_dp)
        assert rep.cost_after.score < rep.cost_before.score

    def test_area_overhead_positive(self, iir2_dp):
        rep = gate_level_partial_scan(iir2_dp)
        assert rep.area_overhead_percent > 0

    def test_report_row_renders(self, iir2_dp):
        rep = gate_level_partial_scan(iir2_dp)
        assert "gate-level MFVS" in rep.row()

    def test_noop_on_loop_free_datapath(self):
        from repro.survey import figure1_datapath

        dp = figure1_datapath("c")
        rep = gate_level_partial_scan(dp)
        assert rep.scan_registers == 0 and rep.loop_free


class TestMinimizeScan:
    def test_prunes_redundant_marks(self, iir2_dp):
        gate_level_partial_scan(iir2_dp)
        needed = {r.name for r in iir2_dp.scan_registers()}
        # over-mark two extra registers, then minimize
        extra = [
            r.name for r in iir2_dp.registers if r.name not in needed
        ][:2]
        iir2_dp.mark_scan(*extra)
        kept = set(minimize_scan_registers(iir2_dp))
        assert is_loop_free(sgraph_without_scan(build_sgraph(iir2_dp)))
        assert len(kept) <= len(needed) + len(extra) - len(extra)

    def test_keeps_marks_when_not_loop_free(self, iir2_dp):
        iir2_dp.mark_scan(iir2_dp.registers[0].name)
        before = {r.name for r in iir2_dp.scan_registers()}
        if not is_loop_free(sgraph_without_scan(build_sgraph(iir2_dp))):
            kept = minimize_scan_registers(iir2_dp)
            assert set(kept) == before


class TestRTLPartialScan:
    @pytest.mark.parametrize("name", ["diffeq_loop", "iir2", "ar4", "ewf"])
    def test_breaks_all_multiregister_loops(self, name):
        dp, *_ = synthesize(suite.standard_suite()[name], slack=1.5)
        res = rtl_partial_scan(dp)
        assert res.loop_free

    def test_transparent_units_counted_in_bits(self, iir2_dp):
        res = rtl_partial_scan(iir2_dp)
        reg_bits = sum(
            iir2_dp.register(r).width for r in res.scanned_registers
        )
        assert res.scan_bits >= reg_bits

    def test_not_more_bits_than_register_only(self):
        """Mixed register/unit breaking should not cost more scan bits
        than the register-only MFVS on the same data path."""
        for name in ("iir2", "ar4", "ewf"):
            dp1, *_ = synthesize(suite.standard_suite()[name], slack=1.5)
            dp2, *_ = synthesize(suite.standard_suite()[name], slack=1.5)
            mixed = rtl_partial_scan(dp1)
            reg_only = gate_level_partial_scan(dp2)
            assert mixed.scan_bits <= reg_only.scan_bits + 8

    def test_insertions_property(self, iir2_dp):
        res = rtl_partial_scan(iir2_dp)
        assert res.insertions == len(res.scanned_registers) + len(
            res.transparent_units
        )
