"""Tests for the [16] deflection-driven scan sharing pass."""

import random

import pytest

from repro.cdfg import suite
from repro.cdfg.analysis import cdfg_loops, unbroken_loops
from repro.cdfg.generate import random_looped_cdfg
from repro.cdfg.interpret import equivalent_behavior, functional_mode_inputs
from repro.scan.deflect import deflect_for_scan_sharing


class TestDeflectionPass:
    def test_never_increases_scan_registers(self):
        for name, c in suite.standard_suite(looped_only=True).items():
            r = deflect_for_scan_sharing(c)
            assert r.scan_registers_saved >= 0, name

    def test_improves_on_random_looped(self):
        improved = 0
        for seed in range(6):
            c = random_looped_cdfg(24, 3, loop_length=4, seed=seed)
            r = deflect_for_scan_sharing(c)
            improved += r.scan_registers_saved > 0
        assert improved >= 2

    def test_transformed_plan_still_breaks_loops(self):
        c = random_looped_cdfg(24, 3, loop_length=4, seed=0)
        r = deflect_for_scan_sharing(c)
        loops = cdfg_loops(r.transformed, bound=2000)
        assert unbroken_loops(loops, r.plan_after.variables) == []

    def test_behavior_preserved(self):
        c = random_looped_cdfg(24, 3, loop_length=4, seed=0)
        r = deflect_for_scan_sharing(c)
        assert r.deflections >= 1
        rng = random.Random(1)
        stream = [
            {v.name: rng.randrange(256) for v in c.primary_inputs()}
            for _ in range(6)
        ]
        assert equivalent_behavior(
            c, r.transformed, stream,
            functional_mode_inputs(r.transformed, c),
        )

    def test_extra_operations_accounted(self):
        c = random_looped_cdfg(24, 3, loop_length=4, seed=0)
        r = deflect_for_scan_sharing(c)
        assert r.extra_operations == r.deflections

    def test_noop_on_acyclic(self, figure1):
        r = deflect_for_scan_sharing(figure1)
        assert r.deflections == 0
        assert r.transformed is figure1
