"""Flow engine: DAG validation, serial/parallel execution, degradation.

Stage functions live at module level so worker processes can unpickle
them by reference.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.flow import (
    Flow,
    FlowDefinitionError,
    FlowError,
    Runner,
    Stage,
    is_unavailable,
    record_metric,
)
from repro.flow.metrics import column_widths, render_table


# -- module-level stage functions (picklable) ------------------------------

def emit(value):
    return value


def double(x):
    return 2 * x


def add(a, b):
    return a + b


def square_row(i):
    return (i, i * i)


def gather_rows(**rows):
    ordered = [rows[k] for k in sorted(rows, key=lambda k: int(k[4:]))]
    return {"header": ["i", "i^2"], "rows": ordered}


def boom():
    raise RuntimeError("boom")


def flaky(counter: str, fail_times: int):
    path = Path(counter)
    n = int(path.read_text()) if path.exists() else 0
    path.write_text(str(n + 1))
    if n < fail_times:
        raise RuntimeError(f"attempt {n} fails")
    return n


def napper(seconds: float):
    time.sleep(seconds)
    return seconds


def with_custom_metric(x):
    record_metric("things_per_s", 42.0)
    return x


def mutate_and_sum(values):
    values.append(99)  # impure on purpose: isolation must contain it
    return sum(values)


# -- graph validation ------------------------------------------------------

class TestValidation:
    def test_cycle_detected(self):
        f = Flow("cyclic")
        f.stage("a", double, inputs={"x": "y"}, outputs=("x",))
        f.stage("b", double, inputs={"x": "x"}, outputs=("y",))
        with pytest.raises(FlowDefinitionError, match="cycle"):
            f.validate()

    def test_duplicate_output_rejected(self):
        f = Flow("dup")
        f.stage("a", emit, outputs=("x",), params={"value": 1})
        f.stage("b", emit, outputs=("x",), params={"value": 2})
        with pytest.raises(FlowDefinitionError, match="produced by both"):
            f.validate()

    def test_missing_external_input(self):
        f = Flow("missing")
        f.stage("a", double, inputs=("nope",), outputs=("x",))
        with pytest.raises(FlowDefinitionError, match="external inputs"):
            f.validate()
        f.validate(inputs={"nope": 3})  # supplying it is fine

    def test_duplicate_stage_name(self):
        f = Flow("dupstage")
        f.stage("a", emit, outputs=("x",), params={"value": 1})
        with pytest.raises(FlowDefinitionError, match="duplicate stage"):
            f.stage("a", emit, outputs=("y",), params={"value": 2})

    def test_stage_requires_outputs(self):
        with pytest.raises(ValueError, match="no outputs"):
            Stage("a", emit)

    def test_topo_order_is_dependency_sorted(self):
        f = Flow("topo")
        f.stage("late", add, inputs=("x", "y"), outputs=("z",))
        f.stage("mid", double, inputs={"x": "w"}, outputs=("y",))
        f.stage("early", emit, outputs=("w",), params={"value": 1})
        f.stage("early2", emit, outputs=("x",), params={"value": 5})
        names = [s.name for s in f.topo_order()]
        assert names.index("early") < names.index("mid")
        assert names.index("mid") < names.index("late")


# -- execution -------------------------------------------------------------

def linear_flow() -> Flow:
    f = Flow("linear")
    f.stage("source", emit, outputs=("x",), params={"value": 21})
    f.stage("double", double, inputs=("x",), outputs=("y",))
    return f


def fanout_flow(n: int = 4) -> Flow:
    f = Flow("fanout")
    for i in range(n):
        f.stage(f"sq:{i}", square_row, outputs=(f"row_{i}",),
                params={"i": i})
    f.stage("gather", gather_rows,
            inputs=tuple(f"row_{i}" for i in range(n)),
            outputs=("table",))
    return f


class TestExecution:
    def test_serial_linear(self):
        result = Runner().run(linear_flow())
        assert result["y"] == 42
        assert result.ok
        statuses = {m.stage: m.status for m in result.metrics.stages}
        assert statuses == {"source": "ran", "double": "ran"}

    def test_external_inputs_feed_stages(self):
        f = Flow("ext")
        f.stage("sum", add, inputs=("a", "b"), outputs=("c",))
        result = Runner().run(f, inputs={"a": 1, "b": 2})
        assert result["c"] == 3

    def test_input_renaming(self):
        f = Flow("rename")
        f.stage("src", emit, outputs=("dp_figure1",),
                params={"value": 10})
        f.stage("use", double, inputs={"x": "dp_figure1"},
                outputs=("out",))
        assert Runner().run(f)["out"] == 20

    def test_parallel_equals_serial(self):
        serial = Runner().run(fanout_flow())
        parallel = Runner().run(fanout_flow(), jobs=2)
        assert serial["table"] == parallel["table"]
        text_s = render_table(**serial["table"])
        text_p = render_table(**parallel["table"])
        assert text_s == text_p

    def test_parallel_is_faster_than_serial_on_blocking_stages(self):
        f = Flow("naps")
        for i in range(2):
            f.stage(f"nap:{i}", napper, outputs=(f"n_{i}",),
                    params={"seconds": 0.5})
        t0 = time.perf_counter()
        Runner().run(f)
        serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        Runner().run(f, jobs=2)
        parallel = time.perf_counter() - t0
        assert serial >= 1.0
        assert parallel < serial

    def test_serial_isolates_stage_inputs(self):
        f = Flow("isolation")
        f.stage("src", emit, outputs=("values",),
                params={"value": [1, 2, 3]})
        f.stage("sum1", mutate_and_sum, inputs=("values",),
                outputs=("s1",))
        f.stage("sum2", mutate_and_sum, inputs=("values",),
                outputs=("s2",))
        result = Runner().run(f)
        # each stage mutates only its own copy of the input...
        assert result["s1"] == result["s2"] == 1 + 2 + 3 + 99
        # ...and the stored artifact stays pristine
        assert result["values"] == [1, 2, 3]

    def test_custom_metrics_recorded(self):
        f = Flow("custom")
        f.stage("m", with_custom_metric, outputs=("x",),
                params={"x": 1})
        result = Runner().run(f)
        assert result.metrics.metric("m").custom == {"things_per_s": 42.0}

    def test_custom_metrics_cross_process(self):
        f = Flow("custom_par")
        f.stage("m", with_custom_metric, outputs=("x",), params={"x": 1})
        f.stage("m2", with_custom_metric, outputs=("y",), params={"x": 2})
        result = Runner().run(f, jobs=2)
        assert result.metrics.metric("m").custom == {"things_per_s": 42.0}

    def test_uncached_stages_report_artifact_bytes(self):
        result = Runner().run(linear_flow())
        for stage in ("source", "double"):
            m = result.metrics.metric(stage)
            assert m.status == "ran"
            assert m.artifact_bytes > 0  # measured, not left at 0

    def test_metrics_json_dump(self, tmp_path):
        import json

        out = tmp_path / "metrics.json"
        Runner().run(linear_flow(), metrics_path=str(out))
        data = json.loads(out.read_text())
        assert data["flow"] == "linear"
        assert data["cache_misses"] == 2
        assert {s["stage"] for s in data["stages"]} == {"source", "double"}


# -- failure policy --------------------------------------------------------

class TestFailurePolicy:
    def test_required_failure_raises(self):
        f = Flow("fatal")
        f.stage("bad", boom, outputs=("x",))
        with pytest.raises(FlowError, match="bad"):
            Runner().run(f)

    def test_required_failure_raises_parallel(self):
        f = Flow("fatal_par")
        f.stage("bad", boom, outputs=("x",))
        f.stage("good", emit, outputs=("y",), params={"value": 1})
        with pytest.raises(FlowError, match="bad"):
            Runner().run(f, jobs=2)

    def test_optional_failure_degrades_and_cascades(self):
        f = Flow("degraded")
        f.stage("bad", boom, outputs=("x",), optional=True)
        f.stage("downstream", double, inputs=("x",), outputs=("y",))
        f.stage("good", emit, outputs=("z",), params={"value": 7})
        result = Runner().run(f)
        assert result["z"] == 7
        assert not result.ok
        assert is_unavailable(result.artifacts["x"])
        assert is_unavailable(result.artifacts["y"])
        with pytest.raises(FlowError, match="unavailable"):
            result["y"]
        assert result.get("y", "fallback") == "fallback"
        statuses = {m.stage: m.status for m in result.metrics.stages}
        assert statuses["bad"] == "failed"
        assert statuses["downstream"] == "skipped"
        assert statuses["good"] == "ran"

    def test_retry_then_succeed(self, tmp_path):
        counter = tmp_path / "count"
        f = Flow("retry")
        f.stage("flaky", flaky, outputs=("n",), retries=2,
                params={"counter": str(counter), "fail_times": 2})
        result = Runner().run(f)
        assert result["n"] == 2
        metric = result.metrics.metric("flaky")
        assert metric.status == "ran"
        assert metric.attempts == 3

    def test_retry_exhausted_fails(self, tmp_path):
        counter = tmp_path / "count"
        f = Flow("exhausted")
        f.stage("flaky", flaky, outputs=("n",), retries=1,
                params={"counter": str(counter), "fail_times": 5})
        with pytest.raises(FlowError, match="flaky"):
            Runner().run(f)

    def test_parallel_retry_then_succeed(self, tmp_path):
        counter = tmp_path / "count"
        f = Flow("retry_par")
        f.stage("flaky", flaky, outputs=("n",), retries=1,
                params={"counter": str(counter), "fail_times": 1})
        f.stage("use", double, inputs={"x": "n"}, outputs=("y",))
        result = Runner().run(f, jobs=2)
        assert result["y"] == 2
        assert result.metrics.metric("flaky").attempts == 2

    def test_timeout_degrades_optional_stage(self):
        f = Flow("timeout")
        f.stage("slow", napper, outputs=("x",), optional=True,
                timeout=0.3, params={"seconds": 2.0})
        f.stage("good", emit, outputs=("y",), params={"value": 3})
        t0 = time.perf_counter()
        result = Runner().run(f, jobs=2)
        wall = time.perf_counter() - t0
        assert wall < 1.8
        assert result["y"] == 3
        assert is_unavailable(result.artifacts["x"])
        assert "timeout" in result.metrics.metric("slow").error


# -- fault dropping (used by the flow fault-sim stages) --------------------

class TestFaultDropping:
    def test_drop_detected_matches_legacy(self):
        import random

        from repro.cdfg import suite
        from repro.gatelevel.expand import expand_datapath
        from repro.gatelevel.fault_sim import fault_simulate_cycles
        from repro.gatelevel.faults import all_faults
        from tests.conftest import synthesize

        dp, *_ = synthesize(suite.figure1(width=3))
        dp.mark_scan(*[r.name for r in dp.registers])
        nl, _ = expand_datapath(dp)
        faults = all_faults(nl)[:60]
        rng = random.Random(0)
        seq = [
            {pi: rng.getrandbits(8) for pi in nl.inputs()}
            for _ in range(5)
        ]
        legacy = fault_simulate_cycles(nl, faults, seq, width=8)
        dropped = fault_simulate_cycles(
            nl, faults, seq, width=8, drop_detected=True
        )
        assert dropped == legacy


# -- table helpers ---------------------------------------------------------

class TestTableHelpers:
    def test_column_widths_empty_rows(self):
        assert column_widths(["abc", ""], []) == [3, 1]

    def test_column_widths_ragged_rows(self):
        widths = column_widths(["a", "bb"], [("xxxx",), (1, 22222, 3)])
        assert widths == [4, 5]

    def test_render_table_round_trip(self):
        text = render_table(["k", "v"], [("a", 1), ("bb", 22)])
        lines = text.splitlines()
        assert lines[0].split() == ["k", "v"]
        assert lines[2].split() == ["a", "1"]
        assert lines[3].split() == ["bb", "22"]
