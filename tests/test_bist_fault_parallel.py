"""The fault-parallel sequential path vs the fault-serial reference.

``sequential_fault_detect`` packs whole faulty machines as bit columns
of one wide free-run; these tests pin its equivalence to running the
interpreter once per fault, the coverage/attribution equality on real
BIST hardware, shard determinism, and the first-detection bookkeeping
(every detected fault is attributed to exactly one session/checkpoint,
the earliest one that sees it).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cdfg import suite
from repro.bist import assign_test_roles, schedule_sessions
from repro.gatelevel.bist_session import (
    bist_fault_attribution,
    bist_fault_coverage,
    build_bist_hardware,
    jtag_session_signature,
    run_signature,
    session_configuration,
)
from repro.gatelevel.faults import all_faults
from repro.gatelevel.kernel import compiled, have_kernel
from repro.gatelevel.simulate import parallel_simulate
from tests.conftest import synthesize
from tests.test_kernel_equivalence import netlists

pytestmark = pytest.mark.skipif(
    not have_kernel(), reason="kernel backend needs numpy"
)


def _bist(design: str, width: int = 4):
    dp, *_ = synthesize(
        suite.standard_suite(width=width)[design], slack=1.5
    )
    _cfg, envs = assign_test_roles(dp)
    hw = build_bist_hardware(dp, envs)
    return hw, schedule_sessions(list(envs))


@pytest.fixture(scope="module")
def iir2():
    return _bist("iir2")


@pytest.fixture(scope="module")
def ar4():
    return _bist("ar4")


def _serial_reference(nl, faults, piv, marks, observe):
    """Fault-serial interpreter: one forced free-run per fault."""
    order = nl.topo_order()

    def snapshots(forced):
        state: dict[str, int] = {}
        out = {}
        for cycle in range(1, max(marks) + 1):
            _v, state = parallel_simulate(
                nl, piv, state, width=1, order=order, forced=forced
            )
            if cycle in marks:
                out[cycle] = {n: state.get(n, 0) for n in observe}
        return out

    golden = snapshots(None)
    result = {}
    for f in faults:
        snaps = snapshots({f.net: f.stuck_at})
        result[f] = next(
            (m for m in sorted(marks) if snaps[m] != golden[m]), None
        )
    return result


class TestSequentialFaultDetect:
    @settings(max_examples=25, deadline=None)
    @given(nl=netlists(), marks=st.sets(st.integers(1, 6), min_size=1),
           data=st.data())
    def test_matches_fault_serial_interpreter(self, nl, marks, data):
        """Packed columns == one interpreter run per fault, for every
        collapsed fault, observing all flip-flops."""
        faults = all_faults(nl)
        piv = {pi: data.draw(st.integers(0, 1)) for pi in nl.inputs()}
        observe = [d.name for d in nl.dffs()]
        got = compiled(nl).sequential_fault_detect(
            faults, piv, sorted(marks), observe
        )
        ref = _serial_reference(nl, faults, piv, marks, observe)
        assert got == ref
        assert list(got) == list(faults)  # caller's fault order kept

    @settings(max_examples=10, deadline=None)
    @given(nl=netlists(), data=st.data())
    def test_batch_width_does_not_matter(self, nl, data):
        """Tiny column budgets (many batches) and the default single
        batch produce identical detection maps."""
        faults = all_faults(nl)
        piv = {pi: data.draw(st.integers(0, 1)) for pi in nl.inputs()}
        observe = [d.name for d in nl.dffs()]
        comp = compiled(nl)
        wide = comp.sequential_fault_detect(faults, piv, [2, 4], observe)
        narrow = comp.sequential_fault_detect(
            faults, piv, [2, 4], observe, columns=2
        )
        assert wide == narrow


class TestCoverageEquality:
    @pytest.mark.parametrize("design", ["iir2", "ar4"])
    def test_kernel_equals_interpreter(self, design, request):
        hw, sessions = request.getfixturevalue(design)
        faults = all_faults(hw.netlist)[:48]
        kw = dict(sessions=sessions, cycles=16, faults=faults)
        assert (bist_fault_coverage(hw, backend="kernel", **kw)
                == bist_fault_coverage(hw, backend="interp", **kw))
        att_k = bist_fault_attribution(hw, backend="kernel", **kw)
        att_i = bist_fault_attribution(hw, backend="interp", **kw)
        assert att_k == att_i
        assert list(att_k) == list(att_i) == list(faults)


class TestSharding:
    def test_shard_identity(self, iir2):
        """1/2/4 shards merge to the identical attribution map."""
        hw, sessions = iir2
        faults = all_faults(hw.netlist)[:64]
        runs = {
            shards: bist_fault_attribution(
                hw, sessions=sessions, cycles=16, faults=faults,
                shards=shards,
            )
            for shards in (1, 2, 4)
        }
        assert runs[1] == runs[2] == runs[4]
        assert list(runs[1]) == list(runs[2]) == list(runs[4])


class TestAttribution:
    def test_first_detecting_session_and_checkpoint(self, iir2):
        """Each detected fault lands on exactly one (session,
        checkpoint): the first session that sees it, at that session's
        first differing checkpoint."""
        hw, sessions = iir2
        cycles = 16
        marks = [4, 8, 12, 16]
        faults = all_faults(hw.netlist)[:80]
        att = bist_fault_attribution(
            hw, sessions=sessions, cycles=cycles, faults=faults
        )
        comp = compiled(hw.netlist)
        observe = [
            net for bits in hw.signature_bit_nets().values()
            for net in bits
        ]
        # Per-session detection of the *full* fault list (no dropping).
        per_session = [
            comp.sequential_fault_detect(
                faults,
                session_configuration(hw, units),
                marks,
                observe,
            )
            for units in sessions
        ]
        for f in faults:
            firsts = [
                (s, det[f]) for s, det in enumerate(per_session)
                if det[f] is not None
            ]
            assert att[f] == (firsts[0] if firsts else None)

    def test_detected_iff_coverage_counts_it(self, ar4):
        hw, sessions = ar4
        faults = all_faults(hw.netlist)[:48]
        att = bist_fault_attribution(
            hw, sessions=sessions, cycles=16, faults=faults
        )
        cov = bist_fault_coverage(
            hw, sessions=sessions, cycles=16, faults=faults
        )
        detected = [f for f, hit in att.items() if hit is not None]
        assert cov == len(detected) / len(faults)
        for f in detected:
            s, mark = att[f]
            assert 0 <= s < len(sessions)
            assert mark in (4, 8, 12, 16)


class TestJTAGSession:
    @pytest.mark.parametrize("backend", ["kernel", "interp"])
    def test_wrapper_free_run_matches_direct(self, iir2, backend):
        """A session run through the 1149.1 wrapper (INTEST preload +
        Run-Test/Idle free-run) reads the same signatures as the direct
        simulation, on either engine."""
        hw, sessions = iir2
        cfg = session_configuration(hw, sessions[0])
        cycles = 12
        assert (jtag_session_signature(hw, cfg, cycles, backend=backend)
                == run_signature(hw, cfg, cycles, backend=backend))
