"""Tests for bit-level expansion: datapath and composite."""

import random

import pytest

from repro.cdfg import suite
from repro.cdfg.interpret import run_iteration
from repro.hls import (
    Allocation,
    assign_registers_left_edge,
    bind_functional_units,
    build_controller,
    build_datapath,
    list_schedule,
)
from repro.gatelevel.expand import expand_composite, expand_datapath
from repro.gatelevel.simulate import simulate_sequence

WIDTH = 4


def build(cdfg, alloc=None):
    if alloc is None:
        from repro.hls import allocate_for_latency
        from repro.cdfg.analysis import critical_path_length

        alloc = allocate_for_latency(
            cdfg, int(1.6 * critical_path_length(cdfg))
        )
    sched = list_schedule(cdfg, alloc)
    fub = bind_functional_units(cdfg, sched, alloc)
    ra = assign_registers_left_edge(cdfg, sched)
    return build_datapath(cdfg, sched, fub, ra)


def pack_inputs(cdfg, values, width=WIDTH, extra=None):
    piv = dict(extra or {})
    for name, val in values.items():
        for i in range(width):
            piv[f"pi_{name}_b{i}"] = (val >> i) & 1
    return piv


def read_outputs(cdfg, dp, trace, width=WIDTH):
    out = {}
    for var in cdfg.primary_outputs():
        reg = dp.register_of_variable(var.name)
        out[var.name] = sum(
            trace[-1][f"{reg.name}_b{i}"] << i for i in range(width)
        )
    return out


@pytest.mark.parametrize("name", ["figure1", "tseng", "diffeq"])
def test_composite_matches_interpreter(name):
    cdfg = suite.standard_suite(width=WIDTH)[name]
    dp = build(cdfg)
    ctrl = build_controller(dp)
    comp = expand_composite(dp, ctrl)
    rng = random.Random(1)
    for _ in range(4):
        values = {
            v.name: rng.randrange(1 << WIDTH)
            for v in cdfg.primary_inputs()
        }
        piv = pack_inputs(cdfg, values, extra={"reset": 0})
        # reset cycle + one cycle per word + one observation cycle
        seq = [dict(piv, reset=1)] + [piv] * (ctrl.num_steps + 1)
        trace = simulate_sequence(comp, seq, width=1)
        got = read_outputs(cdfg, dp, trace)
        exp = run_iteration(cdfg, values)
        for po in got:
            assert got[po] == exp[po], (name, po, got, exp)


class TestExpandDatapath:
    def test_control_map_complete(self):
        cdfg = suite.figure1(width=WIDTH)
        dp = build(cdfg, Allocation({"alu": 2}))
        nl, ctrl_map = expand_datapath(dp)
        assert set(ctrl_map["reg_load"]) == {r.name for r in dp.registers}
        for u in dp.units:
            assert u.name in ctrl_map["fn_sel"]

    def test_scan_flags_propagate(self):
        cdfg = suite.figure1(width=WIDTH)
        dp = build(cdfg, Allocation({"alu": 2}))
        dp.mark_scan(dp.registers[0].name)
        nl, _ = expand_datapath(dp)
        assert len(nl.scan_dffs()) == WIDTH

    def test_po_bits_registered(self):
        cdfg = suite.figure1(width=WIDTH)
        dp = build(cdfg, Allocation({"alu": 2}))
        nl, _ = expand_datapath(dp)
        assert len(nl.outputs) == 2 * WIDTH  # g and t

    def test_dff_count_matches_register_bits(self):
        cdfg = suite.figure1(width=WIDTH)
        dp = build(cdfg, Allocation({"alu": 2}))
        nl, _ = expand_datapath(dp)
        assert len(nl.dffs()) == sum(r.width for r in dp.registers)

    def test_multiplier_correct(self):
        """Drive the expanded datapath manually through one multiply."""
        cdfg = suite.tseng(width=WIDTH)
        dp = build(cdfg)
        ctrl = build_controller(dp)
        comp = expand_composite(dp, ctrl)
        values = {v.name: 3 for v in cdfg.primary_inputs()}
        piv = pack_inputs(cdfg, values, extra={"reset": 0})
        seq = [dict(piv, reset=1)] + [piv] * (ctrl.num_steps + 1)
        trace = simulate_sequence(comp, seq, width=1)
        got = read_outputs(cdfg, dp, trace)
        exp = run_iteration(cdfg, values)
        assert got["o3"] == exp["o3"]  # o3 = (t1*e) - a exercises mult


class TestComposite:
    def test_has_reset_and_no_control_inputs(self):
        cdfg = suite.figure1(width=WIDTH)
        dp = build(cdfg, Allocation({"alu": 2}))
        ctrl = build_controller(dp)
        comp = expand_composite(dp, ctrl)
        ins = set(comp.inputs())
        assert "reset" in ins
        assert not any(".load" in i or "_load" in i for i in ins)

    def test_extra_words_add_test_inputs(self):
        cdfg = suite.figure1(width=WIDTH)
        dp = build(cdfg, Allocation({"alu": 2}))
        ctrl = build_controller(dp)
        extra = [{f"{dp.registers[0].name}.load": 1}]
        comp = expand_composite(dp, ctrl, extra_words=extra)
        ins = set(comp.inputs())
        assert "tm_en" in ins and "tm_sel0" in ins

    def test_extra_word_forces_control(self):
        """With tm_en=1 the extra vector drives the data path."""
        cdfg = suite.figure1(width=WIDTH)
        dp = build(cdfg, Allocation({"alu": 2}))
        ctrl = build_controller(dp)
        reg = dp.registers[0].name
        comp = expand_composite(
            dp, ctrl, extra_words=[{f"{reg}.load": 1}]
        )
        piv = pack_inputs(
            cdfg,
            {v.name: 0 for v in cdfg.primary_inputs()},
            extra={"reset": 0, "tm_en": 1, "tm_sel0": 0},
        )
        trace = simulate_sequence(comp, [piv], width=1)
        # the load control net of reg is forced to 1 in test mode: the
        # net feeding the DFF mux select; check the decode output by
        # confirming the register captures (its D equals source, not Q).
        assert trace  # smoke: simulation runs with test-mode inputs
