"""Tests for TPGR/SR sharing [32] and test-session scheduling [20]."""

import pytest

from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro.bist.registers import TestRole
from repro.bist.sessions import (
    module_conflict_graph,
    path_based_sessions,
    schedule_sessions,
    session_aware_assignment,
    session_aware_roles,
)
from repro.bist.sharing import (
    assign_test_roles,
    sharing_register_assignment,
    unit_io_registers,
)
from repro.hls import (
    allocate_for_latency,
    bind_functional_units,
    build_datapath,
    list_schedule,
)
from tests.conftest import synthesize


def share_flow(c, slack=1.6):
    lat = int(slack * critical_path_length(c))
    alloc = allocate_for_latency(c, lat)
    sched = list_schedule(c, alloc)
    fub = bind_functional_units(c, sched, alloc)
    ra = sharing_register_assignment(c, sched, fub)
    return build_datapath(c, sched, fub, ra)


class TestRoles:
    def test_every_unit_gets_environment(self, iir2):
        dp = share_flow(iir2)
        cfg, envs = assign_test_roles(dp)
        assert {e.unit for e in envs} == {u.name for u in dp.units}
        for e in envs:
            assert e.tpgr_registers and e.sr_register

    def test_roles_written_back(self, iir2):
        dp = share_flow(iir2)
        assign_test_roles(dp)
        assert any(r.test_role for r in dp.registers)

    def test_cbilbo_only_when_unavoidable(self, iir2):
        dp = share_flow(iir2)
        cfg, envs = assign_test_roles(dp)
        io = unit_io_registers(dp)
        for e in envs:
            ins, outs = io[e.unit]
            if outs - ins:
                assert cfg.roles[e.sr_register] is not TestRole.CBILBO

    def test_converted_not_more_than_total(self, iir2):
        dp = share_flow(iir2)
        cfg, _ = assign_test_roles(dp)
        assert cfg.converted_registers <= len(dp.registers)


class TestSessions:
    def test_shared_sr_conflicts(self, iir2):
        dp = share_flow(iir2)
        _cfg, envs = assign_test_roles(dp)
        g = module_conflict_graph(envs)
        sessions = schedule_sessions(envs)
        # chromatic number sanity: sessions <= units, >= 1
        assert 1 <= len(sessions) <= len(envs)
        flat = [u for s in sessions for u in s]
        assert sorted(flat) == sorted(e.unit for e in envs)

    def test_sessions_are_conflict_free(self, iir2):
        dp = share_flow(iir2)
        _cfg, envs = assign_test_roles(dp)
        g = module_conflict_graph(envs)
        for sess in schedule_sessions(envs):
            for i, a in enumerate(sess):
                for b in sess[i + 1:]:
                    assert not g.has_edge(a, b)

    @pytest.mark.parametrize("name", ["diffeq", "iir2", "ewf", "ar4"])
    def test_path_based_reaches_one_session(self, name):
        """[20]'s experimental result: one test session."""
        dp = share_flow(suite.standard_suite()[name])
        sessions = path_based_sessions(dp)
        assert len(sessions) == 1

    @pytest.mark.parametrize("name", ["diffeq", "iir2", "ewf"])
    def test_path_based_not_worse_than_per_module(self, name):
        dp = share_flow(suite.standard_suite()[name])
        _cfg, envs = assign_test_roles(dp)
        assert len(path_based_sessions(dp)) <= len(schedule_sessions(envs))

    def test_path_sessions_cover_all_units(self, iir2):
        dp = share_flow(iir2)
        sessions = path_based_sessions(dp)
        flat = sorted(u for s in sessions for u in s)
        assert flat == sorted(u.name for u in dp.units)


class TestSessionAwareAssignment:
    def test_valid_assignment(self, iir2):
        lat = int(1.6 * critical_path_length(iir2))
        alloc = allocate_for_latency(iir2, lat)
        sched = list_schedule(iir2, alloc)
        fub = bind_functional_units(iir2, sched, alloc)
        ra = session_aware_assignment(iir2, sched, fub)
        dp = build_datapath(iir2, sched, fub, ra)
        envs, converted = session_aware_roles(dp)
        assert converted >= len({e.sr_register for e in envs})

    def test_costs_registers_for_concurrency(self, iir2):
        """The survey's noted trade-off: concurrency may cost storage."""
        lat = int(1.6 * critical_path_length(iir2))
        alloc = allocate_for_latency(iir2, lat)
        sched = list_schedule(iir2, alloc)
        fub = bind_functional_units(iir2, sched, alloc)
        aware = session_aware_assignment(iir2, sched, fub)
        shared = sharing_register_assignment(iir2, sched, fub)
        assert aware.num_registers >= shared.num_registers
