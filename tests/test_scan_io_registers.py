"""Tests for I/O-register-maximising assignment [25]."""

import pytest

from repro.cdfg import suite
from repro.cdfg.lifetimes import variable_lifetimes
from repro.hls import (
    assign_registers_left_edge,
    bind_functional_units,
    build_datapath,
    list_schedule,
    allocate_for_latency,
)
from repro.scan.io_registers import assign_registers_io_first, io_register_stats
from repro.cdfg.analysis import critical_path_length


def flow(c, assigner):
    lat = int(1.6 * critical_path_length(c))
    alloc = allocate_for_latency(c, lat)
    sched = list_schedule(c, alloc)
    fub = bind_functional_units(c, sched, alloc)
    ra = assigner(c, sched)
    return build_datapath(c, sched, fub, ra), sched


class TestIOFirst:
    @pytest.mark.parametrize("name", ["figure1", "diffeq", "tseng", "iir2"])
    def test_valid_assignment(self, name):
        c = suite.standard_suite()[name]
        dp, sched = flow(c, assign_registers_io_first)
        lts = variable_lifetimes(c, sched.steps)
        # verify() already ran inside; spot-check no overlap in registers
        for r in dp.registers:
            vs = list(r.variables)
            for i, a in enumerate(vs):
                for b in vs[i + 1:]:
                    assert not lts[a].overlaps(lts[b])

    @pytest.mark.parametrize("name", ["figure1", "diffeq", "tseng", "iir2"])
    def test_more_variables_in_io_registers(self, name):
        """The [25] objective: versus left-edge, at least as many
        variables live in registers connected to primary I/O."""
        c = suite.standard_suite()[name]
        dp_io, _ = flow(c, assign_registers_io_first)
        dp_le, _ = flow(c, assign_registers_left_edge)
        s_io = io_register_stats(dp_io)
        s_le = io_register_stats(dp_le)
        assert s_io.variables_in_io_registers >= s_le.variables_in_io_registers

    @pytest.mark.parametrize("name", ["figure1", "diffeq", "tseng"])
    def test_register_count_not_much_worse(self, name):
        c = suite.standard_suite()[name]
        dp_io, _ = flow(c, assign_registers_io_first)
        dp_le, _ = flow(c, assign_registers_left_edge)
        assert len(dp_io.registers) <= len(dp_le.registers) + 2

    def test_every_po_in_output_register(self, diffeq):
        dp, _ = flow(diffeq, assign_registers_io_first)
        for v in diffeq.primary_outputs():
            assert dp.register_of_variable(v.name).is_output_register

    def test_stats_fields(self, figure1):
        dp, _ = flow(figure1, assign_registers_io_first)
        st = io_register_stats(dp)
        assert st.total_registers == len(dp.registers)
        assert 0 < st.io_fraction <= 1.0
        assert st.io_registers <= (
            st.input_registers + st.output_registers
        )
