"""Tests for width-weighted feedback vertex selection."""

import networkx as nx
import pytest

from repro.sgraph.mfvs import (
    exact_mfvs,
    greedy_mfvs,
    weighted_mfvs,
)


def ring_with_widths(widths):
    g = nx.DiGraph()
    names = [f"r{i}" for i in range(len(widths))]
    for name, w in zip(names, widths):
        g.add_node(name, width=w)
    for i in range(len(names)):
        g.add_edge(names[i], names[(i + 1) % len(names)])
    return g


class TestWeighted:
    def test_picks_narrowest_on_a_ring(self):
        g = ring_with_widths([8, 8, 2, 8])
        assert weighted_mfvs(g) == {"r2"}

    def test_matches_exact_on_uniform_weights(self):
        g = nx.DiGraph()
        nx.add_cycle(g, ["x", "a", "b"])
        nx.add_cycle(g, ["x", "c", "d"])
        for n in g.nodes:
            g.nodes[n]["width"] = 4
        assert len(weighted_mfvs(g)) == len(exact_mfvs(g))

    def test_prefers_two_narrow_over_one_wide(self):
        # two disjoint rings joined at a very wide hub: cutting the hub
        # breaks both, but two 1-bit cuts are cheaper than one 16-bit.
        g = nx.DiGraph()
        nx.add_cycle(g, ["hub", "a1", "a2"])
        nx.add_cycle(g, ["hub", "b1", "b2"])
        g.nodes["hub"]["width"] = 16
        for n in ("a1", "a2", "b1", "b2"):
            g.nodes[n]["width"] = 1
        chosen = weighted_mfvs(g)
        assert "hub" not in chosen
        assert len(chosen) == 2

    def test_result_breaks_all_cycles(self):
        g = nx.gnp_random_graph(9, 0.3, seed=5, directed=True)
        for n in g.nodes:
            g.nodes[n]["width"] = (n % 3) + 1
        chosen = weighted_mfvs(g)
        h = g.copy()
        h.remove_nodes_from(chosen)
        h.remove_edges_from([(n, n) for n in h if h.has_edge(n, n)])
        assert nx.is_directed_acyclic_graph(h)

    def test_never_heavier_than_greedy(self):
        for seed in range(6):
            g = nx.gnp_random_graph(8, 0.3, seed=seed, directed=True)
            for n in g.nodes:
                g.nodes[n]["width"] = (n % 4) + 1
            w = lambda s: sum(g.nodes[n]["width"] for n in s)
            assert w(weighted_mfvs(g)) <= w(greedy_mfvs(g))

    def test_acyclic_graph_empty(self):
        g = nx.DiGraph()
        nx.add_path(g, ["a", "b", "c"])
        assert weighted_mfvs(g) == set()

    def test_missing_weight_defaults_to_one(self):
        g = nx.DiGraph()
        nx.add_cycle(g, ["a", "b"])
        assert len(weighted_mfvs(g)) == 1
