"""API contract: every name a package exports must resolve.

Guards against ``__all__`` drifting from the actual module contents --
the kind of breakage downstream users hit first.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.cdfg",
    "repro.hls",
    "repro.sgraph",
    "repro.scan",
    "repro.bist",
    "repro.gatelevel",
    "repro.controller_dft",
    "repro.rtl",
    "repro.hier",
    "repro.jtag",
    "repro.survey",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    mod = importlib.import_module(package)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{package}.__all__ lists {name}"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_names_documented(package):
    """Every exported callable/class carries a docstring."""
    mod = importlib.import_module(package)
    for name in getattr(mod, "__all__", []):
        obj = getattr(mod, name)
        if callable(obj) or isinstance(obj, type):
            assert obj.__doc__, f"{package}.{name} lacks a docstring"


def test_no_cyclic_imports():
    """Importing every module in isolation must succeed."""
    import pathlib
    import subprocess
    import sys

    root = pathlib.Path(__file__).resolve().parents[1] / "src"
    mods = sorted(
        str(p.relative_to(root)).replace("/", ".")[:-3]
        for p in root.rglob("*.py")
        if p.name != "__init__.py"
    )
    # One subprocess for all modules keeps this fast.
    code = "import importlib\n" + "\n".join(
        f"importlib.import_module({m!r})" for m in mods
    )
    proc = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr
