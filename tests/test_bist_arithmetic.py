"""Tests for arithmetic BIST and subspace state coverage [28]."""

import pytest

from repro.cdfg import suite
from repro.bist.arithmetic import (
    accumulator_stream,
    coverage_guided_binding,
    measure_operation_coverage,
    subspace_state_coverage,
    subspace_states,
    unit_coverage,
)
from repro.hls import Allocation, bind_functional_units, list_schedule


class TestMetric:
    def test_full_sweep_covers_everything(self):
        values = list(range(256))
        assert subspace_state_coverage(values, 8, 3) == 1.0

    def test_constant_covers_one_state_per_position(self):
        cov = subspace_state_coverage([5] * 100, 8, 3)
        assert cov == pytest.approx(6 / (6 * 8))

    def test_k_wider_than_width_rejected(self):
        with pytest.raises(ValueError):
            subspace_state_coverage([1], 4, 5)

    def test_states_are_position_tagged(self):
        st = subspace_states([0b1111], 4, 2)
        assert st == {(0, 3), (1, 3), (2, 3)}

    def test_more_vectors_never_less_coverage(self):
        a = accumulator_stream(8, 7, 3, 10)
        b = accumulator_stream(8, 7, 3, 40)
        assert subspace_state_coverage(b, 8, 4) >= subspace_state_coverage(
            a, 8, 4
        )


class TestAccumulator:
    def test_odd_increment_full_period(self):
        s = accumulator_stream(4, increment=3, seed=0, length=16)
        assert len(set(s)) == 16

    def test_even_increment_partial(self):
        s = accumulator_stream(4, increment=4, seed=0, length=16)
        assert len(set(s)) == 4


class TestCoverageGuidedBinding:
    @pytest.fixture
    def setup(self, diffeq):
        cov = measure_operation_coverage(diffeq, n_vectors=20, k=6)
        alloc = Allocation({"alu": 2, "mult": 2})
        sched = list_schedule(diffeq, alloc)
        return diffeq, cov, alloc, sched

    def test_valid_binding(self, setup):
        c, cov, alloc, sched = setup
        b = coverage_guided_binding(c, sched, alloc, cov)
        b.verify(c, sched)

    def test_min_unit_coverage_not_worse(self, setup):
        c, cov, alloc, sched = setup
        naive = bind_functional_units(c, sched, alloc)
        guided = coverage_guided_binding(c, sched, alloc, cov)
        mn = min(unit_coverage(c, naive, cov).values())
        mg = min(unit_coverage(c, guided, cov).values())
        assert mg >= mn

    def test_coverage_values_bounded(self, setup):
        c, cov, alloc, sched = setup
        guided = coverage_guided_binding(c, sched, alloc, cov)
        for v in unit_coverage(c, guided, cov).values():
            assert 0.0 < v <= 1.0

    def test_degradation_through_operations(self, diffeq):
        """[28]'s premise: patterns degrade through ops -- deep
        operations see lower coverage than input-fed ones."""
        cov = measure_operation_coverage(diffeq, n_vectors=20, k=6)
        shallow = cov.coverage_of(cov.states["*1"])  # fed by PIs
        deep = cov.coverage_of(cov.states["*4"])  # fed by products
        assert deep <= shallow
