"""Tests for LFSR/MISR/BILBO models."""

import pytest

from repro.bist.registers import (
    LFSR,
    MISR,
    BISTConfiguration,
    TestRole,
    taps_for,
)


class TestLFSR:
    def test_maximal_period_8bit(self):
        l = LFSR(8, seed=1)
        seen = set()
        for _ in range(255):
            seen.add(l.step())
        assert len(seen) == 255  # full period, zero state excluded

    def test_maximal_period_4bit(self):
        l = LFSR(4, seed=1)
        assert len(set(l.sequence(15))) == 15

    def test_never_zero(self):
        l = LFSR(8, seed=3)
        assert 0 not in l.sequence(300)

    def test_deterministic(self):
        assert LFSR(8, seed=5).sequence(10) == LFSR(8, seed=5).sequence(10)

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            LFSR(8, seed=0)

    def test_width_one_rejected(self):
        with pytest.raises(ValueError):
            LFSR(1)

    def test_taps_fallback(self):
        taps = taps_for(9)  # not in table
        assert all(1 <= t <= 9 for t in taps)


class TestMISR:
    def test_signature_depends_on_order(self):
        m1, m2 = MISR(8), MISR(8)
        m1.absorb(1); m1.absorb(2)
        m2.absorb(2); m2.absorb(1)
        assert m1.signature != m2.signature

    def test_detects_single_corruption(self):
        stream = [17, 3, 200, 45, 99]
        good = MISR(8)
        for v in stream:
            good.absorb(v)
        bad = MISR(8)
        for i, v in enumerate(stream):
            bad.absorb(v ^ (4 if i == 2 else 0))
        assert good.signature != bad.signature

    def test_empty_signature_is_seed(self):
        assert MISR(8, seed=7).signature == 7


class TestConfiguration:
    def test_counts(self):
        cfg = BISTConfiguration(
            {"R0": TestRole.TPGR, "R1": TestRole.SR, "R2": TestRole.NONE,
             "R3": TestRole.CBILBO}
        )
        assert cfg.count(TestRole.TPGR) == 1
        assert cfg.count(TestRole.CBILBO) == 1
        assert cfg.converted_registers == 3
