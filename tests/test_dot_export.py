"""Tests for the DOT renderers."""

import re

import pytest

from repro.cdfg import suite
from repro.cdfg.dot import cdfg_to_dot, datapath_to_dot, sgraph_to_dot
from repro.sgraph import build_sgraph
from tests.conftest import synthesize


class TestCDFGDot:
    def test_structure(self, figure1):
        dot = cdfg_to_dot(figure1)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        for op in figure1.operations:
            assert f'"op:{op}"' in dot

    def test_io_styling(self, figure1):
        dot = cdfg_to_dot(figure1)
        assert re.search(r'"a" \[.*color="blue"', dot)
        assert re.search(r'"g" \[.*color="darkgreen"', dot)

    def test_loop_highlighting(self, iir2):
        dot = cdfg_to_dot(iir2)
        assert "mistyrose" in dot

    def test_carried_edges_dashed(self, iir2):
        dot = cdfg_to_dot(iir2)
        assert "style=dashed" in dot

    def test_no_loops_no_highlight(self, figure1):
        assert "mistyrose" not in cdfg_to_dot(figure1)

    def test_balanced_braces(self, diffeq):
        dot = cdfg_to_dot(diffeq)
        assert dot.count("{") == dot.count("}")


class TestSGraphDot:
    def test_scan_marks_rendered(self, iir2_dp):
        iir2_dp.mark_scan(iir2_dp.registers[0].name)
        dot = sgraph_to_dot(build_sgraph(iir2_dp))
        assert "gold" in dot

    def test_all_registers_present(self, iir2_dp):
        dot = sgraph_to_dot(build_sgraph(iir2_dp))
        for r in iir2_dp.registers:
            assert f'"{r.name}"' in dot

    def test_edge_labels_carry_operations(self, figure1_dp):
        dot = sgraph_to_dot(build_sgraph(figure1_dp))
        assert "+1" in dot


class TestDatapathDot:
    def test_units_and_registers(self, figure1_dp):
        dot = datapath_to_dot(figure1_dp)
        for u in figure1_dp.units:
            assert f'"{u.name}"' in dot
        assert "trapezium" in dot

    def test_register_contents_in_label(self, figure1_dp):
        dot = datapath_to_dot(figure1_dp)
        assert re.search(r"R0\\n\{", dot)

    def test_edges_deduplicated(self, figure1_dp):
        dot = datapath_to_dot(figure1_dp)
        edges = re.findall(r'^  "\S+" -> "\S+";$', dot, re.M)
        assert len(edges) == len(set(edges))
