"""Tests for the benchmark suite: every behavior validates and has the
documented loop/op structure."""

import pytest

from repro.cdfg import suite
from repro.cdfg.analysis import cdfg_loops, critical_path_length


class TestSuiteIntegrity:
    @pytest.mark.parametrize("name", sorted(suite.standard_suite()))
    def test_validates(self, name):
        suite.standard_suite()[name].validate()

    @pytest.mark.parametrize("name", sorted(suite.standard_suite()))
    def test_width_parameter(self, name):
        c = suite.standard_suite(width=4)[name]
        assert max(v.width for v in c.variables.values()) == 4

    def test_looped_only_subset(self):
        looped = suite.standard_suite(looped_only=True)
        for name, c in looped.items():
            assert cdfg_loops(c, bound=1), f"{name} has no loops"
        full = suite.standard_suite()
        assert set(looped) < set(full)


class TestFigure1:
    def test_structure(self):
        c = suite.figure1()
        assert len(c) == 5
        assert {op.kind for op in c} == {"+"}
        assert critical_path_length(c) == 3
        assert {v.name for v in c.primary_outputs()} == {"g", "t"}

    def test_assignments_cover_all_ops(self):
        c = suite.figure1()
        for asg in (suite.FIGURE1_ASSIGNMENT_B, suite.FIGURE1_ASSIGNMENT_C):
            assert set(asg) == set(c.operations)
            assert max(s for s, _a in asg.values()) == 3


class TestDiffeq:
    def test_op_mix(self):
        c = suite.diffeq()
        kinds = {}
        for op in c:
            kinds[op.kind] = kinds.get(op.kind, 0) + 1
        assert kinds == {"*": 6, "-": 2, "+": 2, "<": 1}

    def test_loop_variant_has_loops(self):
        assert cdfg_loops(suite.diffeq(loop=True), bound=10)

    def test_acyclic_variant_does_not(self):
        assert not cdfg_loops(suite.diffeq(), bound=10)


class TestFilters:
    def test_fir_is_loop_free(self):
        assert not cdfg_loops(suite.fir(8), bound=5)

    def test_fir_scales_with_taps(self):
        assert len(suite.fir(12)) > len(suite.fir(6))

    def test_iir_loops_scale_with_sections(self):
        l2 = len(cdfg_loops(suite.iir_biquad(2)))
        l3 = len(cdfg_loops(suite.iir_biquad(3)))
        assert l3 > l2

    def test_ar_lattice_loops_grow(self):
        l4 = len(cdfg_loops(suite.ar_lattice(4), bound=500))
        l6 = len(cdfg_loops(suite.ar_lattice(6), bound=500))
        assert l6 > l4

    def test_ewf_structure(self):
        c = suite.ewf()
        assert cdfg_loops(c, bound=1)
        kinds = {op.kind for op in c}
        assert kinds == {"+", "*"}

    def test_tseng_mixed_kinds(self):
        assert {"+", "-", "*", "&", "|"} <= suite.tseng().kinds()

    def test_matmul2_semantics(self):
        from repro.cdfg.interpret import run_iteration

        c = suite.matmul2()
        a = [[1, 2], [3, 4]]
        b = [[5, 6], [7, 8]]
        ins = {}
        for i in range(2):
            for j in range(2):
                ins[f"a{i}{j}"] = a[i][j]
                ins[f"b{i}{j}"] = b[i][j]
        vals = run_iteration(c, ins)
        for i in range(2):
            for j in range(2):
                expect = (a[i][0] * b[0][j] + a[i][1] * b[1][j]) & 0xFF
                assert vals[f"c{i}{j}"] == expect

    def test_dct4_structure(self):
        c = suite.dct4()
        kinds = {}
        for op in c:
            kinds[op.kind] = kinds.get(op.kind, 0) + 1
        assert kinds == {"+": 4, "-": 4, "*": 4}
        from repro.cdfg.analysis import cdfg_loops

        assert not cdfg_loops(c, bound=1)

    def test_gcd_is_control_dominated(self):
        c = suite.gcd()
        assert "select" in c.kinds()
        from repro.cdfg.analysis import cdfg_loops

        assert len(cdfg_loops(c, bound=100)) >= 3
