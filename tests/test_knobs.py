"""Centralized ``REPRO_*`` knob parsing: one-line, actionable errors.

Every environment tunable goes through :mod:`repro.knobs`; these tests
pin the contract -- bad values raise :class:`KnobError` naming the
variable, the offending value, and a valid example, while out-of-range
integers clamp (the historical ``max(1, shards)`` behaviour) -- and
that the kernels' resolvers actually route through it.
"""

from __future__ import annotations

import pytest

from repro.knobs import (
    KNOWN_KNOBS,
    KnobError,
    coerce_float,
    coerce_int,
    env_choice,
    env_int,
    env_str,
    env_weights,
    normalize_choice,
    parse_weights,
)

CHOICES = {"kernel": (), "interp": ("interpreter", "reference")}


class TestCoerceInt:
    def test_parses_and_clamps(self):
        assert coerce_int("4", "K") == 4
        assert coerce_int("0", "K", minimum=1) == 1
        assert coerce_int(99, "K", maximum=8) == 8

    def test_unparseable_names_the_knob(self):
        with pytest.raises(KnobError, match=r"K='lots'.*try e\.g\. K=2"):
            coerce_int("lots", "K", minimum=2)

    def test_env_int(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_K", raising=False)
        assert env_int("REPRO_TEST_K", 3) == 3
        monkeypatch.setenv("REPRO_TEST_K", "  7 ")
        assert env_int("REPRO_TEST_K", 3) == 7
        monkeypatch.setenv("REPRO_TEST_K", "")
        assert env_int("REPRO_TEST_K", 3) == 3
        monkeypatch.setenv("REPRO_TEST_K", "seven")
        with pytest.raises(KnobError, match="REPRO_TEST_K"):
            env_int("REPRO_TEST_K", 3)


class TestCoerceFloat:
    def test_parses_and_clamps(self):
        assert coerce_float("1.5", "K") == 1.5
        assert coerce_float("0.0", "K", minimum=0.5) == 0.5
        assert coerce_float(9.0, "K", maximum=2.0) == 2.0

    def test_rejects_garbage_and_nan(self):
        with pytest.raises(KnobError, match="K='soon'"):
            coerce_float("soon", "K")
        with pytest.raises(KnobError, match="K='nan'"):
            coerce_float("nan", "K")


class TestServeKnobs:
    def test_env_str(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_S", raising=False)
        assert env_str("REPRO_TEST_S", "dflt") == "dflt"
        monkeypatch.setenv("REPRO_TEST_S", "  x ")
        assert env_str("REPRO_TEST_S", "dflt") == "x"
        monkeypatch.setenv("REPRO_TEST_S", "")
        assert env_str("REPRO_TEST_S", "dflt") == "dflt"

    def test_parse_weights(self):
        assert parse_weights("a=2,b=1.5", "W") == {"a": 2.0, "b": 1.5}
        assert parse_weights(" ", "W") == {}
        with pytest.raises(KnobError, match="W"):
            parse_weights("a=0", "W")  # weights must be positive
        with pytest.raises(KnobError, match="W"):
            parse_weights("justaname", "W")

    def test_env_weights(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_WEIGHTS", raising=False)
        assert env_weights("REPRO_SERVE_WEIGHTS") == {}
        monkeypatch.setenv("REPRO_SERVE_WEIGHTS", "ci=2,dev=1")
        assert env_weights("REPRO_SERVE_WEIGHTS") == \
            {"ci": 2.0, "dev": 1.0}

    def test_serve_knobs_registered(self):
        for name in ("REPRO_SERVE_HOST", "REPRO_SERVE_PORT",
                     "REPRO_SERVE_WORKERS", "REPRO_SERVE_JOBS",
                     "REPRO_SERVE_QUEUE", "REPRO_SERVE_RETRY_AFTER",
                     "REPRO_SERVE_WEIGHTS", "REPRO_SERVE_MEMCACHE"):
            assert name in KNOWN_KNOBS, name


class TestChoices:
    def test_canonical_aliases_and_case(self):
        assert normalize_choice("kernel", "B", CHOICES) == "kernel"
        assert normalize_choice("Reference", "B", CHOICES) == "interp"
        assert normalize_choice(" INTERP ", "B", CHOICES) == "interp"

    def test_bad_choice_lists_options(self):
        with pytest.raises(
            KnobError, match=r"B='fancy'.*expected one of interp\|kernel"
        ):
            normalize_choice("fancy", "B", CHOICES)

    def test_env_choice(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_B", raising=False)
        assert env_choice("REPRO_TEST_B", "kernel", CHOICES) == "kernel"
        monkeypatch.setenv("REPRO_TEST_B", "reference")
        assert env_choice("REPRO_TEST_B", "kernel", CHOICES) == "interp"


class TestKernelsRouteThroughKnobs:
    def test_faultsim_resolvers(self, monkeypatch):
        from repro.gatelevel.fault_sim import resolve_backend, resolve_shards

        monkeypatch.setenv("REPRO_FAULTSIM_SHARDS", "nope")
        with pytest.raises(KnobError, match="REPRO_FAULTSIM_SHARDS"):
            resolve_shards()
        monkeypatch.setenv("REPRO_FAULTSIM_SHARDS", "-3")
        assert resolve_shards() == 1  # clamped
        assert resolve_shards(shards=0) == 1
        monkeypatch.setenv("REPRO_FAULTSIM_BACKEND", "turbo")
        with pytest.raises(KnobError, match="REPRO_FAULTSIM_BACKEND"):
            resolve_backend()
        with pytest.raises(KnobError, match="backend='fancy'"):
            resolve_backend("fancy")

    def test_atpg_resolvers(self, monkeypatch):
        from repro.gatelevel.atpg import resolve_atpg_backend
        from repro.gatelevel.test_generation import (
            resolve_atpg_shards,
            resolve_predrop,
        )

        monkeypatch.setenv("REPRO_ATPG_PREDROP", "many")
        with pytest.raises(KnobError, match="REPRO_ATPG_PREDROP"):
            resolve_predrop()
        monkeypatch.setenv("REPRO_ATPG_SHARDS", "0")
        assert resolve_atpg_shards() == 1
        monkeypatch.setenv("REPRO_ATPG_BACKEND", "ref")
        assert resolve_atpg_backend() == "reference"
        monkeypatch.setenv("REPRO_ATPG_BACKEND", "magic")
        with pytest.raises(KnobError, match="REPRO_ATPG_BACKEND"):
            resolve_atpg_backend()


def test_registry_covers_the_resolvers():
    """Every env var the resolvers read must be documented."""
    from repro.flow.chaos import CHAOS_ENV
    from repro.gatelevel import fault_sim, test_generation

    for name in (fault_sim.BACKEND_ENV, fault_sim.SHARDS_ENV, CHAOS_ENV,
                 "REPRO_ATPG_BACKEND", "REPRO_ATPG_SHARDS",
                 "REPRO_ATPG_PREDROP"):
        assert name in KNOWN_KNOBS, name
    assert test_generation  # imported for the env names' side module
