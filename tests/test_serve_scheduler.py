"""Scheduler semantics: in-flight dedupe, fair queueing, admission.

No HTTP here -- these drive :class:`repro.serve.scheduler.Scheduler`
directly on an asyncio loop (via ``asyncio.run`` wrappers; the
environment has no pytest-asyncio).  Flow execution is gated on marker
files so tests control exactly when the engine is busy.
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path

import pytest

from repro.flow import Flow
from repro.serve.scheduler import (
    AdmissionError,
    BadSubmissionError,
    Scheduler,
    UnknownFlowError,
    flow_recipe_key,
)


# -- gated stage functions (module-level: picklable / fingerprintable) ----

def gated_count(gate: str, counter: str, salt: int = 0):
    """Record one execution, then block until the gate file appears."""
    path = Path(counter)
    n = int(path.read_text()) if path.exists() else 0
    path.write_text(str(n + 1))
    deadline = time.monotonic() + 30.0
    while not Path(gate).exists():
        if time.monotonic() > deadline:
            raise TimeoutError(f"gate {gate} never opened")
        time.sleep(0.005)
    return n + 1


def gated_flow(gate: str, counter: str, salt: int = 0) -> Flow:
    f = Flow("gated")
    f.stage("work", gated_count, outputs=("out",),
            params={"gate": gate, "counter": counter, "salt": salt})
    return f


FLOWS = {"gated": gated_flow}


def executions(counter: Path) -> int:
    return int(counter.read_text()) if counter.exists() else 0


async def drain(jobs, timeout=60.0):
    await asyncio.wait_for(
        asyncio.gather(*(j.execution.done.wait() for j in jobs)),
        timeout,
    )


def make_scheduler(**kwargs) -> Scheduler:
    kwargs.setdefault("flows", FLOWS)
    kwargs.setdefault("jobs", 1)  # serial runs: no pool in unit tests
    return Scheduler(**kwargs)


# -- recipe keys -----------------------------------------------------------

class TestRecipeKey:
    def test_identical_flows_share_a_key(self, tmp_path):
        from repro.flow.runner import Runner

        a = gated_flow(str(tmp_path / "g"), str(tmp_path / "c"))
        b = gated_flow(str(tmp_path / "g"), str(tmp_path / "c"))
        ka = flow_recipe_key(a, Runner().stage_keys(a))
        kb = flow_recipe_key(b, Runner().stage_keys(b))
        assert ka == kb

    def test_param_change_changes_the_key(self, tmp_path):
        from repro.flow.runner import Runner

        a = gated_flow(str(tmp_path / "g"), str(tmp_path / "c"), salt=1)
        b = gated_flow(str(tmp_path / "g"), str(tmp_path / "c"), salt=2)
        assert flow_recipe_key(a, Runner().stage_keys(a)) != \
            flow_recipe_key(b, Runner().stage_keys(b))


# -- in-flight dedupe ------------------------------------------------------

class TestDedupe:
    def test_64_identical_submissions_execute_once(self, tmp_path):
        gate = tmp_path / "gate"
        counter = tmp_path / "counter"

        async def main():
            sched = make_scheduler(workers=2, queue_limit=128)
            await sched.start()
            try:
                params = {"gate": str(gate), "counter": str(counter)}
                jobs = [await sched.submit("gated", params, "t")
                        for _ in range(64)]
                # Everyone arrived while the first execution (or the
                # queue) holds the key: exactly one distinct execution.
                assert len({j.execution.key for j in jobs}) == 1
                gate.write_text("go")
                await drain(jobs)
                return jobs, sched
            finally:
                gate.write_text("go")  # never leave a run thread gated
                await sched.close()

        jobs, sched = asyncio.run(main())
        assert executions(counter) == 1  # the engine ran ONCE
        assert sched.counters.submitted == 64
        assert sched.counters.runs == 1
        assert sched.counters.deduped == 63
        assert [j.deduped for j in jobs].count(False) == 1
        # every job sees the same completed execution and result
        results = {id(j.execution.result) for j in jobs}
        assert len(results) == 1
        assert jobs[0].execution.state == "done"
        assert jobs[0].execution.result["artifacts"]["out"] == 1
        assert len(jobs[0].execution.job_ids) == 64

    def test_distinct_params_do_not_dedupe(self, tmp_path):
        gate = tmp_path / "gate"
        gate.write_text("open")  # nothing blocks

        async def main():
            sched = make_scheduler(workers=1, queue_limit=16)
            await sched.start()
            try:
                jobs = []
                for salt in (1, 2):
                    jobs.append(await sched.submit("gated", {
                        "gate": str(gate),
                        "counter": str(tmp_path / f"c{salt}"),
                        "salt": salt,
                    }))
                await drain(jobs)
                return sched
            finally:
                await sched.close()

        sched = asyncio.run(main())
        assert sched.counters.runs == 2
        assert sched.counters.deduped == 0

    def test_completed_key_is_no_longer_inflight(self, tmp_path):
        gate = tmp_path / "gate"
        gate.write_text("open")
        counter = tmp_path / "counter"
        params = {"gate": str(gate), "counter": str(counter)}

        async def main():
            sched = make_scheduler(workers=1)
            await sched.start()
            try:
                first = await sched.submit("gated", params)
                await drain([first])
                assert sched.inflight == {}
                second = await sched.submit("gated", params)
                assert second.deduped is False
                await drain([second])
                return sched
            finally:
                await sched.close()

        sched = asyncio.run(main())
        # no shared cache configured here, so the engine really reran
        assert sched.counters.runs == 2
        assert executions(counter) == 2


# -- weighted fair queueing ------------------------------------------------

class TestFairQueueing:
    def _submit_burst(self, sched, tmp_path, gate, tenant, count):
        async def one(i):
            return await sched.submit("gated", {
                "gate": str(gate),
                "counter": str(tmp_path / f"{tenant}{i}"),
                "salt": i,
            }, tenant)
        return one

    def test_two_tenants_interleave_starvation_free(self, tmp_path):
        blocker_gate = tmp_path / "bg"
        open_gate = tmp_path / "og"
        open_gate.write_text("open")

        async def main():
            sched = make_scheduler(workers=1, queue_limit=64)
            await sched.start()
            try:
                blocker = await sched.submit("gated", {
                    "gate": str(blocker_gate),
                    "counter": str(tmp_path / "blk"),
                }, "zz-blocker")
                while blocker.execution.state != "running":
                    await asyncio.sleep(0.005)
                # tenant a floods first; b arrives second
                jobs, label = [], {}
                for tenant in ("a", "b"):
                    for i in range(4):
                        job = await sched.submit("gated", {
                            "gate": str(open_gate),
                            "counter": str(tmp_path / f"{tenant}{i}"),
                            "salt": i,
                        }, tenant)
                        label[job.execution.key] = f"{tenant}{i}"
                        jobs.append(job)
                blocker_gate.write_text("go")
                await drain([blocker, *jobs])
                order = [label[k] for k in sched.dispatch_log
                         if k in label]
                return order
            finally:
                blocker_gate.write_text("go")
                await sched.close()

        order = asyncio.run(main())
        # equal weights: strict alternation, b never waits behind a's
        # whole backlog even though a submitted its burst first
        assert order == ["a0", "b0", "a1", "b1",
                         "a2", "b2", "a3", "b3"]

    def test_weights_skew_dispatch_share(self, tmp_path):
        blocker_gate = tmp_path / "bg"
        open_gate = tmp_path / "og"
        open_gate.write_text("open")

        async def main():
            sched = make_scheduler(
                workers=1, queue_limit=64,
                weights={"heavy": 2.0, "light": 1.0},
            )
            await sched.start()
            try:
                blocker = await sched.submit("gated", {
                    "gate": str(blocker_gate),
                    "counter": str(tmp_path / "blk"),
                }, "zz-blocker")
                while blocker.execution.state != "running":
                    await asyncio.sleep(0.005)
                jobs, label = [], {}
                for tenant, count in (("heavy", 4), ("light", 2)):
                    for i in range(count):
                        job = await sched.submit("gated", {
                            "gate": str(open_gate),
                            "counter": str(tmp_path / f"{tenant}{i}"),
                            "salt": i,
                        }, tenant)
                        label[job.execution.key] = tenant
                        jobs.append(job)
                blocker_gate.write_text("go")
                await drain([blocker, *jobs])
                return [label[k] for k in sched.dispatch_log
                        if k in label]
            finally:
                blocker_gate.write_text("go")
                await sched.close()

        order = asyncio.run(main())
        # weight 2 tenant gets ~2 dispatches per 1 of weight 1
        assert order.count("heavy") == 4 and order.count("light") == 2
        assert order[:3].count("heavy") == 2
        assert order[:3].count("light") == 1

    def test_unknown_tenant_defaults_to_weight_one(self, tmp_path):
        sched = make_scheduler(weights={"vip": 4.0})
        gate = tmp_path / "g"
        gate.write_text("open")  # runs finish instantly

        async def main():
            await sched.start()
            try:
                job = await sched.submit("gated", {
                    "gate": str(gate), "counter": str(tmp_path / "c"),
                }, "stranger")
                assert job.execution.vft == pytest.approx(1.0)
            finally:
                await sched.close()

        asyncio.run(main())


# -- admission control -----------------------------------------------------

class TestAdmission:
    def test_queue_limit_rejects_with_retry_after(self, tmp_path):
        blocker_gate = tmp_path / "bg"
        open_gate = tmp_path / "og"
        open_gate.write_text("open")

        async def main():
            sched = make_scheduler(
                workers=1, queue_limit=3, retry_after=2.5,
            )
            await sched.start()
            try:
                blocker = await sched.submit("gated", {
                    "gate": str(blocker_gate),
                    "counter": str(tmp_path / "blk"),
                })
                while blocker.execution.state != "running":
                    await asyncio.sleep(0.005)
                queued = []
                for i in range(3):  # fills the queue exactly
                    queued.append(await sched.submit("gated", {
                        "gate": str(open_gate),
                        "counter": str(tmp_path / f"c{i}"),
                        "salt": i,
                    }))
                assert sched.queued_executions() == 3
                with pytest.raises(AdmissionError) as err:
                    await sched.submit("gated", {
                        "gate": str(open_gate),
                        "counter": str(tmp_path / "c99"),
                        "salt": 99,
                    })
                assert err.value.retry_after == 2.5
                assert sched.counters.rejected == 1

                # dedupe attach against a QUEUED execution is always
                # admitted: it adds no work to the full queue
                attach = await sched.submit("gated", {
                    "gate": str(open_gate),
                    "counter": str(tmp_path / "c0"),
                    "salt": 0,
                })
                assert attach.deduped is True
                assert sched.queued_executions() == 3

                # draining makes room again
                blocker_gate.write_text("go")
                await drain([blocker, attach, *queued])
                late = await sched.submit("gated", {
                    "gate": str(open_gate),
                    "counter": str(tmp_path / "c99"),
                    "salt": 99,
                })
                await drain([late])
                assert late.execution.state == "done"
                return sched
            finally:
                blocker_gate.write_text("go")
                await sched.close()

        sched = asyncio.run(main())
        # blocker + 3 queued + late; the dedupe attach added no run
        assert sched.counters.completed == 5
        assert sched.counters.failed == 0


# -- malformed submissions -------------------------------------------------

class TestSubmissionErrors:
    def test_unknown_flow(self):
        async def main():
            sched = make_scheduler()
            await sched.start()
            try:
                with pytest.raises(UnknownFlowError, match="gated"):
                    await sched.submit("nope", {})
            finally:
                await sched.close()

        asyncio.run(main())

    def test_bad_params(self):
        async def main():
            sched = make_scheduler()
            await sched.start()
            try:
                with pytest.raises(BadSubmissionError,
                                   match="unexpected keyword"):
                    await sched.submit("gated", {"bogus": 1})
            finally:
                await sched.close()

        asyncio.run(main())

    def test_rejected_submission_counts_nothing_inflight(self):
        async def main():
            sched = make_scheduler()
            await sched.start()
            try:
                with pytest.raises(UnknownFlowError):
                    await sched.submit("nope", {})
                assert sched.inflight == {}
                assert sched.queued_executions() == 0
            finally:
                await sched.close()

        asyncio.run(main())
