"""Direct unit tests for the area model."""

import pytest

from repro.hls.estimate import (
    AREA_MODEL,
    overhead_percent,
    register_area,
    unit_area,
)


class TestRegisterArea:
    def test_role_ladder_ordering(self):
        """CBILBO > BILBO > TPGR = SR > scan > plain, per width."""
        w = 8
        plain = register_area(w)
        scan = register_area(w, scan=True)
        tpgr = register_area(w, role="TPGR")
        sr = register_area(w, role="SR")
        bilbo = register_area(w, role="BILBO")
        cbilbo = register_area(w, role="CBILBO")
        assert plain < scan < tpgr == sr < bilbo < cbilbo

    def test_transparent_between_plain_and_scan(self):
        assert (
            register_area(8)
            < register_area(8, transparent=True)
            <= register_area(8, scan=True)
        )

    def test_role_overrides_scan(self):
        assert register_area(8, role="TPGR", scan=True) == register_area(
            8, role="TPGR"
        )

    def test_scales_linearly_with_width(self):
        assert register_area(16) == 2 * register_area(8)

    def test_unknown_role_rejected(self):
        with pytest.raises(KeyError):
            register_area(8, role="WIBBLE")


class TestUnitArea:
    def test_multiplier_quadratic(self):
        assert unit_area("mult", 16) == 4 * unit_area("mult", 8)

    def test_alu_linear(self):
        assert unit_area("alu", 16) == 2 * unit_area("alu", 8)

    def test_cmp_cheaper_than_alu(self):
        assert unit_area("cmp", 8) < unit_area("alu", 8)

    def test_model_keys_positive(self):
        assert all(v > 0 for v in AREA_MODEL.values())


class TestOverhead:
    def test_signs(self):
        assert overhead_percent(100, 150) == pytest.approx(50.0)
        assert overhead_percent(100, 80) == pytest.approx(-20.0)

    def test_zero_base_rejected(self):
        with pytest.raises(ValueError):
            overhead_percent(0, 1)
