"""Flow cache: recipe-hash keying, invalidation, warm-rerun guarantees.

The acceptance-critical test at the bottom asserts that a warm-cache
rerun of a ported benchmark flow performs *zero* gate-level fault-sim
recomputation (every stage is a cache hit).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.flow import Flow, FlowCache, Runner
from repro.flow import cli as flow_cli
from repro.flow.cache import stage_key, value_digest
from repro.flow.flows import figure1_flow, fullscan_flow


# -- module-level stage functions (picklable / fingerprintable) ------------

def count_and_square(counter: str, x: int):
    path = Path(counter)
    n = int(path.read_text()) if path.exists() else 0
    path.write_text(str(n + 1))
    return x * x


def plus_one(y):
    return y + 1


def make_closure():
    return lambda: 42  # deliberately unpicklable artifact


def executions(counter: Path) -> int:
    return int(counter.read_text()) if counter.exists() else 0


def counting_flow(counter: Path, x: int = 5, version: str = "1") -> Flow:
    f = Flow("counting")
    f.stage("sq", count_and_square, outputs=("y",), version=version,
            params={"counter": str(counter), "x": x})
    f.stage("inc", plus_one, inputs=("y",), outputs=("z",))
    return f


class TestKeying:
    def test_value_digest_stable_across_collection_order(self):
        assert value_digest({"a": 1, "b": [2, 3]}) == \
            value_digest({"b": [2, 3], "a": 1})
        assert value_digest({1, 2, 3}) == value_digest({3, 1, 2})

    def test_value_digest_distinguishes_types(self):
        assert value_digest(1) != value_digest("1")
        assert value_digest((1, 2)) != value_digest([1, 2])

    def test_stage_key_sensitive_to_every_ingredient(self):
        base = stage_key("s", "fp", {"p": 1}, {"in": "d1"})
        assert stage_key("s2", "fp", {"p": 1}, {"in": "d1"}) != base
        assert stage_key("s", "fp2", {"p": 1}, {"in": "d1"}) != base
        assert stage_key("s", "fp", {"p": 2}, {"in": "d1"}) != base
        assert stage_key("s", "fp", {"p": 1}, {"in": "d2"}) != base


class TestCacheBehaviour:
    def test_warm_rerun_hits_every_stage(self, tmp_path):
        cache = FlowCache(tmp_path / "fc")
        counter = tmp_path / "count"
        first = Runner(cache=cache).run(counting_flow(counter))
        assert first["z"] == 26
        assert executions(counter) == 1
        assert first.metrics.cache_misses == 2

        second = Runner(cache=cache).run(counting_flow(counter))
        assert second["z"] == 26
        assert executions(counter) == 1  # no recomputation
        assert second.metrics.cache_hits == 2
        assert second.metrics.cache_misses == 0
        statuses = {m.stage: m.status for m in second.metrics.stages}
        assert statuses == {"sq": "hit", "inc": "hit"}

    def test_version_bump_invalidates_stage_and_downstream(self, tmp_path):
        cache = FlowCache(tmp_path / "fc")
        counter = tmp_path / "count"
        Runner(cache=cache).run(counting_flow(counter))
        bumped = Runner(cache=cache).run(
            counting_flow(counter, version="2")
        )
        assert executions(counter) == 2
        # downstream "inc" recomputes too: its input digest changed
        assert bumped.metrics.cache_misses == 2

    def test_param_change_invalidates(self, tmp_path):
        cache = FlowCache(tmp_path / "fc")
        counter = tmp_path / "count"
        Runner(cache=cache).run(counting_flow(counter, x=5))
        changed = Runner(cache=cache).run(
            counting_flow(counter, x=6)
        )
        assert changed["z"] == 37
        assert executions(counter) == 2

    def test_corrupt_entry_recomputes(self, tmp_path):
        cache = FlowCache(tmp_path / "fc")
        counter = tmp_path / "count"
        Runner(cache=cache).run(counting_flow(counter))
        for pkl in (tmp_path / "fc").rglob("*.pkl"):
            pkl.write_bytes(b"not a pickle")
        again = Runner(cache=cache).run(counting_flow(counter))
        assert again["z"] == 26
        assert executions(counter) == 2
        assert again.metrics.cache_misses == 2

    def test_unpicklable_artifact_degrades_gracefully(self, tmp_path):
        cache = FlowCache(tmp_path / "fc")
        f = Flow("closures")
        f.stage("mk", make_closure, outputs=("fn",))
        result = Runner(cache=cache).run(f)
        assert result["fn"]() == 42
        # nothing cached -> a rerun recomputes rather than crashing
        rerun = Runner(cache=cache).run(f)
        assert rerun["fn"]() == 42
        assert rerun.metrics.cache_misses == 1

    def test_put_reports_unpicklable(self, tmp_path):
        cache = FlowCache(tmp_path / "fc")
        assert cache.put("ab" * 32, "s", {"fn": lambda: 1}) == -1
        assert cache.get("ab" * 32) is None

    def test_clear_empties_cache(self, tmp_path):
        cache = FlowCache(tmp_path / "fc")
        counter = tmp_path / "count"
        Runner(cache=cache).run(counting_flow(counter))
        assert cache.clear() == 2
        fresh = Runner(cache=cache).run(counting_flow(counter))
        assert fresh.metrics.cache_misses == 2

    def test_parallel_run_reuses_serial_cache(self, tmp_path):
        cache = FlowCache(tmp_path / "fc")
        counter = tmp_path / "count"
        Runner(cache=cache).run(counting_flow(counter))
        par = Runner(cache=cache).run(counting_flow(counter), jobs=2)
        assert par["z"] == 26
        assert executions(counter) == 1
        assert par.metrics.cache_hits == 2


class TestPortedBenchWarmCache:
    """ISSUE acceptance: warm rerun of a ported bench does zero
    gate-level fault-sim recomputation."""

    def test_fullscan_flow_warm_rerun_is_all_hits(self, tmp_path):
        cache = FlowCache(tmp_path / "fc")
        cases = [("figure1", 3, 400)]
        cold = Runner(cache=cache).run(fullscan_flow(cases=cases))
        assert cold.metrics.cache_misses == 3  # synth, fullscan, table

        warm = Runner(cache=cache).run(fullscan_flow(cases=cases))
        assert warm.metrics.cache_misses == 0
        assert warm.metrics.cache_hits == 3
        statuses = {m.stage: m.status for m in warm.metrics.stages}
        assert statuses["fullscan:figure1"] == "hit"  # no fault-sim ran
        assert warm["table"] == cold["table"]

    def test_figure1_parallel_warm_equals_cold_serial(self, tmp_path):
        cache = FlowCache(tmp_path / "fc")
        cold = Runner(cache=cache).run(figure1_flow())
        warm = Runner(cache=cache).run(figure1_flow(), jobs=2)
        assert warm.metrics.cache_misses == 0
        assert warm["table"] == cold["table"]


class TestCli:
    def test_run_figure1_with_cache_dir_and_metrics(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "m.json"
        rc = flow_cli.main([
            "run", "figure1", "--jobs", "2",
            "--cache-dir", str(tmp_path / "fc"),
            "--metrics", str(metrics),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "nontrivial cycles" in out
        data = json.loads(metrics.read_text())
        assert data["cache_misses"] > 0

        rc = flow_cli.main([
            "run", "figure1",
            "--cache-dir", str(tmp_path / "fc"),
            "--metrics", str(metrics), "--quiet",
        ])
        assert rc == 0
        data = json.loads(metrics.read_text())
        assert data["cache_misses"] == 0

    def test_unknown_flow_is_an_error(self, capsys):
        assert flow_cli.main(["run", "nope"]) == 2

    def test_list_names_flows(self, capsys):
        assert flow_cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out
        assert "fullscan" in out


def emit_value(value):
    return value


def tiny_flow() -> Flow:
    f = Flow("tiny")
    f.stage("src", emit_value, outputs=("x",), params={"value": 7})
    f.stage("next", plus_one, inputs={"y": "x"}, outputs=("z",))
    return f


class TestSelfHealing:
    def _populate(self, tmp_path) -> FlowCache:
        cache = FlowCache(tmp_path / "fc")
        Runner(cache=cache).run(tiny_flow())
        return cache

    def test_get_quarantines_corrupt_entry(self, tmp_path):
        cache = self._populate(tmp_path)
        entries = sorted(cache.root.rglob("*.pkl"))
        assert entries
        entries[0].write_bytes(b"not a pickle")
        key = entries[0].stem
        assert cache.get(key) is None
        assert cache.corrupt_quarantined == 1
        assert not entries[0].exists()
        assert entries[0].with_suffix(".corrupt").exists()
        # The quarantined entry is a plain miss from now on.
        assert cache.get(key) is None
        assert cache.corrupt_quarantined == 1

    def test_truncated_entry_is_corrupt(self, tmp_path):
        cache = self._populate(tmp_path)
        entry = sorted(cache.root.rglob("*.pkl"))[0]
        entry.write_bytes(entry.read_bytes()[:10])
        assert cache.get(entry.stem) is None
        assert cache.corrupt_quarantined == 1

    def test_wrong_format_is_corrupt(self, tmp_path):
        import pickle

        cache = self._populate(tmp_path)
        entry = sorted(cache.root.rglob("*.pkl"))[0]
        entry.write_bytes(pickle.dumps({"format": "bogus-v0"}))
        assert cache.get(entry.stem) is None
        assert cache.corrupt_quarantined == 1

    def test_fsck_reports_and_quarantines(self, tmp_path):
        cache = self._populate(tmp_path)
        entries = sorted(cache.root.rglob("*.pkl"))
        entries[0].write_bytes(b"garbage")
        report = cache.fsck()
        assert report["ok"] == len(entries) - 1
        assert len(report["corrupt"]) == 1
        assert report["corrupt"][0].endswith(".corrupt")
        assert report["removed"] == 0
        # Second scan: nothing newly corrupt, one pre-existing
        # quarantined file.
        report2 = cache.fsck()
        assert report2["ok"] == len(entries) - 1
        assert report2["corrupt"] == []
        assert len(report2["quarantined"]) == 1

    def test_fsck_remove_deletes_damage(self, tmp_path):
        cache = self._populate(tmp_path)
        entries = sorted(cache.root.rglob("*.pkl"))
        entries[0].write_bytes(b"garbage")
        report = cache.fsck(remove=True)
        assert report["removed"] == 1
        assert not list(cache.root.rglob("*.corrupt"))
        assert cache.fsck() == {
            "ok": len(entries) - 1, "corrupt": [],
            "quarantined": [], "removed": 0,
        }

    def test_cli_fsck(self, tmp_path, capsys):
        cache = self._populate(tmp_path)
        entry = sorted(cache.root.rglob("*.pkl"))[0]
        entry.write_bytes(b"garbage")
        # Problems found (and quarantined) -> non-zero, so CI can gate.
        rc = flow_cli.main(["fsck", "--cache-dir", str(cache.root)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "1 corrupt" in out
        assert "corrupt:" in out
        # Removing the quarantined entry still reports it was found.
        rc = flow_cli.main(
            ["fsck", "--cache-dir", str(cache.root), "--remove"]
        )
        assert rc == 1
        assert "1 removed" in capsys.readouterr().out
        # A healthy cache exits 0.
        rc = flow_cli.main(["fsck", "--cache-dir", str(cache.root)])
        assert rc == 0
        assert "0 corrupt" in capsys.readouterr().out

    def test_cli_knobs_lists_registry(self, capsys):
        assert flow_cli.main(["knobs"]) == 0
        out = capsys.readouterr().out
        assert "REPRO_FAULTSIM_SHARDS" in out
        assert "REPRO_CHAOS_PLAN" in out


class TestThreadSafety:
    """One FlowCache instance shared by concurrent threads (the
    service layer's usage) must never corrupt state or crash."""

    @staticmethod
    def _key(i: int) -> str:
        import hashlib

        return hashlib.sha256(f"k{i}".encode()).hexdigest()

    def test_concurrent_get_put_same_keys(self, tmp_path):
        import threading

        cache = FlowCache(tmp_path / "fc")
        errors: list[BaseException] = []

        def hammer(seed: int) -> None:
            try:
                for i in range(50):
                    key = self._key(i % 8)
                    cache.put(key, f"s{i % 8}", {"v": i % 8})
                    got = cache.get(key)
                    # value always matches the key it was stored under
                    assert got is None or got == {"v": i % 8}
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        for i in range(8):
            assert cache.get(self._key(i)) == {"v": i}

    def test_concurrent_put_clear_fsck(self, tmp_path):
        import threading

        cache = FlowCache(tmp_path / "fc")
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer() -> None:
            i = 0
            try:
                while not stop.is_set():
                    cache.put(self._key(i % 4), "s", {"v": i})
                    i += 1
            except BaseException as exc:
                errors.append(exc)

        t = threading.Thread(target=writer)
        t.start()
        try:
            for _ in range(10):
                report = cache.fsck()
                assert report["corrupt"] == []
                cache.clear()
        finally:
            stop.set()
            t.join(timeout=60)
        assert errors == []

    def test_lock_survives_pickling(self, tmp_path):
        import pickle

        cache = FlowCache(tmp_path / "fc")
        cache.put(self._key(0), "s", {"v": 0})
        clone = pickle.loads(pickle.dumps(cache))
        # the clone has its own working lock and sees the same store
        assert clone.get(self._key(0)) == {"v": 0}
        clone.put(self._key(1), "s", {"v": 1})
        assert cache.get(self._key(1)) == {"v": 1}
