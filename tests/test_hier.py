"""Tests for test environments and hierarchical test composition."""

import pytest

from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro.hier import (
    compose_module_tests,
    environment_aware_binding,
    exhaustive_module_tests,
    hierarchical_test_suite,
    modify_for_environments,
    module_test_environments,
    operation_test_environment,
    verify_environment,
)
from repro.hls import allocate_for_latency, bind_functional_units, list_schedule


class TestOperationEnvironments:
    def test_figure1_all_ops_have_environments(self, figure1):
        for op in figure1.operations:
            env = operation_test_environment(figure1, op)
            assert env is not None, op

    def test_environment_is_verified(self, figure1):
        env = operation_test_environment(figure1, "+2")
        assert verify_environment(figure1, env, trials=8)

    def test_carriers_are_primary_inputs(self, figure1):
        env = operation_test_environment(figure1, "+2")
        pis = {v.name for v in figure1.primary_inputs()}
        assert set(env.carriers) <= pis

    def test_pins_hold_identities(self, figure1):
        env = operation_test_environment(figure1, "+1")
        assert all(v == 0 for v in env.pins.values())  # adds: identity 0

    def test_deep_op_found_through_chain(self, figure1):
        env = operation_test_environment(figure1, "+5")
        assert env is not None
        # justifying e = c + d needs d pinned to 0 and c = a + b with
        # b pinned to 0
        assert env.pins.get("d") == 0

    def test_carried_op_has_no_environment(self, diffeq_loop):
        assert operation_test_environment(diffeq_loop, "+1") is None

    def test_multiplier_identity_pin(self, diffeq):
        env = operation_test_environment(diffeq, "*4")
        if env is not None:
            # anything pinned on a multiply path is pinned to 1
            assert all(v in (0, 1) for v in env.pins.values())


class TestModuleEnvironments:
    @pytest.fixture
    def bound(self, diffeq):
        lat = int(1.6 * critical_path_length(diffeq))
        alloc = allocate_for_latency(diffeq, lat)
        sched = list_schedule(diffeq, alloc)
        return diffeq, sched, alloc

    def test_per_unit_reporting(self, bound):
        c, sched, alloc = bound
        fub = bind_functional_units(c, sched, alloc)
        envs = module_test_environments(c, fub)
        assert set(envs) == set(fub.units())

    def test_environment_aware_binding_not_worse(self, bound):
        c, sched, alloc = bound
        naive = bind_functional_units(c, sched, alloc)
        aware = environment_aware_binding(c, sched, alloc)
        n_naive = sum(
            1 for e in module_test_environments(c, naive).values() if e
        )
        n_aware = sum(
            1 for e in module_test_environments(c, aware).values() if e
        )
        assert n_aware >= n_naive

    def test_modification_covers_needy_units(self, bound):
        c, sched, alloc = bound
        fub = bind_functional_units(c, sched, alloc)
        modified, needy = modify_for_environments(c, fub)
        if needy:
            assert len(modified) > len(c)
            # Control points add tmode; observe-only modification adds
            # a fresh test output instead.
            new_outputs = {
                v.name for v in modified.primary_outputs()
            } - {v.name for v in c.primary_outputs()}
            assert "tmode" in modified.variables or new_outputs


class TestComposer:
    def test_module_test_corners(self):
        pairs = exhaustive_module_tests(8, budget=30)
        assert (0, 0) in pairs and (255, 255) in pairs
        assert len(pairs) == 30

    def test_composed_tests_verified(self, figure1):
        env = operation_test_environment(figure1, "+2")
        tests = compose_module_tests(
            figure1, env, "alu0", [(1, 2), (200, 55), (255, 255)]
        )
        assert len(tests) == 3
        for t in tests:
            assert t.observe == env.observe

    def test_expected_value_matches_operation(self, figure1):
        env = operation_test_environment(figure1, "+2")
        tests = compose_module_tests(figure1, env, "alu0", [(3, 4)])
        assert tests[0].expected == 7  # identity propagation of c + d

    def test_suite_covers_env_units(self, figure1):
        from repro.hls import Allocation

        alloc = Allocation({"alu": 2})
        sched = list_schedule(figure1, alloc)
        fub = bind_functional_units(figure1, sched, alloc)
        envs = module_test_environments(figure1, fub)
        tests, uncovered = hierarchical_test_suite(
            figure1, envs, width=8, budget_per_module=4
        )
        covered_units = {t.unit for t in tests}
        assert covered_units == {
            u for u, e in envs.items() if e is not None
        }
