"""Tests for hierarchical system designs and global test modes."""

import random

import pytest

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.graph import CDFGError
from repro.cdfg.interpret import run_iteration
from repro.hier.system import (
    SystemDesign,
    flatten,
    modify_top_level,
    module_access,
)


def stage(name, transparent=True):
    b = CDFGBuilder(name)
    b.inputs("x", "k")
    b.outputs("y")
    if transparent:
        b.add("x", "k", "t1")
        b.add("t1", "k", "y")
    else:
        b.mul("x", "x", "t1")  # squaring: no identity pass-through
        b.add("t1", "k", "y")
    return b.build()


@pytest.fixture
def pipeline():
    s = SystemDesign("pipe3")
    for inst in ("pre", "core", "post"):
        s.add_module(inst, stage(inst))
    s.connect(("pre", "y"), ("core", "x"))
    s.connect(("core", "y"), ("post", "x"))
    return s


class TestFlatten:
    def test_valid_and_sized(self, pipeline):
        flat = flatten(pipeline)
        flat.validate()
        assert len(flat) == 6  # 2 ops x 3 modules

    def test_system_io(self, pipeline):
        flat = flatten(pipeline)
        pis = {v.name for v in flat.primary_inputs()}
        pos = {v.name for v in flat.primary_outputs()}
        assert pis == {"pre.x", "pre.k", "core.k", "post.k"}
        assert pos == {"post.y"}

    def test_semantics_compose(self, pipeline):
        """flat(pipe) == post(core(pre(x)))."""
        flat = flatten(pipeline)
        rng = random.Random(0)
        for _ in range(4):
            x = rng.randrange(256)
            ks = {m: rng.randrange(256) for m in ("pre", "core", "post")}
            v = run_iteration(flat, {
                "pre.x": x, "pre.k": ks["pre"],
                "core.k": ks["core"], "post.k": ks["post"],
            })
            expect = x
            for m in ("pre", "core", "post"):
                expect = (expect + 2 * ks[m]) & 0xFF
            assert v["post.y"] == expect

    def test_connection_type_checks(self, pipeline):
        with pytest.raises(CDFGError):
            pipeline.connect(("pre", "x"), ("post", "k"))  # x not output
        with pytest.raises(CDFGError):
            pipeline.connect(("pre", "y"), ("core", "x"))  # already driven

    def test_duplicate_instance_rejected(self, pipeline):
        with pytest.raises(CDFGError):
            pipeline.add_module("pre", stage("again"))


class TestModuleAccess:
    def test_all_stages_accessible_when_transparent(self, pipeline):
        for inst in ("pre", "core", "post"):
            assert module_access(pipeline, inst) is not None, inst

    def test_access_pins_neighbours_to_identity(self, pipeline):
        acc = module_access(pipeline, "core")
        assert acc.pins.get("pre.k") == 0
        assert acc.pins.get("post.k") == 0

    def test_blocked_by_nontransparent_upstream(self):
        s = SystemDesign("blocked")
        s.add_module("pre", stage("pre", transparent=False))
        s.add_module("core", stage("core"))
        s.connect(("pre", "y"), ("core", "x"))
        assert module_access(s, "core") is None

    def test_modification_restores_access(self):
        s = SystemDesign("blocked")
        s.add_module("pre", stage("pre", transparent=False))
        s.add_module("core", stage("core"))
        s.connect(("pre", "y"), ("core", "x"))
        s2, changed = modify_top_level(s, "core")
        assert changed == ["core"]
        acc = module_access(s2, "core")
        assert acc is not None
        # the carrier for the shadowed input is the fresh test input
        assert any(
            pi.endswith("tin_x") for pi in acc.input_carriers.values()
        )

    def test_unconnected_module_needs_no_modification(self):
        s = SystemDesign("solo")
        s.add_module("only", stage("only"))
        s2, changed = modify_top_level(s, "only")
        assert changed == []
        assert s2 is s

    def test_access_verified_by_execution(self, pipeline):
        """module_access verifies; corrupt pins must be caught."""
        flat = flatten(pipeline)
        acc = module_access(pipeline, "core", flat=flat)
        # sanity: run the access and check the justified value arrives
        inputs = {v.name: 0 for v in flat.primary_inputs()}
        inputs.update(acc.pins)
        inputs[acc.input_carriers["x"]] = 99
        vals = run_iteration(flat, inputs)
        assert vals[acc.flat_inputs["x"]] == 99


class TestFlattenProperty:
    def test_random_pipelines_compose(self):
        """Flattened pipelines of random acyclic modules compute the
        sequential composition of their stages."""
        import random

        from repro.cdfg.generate import random_dag_cdfg
        from repro.cdfg.interpret import run_iteration

        rng = random.Random(3)
        for seed in range(4):
            stages = []
            for k in range(3):
                m = random_dag_cdfg(6, n_inputs=2, seed=seed * 10 + k)
                stages.append(m)
            s = SystemDesign(f"rand_pipe{seed}")
            for k, m in enumerate(stages):
                s.add_module(f"m{k}", m)
            # wire first output of stage k to first input of stage k+1
            for k in range(2):
                out0 = sorted(
                    v.name for v in stages[k].primary_outputs()
                )[0]
                in0 = sorted(
                    v.name for v in stages[k + 1].primary_inputs()
                )[0]
                s.connect((f"m{k}", out0), (f"m{k + 1}", in0))
            flat = flatten(s)
            flat.validate()
            # execute flat vs stage-by-stage
            inputs = {
                v.name: rng.randrange(256)
                for v in flat.primary_inputs()
            }
            flat_vals = run_iteration(flat, inputs)
            carry = None
            for k, m in enumerate(stages):
                local = {}
                for v in m.primary_inputs():
                    q = f"m{k}.{v.name}"
                    if q in inputs:
                        local[v.name] = inputs[q]
                    else:
                        local[v.name] = carry
                vals = run_iteration(m, local)
                out0 = sorted(
                    v.name for v in m.primary_outputs()
                )[0]
                carry = vals[out0]
            final_out = sorted(
                v.name for v in stages[-1].primary_outputs()
            )[0]
            assert flat_vals[f"m2.{final_out}"] == carry
