"""Compiled kernel vs reference interpreter: bit-for-bit equivalence.

The compiled numpy kernel (:mod:`repro.gatelevel.kernel`) must agree
with the pure-Python interpreter on every netlist, pattern width
(including widths beyond one 64-bit word), fault site (scan-FF outputs
included), and multi-cycle scan-reload sequence.  Randomized netlists
are generated structurally -- a DAG of combinational gates over the
primary inputs, constants, and forward-declared DFF outputs, so
sequential feedback through flip-flops is exercised too.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.gatelevel.fault_sim import (
    _fault_simulate_cycles_interp,
    fault_simulate_cycles,
)
from repro.gatelevel.faults import Fault, all_faults
from repro.gatelevel.gates import Netlist
from repro.gatelevel.kernel import compiled, have_kernel
from repro.gatelevel.simulate import parallel_simulate
from repro.gatelevel.transition_faults import (
    _transition_pair_masks_interp,
    all_transition_faults,
    transition_pair_masks,
)

pytestmark = pytest.mark.skipif(
    not have_kernel(), reason="kernel backend needs numpy"
)

_KINDS = ["and", "or", "nand", "nor", "xor", "xnor", "buf", "not", "mux"]
_ARITY = {"buf": 1, "not": 1, "mux": 3}
_WIDTHS = [1, 64, 256]


@st.composite
def netlists(draw) -> Netlist:
    """A random sequential netlist.

    DFF output names enter the driver pool before the combinational
    gates are drawn, so logic can consume flip-flop state (including
    self-loops through a DFF); the D inputs are connected afterwards
    from the full pool.
    """
    nl = Netlist("prop")
    pool: list[str] = []
    for i in range(draw(st.integers(1, 3))):
        nl.add(f"pi{i}", "input")
        pool.append(f"pi{i}")
    nl.add("c0", "const0")
    nl.add("c1", "const1")
    pool += ["c0", "c1"]
    dffs = [
        (f"ff{i}", draw(st.booleans()))
        for i in range(draw(st.integers(0, 3)))
    ]
    pool += [name for name, _scan in dffs]
    for i in range(draw(st.integers(1, 14))):
        kind = draw(st.sampled_from(_KINDS))
        ins = [
            pool[draw(st.integers(0, len(pool) - 1))]
            for _ in range(_ARITY.get(kind, 2))
        ]
        nl.add(f"g{i}", kind, *ins)
        pool.append(f"g{i}")
    for name, scan in dffs:
        nl.add(name, "dff",
               pool[draw(st.integers(0, len(pool) - 1))], scan=scan)
    for idx in sorted({
        draw(st.integers(0, len(pool) - 1))
        for _ in range(draw(st.integers(1, 3)))
    }):
        nl.add_output(pool[idx])
    nl.validate()
    return nl


def _draw_vector(data, nl: Netlist, width: int) -> dict[str, int]:
    return {
        pi: data.draw(st.integers(0, (1 << width) - 1))
        for pi in nl.inputs()
    }


@settings(max_examples=40, deadline=None)
@given(nl=netlists(), width=st.sampled_from(_WIDTHS), data=st.data())
def test_good_machine_matches_interpreter(nl, width, data):
    """Multi-cycle good-machine values and next states are identical,
    including a forced (fault-injected) net."""
    comp = compiled(nl)
    forced = None
    if data.draw(st.booleans()):
        nets = nl.topo_order()
        net = nets[data.draw(st.integers(0, len(nets) - 1))]
        forced = {net: data.draw(st.integers(0, (1 << width) - 1))}
    istate: dict[str, int] = {}
    kstate: dict[str, int] = {}
    for _cycle in range(3):
        piv = _draw_vector(data, nl, width)
        ivals, istate = parallel_simulate(
            nl, piv, istate, width=width, forced=forced
        )
        kvals, kstate = comp.simulate(piv, kstate, width=width,
                                      forced=forced)
        assert ivals == kvals
        assert istate == kstate


@settings(max_examples=30, deadline=None)
@given(nl=netlists(), width=st.sampled_from(_WIDTHS),
       n_cycles=st.integers(1, 3), drop=st.booleans(), data=st.data())
def test_fault_sim_matches_interpreter(nl, width, n_cycles, drop, data):
    """First-detection cycles agree for the whole collapsed fault list
    (scan-FF output faults included) across scan-reload sequences,
    with and without fault dropping."""
    faults = all_faults(nl)
    seq = [_draw_vector(data, nl, width) for _ in range(n_cycles)]
    ref = _fault_simulate_cycles_interp(
        nl, faults, seq, width=width, drop_detected=drop
    )
    got = fault_simulate_cycles(
        nl, faults, seq, width=width, drop_detected=drop,
        backend="kernel", shards=1,
    )
    assert ref == got
    assert list(ref) == list(got)  # same fault order, too


@settings(max_examples=25, deadline=None)
@given(nl=netlists(), width=st.sampled_from(_WIDTHS), data=st.data())
def test_transition_masks_match_interpreter(nl, width, data):
    """Launch-on-capture detection masks agree per transition fault."""
    faults = all_transition_faults(nl)
    pair = (_draw_vector(data, nl, width), _draw_vector(data, nl, width))
    ref = _transition_pair_masks_interp(nl, pair, faults, width=width)
    got = transition_pair_masks(nl, pair, faults, width=width,
                                backend="kernel")
    assert ref == got


def _mesh_netlist(seed: int = 7, n_gates: int = 60) -> Netlist:
    """A deterministic mid-size netlist with scan and non-scan state."""
    rng = random.Random(seed)
    nl = Netlist(f"mesh{seed}")
    pool = []
    for i in range(4):
        nl.add(f"pi{i}", "input")
        pool.append(f"pi{i}")
    dffs = [(f"ff{i}", i % 2 == 0) for i in range(6)]
    pool += [name for name, _ in dffs]
    for i in range(n_gates):
        kind = rng.choice(_KINDS)
        ins = [rng.choice(pool) for _ in range(_ARITY.get(kind, 2))]
        nl.add(f"g{i}", kind, *ins)
        pool.append(f"g{i}")
    for name, scan in dffs:
        nl.add(name, "dff", rng.choice(pool), scan=scan)
    for net in pool[-4:]:
        nl.add_output(net)
    nl.validate()
    return nl


def _sequence(nl: Netlist, width: int, n_cycles: int, seed: int = 3):
    rng = random.Random(seed)
    return [
        {pi: rng.getrandbits(width) for pi in nl.inputs()}
        for _ in range(n_cycles)
    ]


@pytest.mark.parametrize("backend", ["kernel", "interp"])
@pytest.mark.parametrize("drop", [False, True])
def test_sharded_run_is_byte_identical_to_serial(backend, drop):
    """Fault-parallel sharding must not change a single result bit,
    nor the result ordering."""
    nl = _mesh_netlist()
    faults = all_faults(nl)
    assert len(faults) >= 32  # enough to engage the sharded path
    seq = _sequence(nl, width=8, n_cycles=3)
    serial = fault_simulate_cycles(
        nl, faults, seq, width=8, drop_detected=drop,
        backend=backend, shards=1,
    )
    sharded = fault_simulate_cycles(
        nl, faults, seq, width=8, drop_detected=drop,
        backend=backend, shards=2,
    )
    assert serial == sharded
    assert list(serial) == list(sharded)


def test_scan_ff_fault_corrupts_own_reload():
    """A fault on a scan FF's output must keep forcing its state across
    cycles (the reload follows the good machine only for healthy FFs)."""
    nl = Netlist("scanff")
    nl.add("a", "input")
    nl.add("ff", "dff", "n", scan=True)
    nl.add("n", "xor", "a", "ff")
    nl.add_output("n")
    nl.validate()
    fault = Fault("ff", 1)
    seq = _sequence(nl, width=16, n_cycles=4)
    ref = _fault_simulate_cycles_interp(nl, [fault], seq, width=16)
    got = fault_simulate_cycles(nl, [fault], seq, width=16,
                                backend="kernel")
    assert ref == got


def test_unknown_net_fault_is_undetected_on_both_backends():
    nl = _mesh_netlist()
    ghost = Fault("no_such_net", 0)
    seq = _sequence(nl, width=4, n_cycles=2)
    for backend in ("kernel", "interp"):
        res = fault_simulate_cycles(nl, [ghost], seq, width=4,
                                    backend=backend)
        assert res == {ghost: None}
