"""Tests for ScanPlan / ScanReport plumbing."""

import pytest

from repro.cdfg import suite
from repro.hls.scheduling import asap
from repro.scan.report import ScanPlan, apply_scan_plan
from repro.scan.gate_level import gate_level_partial_scan
from tests.conftest import synthesize


class TestScanPlan:
    def test_variables_union(self):
        plan = ScanPlan((("a", "b"), ("c",)))
        assert plan.variables == {"a", "b", "c"}
        assert plan.num_scan_registers == 2

    def test_empty_plan(self):
        plan = ScanPlan(())
        assert plan.variables == set()
        assert plan.num_scan_registers == 0

    def test_verify_accepts_disjoint(self, figure1):
        s = asap(figure1)
        ScanPlan((("c", "g"),)).verify(figure1, s)  # [2,2] and [4,4]

    def test_verify_rejects_overlap(self, figure1):
        s = asap(figure1)
        with pytest.raises(ValueError, match="overlap"):
            ScanPlan((("a", "b"),)).verify(figure1, s)


class TestApplyPlan:
    def test_marks_holding_registers(self, iir2_dp):
        var = iir2_dp.registers[0].variables[0]
        names = apply_scan_plan(iir2_dp, ScanPlan(((var,),)))
        assert names == [iir2_dp.registers[0].name]
        assert iir2_dp.registers[0].scan

    def test_shared_register_marked_once(self, iir2_dp):
        reg = next(r for r in iir2_dp.registers if len(r.variables) >= 2)
        plan = ScanPlan(((reg.variables[0],), (reg.variables[1],)))
        names = apply_scan_plan(iir2_dp, plan)
        assert names == [reg.name]


class TestScanReport:
    def test_row_and_overhead(self, iir2_dp):
        rep = gate_level_partial_scan(iir2_dp)
        row = rep.row()
        assert rep.design in row
        assert "scan regs=" in row
        assert rep.area_overhead_percent == pytest.approx(
            100.0 * (rep.area_after - rep.area_before) / rep.area_before
        )

    def test_loop_free_flag_consistent(self, iir2_dp):
        rep = gate_level_partial_scan(iir2_dp)
        from repro.sgraph import (
            build_sgraph,
            is_loop_free,
            sgraph_without_scan,
        )

        assert rep.loop_free == is_loop_free(
            sgraph_without_scan(build_sgraph(iir2_dp))
        )
