"""Tests for the survey's own exhibits: Table 1 and Figure 1."""

import pytest

from repro.sgraph import (
    build_sgraph,
    estimate_cost,
    is_loop_free,
    minimum_feedback_vertex_set,
    nontrivial_cycles,
    self_loops,
    sequential_depth,
)
from repro.survey import (
    TABLE1,
    TAXONOMY,
    figure1_datapath,
    render_table1,
)
from repro.survey.table1 import InsertionLevel


class TestTable1:
    def test_seven_rows(self):
        assert len(TABLE1) == 7

    def test_exact_names(self):
        assert [r.name for r in TABLE1] == [
            "Sunrise", "Mentor", "LogicVision", "IBM",
            "Synopsys", "Compass", "AT&T",
        ]

    def test_levels_match_paper(self):
        levels = {r.name: r.levels for r in TABLE1}
        assert levels["Sunrise"] == (InsertionLevel.TECH_DEPENDENT,)
        assert levels["LogicVision"] == (InsertionLevel.HDL,)
        assert set(levels["IBM"]) == {
            InsertionLevel.TECH_INDEPENDENT, InsertionLevel.TECH_DEPENDENT
        }
        assert set(levels["Synopsys"]) == {
            InsertionLevel.HDL, InsertionLevel.TECH_DEPENDENT
        }

    def test_render_contains_all_rows(self):
        text = render_table1()
        for row in TABLE1:
            assert row.name in text

    def test_render_with_repro_column(self):
        text = render_table1(include_repro_column=True)
        assert "repro.scan" in text

    def test_every_row_maps_to_a_flow(self):
        for row in TABLE1:
            assert row.repro_flow.startswith("repro.")


class TestFigure1:
    def test_variant_b_assignment_loop(self):
        g = build_sgraph(figure1_datapath("b"))
        cycles = nontrivial_cycles(g)
        assert len(cycles) == 1
        assert sorted(cycles[0]) == ["R0", "R1"]

    def test_variant_b_needs_one_scan_register(self):
        g = build_sgraph(figure1_datapath("b"))
        assert len(minimum_feedback_vertex_set(g)) == 1

    def test_variant_c_two_self_loops_only(self):
        g = build_sgraph(figure1_datapath("c"))
        assert nontrivial_cycles(g) == []
        assert len(self_loops(g)) == 2

    def test_variant_c_needs_no_scan(self):
        g = build_sgraph(figure1_datapath("c"))
        assert minimum_feedback_vertex_set(g) == set()
        assert is_loop_free(g)

    def test_same_resources_both_variants(self):
        b = figure1_datapath("b")
        c = figure1_datapath("c")
        assert len(b.units) == len(c.units) == 2
        assert b.schedule.length == c.schedule.length == 3

    def test_c_has_lower_atpg_cost(self):
        cb = estimate_cost(build_sgraph(figure1_datapath("b")))
        cc = estimate_cost(build_sgraph(figure1_datapath("c")))
        assert cc.score < cb.score

    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            figure1_datapath("x")


class TestTaxonomy:
    def test_every_entry_names_experiment(self):
        for e in TAXONOMY:
            assert e.experiment.startswith("E-")
            assert e.module.startswith("repro.")

    def test_sections_covered(self):
        sections = {e.section for e in TAXONOMY}
        assert {"3.1", "3.2", "3.3.1", "3.3.2", "3.4", "3.5",
                "4.1", "4.2", "5.1", "5.2", "5.3", "5.4", "6"} <= sections

    def test_modules_importable(self):
        import importlib

        for e in TAXONOMY:
            module = e.module.split(",")[0].strip()
            # strip function suffix if present
            parts = module.split(".")
            for cut in range(len(parts), 1, -1):
                try:
                    importlib.import_module(".".join(parts[:cut]))
                    break
                except ModuleNotFoundError:
                    continue
            else:
                pytest.fail(f"unimportable module in taxonomy: {module}")
