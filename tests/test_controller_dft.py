"""Tests for controller implication analysis and redesign [14]."""

import pytest

from repro.cdfg import suite
from repro.controller_dft import (
    control_implications,
    infeasible_requirements,
    redesign_with_test_vectors,
    vectors_for_requirements,
)
from repro.controller_dft.implications import word_satisfies
from repro.controller_dft.redesign import coverage_of_requirements
from repro.hls import build_controller
from tests.conftest import synthesize


@pytest.fixture
def ctrl(figure1):
    dp, *_ = synthesize(figure1)
    return build_controller(dp)


class TestImplications:
    def test_implications_exist(self, ctrl):
        imps = control_implications(ctrl)
        assert imps

    def test_implications_actually_hold(self, ctrl):
        words = [w.signals for w in ctrl.words]
        for imp in control_implications(ctrl)[:50]:
            (a, av), (c, cv) = imp.antecedent, imp.consequent
            for w in words:
                if w.get(a, 0) == av:
                    assert w.get(c, 0) == cv, imp

    def test_no_self_implications(self, ctrl):
        for imp in control_implications(ctrl):
            assert imp.antecedent[0] != imp.consequent[0]

    def test_str(self, ctrl):
        imp = control_implications(ctrl)[0]
        assert "=>" in str(imp)


class TestInfeasibility:
    def test_reachable_requirement_feasible(self, ctrl):
        word = ctrl.words[1].signals
        req = dict(list(word.items())[:2])
        assert infeasible_requirements(ctrl, [req]) == []

    def test_unreachable_combination_detected(self, ctrl):
        loads = [s for s in ctrl.signal_names() if s.endswith(".load")]
        # A signal no word ever asserts is certainly unreachable at 1.
        req = {loads[0]: 1, "nonexistent.sig": 1}
        assert infeasible_requirements(ctrl, [req]) == [req]

    def test_word_satisfies(self):
        assert word_satisfies({"a": 1}, {"a": 1})
        assert not word_satisfies({"a": 1}, {"a": 0})
        assert not word_satisfies({}, {"a": 1})  # default 0


class TestRedesign:
    def test_extra_vectors_cover_missing(self, ctrl):
        reqs = [
            {"alu0.fn": "+", "nonexistent.sig": 1},
            {"alu0.fn": "+", "other.sig": 1},
        ]
        vecs = vectors_for_requirements(ctrl, reqs)
        assert vecs
        assert coverage_of_requirements(ctrl, reqs, vecs) == 1.0

    def test_compatible_requirements_merge(self, ctrl):
        reqs = [{"x.sig": 1}, {"y.sig": 1}]
        vecs = vectors_for_requirements(ctrl, reqs)
        assert len(vecs) == 1  # merged: no contradiction

    def test_contradicting_requirements_split(self, ctrl):
        # Both are infeasible (y.sig never reaches 1), and they demand
        # x.sig at different values, so they cannot share a vector.
        reqs = [{"x.sig": 1}, {"x.sig": 0, "y.sig": 1}]
        vecs = vectors_for_requirements(ctrl, reqs)
        assert len(vecs) == 2

    def test_cost_positive(self, ctrl):
        reqs = [{"x.sig": 1}]
        _vecs, cost = redesign_with_test_vectors(ctrl, reqs)
        assert cost > 0

    def test_coverage_before_after(self, ctrl):
        reqs = [{"x.sig": 1}]
        before = coverage_of_requirements(ctrl, reqs)
        vecs = vectors_for_requirements(ctrl, reqs)
        after = coverage_of_requirements(ctrl, reqs, vecs)
        assert before < after == 1.0


class TestRequirementsFromTests:
    def test_translation_roundtrip(self, figure1):
        """Control-net assignments in ATPG tests translate back to the
        symbolic control-word language and match the netlist encoding."""
        from repro.controller_dft import requirements_from_tests
        from repro.gatelevel.expand import expand_datapath
        from tests.conftest import synthesize

        dp, *_ = synthesize(figure1)
        dp.mark_scan(*[r.name for r in dp.registers])
        _nl, control_map = expand_datapath(dp)
        # hand-build a 'test' asserting one register load and one mux
        reg, load_net = next(iter(control_map["reg_load"].items()))
        test = {load_net: 1}
        (unit, port), (sels, sources) = next(
            (k, v) for k, v in control_map["port_sel"].items() if v[0]
        )
        for k, net in enumerate(sels):
            test[net] = (1 >> k) & 1  # select index 1
        reqs = requirements_from_tests(control_map, [test])
        assert reqs and reqs[0][f"{reg}.load"] == 1
        assert reqs[0][f"{unit}.sel{port}"] == sources[1]

    def test_unassigned_selects_left_free(self, figure1):
        from repro.controller_dft import requirements_from_tests
        from repro.gatelevel.expand import expand_datapath
        from tests.conftest import synthesize

        dp, *_ = synthesize(figure1)
        _nl, control_map = expand_datapath(dp)
        reqs = requirements_from_tests(control_map, [{}])
        assert reqs == []  # nothing asserted -> no requirement
