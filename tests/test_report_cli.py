"""Tests for the ``python -m repro.report`` CLI."""

import io

import pytest

from repro.report import main, report


class TestReport:
    def test_report_renders_sections(self):
        buf = io.StringIO()
        report("iir2", width=4, out=buf)
        text = buf.getvalue()
        assert "testability report: iir2" in text
        assert "gate-level MFVS" in text
        assert "loop-aware [33]" in text
        assert "BIST sessions" in text

    def test_loop_free_design_message(self):
        buf = io.StringIO()
        report("figure1", width=4, out=buf)
        assert "behavior is loop-free" in buf.getvalue()

    def test_unknown_design_exits(self):
        with pytest.raises(SystemExit):
            report("nope")

    def test_main_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "iir2" in out and "figure1" in out

    def test_main_runs_design(self, capsys):
        assert main(["tseng", "--width", "4"]) == 0
        assert "tseng" in capsys.readouterr().out

    def test_main_without_args_lists(self, capsys):
        assert main([]) == 0
        assert "diffeq" in capsys.readouterr().out

    def test_export_flags(self, tmp_path, capsys):
        v = tmp_path / "out.v"
        d = tmp_path / "out.dot"
        assert main([
            "figure1", "--width", "3",
            "--verilog", str(v), "--dot", str(d),
        ]) == 0
        assert v.read_text().startswith("module ")
        assert d.read_text().startswith("digraph ")

    def test_vectors_export(self, tmp_path, capsys):
        out = tmp_path / "tests.vec"
        assert main([
            "figure1", "--width", "3", "--vectors", str(out),
        ]) == 0
        from repro.gatelevel import read_vectors

        vf = read_vectors(out.read_text())
        assert len(vf) > 0
