"""Tests for the MISR aliasing analysis."""

import pytest

from repro.bist.aliasing import (
    checkpointed_aliasing,
    measure_aliasing,
    theoretical_aliasing_probability,
)


class TestTheory:
    def test_bound_halves_per_bit(self):
        assert theoretical_aliasing_probability(8) == pytest.approx(
            2 * theoretical_aliasing_probability(9)
        )


class TestEmpirical:
    def test_tracks_theory_small_width(self):
        est = measure_aliasing(4, trials=4000, seed=2)
        theory = theoretical_aliasing_probability(4)  # 1/16
        assert est.probability == pytest.approx(theory, abs=0.03)

    def test_wider_misr_aliases_less(self):
        p4 = measure_aliasing(4, trials=3000, seed=3).probability
        p8 = measure_aliasing(8, trials=3000, seed=3).probability
        assert p8 < p4

    def test_sixteen_bit_essentially_alias_free(self):
        est = measure_aliasing(16, trials=1500, seed=4)
        assert est.probability < 0.005

    def test_deterministic(self):
        a = measure_aliasing(4, trials=500, seed=5)
        b = measure_aliasing(4, trials=500, seed=5)
        assert a == b


class TestCheckpoints:
    def test_checkpoints_reduce_aliasing(self):
        single = checkpointed_aliasing(
            4, checkpoints=1, trials=4000, seed=6
        ).probability
        quad = checkpointed_aliasing(
            4, checkpoints=4, trials=4000, seed=6
        ).probability
        assert quad <= single

    def test_quad_checkpoints_near_fourth_power_regime(self):
        """With independent-ish checkpoints, escape needs aliasing at
        each compare: probability drops far below the single-compare
        rate (we assert an order of magnitude, not the exact power)."""
        single = theoretical_aliasing_probability(4)  # 1/16
        quad = checkpointed_aliasing(
            4, checkpoints=4, trials=6000, seed=7
        ).probability
        assert quad < single / 4
