"""Tests for behavioral transformations: deflection ops and test
statements, including behavior preservation by execution."""

import random

import pytest

from repro.cdfg import suite, transform
from repro.cdfg.graph import CDFGError
from repro.cdfg.interpret import (
    equivalent_behavior,
    functional_mode_inputs,
)


def random_stream(cdfg, n=8, seed=0):
    rng = random.Random(seed)
    return [
        {v.name: rng.randrange(1 << v.width) for v in cdfg.primary_inputs()}
        for _ in range(n)
    ]


class TestDeflection:
    def test_adds_one_operation(self, diffeq):
        out = transform.deflect_variable(diffeq, "m2", ["*4"])
        assert len(out) == len(diffeq) + 1

    def test_reroutes_named_consumer(self, diffeq):
        out = transform.deflect_variable(diffeq, "m2", ["*4"])
        op = out.operation("*4")
        assert "m2" not in op.inputs
        assert any(v.startswith("m2_defl") for v in op.inputs)

    def test_other_consumers_untouched(self, diffeq):
        out = transform.deflect_variable(diffeq, "u", ["-1"])
        assert "u" in out.operation("*2").inputs

    def test_behavior_preserved(self, diffeq):
        out = transform.deflect_variable(diffeq, "m2", ["*4"])
        stream = random_stream(diffeq)
        assert equivalent_behavior(
            diffeq, out, stream, functional_mode_inputs(out, diffeq)
        )

    def test_mult_identity_deflection(self, diffeq):
        out = transform.deflect_variable(diffeq, "m1", ["*4"], kind="*")
        stream = random_stream(diffeq)
        assert equivalent_behavior(
            diffeq, out, stream, functional_mode_inputs(out, diffeq)
        )

    def test_unknown_consumer_rejected(self, diffeq):
        with pytest.raises(CDFGError):
            transform.deflect_variable(diffeq, "m2", ["+1"])

    def test_kind_without_identity_rejected(self, diffeq):
        with pytest.raises(CDFGError):
            transform.deflect_variable(diffeq, "m2", ["*4"], kind="<")

    def test_batch_insertion(self, diffeq):
        out = transform.insert_deflection_ops(
            diffeq, [("m2", ["*4"]), ("m3", ["*5"])]
        )
        assert len(out) == len(diffeq) + 2
        stream = random_stream(diffeq)
        assert equivalent_behavior(
            diffeq, out, stream, functional_mode_inputs(out, diffeq)
        )

    def test_deflection_splits_lifetime(self, diffeq):
        """The point of the transform: the source lifetime shrinks."""
        from repro.cdfg.analysis import asap_schedule
        from repro.cdfg.lifetimes import variable_lifetimes

        before = variable_lifetimes(diffeq, asap_schedule(diffeq))
        out = transform.deflect_variable(diffeq, "u", ["-1"])
        after = variable_lifetimes(out, asap_schedule(out))
        assert after["u"].length <= before["u"].length


class TestTestStatements:
    def test_adds_select_ops(self, diffeq):
        out = transform.insert_test_statements(
            diffeq, control_vars=["m4"], observe_vars=[]
        )
        assert any(op.kind == "select" for op in out)
        assert "tmode" in out.variables

    def test_control_reroutes_consumers(self, diffeq):
        out = transform.insert_test_statements(
            diffeq, control_vars=["m4"], observe_vars=[]
        )
        assert "m4" not in out.operation("-1").inputs

    def test_observe_adds_output(self, diffeq):
        out = transform.insert_test_statements(
            diffeq, control_vars=[], observe_vars=["m4", "m5"]
        )
        new_pos = {v.name for v in out.primary_outputs()} - {
            v.name for v in diffeq.primary_outputs()
        }
        assert len(new_pos) == 1

    def test_functional_mode_preserved(self, diffeq):
        out = transform.insert_test_statements(diffeq, budget=3)
        stream = random_stream(diffeq)
        assert equivalent_behavior(
            diffeq, out, stream, functional_mode_inputs(out, diffeq)
        )

    def test_test_mode_controls_variable(self, diffeq):
        out = transform.insert_test_statements(
            diffeq, control_vars=["m4"], observe_vars=[]
        )
        from repro.cdfg.interpret import run_iteration

        base = functional_mode_inputs(out, diffeq)
        inputs = {v.name: 7 for v in out.primary_inputs()}
        inputs.update(base)
        inputs["tmode"] = 1
        tin = next(n for n in inputs if n.startswith("tin_m4"))
        inputs[tin] = 99
        values = run_iteration(out, inputs)
        vt = next(v for v in out.variables if v.startswith("m4_t"))
        assert values[vt] == 99

    def test_default_budget_picks_hard_variables(self, diffeq):
        out = transform.insert_test_statements(diffeq, budget=2)
        assert len(out) > len(diffeq)
