"""Tests for FU binding and register assignment."""

import pytest

from repro.cdfg import suite
from repro.cdfg.analysis import asap_schedule
from repro.cdfg.graph import CDFGError
from repro.cdfg.lifetimes import variable_lifetimes
from repro.hls.allocation import Allocation, AllocationError
from repro.hls.binding import (
    FUBinding,
    RegisterAssignment,
    assign_registers_coloring,
    assign_registers_left_edge,
    bind_functional_units,
)
from repro.hls.conflict import chromatic_lower_bound, conflict_graph
from repro.hls.scheduling import Schedule, asap, list_schedule


class TestFUBinding:
    def test_no_double_booking(self, figure1):
        alloc = Allocation({"alu": 2})
        s = list_schedule(figure1, alloc)
        b = bind_functional_units(figure1, s, alloc)
        b.verify(figure1, s)

    def test_prefer_pins_op(self, figure1):
        alloc = Allocation({"alu": 2})
        s = list_schedule(figure1, alloc)
        b = bind_functional_units(figure1, s, alloc, prefer={"+5": "alu1"})
        assert b.unit_of("+5") == "alu1"

    def test_infeasible_raises(self, figure1):
        s = asap(figure1)  # 2 adds in step 1
        with pytest.raises(AllocationError):
            bind_functional_units(figure1, s, Allocation({"alu": 1}))

    def test_verify_catches_conflict(self, figure1):
        s = asap(figure1)
        bad = FUBinding({o: "alu0" for o in figure1.operations})
        with pytest.raises(AllocationError):
            bad.verify(figure1, s)

    def test_multicycle_blocks_unit(self, diffeq):
        alloc = Allocation({"alu": 1, "mult": 2})
        s = list_schedule(diffeq, alloc)
        b = bind_functional_units(diffeq, s, alloc)
        b.verify(diffeq, s)  # would raise if 2-cycle mults overlapped


class TestRegisterAssignment:
    def test_left_edge_minimum_on_intervals(self, figure1):
        s = asap(figure1)
        ra = assign_registers_left_edge(figure1, s)
        lts = variable_lifetimes(figure1, s.steps)
        ra.verify(lts)
        lower = chromatic_lower_bound(conflict_graph(lts))
        assert ra.num_registers == lower

    def test_coloring_close_to_left_edge(self, iir2):
        alloc = Allocation({"alu": 2, "mult": 2})
        s = list_schedule(iir2, alloc)
        le = assign_registers_left_edge(iir2, s)
        col = assign_registers_coloring(iir2, s)
        assert col.num_registers <= le.num_registers + 2

    def test_verify_catches_overlap(self, figure1):
        s = asap(figure1)
        lts = variable_lifetimes(figure1, s.steps)
        bad = RegisterAssignment({v: 0 for v in figure1.variables})
        with pytest.raises(CDFGError):
            bad.verify(lts)

    def test_extra_conflicts_respected(self, figure1):
        s = asap(figure1)
        base = assign_registers_left_edge(figure1, s)
        # force 'a' and 'c' apart (they share by default via left-edge)
        ra = assign_registers_left_edge(
            figure1, s, extra_conflicts=[("a", "c")]
        )
        assert ra.register_of["a"] != ra.register_of["c"]

    def test_registers_listing(self, figure1):
        s = asap(figure1)
        ra = assign_registers_left_edge(figure1, s)
        regs = ra.registers()
        assert sum(len(r) for r in regs) == len(figure1.variables)
