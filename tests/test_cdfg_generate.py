"""Tests for the synthetic CDFG generators."""

import pytest

from repro.cdfg.analysis import cdfg_loops
from repro.cdfg.generate import random_dag_cdfg, random_looped_cdfg


class TestRandomDag:
    @pytest.mark.parametrize("seed", range(5))
    def test_validates(self, seed):
        random_dag_cdfg(24, seed=seed).validate()

    def test_deterministic(self):
        a = random_dag_cdfg(15, seed=3)
        b = random_dag_cdfg(15, seed=3)
        assert set(a.operations) == set(b.operations)
        assert all(
            a.operation(o).inputs == b.operation(o).inputs
            for o in a.operations
        )

    def test_size(self):
        assert len(random_dag_cdfg(30, seed=1)) == 30

    def test_acyclic(self):
        assert not cdfg_loops(random_dag_cdfg(30, seed=2), bound=1)

    def test_rejects_zero_ops(self):
        with pytest.raises(ValueError):
            random_dag_cdfg(0)


class TestRandomLooped:
    @pytest.mark.parametrize("seed", range(5))
    def test_validates(self, seed):
        random_looped_cdfg(24, 3, seed=seed).validate()

    @pytest.mark.parametrize("n_loops", [1, 2, 4])
    def test_at_least_requested_loops(self, n_loops):
        c = random_looped_cdfg(30, n_loops, seed=1)
        assert len(cdfg_loops(c, bound=100)) >= n_loops

    def test_loop_length_parameter(self):
        c = random_looped_cdfg(20, 1, loop_length=5, seed=0)
        loops = cdfg_loops(c, bound=50)
        assert any(len(l) >= 5 for l in loops)

    def test_loops_must_fit(self):
        with pytest.raises(ValueError):
            random_looped_cdfg(5, 3, loop_length=3)

    def test_self_loop_when_length_one(self):
        c = random_looped_cdfg(10, 1, loop_length=1, seed=0)
        assert [l for l in cdfg_loops(c, bound=10) if len(l) == 1]


class TestRandomControl:
    @pytest.mark.parametrize("seed", range(5))
    def test_validates(self, seed):
        from repro.cdfg.generate import random_control_cdfg

        random_control_cdfg(24, 4, n_loops=2, seed=seed).validate()

    def test_contains_selects_and_loops(self):
        from repro.cdfg.generate import random_control_cdfg

        c = random_control_cdfg(24, 4, n_loops=2, seed=0)
        assert "select" in c.kinds()
        assert len(cdfg_loops(c, bound=100)) >= 2

    def test_select_loops_are_select_steered(self):
        from repro.cdfg.generate import random_control_cdfg

        c = random_control_cdfg(20, 2, n_loops=1, seed=1)
        loops = cdfg_loops(c, bound=100)
        steered = any(
            any(
                (p := c.producer_of(v)) is not None
                and p.kind == "select"
                for v in loop
            )
            for loop in loops
        )
        assert steered

    def test_size_guard(self):
        from repro.cdfg.generate import random_control_cdfg

        with pytest.raises(ValueError):
            random_control_cdfg(5, 4, n_loops=2)

    def test_deterministic(self):
        from repro.cdfg.generate import random_control_cdfg

        a = random_control_cdfg(20, 3, seed=9)
        b = random_control_cdfg(20, 3, seed=9)
        assert set(a.operations) == set(b.operations)
