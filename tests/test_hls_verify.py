"""Tests for the data-path/behavior equivalence checker and
control-aware testability."""

import pytest

from repro.cdfg import suite
from repro.hls import build_controller, verify_datapath
from repro.rtl import control_aware_testability, rtl_testability
from tests.conftest import synthesize


class TestVerifyDatapath:
    @pytest.mark.parametrize("name", ["figure1", "tseng", "dct4"])
    def test_clean_synthesis_verifies(self, name):
        dp, *_ = synthesize(suite.standard_suite(width=4)[name])
        res = verify_datapath(dp, n_vectors=3)
        assert res.equivalent, res.mismatches

    def test_matmul_semantics_through_gates(self):
        dp, *_ = synthesize(suite.matmul2(width=3), slack=1.8)
        res = verify_datapath(dp, n_vectors=3)
        assert res.equivalent, res.mismatches

    def test_corrupted_transfer_caught(self):
        """Rewiring one transfer's operand must produce mismatches."""
        import dataclasses

        c = suite.figure1(width=4)
        dp, *_ = synthesize(c)
        # +1 reads (reg(a), reg(b)); point its first operand at another
        # register -- a classic binder bug the checker must catch.
        t0 = next(t for t in dp.transfers if t.operation == "+1")
        wrong = next(
            r.name for r in dp.registers
            if r.name not in t0.source_registers
        )
        idx = dp.transfers.index(t0)
        dp.transfers[idx] = dataclasses.replace(
            t0, source_registers=(wrong, t0.source_registers[1])
        )
        res = verify_datapath(dp, n_vectors=4)
        assert not res.equivalent

    def test_result_fields(self):
        dp, *_ = synthesize(suite.figure1(width=3))
        res = verify_datapath(dp, n_vectors=2)
        assert res.vectors == 2
        assert res.design == "figure1"


class TestControlAware:
    def test_records_for_every_register(self, iir2_dp):
        ctrl = build_controller(iir2_dp)
        recs = control_aware_testability(iir2_dp, ctrl)
        assert set(recs) == {r.name for r in iir2_dp.registers}

    def test_load_states_match_controller(self, iir2_dp):
        ctrl = build_controller(iir2_dp)
        recs = control_aware_testability(iir2_dp, ctrl)
        for name, rec in recs.items():
            assert list(rec.load_states) == ctrl.load_steps(name)

    def test_rarely_loaded_register_scores_harder(self, iir2_dp):
        ctrl = build_controller(iir2_dp)
        recs = control_aware_testability(iir2_dp, ctrl)
        # a register loaded once is harder than one loaded often,
        # all else equal: compare penalty terms directly
        freqs = {n: r.load_frequency for n, r in recs.items()}
        rare = min(freqs, key=freqs.get)
        often = max(freqs, key=freqs.get)
        if freqs[rare] < freqs[often]:
            pen = lambda n: recs[n].score() - recs[n].structural.score()
            assert pen(rare) > pen(often)

    def test_score_at_least_structural(self, iir2_dp):
        ctrl = build_controller(iir2_dp)
        recs = control_aware_testability(iir2_dp, ctrl)
        for rec in recs.values():
            assert rec.score() >= rec.structural.score()
