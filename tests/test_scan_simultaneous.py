"""Tests for loop-aware simultaneous scheduling/assignment [33]."""

import pytest

from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro.hls import Allocation, allocate_for_latency
from repro.scan.simultaneous import (
    assign_registers_cycle_aware,
    loop_aware_synthesis,
)
from repro.scan.report import ScanPlan
from repro.sgraph import build_sgraph, is_loop_free, sgraph_without_scan


class TestLoopAwareSynthesis:
    @pytest.mark.parametrize(
        "name", ["diffeq_loop", "iir2", "iir3", "ar4", "ar6", "ewf"]
    )
    def test_loop_free_after_scan(self, name):
        c = suite.standard_suite()[name]
        lat = int(1.5 * critical_path_length(c))
        alloc = allocate_for_latency(c, lat)
        dp, plan = loop_aware_synthesis(c, alloc, num_steps=lat)
        g = sgraph_without_scan(build_sgraph(dp))
        assert is_loop_free(g)

    def test_acyclic_behavior_no_scan(self, figure1):
        dp, plan = loop_aware_synthesis(figure1, Allocation({"alu": 2}))
        assert plan.groups == ()
        assert dp.scan_registers() == []

    def test_figure1_tight_constraint_loop_free(self, figure1):
        dp, _ = loop_aware_synthesis(
            figure1, Allocation({"alu": 2}), num_steps=3
        )
        assert dp.schedule.length_with_delays(figure1) == 3
        assert is_loop_free(build_sgraph(dp))

    def test_schedule_and_binding_verified(self, iir2):
        lat = int(1.5 * critical_path_length(iir2))
        alloc = allocate_for_latency(iir2, lat)
        dp, _ = loop_aware_synthesis(iir2, alloc, num_steps=lat)
        dp.schedule.verify(iir2, alloc)
        dp.fu_binding.verify(iir2, dp.schedule)

    def test_aware_not_worse_than_blind(self, iir2):
        lat = int(1.5 * critical_path_length(iir2))
        alloc = allocate_for_latency(iir2, lat)
        aware, _ = loop_aware_synthesis(iir2, alloc, num_steps=lat)
        blind, _ = loop_aware_synthesis(
            iir2, alloc, num_steps=lat, testability_weight=0.0
        )
        bits = lambda dp: sum(r.width for r in dp.scan_registers())
        assert bits(aware) <= bits(blind)

    def test_latency_slack_retry(self, diffeq_loop):
        """Even a tight latency request succeeds via the retry loop."""
        cpl = critical_path_length(diffeq_loop)
        alloc = allocate_for_latency(diffeq_loop, cpl + 2)
        dp, _ = loop_aware_synthesis(diffeq_loop, alloc, num_steps=cpl)
        assert dp.schedule.length_with_delays(diffeq_loop) >= cpl


class TestCycleAwareRegisters:
    def test_respects_plan_grouping(self, iir2):
        lat = int(1.5 * critical_path_length(iir2))
        alloc = allocate_for_latency(iir2, lat)
        dp, plan = loop_aware_synthesis(iir2, alloc, num_steps=lat)
        for group in plan.groups:
            regs = {dp.register_of_variable(v).name for v in group}
            assert len(regs) == 1

    def test_empty_plan_accepted(self, figure1):
        from repro.hls import bind_functional_units, list_schedule

        alloc = Allocation({"alu": 2})
        sched = list_schedule(figure1, alloc)
        fub = bind_functional_units(figure1, sched, alloc)
        ra = assign_registers_cycle_aware(figure1, sched, fub, ScanPlan(()))
        assert set(ra.register_of) == set(figure1.variables)
