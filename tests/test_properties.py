"""Property-based tests (hypothesis) on core invariants."""

import random

from hypothesis import assume, given, settings, strategies as st

from repro.bist.registers import LFSR, MISR
from repro.bist.arithmetic import accumulator_stream, subspace_state_coverage
from repro.cdfg.analysis import (
    alap_schedule,
    asap_schedule,
    cdfg_loops,
    critical_path_length,
    unbroken_loops,
)
from repro.cdfg.generate import random_dag_cdfg, random_looped_cdfg
from repro.cdfg.interpret import run_iteration
from repro.cdfg.lifetimes import variable_lifetimes
from repro.hls.allocation import allocate_for_latency
from repro.hls.binding import assign_registers_left_edge, bind_functional_units
from repro.hls.conflict import chromatic_lower_bound, conflict_graph
from repro.hls.datapath import build_datapath
from repro.hls.scheduling import list_schedule
from repro.scan.scan_select import select_scan_variables
from repro.sgraph.build import build_sgraph
from repro.sgraph.mfvs import greedy_mfvs, _cyclic_core
import networkx as nx

dag_params = st.tuples(
    st.integers(min_value=2, max_value=30),   # n_ops
    st.integers(min_value=2, max_value=6),    # n_inputs
    st.integers(min_value=0, max_value=1000), # seed
)

looped_params = st.tuples(
    st.integers(min_value=6, max_value=30),   # n_ops
    st.integers(min_value=1, max_value=3),    # n_loops
    st.integers(min_value=1, max_value=4),    # loop_length
    st.integers(min_value=0, max_value=1000), # seed
)


@settings(max_examples=40, deadline=None)
@given(dag_params)
def test_asap_is_earliest_feasible(params):
    n, k, seed = params
    c = random_dag_cdfg(n, n_inputs=k, seed=seed)
    asap = asap_schedule(c)
    for op in c:
        for v in op.sequencing_inputs():
            p = c.producer_of(v)
            if p is not None:
                assert asap[op.name] >= asap[p.name] + p.delay


@settings(max_examples=40, deadline=None)
@given(dag_params)
def test_alap_never_before_asap(params):
    n, k, seed = params
    c = random_dag_cdfg(n, n_inputs=k, seed=seed)
    asap, alap = asap_schedule(c), alap_schedule(c)
    assert all(alap[o] >= asap[o] for o in asap)


@settings(max_examples=30, deadline=None)
@given(dag_params, st.floats(min_value=1.0, max_value=3.0))
def test_left_edge_matches_clique_bound(params, slack):
    """On interval-like conflict graphs left-edge is optimal: its
    register count equals the clique lower bound."""
    n, k, seed = params
    c = random_dag_cdfg(n, n_inputs=k, seed=seed)
    lat = max(1, int(slack * critical_path_length(c)))
    alloc = allocate_for_latency(c, max(lat, critical_path_length(c)))
    sched = list_schedule(c, alloc)
    ra = assign_registers_left_edge(c, sched)
    lts = variable_lifetimes(c, sched.steps)
    ra.verify(lts)
    # left-edge on wrapped (set-based) lifetimes may exceed the clique
    # bound only when wrap-around intervals exist; random DAGs have none
    assert ra.num_registers == chromatic_lower_bound(conflict_graph(lts))


@settings(max_examples=30, deadline=None)
@given(looped_params)
def test_scan_selection_breaks_every_loop(params):
    n, nl, ll, seed = params
    assume(nl * ll <= n)
    c = random_looped_cdfg(n, nl, loop_length=ll, seed=seed)
    plan = select_scan_variables(c)
    loops = cdfg_loops(c, bound=2000)
    assert unbroken_loops(loops, plan.variables) == []


@settings(max_examples=25, deadline=None)
@given(looped_params)
def test_scan_groups_are_lifetime_disjoint(params):
    from repro.hls.scheduling import asap as asap_s

    n, nl, ll, seed = params
    assume(nl * ll <= n)
    c = random_looped_cdfg(n, nl, loop_length=ll, seed=seed)
    s = asap_s(c)
    plan = select_scan_variables(c, s)
    plan.verify(c, s)


@settings(max_examples=25, deadline=None)
@given(dag_params)
def test_datapath_construction_invariants(params):
    n, k, seed = params
    c = random_dag_cdfg(n, n_inputs=k, seed=seed)
    lat = 2 * critical_path_length(c)
    alloc = allocate_for_latency(c, lat)
    sched = list_schedule(c, alloc)
    fub = bind_functional_units(c, sched, alloc)
    ra = assign_registers_left_edge(c, sched)
    dp = build_datapath(c, sched, fub, ra)
    # every transfer's registers exist, and the S-graph nodes match
    g = build_sgraph(dp)
    assert set(g.nodes) == {r.name for r in dp.registers}
    assert len(dp.transfers) == n


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_mfvs_result_breaks_all_cycles(seed):
    rng = random.Random(seed)
    g = nx.gnp_random_graph(10, 0.25, seed=seed, directed=True)
    g = nx.relabel_nodes(g, {i: f"r{i}" for i in g.nodes})
    chosen = greedy_mfvs(g)
    h = _cyclic_core(g)
    h.remove_nodes_from(chosen)
    assert nx.is_directed_acyclic_graph(h)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=1, max_value=2**12 - 1),
)
def test_lfsr_period_never_repeats_early(width, seed):
    l = LFSR(width, seed=seed & ((1 << width) - 1) or 1)
    first = l.step()
    # no repeat of the first state within min(60, period) further steps
    horizon = min(60, 2**width - 2)
    assert first not in l.sequence(horizon)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=255), min_size=1,
             max_size=40),
    st.integers(min_value=1, max_value=6),
)
def test_misr_linearity(stream, flip_at):
    """Flipping one input word always changes the signature (MISR is
    linear: signature difference equals the fault syndrome)."""
    good, bad = MISR(8), MISR(8)
    pos = flip_at % len(stream)
    for i, v in enumerate(stream):
        good.absorb(v)
        bad.absorb(v ^ (1 if i == pos else 0))
    # one-bit error within the last `width` shifts cannot alias
    assert good.signature != bad.signature


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=3, max_value=8),
    st.integers(min_value=1, max_value=255),
    st.integers(min_value=0, max_value=255),
)
def test_odd_accumulator_coverage_monotone(width, inc, seed):
    inc |= 1  # odd
    mask = (1 << width) - 1
    short = accumulator_stream(width, inc & mask or 1, seed & mask, 8)
    longer = accumulator_stream(width, inc & mask or 1, seed & mask, 32)
    k = min(3, width)
    assert subspace_state_coverage(longer, width, k) >= (
        subspace_state_coverage(short, width, k)
    )


@settings(max_examples=8, deadline=None)
@given(
    st.integers(min_value=3, max_value=12),
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=0, max_value=200),
)
def test_synthesized_datapath_computes_its_behavior(n, k, seed):
    """End-to-end: random behavior -> schedule -> bind -> gates ->
    controller, and the gate-level composite must agree with the
    interpreter on every primary output."""
    from repro.hls.verify import verify_datapath

    c = random_dag_cdfg(n, n_inputs=k, seed=seed, width=3)
    lat = 2 * critical_path_length(c)
    alloc = allocate_for_latency(c, lat)
    sched = list_schedule(c, alloc)
    fub = bind_functional_units(c, sched, alloc)
    ra = assign_registers_left_edge(c, sched)
    dp = build_datapath(c, sched, fub, ra)
    res = verify_datapath(dp, n_vectors=2, seed=seed)
    assert res.equivalent, res.mismatches


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_jtag_idcode_roundtrip(idcode):
    from repro.gatelevel.gates import Netlist
    from repro.jtag import JTAGWrapper

    core = Netlist("t")
    core.add("a", "input")
    core.add("y", "not", "a")
    core.add_output("y")
    w = JTAGWrapper(core, idcode=idcode)
    assert w.read_idcode() == idcode & 0xFFFFFFFF


@settings(max_examples=25, deadline=None)
@given(dag_params, st.integers(min_value=0, max_value=255))
def test_interpreter_total_and_deterministic(params, fill):
    n, k, seed = params
    c = random_dag_cdfg(n, n_inputs=k, seed=seed)
    inputs = {v.name: fill for v in c.primary_inputs()}
    v1 = run_iteration(c, inputs)
    v2 = run_iteration(c, inputs)
    assert v1 == v2
    assert set(v1) == set(c.variables)
