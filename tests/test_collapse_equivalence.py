"""Structural fault collapsing and SCOAP guidance: exactness proofs.

The collapse engine (:mod:`repro.gatelevel.structure`) promises that
simulating one representative per structural equivalence class and
expanding the results is *byte-identical* to simulating the full fault
universe -- same first-detection cycles, same BIST attribution, same
coverage -- across both fault-sim backends and any shard count.  The
SCOAP engine promises Goldstein's controllability/observability
numbers; guided PODEM promises the same detected/untestable
classification as the unguided search.  This suite holds all of it to
account: property-based identity over random sequential netlists, a
hand-computed SCOAP oracle, the polarity regression the deprecated
``collapse_faults`` shipped with, and metrics plumbing.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.flow.metrics import collect
from repro.gatelevel.atpg import combinational_atpg
from repro.gatelevel.bist_session import bist_fault_attribution
from repro.gatelevel.fault_sim import fault_simulate_cycles
from repro.gatelevel.faults import Fault, all_faults, collapse_faults
from repro.gatelevel.gates import Netlist
from repro.gatelevel.genscale import (
    bist_wrap,
    generate_netlist,
    random_patterns,
    sample_faults,
)
from repro.gatelevel.kernel import have_kernel
from repro.gatelevel.structure import (
    _scoap_python,
    collapse_map,
    scoap,
    structural_analysis,
)
from repro.gatelevel.test_generation import generate_tests

_KINDS = ["and", "or", "nand", "nor", "xor", "xnor", "buf", "not", "mux"]
_ARITY = {"buf": 1, "not": 1, "mux": 3}


@st.composite
def netlists(draw) -> Netlist:
    """A random sequential netlist (same shape as the kernel
    equivalence suite: DFF feedback, constants, every kind)."""
    nl = Netlist("prop")
    pool: list[str] = []
    for i in range(draw(st.integers(1, 3))):
        nl.add(f"pi{i}", "input")
        pool.append(f"pi{i}")
    nl.add("c0", "const0")
    nl.add("c1", "const1")
    pool += ["c0", "c1"]
    dffs = [
        (f"ff{i}", draw(st.booleans()))
        for i in range(draw(st.integers(0, 3)))
    ]
    pool += [name for name, _scan in dffs]
    for i in range(draw(st.integers(1, 14))):
        kind = draw(st.sampled_from(_KINDS))
        ins = [
            pool[draw(st.integers(0, len(pool) - 1))]
            for _ in range(_ARITY.get(kind, 2))
        ]
        nl.add(f"g{i}", kind, *ins)
        pool.append(f"g{i}")
    for name, scan in dffs:
        nl.add(name, "dff",
               pool[draw(st.integers(0, len(pool) - 1))], scan=scan)
    for idx in sorted({
        draw(st.integers(0, len(pool) - 1))
        for _ in range(draw(st.integers(1, 3)))
    }):
        nl.add_output(pool[idx])
    nl.validate()
    return nl


def _draw_vector(data, nl: Netlist, width: int) -> dict[str, int]:
    return {
        pi: data.draw(st.integers(0, (1 << width) - 1))
        for pi in nl.inputs()
    }


# ---------------------------------------------------------------------------
# collapse map shape

@settings(max_examples=60, deadline=None)
@given(nl=netlists())
def test_collapse_map_is_a_partition(nl):
    """Classes are disjoint, cover exactly the mapped faults, contain
    their representative, and resolve consistently."""
    cm = collapse_map(nl)
    universe = all_faults(nl)
    assert cm.universe_size == len(universe)
    seen: set[Fault] = set()
    for rep, members in cm.classes.items():
        assert rep in members
        assert len(members) >= 2
        for m in members:
            assert m not in seen
            seen.add(m)
            assert cm.rep(m) == rep
    for f in universe:
        r = cm.rep(f)
        assert cm.rep(r) == r  # representatives are fixed points
        if f not in seen:
            assert r == f  # singletons map to themselves
    reps = cm.representatives(universe)
    assert len(reps) == len(set(reps))
    assert set(cm.rep(f) for f in universe) == set(reps)


@settings(max_examples=40, deadline=None)
@given(nl=netlists())
def test_expand_preserves_caller_order(nl):
    cm = collapse_map(nl)
    universe = all_faults(nl)
    reps = cm.representatives(universe)
    results = {r: i for i, r in enumerate(reps)}
    expanded = cm.expand(results, universe)
    assert list(expanded) == universe
    for f in universe:
        assert expanded[f] == results[cm.rep(f)]


# ---------------------------------------------------------------------------
# collapsed simulation == full simulation, to the byte

@settings(max_examples=40, deadline=None)
@given(nl=netlists(), width=st.sampled_from([1, 64]),
       n_cycles=st.integers(1, 3), data=st.data())
def test_collapsed_fault_sim_identity_interpreter(nl, width, n_cycles,
                                                  data):
    faults = all_faults(nl)
    seq = [_draw_vector(data, nl, width) for _ in range(n_cycles)]
    full = fault_simulate_cycles(
        nl, faults, seq, width=width, backend="interpreter",
        collapse=False,
    )
    got = fault_simulate_cycles(
        nl, faults, seq, width=width, backend="interpreter",
        collapse=True,
    )
    assert full == got
    assert list(full) == list(got)


@pytest.mark.skipif(not have_kernel(), reason="kernel backend needs numpy")
@settings(max_examples=40, deadline=None)
@given(nl=netlists(), width=st.sampled_from([1, 64]),
       n_cycles=st.integers(1, 3), data=st.data())
def test_collapsed_fault_sim_identity_kernel(nl, width, n_cycles, data):
    faults = all_faults(nl)
    seq = [_draw_vector(data, nl, width) for _ in range(n_cycles)]
    full = fault_simulate_cycles(
        nl, faults, seq, width=width, backend="kernel", collapse=False,
    )
    got = fault_simulate_cycles(
        nl, faults, seq, width=width, backend="kernel", collapse=True,
    )
    assert full == got
    assert list(full) == list(got)


@pytest.mark.skipif(not have_kernel(), reason="kernel backend needs numpy")
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_collapsed_sharded_identity(shards):
    """Collapse happens once in the parent; every shard count and both
    backends merge to the same expanded result."""
    nl = generate_netlist(600, seed=9, buf_ratio=0.4)
    faults = all_faults(nl)
    seq = random_patterns(nl, 4, seed=2)
    full = fault_simulate_cycles(nl, faults, seq, collapse=False,
                                 shards=1)
    got = fault_simulate_cycles(nl, faults, seq, collapse=True,
                                shards=shards)
    assert full == got
    assert list(full) == list(got)


def test_collapsed_bist_attribution_identity():
    nl = generate_netlist(400, seed=11, signature_bits=8, buf_ratio=0.3)
    hw = bist_wrap(nl)
    faults = sample_faults(nl, 120, seed=3)
    kw = dict(cycles=32, faults=faults, sessions=[["u0"]])
    base = bist_fault_attribution(hw, collapse=False, **kw)
    for shards in (1, 2):
        got = bist_fault_attribution(hw, collapse=True, shards=shards,
                                     **kw)
        assert got == base
        assert list(got) == list(base)


# ---------------------------------------------------------------------------
# SCOAP sanity

def test_scoap_hand_oracle():
    """Goldstein's rules on a netlist small enough to do by hand.

    ``g1 = and(a, b)``; ``g2 = or(g1, c)``; ``g2`` observed.
    """
    nl = Netlist("oracle")
    for p in ("a", "b", "c"):
        nl.add(p, "input")
    nl.add("g1", "and", "a", "b")
    nl.add("g2", "or", "g1", "c")
    nl.add_output("g2")
    cc0, cc1, co = scoap(nl)
    assert (cc0["a"], cc1["a"]) == (1, 1)
    assert (cc0["g1"], cc1["g1"]) == (2, 3)
    assert (cc0["g2"], cc1["g2"]) == (4, 2)
    assert co["g2"] == 0
    assert co["g1"] == 2          # through the OR: cc0(c) + 1
    assert co["c"] == 3           # cc0(g1) + 1
    assert co["a"] == co["b"] == 4  # co(g1) + cc1(other) + 1


def test_scoap_sequential_fixpoint():
    """Non-scan DFF feedback: loadable loops converge to finite
    values, bootstrap-free loops stay uncontrollable (INF)."""
    from repro.gatelevel.structure import INF

    # q = dff(mux(load, d_in, q)): the load leg bootstraps the loop.
    nl = Netlist("loadable")
    nl.add("load", "input")
    nl.add("d_in", "input")
    nl.add("q", "dff", "g", scan=False)
    nl.add("g", "mux", "load", "d_in", "q")
    nl.add_output("g")
    cc0, cc1, co = scoap(nl)
    for net in ("q", "g"):
        assert cc0[net] < INF
        assert cc1[net] < INF
        assert co[net] < INF

    # q = dff(xor(q, en)): no path ever establishes a known state, so
    # the fixpoint must NOT invent controllability.
    nl2 = Netlist("floating")
    nl2.add("en", "input")
    nl2.add("q", "dff", "g", scan=False)
    nl2.add("g", "xor", "q", "en")
    nl2.add_output("g")
    cc0, cc1, _co = scoap(nl2)
    assert cc0["q"] == INF and cc1["q"] == INF


@pytest.mark.skipif(not have_kernel(), reason="kernel backend needs numpy")
@settings(max_examples=40, deadline=None)
@given(nl=netlists())
def test_scoap_numpy_matches_python(nl):
    """The vectorized SCOAP sweep returns the same integers as the
    pure-Python reference on arbitrary netlists."""
    py = _scoap_python(nl)
    st_ = structural_analysis(nl)
    assert (st_.cc0, st_.cc1, st_.co) == py


# ---------------------------------------------------------------------------
# the old collapse_faults polarity bug

def test_collapse_crosses_inverters_with_flipped_polarity():
    """``a -> buf b -> not y``: a stuck-at-0 at the buffer's input is
    the *same* fault as y stuck-at-1.  The deprecated ``collapse_faults``
    kept both polarities of the stem (it never flipped through the
    inverter); the CollapseMap merges them exactly."""
    nl = Netlist("chain")
    nl.add("a", "input")
    nl.add("b", "buf", "a")
    nl.add("y", "not", "b")
    nl.add_output("y")
    cm = collapse_map(nl)
    assert cm.rep(Fault("a", 0)) == cm.rep(Fault("y", 1))
    assert cm.rep(Fault("a", 1)) == cm.rep(Fault("y", 0))
    assert cm.rep(Fault("a", 0)) != cm.rep(Fault("a", 1))
    # six stem faults collapse to one class per polarity
    assert len(cm.representatives(all_faults(nl))) == 2


def test_collapse_faults_wrapper_deprecated():
    nl = Netlist("chain")
    nl.add("a", "input")
    nl.add("b", "buf", "a")
    nl.add_output("b")
    with pytest.warns(DeprecationWarning):
        kept = collapse_faults(nl, all_faults(nl))
    assert kept == collapse_map(nl).representatives(all_faults(nl))


# ---------------------------------------------------------------------------
# SCOAP-guided PODEM: same verdicts, fewer backtracks

@settings(max_examples=30, deadline=None)
@given(nl=netlists(), data=st.data())
def test_guided_podem_same_classification(nl, data):
    """On complete (non-aborted) searches the guided and unguided
    searches agree fault by fault, on both engines."""
    faults = all_faults(nl)
    idx = data.draw(st.integers(0, len(faults) - 1))
    fault = faults[idx]
    results = {}
    for backend in ("event", "reference"):
        for guidance in (False, True):
            results[(backend, guidance)] = combinational_atpg(
                nl, fault, backtrack_limit=2000, backend=backend,
                guidance=guidance,
            )
    if any(r.aborted for r in results.values()):
        return  # identity is only promised abort-free
    verdicts = {k: r.detected for k, r in results.items()}
    assert len(set(verdicts.values())) == 1, verdicts
    # engines agree exactly within a guidance mode
    for guidance in (False, True):
        ev, ref = results[("event", guidance)], \
            results[("reference", guidance)]
        assert ev.detected == ref.detected
        assert ev.test == ref.test
        assert ev.backtracks == ref.backtracks


@pytest.mark.skipif(not have_kernel(), reason="kernel backend needs numpy")
def test_guided_generation_same_testset_classification():
    """Abort-free ``generate_tests``: guided and unguided runs (and
    collapsed and uncollapsed runs) classify every fault identically."""
    nl = generate_netlist(500, seed=1, buf_ratio=0.55)
    kw = dict(backtrack_limit=4000, predrop=0)
    base = generate_tests(nl, collapse=False, guidance=False, **kw)
    assert not base.aborted
    for c, g in ((True, False), (False, True), (True, True)):
        ts = generate_tests(nl, collapse=c, guidance=g, **kw)
        assert not ts.aborted
        assert set(ts.detected) == set(base.detected)
        assert set(ts.untestable) == set(base.untestable)
        assert ts.total_faults == base.total_faults


@pytest.mark.skipif(not have_kernel(), reason="kernel backend needs numpy")
def test_guidance_reduces_backtracks():
    nl = generate_netlist(500, seed=1, buf_ratio=0.55)
    counts = {}
    for g in (False, True):
        with collect() as m:
            generate_tests(nl, backtrack_limit=4000, predrop=0,
                           collapse=False, guidance=g)
        counts[g] = m["podem_backtracks"]
    assert counts[True] < counts[False], counts


# ---------------------------------------------------------------------------
# observability plumbing

def test_collapse_metrics_recorded():
    nl = generate_netlist(300, seed=2, buf_ratio=0.4)
    faults = all_faults(nl)
    seq = random_patterns(nl, 2, seed=1)
    with collect() as m:
        fault_simulate_cycles(nl, faults, seq, collapse=True)
    assert m["faults_total"] == len(faults)
    assert 0 < m["faults_representative"] < len(faults)
    assert m["collapse_ratio"] == pytest.approx(
        m["faults_representative"] / m["faults_total"], abs=1e-3
    )


def test_podem_metrics_recorded():
    nl = generate_netlist(300, seed=2, buf_ratio=0.4)
    with collect() as m:
        generate_tests(nl, backtrack_limit=1000, predrop=0)
    assert m["podem_objectives"] > 0
    assert "faults_total" in m  # collapse on by default


def test_structure_cache_hits():
    from repro.gatelevel.structure import structure_stats

    nl = generate_netlist(300, seed=3)
    before = structure_stats()["instance_hits"]
    structural_analysis(nl)
    structural_analysis(nl)
    after = structure_stats()["instance_hits"]
    assert after > before
