"""Tests for RTL testability analysis, k-level test points, full scan."""

import pytest

from repro.cdfg import suite
from repro.rtl import (
    fullscan_report,
    hard_registers,
    insert_k_level_test_points,
    k_level_coverage,
    rtl_testability,
)
from repro.sgraph import build_sgraph, nontrivial_cycles
from tests.conftest import synthesize


class TestRanges:
    def test_input_registers_are_zero_control(self, iir2_dp):
        recs = rtl_testability(iir2_dp)
        for r in iir2_dp.input_registers():
            assert recs[r.name].min_control == 0

    def test_output_registers_are_zero_observe(self, iir2_dp):
        recs = rtl_testability(iir2_dp)
        for r in iir2_dp.output_registers():
            assert recs[r.name].min_observe == 0

    def test_loop_registers_have_unbounded_max(self, iir2_dp):
        recs = rtl_testability(iir2_dp)
        loopy = [r for r in recs.values() if r.on_loop]
        assert loopy
        assert all(r.max_control is None for r in loopy)

    def test_scan_resets_distances(self, iir2_dp):
        recs = rtl_testability(iir2_dp)
        worst = max(
            recs.values(),
            key=lambda r: (r.min_control or 99) + (r.min_observe or 99),
        )
        iir2_dp.mark_scan(worst.register)
        recs2 = rtl_testability(iir2_dp)
        assert recs2[worst.register].min_control == 0
        assert recs2[worst.register].min_observe == 0

    def test_hard_registers_prefers_loops(self, iir2_dp):
        recs = rtl_testability(iir2_dp)
        hard = hard_registers(iir2_dp, 3)
        if any(r.on_loop for r in recs.values()):
            assert any(recs[h].on_loop for h in hard)


class TestKLevelTestPoints:
    @pytest.mark.parametrize("name", ["diffeq_loop", "iir2", "ar4", "ewf"])
    def test_k1_never_more_than_k0(self, name):
        dp, *_ = synthesize(suite.standard_suite()[name], slack=1.5)
        tp0 = insert_k_level_test_points(dp, k=0)
        tp1 = insert_k_level_test_points(dp, k=1)
        assert len(tp1) <= len(tp0)

    @pytest.mark.parametrize("name", ["iir2", "ar4"])
    def test_monotone_in_k(self, name):
        dp, *_ = synthesize(suite.standard_suite()[name], slack=1.5)
        counts = [
            len(insert_k_level_test_points(dp, k=k)) for k in range(4)
        ]
        assert counts == sorted(counts, reverse=True)

    def test_k0_matches_direct_access_requirement(self, iir2_dp):
        """At k=0 every loop must contain a chosen or I/O register."""
        g = build_sgraph(iir2_dp)
        tps = insert_k_level_test_points(iir2_dp, k=0)
        chosen = {t.register for t in tps}
        direct = chosen | {
            n for n, d in g.nodes(data=True)
            if (d.get("is_input") and d.get("is_output"))
        }
        for loop in nontrivial_cycles(g):
            io_ok = any(
                (g.nodes[n].get("is_input") or n in chosen)
                and (g.nodes[n].get("is_output") or n in chosen)
                for n in loop
            )
            assert io_ok

    def test_coverage_grows_with_k(self, iir2_dp):
        covs = [k_level_coverage(iir2_dp, k) for k in range(5)]
        assert covs == sorted(covs)
        assert covs[-1] == 1.0 or covs[-1] >= covs[0]

    def test_acyclic_needs_none(self):
        from repro.survey import figure1_datapath

        dp = figure1_datapath("c")
        assert insert_k_level_test_points(dp, k=0) == []
        assert k_level_coverage(dp, 0) == 1.0

    def test_area_accounting(self, iir2_dp):
        tps = insert_k_level_test_points(iir2_dp, k=0)
        assert all(t.area > 0 for t in tps)


class TestFullScan:
    def test_full_coverage_small_design(self):
        dp, *_ = synthesize(suite.figure1(width=3))
        rep = fullscan_report(dp, max_faults=120)
        assert rep.aborted == 0
        assert rep.test_efficiency == 1.0
        assert rep.coverage > 0.95

    def test_marks_all_registers(self, small_dp):
        fullscan_report(small_dp, max_faults=10)
        assert len(small_dp.scan_registers()) == len(small_dp.registers)
