"""Tests for the CDFG interpreter."""

import pytest

from repro.cdfg import suite
from repro.cdfg.builder import parse_behavior
from repro.cdfg.graph import CDFGError
from repro.cdfg.interpret import (
    outputs_of,
    run_iteration,
    run_sequence,
)


class TestBasics:
    def test_add(self):
        c = parse_behavior("input a b\noutput y\ny = a + b")
        assert run_iteration(c, {"a": 3, "b": 4})["y"] == 7

    def test_width_masking(self):
        c = parse_behavior("input a b\noutput y\ny = a + b", width=4)
        assert run_iteration(c, {"a": 15, "b": 1})["y"] == 0

    def test_sub_wraps(self):
        c = parse_behavior("input a b\noutput y\ny = a - b")
        assert run_iteration(c, {"a": 0, "b": 1})["y"] == 255

    def test_mul(self):
        c = parse_behavior("input a b\noutput y\ny = a * b")
        assert run_iteration(c, {"a": 20, "b": 20})["y"] == (400 & 255)

    def test_comparison(self):
        c = parse_behavior("input a b\noutput y\ny = a < b")
        assert run_iteration(c, {"a": 1, "b": 2})["y"] == 1
        assert run_iteration(c, {"a": 2, "b": 1})["y"] == 0

    def test_missing_input_rejected(self):
        c = parse_behavior("input a b\noutput y\ny = a + b")
        with pytest.raises(CDFGError, match="missing value"):
            run_iteration(c, {"a": 1})

    def test_outputs_projection(self):
        c = parse_behavior("input a b\noutput y\nt = a + b\ny = t + a")
        vals = run_iteration(c, {"a": 1, "b": 2})
        assert outputs_of(c, vals) == {"y": 4}


class TestState:
    def test_carried_defaults_to_zero(self):
        c = parse_behavior("input dx\noutput s\ns = dx @+ s")
        assert run_iteration(c, {"dx": 5})["s"] == 5

    def test_accumulator_sequence(self):
        c = parse_behavior("input dx\noutput s\ns = dx @+ s")
        trace = run_sequence(c, [{"dx": 5}] * 4)
        assert [t["s"] for t in trace] == [5, 10, 15, 20]

    def test_diffeq_loop_converges_structurally(self):
        c = suite.diffeq(loop=True)
        trace = run_sequence(c, [{"dx": 1, "a": 50, "three": 3}] * 3)
        # x accumulates dx each iteration
        assert trace[0]["x1"] == 1 and trace[1]["x1"] == 2

    def test_iir_dc_response(self):
        """Constant input, zero coefficients -> output equals b0*w path."""
        c = suite.iir_biquad(1)
        ins = {v.name: 0 for v in c.primary_inputs()}
        ins.update({"x0": 10, "b0_0": 1})
        trace = run_sequence(c, [ins] * 3)
        assert all(t["y0"] == 10 for t in trace)

    def test_fir_delay_line(self):
        c = suite.fir(3)
        ins = {v.name: 0 for v in c.primary_inputs()}
        # impulse through tap 2: y picks up b2 * x two cycles later
        seq = [dict(ins, x=1, b2=5)] + [dict(ins, x=0, b2=5)] * 3
        trace = run_sequence(c, seq)
        assert trace[2]["y"] == 5
