"""Unit tests for the CDFG builder and the tiny behavior language."""

import pytest

from repro.cdfg.builder import CDFGBuilder, parse_behavior
from repro.cdfg.graph import CDFGError


class TestBuilder:
    def test_shorthand_ops(self):
        c = (
            CDFGBuilder("t")
            .inputs("a", "b")
            .outputs("y")
            .add("a", "b", "t1")
            .mul("t1", "a", "y")
            .build()
        )
        assert len(c) == 2
        assert c.operation("*1").delay == 2  # default multiplier latency

    def test_auto_names_count_per_kind(self):
        b = CDFGBuilder("t").inputs("a").outputs("y")
        b.add("a", "a", "t1").add("t1", "a", "y")
        c = b.build()
        assert {"+1", "+2"} <= set(c.operations)

    def test_missing_vars_created(self):
        c = (
            CDFGBuilder("t")
            .inputs("a")
            .outputs("y")
            .op("+", ("a", "a"), "mid")
            .op("+", ("mid", "a"), "y")
            .build()
        )
        assert "mid" in c.variables

    def test_width_propagates(self):
        c = CDFGBuilder("t", width=4).inputs("a").outputs("y") \
            .add("a", "a", "y").build()
        assert c.variable("a").width == 4

    def test_explicit_delay(self):
        c = CDFGBuilder("t").inputs("a").outputs("y") \
            .op("+", ("a", "a"), "y", delay=3).build()
        assert c.operation("+1").delay == 3


class TestParser:
    def test_basic_program(self):
        c = parse_behavior(
            """
            input a b c
            output y
            t1 = a + b
            t2 = t1 * c
            y  = t2 - a
            """
        )
        assert len(c) == 3
        assert c.variable("y").is_output
        assert c.operation("*1").delay == 2

    def test_carried_marker(self):
        c = parse_behavior(
            """
            input dx
            output s
            s = dx @+ s
            """
        )
        op = c.operation("+1")
        assert op.carried == frozenset({"s"})
        c.validate()

    def test_comments_and_blanks(self):
        c = parse_behavior(
            """
            # a comment
            input a

            output y
            y = a + a  # trailing comment
            """
        )
        assert len(c) == 1

    def test_malformed_rejected(self):
        with pytest.raises(CDFGError):
            parse_behavior("input a\noutput y\ny = a +")

    def test_all_operators_parse(self):
        text = ["input a b", "output z"]
        ops = ["+", "-", "*", "&", "|", "^", "<", ">", "=="]
        prev = "a"
        for i, o in enumerate(ops):
            dst = f"v{i}" if i < len(ops) - 1 else "z"
            text.append(f"{dst} = {prev} {o} b")
            prev = dst
        c = parse_behavior("\n".join(text))
        assert len(c) == len(ops)
