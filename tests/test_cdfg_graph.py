"""Unit tests for the CDFG data model."""

import networkx as nx
import pytest

from repro.cdfg.graph import (
    CDFG,
    CDFGError,
    IDENTITY_ELEMENTS,
    Operation,
    Variable,
)


def make_min() -> CDFG:
    c = CDFG("min")
    c.add_variable(Variable("a", is_input=True))
    c.add_variable(Variable("b", is_input=True))
    c.add_variable(Variable("y", is_output=True))
    c.add_operation(Operation("+1", "+", ("a", "b"), "y"))
    return c


class TestVariable:
    def test_defaults(self):
        v = Variable("x")
        assert v.width == 8
        assert not v.is_input and not v.is_output

    def test_zero_width_rejected(self):
        with pytest.raises(CDFGError):
            Variable("x", width=0)

    def test_negative_width_rejected(self):
        with pytest.raises(CDFGError):
            Variable("x", width=-3)


class TestOperation:
    def test_carried_must_be_inputs(self):
        with pytest.raises(CDFGError):
            Operation("o", "+", ("a", "b"), "y", carried=frozenset({"z"}))

    def test_delay_positive(self):
        with pytest.raises(CDFGError):
            Operation("o", "+", ("a", "b"), "y", delay=0)

    def test_needs_inputs(self):
        with pytest.raises(CDFGError):
            Operation("o", "+", (), "y")

    def test_commutative(self):
        assert Operation("o", "+", ("a", "b"), "y").is_commutative
        assert not Operation("o", "-", ("a", "b"), "y").is_commutative

    def test_sequencing_inputs_excludes_carried(self):
        op = Operation("o", "+", ("a", "b"), "y", carried=frozenset({"b"}))
        assert op.sequencing_inputs() == ("a",)


class TestCDFG:
    def test_minimal_valid(self):
        make_min().validate()

    def test_duplicate_variable(self):
        c = make_min()
        with pytest.raises(CDFGError):
            c.add_variable(Variable("a"))

    def test_duplicate_operation(self):
        c = make_min()
        with pytest.raises(CDFGError):
            c.add_operation(Operation("+1", "+", ("a", "b"), "y"))

    def test_unknown_variable_in_op(self):
        c = make_min()
        with pytest.raises(CDFGError):
            c.add_operation(Operation("o2", "+", ("a", "zz"), "y"))

    def test_single_assignment_enforced(self):
        c = make_min()
        c.add_variable(Variable("z", is_output=True))
        c.add_operation(Operation("o2", "+", ("a", "b"), "z"))
        c.add_variable(Variable("w", is_output=True))
        with pytest.raises(CDFGError):
            c.add_operation(Operation("o3", "+", ("a", "b"), "z"))

    def test_cannot_write_primary_input(self):
        c = make_min()
        with pytest.raises(CDFGError):
            c.add_operation(Operation("o2", "+", ("a", "b"), "a"))

    def test_producer_consumer_maps(self):
        c = make_min()
        assert c.producer_of("y").name == "+1"
        assert c.producer_of("a") is None
        assert [o.name for o in c.consumers_of("a")] == ["+1"]

    def test_missing_producer_caught(self):
        c = CDFG()
        c.add_variable(Variable("x"))
        c.add_variable(Variable("y", is_output=True))
        c.add_operation(Operation("o", "+", ("x", "x"), "y"))
        with pytest.raises(CDFGError, match="no producer"):
            c.validate()

    def test_dead_intermediate_caught(self):
        c = make_min()
        c.add_variable(Variable("dead"))
        c.add_operation(Operation("o2", "+", ("a", "b"), "dead"))
        with pytest.raises(CDFGError, match="never consumed"):
            c.validate()

    def test_unconsumed_primary_input_allowed(self):
        c = make_min()
        c.add_variable(Variable("unused", is_input=True))
        c.validate()

    def test_intra_iteration_cycle_rejected(self):
        c = CDFG()
        c.add_variable(Variable("a", is_input=True))
        c.add_variable(Variable("x", is_output=True))
        c.add_variable(Variable("y", is_output=True))
        c.add_operation(Operation("o1", "+", ("a", "y"), "x"))
        c.add_operation(Operation("o2", "+", ("a", "x"), "y"))
        with pytest.raises(CDFGError, match="cycle"):
            c.validate()

    def test_carried_cycle_accepted(self):
        c = CDFG()
        c.add_variable(Variable("a", is_input=True))
        c.add_variable(Variable("x", is_output=True))
        c.add_operation(
            Operation("o1", "+", ("a", "x"), "x", carried=frozenset({"x"}))
        )
        c.validate()

    def test_op_graph_carried_flag(self):
        c = CDFG()
        c.add_variable(Variable("a", is_input=True))
        c.add_variable(Variable("x", is_output=True))
        c.add_variable(Variable("y", is_output=True))
        c.add_operation(
            Operation("o1", "+", ("a", "y"), "x", carried=frozenset({"y"}))
        )
        c.add_operation(Operation("o2", "+", ("a", "x"), "y"))
        g = c.op_graph(include_carried=True)
        assert g.has_edge("o2", "o1") and g["o2"]["o1"]["carried"]
        g2 = c.op_graph(include_carried=False)
        assert not g2.has_edge("o2", "o1")
        assert nx.is_directed_acyclic_graph(g2)

    def test_variable_graph_edges(self):
        c = make_min()
        g = c.variable_graph()
        assert g.has_edge("a", "y") and g.has_edge("b", "y")

    def test_copy_independent(self):
        c = make_min()
        c2 = c.copy()
        c2.add_variable(Variable("n"))
        assert "n" not in c.variables

    def test_kinds_and_len(self):
        c = make_min()
        assert c.kinds() == {"+"}
        assert len(c) == 1
        assert [op.name for op in c] == ["+1"]

    def test_identity_elements_table(self):
        assert IDENTITY_ELEMENTS["+"] == 0
        assert IDENTITY_ELEMENTS["*"] == 1
