"""Shared fixtures: small synthesized data paths and helpers."""

from __future__ import annotations

import pytest

from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro import hls


def synthesize(cdfg, slack: float = 1.6, register_style: str = "left_edge"):
    """Conventional flow used across the tests."""
    latency = max(
        critical_path_length(cdfg),
        int(slack * critical_path_length(cdfg)),
    )
    alloc = hls.allocate_for_latency(cdfg, latency)
    sched = hls.list_schedule(cdfg, alloc)
    fub = hls.bind_functional_units(cdfg, sched, alloc)
    if register_style == "left_edge":
        regs = hls.assign_registers_left_edge(cdfg, sched)
    else:
        regs = hls.assign_registers_coloring(cdfg, sched)
    dp = hls.build_datapath(cdfg, sched, fub, regs)
    return dp, sched, fub, alloc


@pytest.fixture
def figure1():
    return suite.figure1()


@pytest.fixture
def diffeq():
    return suite.diffeq()


@pytest.fixture
def diffeq_loop():
    return suite.diffeq(loop=True)


@pytest.fixture
def iir2():
    return suite.iir_biquad(2)


@pytest.fixture
def figure1_dp(figure1):
    dp, _s, _f, _a = synthesize(figure1)
    return dp


@pytest.fixture
def iir2_dp(iir2):
    dp, _s, _f, _a = synthesize(iir2)
    return dp


@pytest.fixture
def small_dp():
    """A 4-bit figure1 data path (cheap to expand to gates)."""
    dp, _s, _f, _a = synthesize(suite.figure1(width=4))
    return dp
