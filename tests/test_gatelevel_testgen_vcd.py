"""Tests for the ATPG test-set driver and the VCD exporter."""

import re

import pytest

from repro.cdfg import suite
from repro.gatelevel.expand import expand_datapath
from repro.gatelevel.faults import Fault, all_faults
from repro.gatelevel.fault_sim import fault_simulate
from repro.gatelevel.gates import Netlist
from repro.gatelevel.simulate import simulate_sequence
from repro.gatelevel.test_generation import generate_tests
from repro.gatelevel.vcd import trace_to_vcd
from tests.conftest import synthesize


@pytest.fixture
def fullscan_nl():
    dp, *_ = synthesize(suite.figure1(width=3))
    dp.mark_scan(*[r.name for r in dp.registers])
    nl, _ = expand_datapath(dp)
    return nl


class TestGenerateTests:
    def test_full_coverage_on_fullscan(self, fullscan_nl):
        ts = generate_tests(fullscan_nl)
        assert ts.coverage == 1.0
        assert ts.test_efficiency == 1.0
        assert not ts.aborted

    def test_fault_dropping_compacts(self, fullscan_nl):
        ts = generate_tests(fullscan_nl)
        # far fewer vectors than faults (dropping works)
        assert len(ts.vectors) < 0.3 * ts.total_faults

    def test_vectors_replay(self, fullscan_nl):
        """Replaying the vectors detects every claimed fault."""
        ts = generate_tests(fullscan_nl)
        scan = {g.name for g in fullscan_nl.scan_dffs()}
        redetected: set[Fault] = set()
        remaining = sorted(ts.detected)
        for vec in ts.vectors:
            piv = {k: v for k, v in vec.items() if k not in scan}
            st = {k: v for k, v in vec.items() if k in scan}
            res = fault_simulate(
                fullscan_nl, remaining, [piv], width=1, initial_state=st
            )
            redetected |= {f for f, d in res.items() if d}
            remaining = [f for f in remaining if f not in redetected]
        assert redetected == ts.detected

    def test_partial_vectors_subset_of_complete(self, fullscan_nl):
        ts = generate_tests(fullscan_nl)
        for partial, full in zip(ts.partial_vectors, ts.vectors):
            for k, v in partial.items():
                assert full[k] == v

    def test_fault_subset_respected(self, fullscan_nl):
        sample = all_faults(fullscan_nl)[:20]
        ts = generate_tests(fullscan_nl, faults=sample)
        assert ts.total_faults == 20
        assert ts.detected <= set(sample)

    def test_redundant_fault_classified(self):
        nl = Netlist("red")
        nl.add("a", "input")
        nl.add("na", "not", "a")
        nl.add("y", "and", "a", "na")
        nl.add_output("y")
        ts = generate_tests(nl, faults=[Fault("y", 0)])
        assert ts.untestable == [Fault("y", 0)]
        assert ts.test_efficiency == 1.0


class TestVCD:
    @pytest.fixture
    def counter(self):
        nl = Netlist("cnt")
        nl.add("en", "input")
        nl.add("q", "dff", "d")
        nl.add("nq", "not", "q")
        nl.add("d", "mux", "en", "nq", "q")
        nl.add_output("q")
        return nl

    def test_header_and_vars(self, counter):
        trace = simulate_sequence(counter, [{"en": 1}] * 4, width=1)
        vcd = trace_to_vcd(counter, trace)
        assert "$timescale 1ns $end" in vcd
        assert re.search(r"\$var wire 1 \S+ en \$end", vcd)
        assert re.search(r"\$var wire 1 \S+ q \$end", vcd)

    def test_value_changes_recorded(self, counter):
        trace = simulate_sequence(counter, [{"en": 1}] * 4, width=1)
        vcd = trace_to_vcd(counter, trace, nets=["q"])
        # q toggles every cycle: 0,1,0,1 -> a change at each timestamp
        changes = re.findall(r"^([01])(\S+)$", vcd, re.M)
        assert [c[0] for c in changes] == ["0", "1", "0", "1"]

    def test_no_redundant_changes(self, counter):
        trace = simulate_sequence(counter, [{"en": 0}] * 4, width=1)
        vcd = trace_to_vcd(counter, trace, nets=["q"])
        changes = re.findall(r"^([01])\S+$", vcd, re.M)
        assert changes == ["0"]  # constant thereafter

    def test_timestamps_monotone(self, counter):
        trace = simulate_sequence(counter, [{"en": 1}] * 3, width=1)
        vcd = trace_to_vcd(counter, trace)
        stamps = [int(m) for m in re.findall(r"^#(\d+)$", vcd, re.M)]
        assert stamps == sorted(stamps)
        assert stamps[-1] == 3

    def test_identifier_uniqueness(self):
        from repro.gatelevel.vcd import _identifier

        ids = {_identifier(i) for i in range(500)}
        assert len(ids) == 500
