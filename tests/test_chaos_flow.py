"""Chaos suite: the resilience layer's promises, made falsifiable.

Every scenario here injects a failure on purpose -- worker death
(``SIGKILL``), stage crashes, hangs past a timeout, corrupted cache
entries -- through the deterministic :mod:`repro.flow.chaos` injector,
then asserts the flow engine's contract: flows complete (degrading only
optional stages), recovered artifacts are byte-identical to an
uninjected serial run, recovery is visible in metrics, and no worker
process is left behind.

Stage functions live at module level so worker processes can unpickle
them by reference.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time

import pytest

from repro.flow import (
    ChaosError,
    Flow,
    FlowCache,
    FlowError,
    Runner,
    backoff_seconds,
    is_unavailable,
)
from repro.flow import chaos
from repro.flow.chaos import ChaosPlan, Injection, corrupt_cache_entries

JOBS = [1, 4]


# -- module-level stage functions (picklable) ------------------------------

def emit(value):
    return value


def double(x):
    return 2 * x


def add(a, b):
    return a + b


def slow_emit(value, seconds=0.0):
    time.sleep(seconds)
    return value


def diamond_flow() -> Flow:
    """source -> (left, right) -> join; enough width to keep a pool busy."""
    f = Flow("diamond")
    f.stage("source", emit, outputs=("x",), params={"value": 10})
    f.stage("left", double, inputs=("x",), outputs=("l",))
    f.stage("right", double, inputs=("x",), outputs=("r",))
    f.stage("join", add, inputs={"a": "l", "b": "r"}, outputs=("sum",))
    return f


def clean_artifacts(flow_builder, **kwargs):
    """The uninjected serial truth a chaos run must reproduce exactly."""
    return Runner().run(flow_builder(), **kwargs).artifacts


def assert_no_orphans():
    """Every pool worker must be gone once the runner returns."""
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children():
        if time.monotonic() > deadline:
            raise AssertionError(
                f"orphaned workers: {multiprocessing.active_children()}"
            )
        time.sleep(0.02)


# -- the injector itself ---------------------------------------------------

class TestChaosPlan:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos mode"):
            Injection("stage:x", "explode")

    def test_round_trip(self, tmp_path):
        plan = ChaosPlan(
            [Injection("stage:a", "crash", times=2),
             Injection("faultsim_shard:1", "kill")],
            tmp_path / "markers",
        )
        path = plan.write(tmp_path / "plan.json")
        loaded = ChaosPlan.load(path)
        assert loaded.injections == plan.injections
        assert loaded.workdir == plan.workdir

    def test_claims_are_atomic_and_monotonic(self, tmp_path):
        plan = ChaosPlan([], tmp_path / "markers")
        assert [plan.claim("s") for _ in range(4)] == [0, 1, 2, 3]
        assert plan.invocations("s") == 4
        assert plan.invocations("other") == 0

    def test_checkpoint_noop_without_plan(self, monkeypatch):
        monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
        chaos.checkpoint("stage:anything")  # must not raise

    def test_crash_fires_exactly_times_then_behaves(self, tmp_path):
        with chaos.active(
            [Injection("stage:t", "crash", times=2)], tmp_path
        ) as plan:
            for _ in range(2):
                with pytest.raises(ChaosError, match="injected crash"):
                    chaos.checkpoint("stage:t")
            chaos.checkpoint("stage:t")  # third invocation behaves
            chaos.checkpoint("stage:other")  # unmatched site: no-op
            assert plan.invocations("stage:t") == 3
        assert chaos.CHAOS_ENV not in os.environ

    def test_kill_degrades_to_crash_in_main_process(self, tmp_path):
        with chaos.active([Injection("stage:k", "kill")], tmp_path):
            with pytest.raises(ChaosError, match="main process"):
                chaos.checkpoint("stage:k")


class TestBackoff:
    def test_deterministic_and_exponential(self):
        a1 = backoff_seconds("seed", 1, base=0.1, cap=100.0)
        assert a1 == backoff_seconds("seed", 1, base=0.1, cap=100.0)
        assert backoff_seconds("seed", 0) == 0.0
        # Jitter spans [0.5, 1.5) of the doubling raw value, so four
        # attempts later the delay must exceed any jitter of attempt 1.
        assert backoff_seconds("seed", 5, base=0.1, cap=100.0) > a1
        assert backoff_seconds("other", 1, base=0.1, cap=100.0) != a1

    def test_cap(self):
        assert backoff_seconds("s", 30, base=1.0, cap=2.0) == 2.0


# -- worker death ----------------------------------------------------------

class TestWorkerDeath:
    def test_sigkilled_worker_is_survived(self, tmp_path):
        """SIGKILL breaks the whole pool; the runner rebuilds it,
        re-dispatches (for free), and the result matches a clean
        serial run byte for byte."""
        truth = clean_artifacts(diamond_flow)
        with chaos.active(
            [Injection("stage:left", "kill", times=1)], tmp_path
        ):
            result = Runner().run(diamond_flow(), jobs=2)
        assert result.artifacts == truth
        assert result.artifacts["sum"] == 40
        assert result.metrics.pool_rebuilds >= 1
        assert not result.metrics.serial_fallback
        # Re-dispatch must not consume the retry budget (retries=0).
        assert result.metrics.metric("left").status == "ran"
        assert_no_orphans()

    def test_repeated_death_falls_back_to_serial(self, tmp_path):
        """After ``pool_failure_limit`` consecutive pool deaths the
        runner finishes in-process -- same artifacts, recorded in
        metrics.  In the main process ``kill`` degrades to a crash, so
        the stage needs retries to outlast the injection."""
        truth = clean_artifacts(diamond_flow)
        flow = diamond_flow()
        flow.stages["left"].retries = 4
        with chaos.active(
            [Injection("stage:left", "kill", times=4)], tmp_path
        ):
            result = Runner(pool_failure_limit=2).run(flow, jobs=2)
        assert result.artifacts == truth
        assert result.metrics.serial_fallback
        # At least the failure-limit's worth of rebuilds; successes of
        # innocent stages in between may reset the consecutive counter,
        # so the exact total is timing-dependent.
        assert result.metrics.pool_rebuilds >= 2
        assert_no_orphans()


# -- stage crashes ---------------------------------------------------------

class TestStageCrash:
    @pytest.mark.parametrize("jobs", JOBS)
    def test_crash_then_retry_succeeds(self, tmp_path, jobs):
        truth = clean_artifacts(diamond_flow)
        flow = diamond_flow()
        flow.stages["right"].retries = 1
        with chaos.active(
            [Injection("stage:right", "crash", times=1)], tmp_path
        ):
            result = Runner(retry_base=0.001).run(flow, jobs=jobs)
        assert result.artifacts == truth
        assert result.metrics.metric("right").attempts == 2
        assert_no_orphans()

    @pytest.mark.parametrize("jobs", JOBS)
    def test_optional_stage_degrades_not_aborts(self, tmp_path, jobs):
        flow = diamond_flow()
        flow.stages["right"].optional = True
        with chaos.active(
            [Injection("stage:right", "crash", times=5)], tmp_path
        ):
            result = Runner().run(flow, jobs=jobs)
        assert is_unavailable(result.artifacts["r"])
        assert is_unavailable(result.artifacts["sum"])  # downstream skipped
        assert result.artifacts["l"] == 20  # siblings unharmed
        assert result.metrics.metric("join").status == "skipped"
        assert not result.ok
        assert_no_orphans()

    def test_required_stage_crash_aborts(self, tmp_path):
        with chaos.active(
            [Injection("stage:source", "crash", times=5)], tmp_path
        ):
            with pytest.raises(FlowError, match="source"):
                Runner().run(diamond_flow(), jobs=2)
        assert_no_orphans()


# -- hangs and timeouts ----------------------------------------------------

class TestHangs:
    def test_hung_worker_is_killed_and_stage_retried(self, tmp_path):
        """A stage hanging past its timeout gets its pool recycled --
        the runaway worker is really gone -- and the retry succeeds."""
        truth = clean_artifacts(diamond_flow)
        flow = diamond_flow()
        flow.stages["right"].timeout = 0.4
        flow.stages["right"].retries = 1
        with chaos.active(
            [Injection("stage:right", "hang", times=1,
                       hang_seconds=60.0)],
            tmp_path,
        ):
            t0 = time.monotonic()
            result = Runner(retry_base=0.001).run(flow, jobs=2)
            elapsed = time.monotonic() - t0
        assert result.artifacts == truth
        assert result.metrics.pool_recycles >= 1
        assert elapsed < 30.0  # nobody waited out the 60 s sleep
        assert_no_orphans()

    def test_hang_on_optional_stage_degrades(self, tmp_path):
        flow = diamond_flow()
        flow.stages["right"].timeout = 0.4
        flow.stages["right"].optional = True
        with chaos.active(
            [Injection("stage:right", "hang", times=3,
                       hang_seconds=60.0)],
            tmp_path,
        ):
            result = Runner().run(flow, jobs=2)
        assert is_unavailable(result.artifacts["r"])
        assert "timeout" in result.metrics.metric("right").error
        assert result.artifacts["l"] == 20
        assert_no_orphans()


# -- cache corruption ------------------------------------------------------

class TestCacheCorruption:
    @pytest.mark.parametrize("mode", ["truncate", "garbage"])
    def test_corrupt_entries_quarantined_and_recomputed(
        self, tmp_path, mode
    ):
        cache = FlowCache(tmp_path / "cache")
        runner = Runner(cache=cache)
        first = runner.run(diamond_flow())
        damaged = corrupt_cache_entries(cache.root, mode=mode)
        assert damaged

        again = runner.run(diamond_flow())
        assert again.artifacts == first.artifacts
        assert again.metrics.cache_corrupt >= len(damaged)
        for m in again.metrics.stages:
            assert m.status == "ran"  # nothing served from damage
        quarantined = list(cache.root.rglob("*.corrupt"))
        assert len(quarantined) >= len(damaged)

        # Healed: the rerun repopulated the cache, third run hits it.
        third = runner.run(diamond_flow())
        assert third.artifacts == first.artifacts
        assert all(m.status == "hit" for m in third.metrics.stages)

    def test_corruption_choice_is_deterministic(self, tmp_path):
        cache = FlowCache(tmp_path / "cache")
        Runner(cache=cache).run(diamond_flow())
        first = corrupt_cache_entries(cache.root, seed=3, fraction=0.5)
        Runner(cache=cache).run(diamond_flow())  # repopulate
        for p in cache.root.rglob("*.corrupt"):
            p.unlink()
        second = corrupt_cache_entries(cache.root, seed=3, fraction=0.5)
        assert [p.name for p in first] == [p.name for p in second]


# -- degradation through a real flow ---------------------------------------

class TestHierarchicalDegradation:
    @pytest.mark.parametrize("jobs", JOBS)
    def test_unavailable_propagates_through_hier_flow(
        self, tmp_path, jobs
    ):
        """Killing the (made-optional) test-generation stage of the
        hierarchical flow must skip exactly its downstream cone --
        fault simulation and the merge -- while the build still runs."""
        from repro.flow.flows import hierarchical_flow

        flow = hierarchical_flow(width=2, fault_sample=4, budget=2)
        flow.stages["generate"].optional = True
        with chaos.active(
            [Injection("stage:generate", "crash", times=3)], tmp_path
        ):
            result = Runner().run(flow, jobs=jobs)
        assert is_unavailable(result.artifacts["hier_tests"])
        assert is_unavailable(result.artifacts["hier_detected"])
        assert result.metrics.metric("build").status == "ran"
        assert result.metrics.metric("generate").status == "failed"
        assert result.metrics.metric("faultsim").status == "skipped"
        with pytest.raises(FlowError, match="unavailable"):
            result["hier_detected"]
        assert_no_orphans()


# -- metrics surface -------------------------------------------------------

def test_resilience_metrics_serialize(tmp_path):
    with chaos.active(
        [Injection("stage:left", "kill", times=1)], tmp_path
    ):
        result = Runner().run(diamond_flow(), jobs=2)
    blob = result.metrics.to_dict()
    assert blob["pool_rebuilds"] >= 1
    assert "serial_fallback" in blob and "cache_corrupt" in blob
    assert "resilience:" in result.metrics.render()
    pickle.dumps(result.metrics)  # metrics must stay picklable
