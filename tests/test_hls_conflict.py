"""Tests for conflict-graph machinery."""

import networkx as nx
import pytest

from repro.cdfg import suite
from repro.cdfg.analysis import asap_schedule
from repro.cdfg.lifetimes import Lifetime, variable_lifetimes
from repro.hls.conflict import (
    chromatic_lower_bound,
    color_conflict_graph,
    conflict_graph,
)


def lt(name, steps):
    return Lifetime(name, frozenset(steps))


class TestConflictGraph:
    def test_edges_iff_overlap(self):
        lts = {
            "a": lt("a", {1, 2}),
            "b": lt("b", {2, 3}),
            "c": lt("c", {4}),
        }
        g = conflict_graph(lts)
        assert g.has_edge("a", "b")
        assert not g.has_edge("a", "c")
        assert not g.has_edge("b", "c")

    def test_extra_edges_added(self):
        lts = {"a": lt("a", {1}), "b": lt("b", {2})}
        g = conflict_graph(lts, extra_edges=[("a", "b")])
        assert g.has_edge("a", "b")

    def test_extra_self_edge_ignored(self):
        lts = {"a": lt("a", {1})}
        g = conflict_graph(lts, extra_edges=[("a", "a")])
        assert not g.has_edge("a", "a")

    def test_unknown_extra_edge_ignored(self):
        lts = {"a": lt("a", {1})}
        g = conflict_graph(lts, extra_edges=[("a", "zz")])
        assert "zz" not in g

    def test_from_real_schedule(self, figure1):
        lts = variable_lifetimes(figure1, asap_schedule(figure1))
        g = conflict_graph(lts)
        assert g.number_of_nodes() == len(figure1.variables)
        assert g.has_edge("a", "b")  # both alive at step 1


class TestColoring:
    def test_valid_coloring(self, figure1):
        lts = variable_lifetimes(figure1, asap_schedule(figure1))
        g = conflict_graph(lts)
        colors = color_conflict_graph(g)
        for u, v in g.edges:
            assert colors[u] != colors[v]

    def test_preferred_order_seeds_first(self):
        g = nx.Graph()
        g.add_nodes_from("abcd")
        g.add_edge("a", "b")
        colors = color_conflict_graph(g, preferred_order=["b", "a"])
        assert colors["b"] == 0  # first preferred node takes color 0

    def test_colors_contiguous(self, iir2):
        lts = variable_lifetimes(iir2, asap_schedule(iir2))
        colors = color_conflict_graph(conflict_graph(lts))
        used = set(colors.values())
        assert used == set(range(len(used)))


class TestLowerBound:
    def test_clique(self):
        g = nx.complete_graph(5)
        assert chromatic_lower_bound(g) == 5

    def test_empty(self):
        assert chromatic_lower_bound(nx.Graph()) == 0

    def test_independent_set(self):
        g = nx.Graph()
        g.add_nodes_from(range(4))
        assert chromatic_lower_bound(g) == 1

    def test_interval_graph_exact(self, figure1):
        lts = variable_lifetimes(figure1, asap_schedule(figure1))
        g = conflict_graph(lts)
        colors = color_conflict_graph(g)
        assert chromatic_lower_bound(g) == len(set(colors.values()))
