"""Tests for the gate-level netlist model and simulators."""

import pytest

from repro.gatelevel.gates import Gate, Netlist, NetlistError
from repro.gatelevel.simulate import (
    parallel_simulate,
    simulate,
    simulate_sequence,
)


def half_adder() -> Netlist:
    nl = Netlist("ha")
    nl.add("a", "input")
    nl.add("b", "input")
    nl.add("s", "xor", "a", "b")
    nl.add("c", "and", "a", "b")
    nl.add_output("s")
    nl.add_output("c")
    return nl


class TestModel:
    def test_arity_checked(self):
        with pytest.raises(NetlistError):
            Gate("g", "and", ("a",))

    def test_unknown_kind(self):
        with pytest.raises(NetlistError):
            Gate("g", "nandx", ("a", "b"))

    def test_duplicate_gate(self):
        nl = half_adder()
        with pytest.raises(NetlistError):
            nl.add("a", "input")

    def test_undriven_output_caught(self):
        nl = half_adder()
        nl.add_output("zz")
        with pytest.raises(NetlistError):
            nl.validate()

    def test_undriven_gate_input_caught(self):
        nl = Netlist("t")
        nl.add("g", "not", "missing")
        with pytest.raises(NetlistError):
            nl.topo_order()

    def test_combinational_cycle_caught(self):
        nl = Netlist("t")
        nl.add("x", "not", "y")
        nl.add("y", "not", "x")
        with pytest.raises(NetlistError, match="cycle"):
            nl.topo_order()

    def test_dff_breaks_cycle(self):
        nl = Netlist("t")
        nl.add("q", "dff", "d")
        nl.add("d", "not", "q")
        nl.add_output("q")
        nl.validate()

    def test_topo_order_respects_deps(self):
        nl = half_adder()
        order = nl.topo_order()
        assert order.index("a") < order.index("s")
        assert order.index("b") < order.index("c")

    def test_counts(self):
        nl = half_adder()
        assert nl.num_gates() == 2
        assert nl.stats()["input"] == 2


class TestSimulate:
    @pytest.mark.parametrize(
        "a,b,s,c", [(0, 0, 0, 0), (0, 1, 1, 0), (1, 0, 1, 0), (1, 1, 0, 1)]
    )
    def test_half_adder_truth_table(self, a, b, s, c):
        vals, _ = simulate(half_adder(), {"a": a, "b": b})
        assert (vals["s"], vals["c"]) == (s, c)

    def test_parallel_matches_scalar(self):
        nl = half_adder()
        packed, _ = parallel_simulate(
            nl, {"a": 0b0011, "b": 0b0101}, width=4
        )
        for i in range(4):
            vals, _ = simulate(nl, {"a": (0b0011 >> i) & 1,
                                    "b": (0b0101 >> i) & 1})
            assert (packed["s"] >> i) & 1 == vals["s"]
            assert (packed["c"] >> i) & 1 == vals["c"]

    def test_all_gate_kinds(self):
        nl = Netlist("k")
        nl.add("a", "input")
        nl.add("b", "input")
        for kind in ("and", "or", "nand", "nor", "xor", "xnor"):
            nl.add(kind, kind, "a", "b")
            nl.add_output(kind)
        nl.add("n", "not", "a")
        nl.add("u", "buf", "a")
        nl.add("m", "mux", "a", "b", "u")
        nl.add_output("m")
        vals, _ = simulate(nl, {"a": 1, "b": 0})
        assert vals["and"] == 0 and vals["nand"] == 1
        assert vals["or"] == 1 and vals["nor"] == 0
        assert vals["xor"] == 1 and vals["xnor"] == 0
        assert vals["n"] == 0 and vals["u"] == 1
        assert vals["m"] == 0  # sel=1 -> b

    def test_dff_state_advances(self):
        nl = Netlist("cnt")
        nl.add("q", "dff", "d")
        nl.add("d", "not", "q")
        nl.add_output("q")
        trace = simulate_sequence(nl, [{}] * 4, width=1)
        assert [t["q"] for t in trace] == [0, 1, 0, 1]

    def test_forced_net_override(self):
        nl = half_adder()
        vals, _ = parallel_simulate(
            nl, {"a": 1, "b": 1}, width=1, forced={"s": 1}
        )
        assert vals["s"] == 1  # stuck-at-1 despite a^b == 0

    def test_constants(self):
        nl = Netlist("c")
        nl.add("one", "const1")
        nl.add("zero", "const0")
        nl.add("y", "and", "one", "zero")
        nl.add_output("y")
        vals, _ = parallel_simulate(nl, {}, width=8)
        assert vals["one"] == 0xFF and vals["y"] == 0


class TestValidate:
    def test_multi_driven_net_rejected(self):
        nl = half_adder()
        # add() refuses duplicates, so multi-drive can only appear via
        # in-place surgery -- exactly what validate() must catch.
        nl.gates["s2"] = Gate("s", "or", ("a", "b"))
        nl.invalidate()
        with pytest.raises(NetlistError, match="multi-driven"):
            nl.validate()

    def test_renamed_gate_rejected(self):
        nl = half_adder()
        nl.gates["s"] = Gate("sum", "xor", ("a", "b"))
        nl.invalidate()
        with pytest.raises(NetlistError, match="sum"):
            nl.validate()

    def test_dangling_net_needs_strict(self):
        nl = half_adder()
        nl.add("dead", "and", "a", "b")  # drives nothing, observed nowhere
        nl.validate()  # legal pre-sweep
        with pytest.raises(NetlistError, match="dangling.*dead"):
            nl.validate(strict=True)

    def test_strict_accepts_swept_netlist(self):
        from repro.gatelevel.gates import sweep_dead_logic

        nl = half_adder()
        nl.add("dead", "and", "a", "b")
        sweep_dead_logic(nl).validate(strict=True)

    def test_kernel_compile_reports_netlist_error(self):
        pytest.importorskip("numpy")
        from repro.gatelevel.kernel import CompiledNetlist

        nl = half_adder()
        nl.gates["s"] = Gate("sum", "xor", ("a", "b"))
        nl.invalidate()
        # A clear NetlistError at compile entry, not a numpy shape
        # error three layers down.
        with pytest.raises(NetlistError, match="sum"):
            CompiledNetlist(nl)
