"""Fused multi-design execution: byte-identity to serial runs.

The contract under test (docs/batched_kernel.md): every ``*_many``
entry point in :mod:`repro.gatelevel.batch` returns results
byte-identical to running its single-design twin once per design --
across both backends, shard counts 1/2/4, drop/keep modes, collapse
on/off, and arbitrary corpus composition (mixed sizes, mixed
DFF/combinational designs).  Plus: the hand-built d_machine CPU builds
at >= 5k gates and runs end-to-end through its registered flow, and
the serve scheduler's coalescing window fuses compatible submissions
without changing a single result byte.
"""

from __future__ import annotations

import asyncio
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.gatelevel import batch, fault_sim, genscale
from repro.gatelevel.batch import (
    MaskJob,
    SeqJob,
    SimJob,
    bist_attribution_many,
    detect_masks_many,
    fault_simulate_many,
    random_coverage_many,
    resolve_batch,
    resolve_batch_window,
)
from repro.gatelevel.bist_session import (
    _default_checkpoints,
    bist_fault_attribution,
    session_configuration,
)
from repro.gatelevel.fault_sim import fault_simulate_cycles
from repro.gatelevel.faults import all_faults
from repro.gatelevel.kernel import compiled, have_kernel
from repro.knobs import KnobError
from tests.test_kernel_equivalence import _sequence, netlists

pytestmark = pytest.mark.skipif(
    not have_kernel(), reason="fused kernel needs numpy"
)


@st.composite
def corpora(draw):
    """2-4 random designs of mixed size and state (DFF/comb mix)."""
    n = draw(st.integers(2, 4))
    return [draw(netlists()) for _ in range(n)]


def _sim_jobs(designs, n_cycles=2, width=8, drop=False, seed=7):
    jobs = []
    for k, nl in enumerate(designs):
        jobs.append(SimJob(
            nl, all_faults(nl), _sequence(nl, width, n_cycles,
                                          seed=seed + k),
            width=width, drop_detected=drop,
        ))
    return jobs


# -- fused combinational fault simulation ----------------------------------

class TestFusedFaultSim:
    @settings(max_examples=12, deadline=None)
    @given(designs=corpora(), drop=st.booleans())
    def test_batched_equals_serial_both_backends(self, designs, drop):
        jobs = _sim_jobs(designs, drop=drop)
        fused = fault_simulate_many(
            jobs, backend="kernel", shards=1, batch=True, collapse=False
        )
        for job, got in zip(jobs, fused):
            for backend in ("kernel", "interp"):
                ref = fault_simulate_cycles(
                    job.netlist, job.faults, job.pi_sequence,
                    width=job.width, drop_detected=drop,
                    backend=backend, shards=1, collapse=False,
                )
                assert got == ref
                assert list(got) == list(ref)  # ordering too

    @settings(max_examples=8, deadline=None)
    @given(designs=corpora())
    def test_collapse_expansion_matches_full_universe(self, designs):
        jobs = _sim_jobs(designs)
        collapsed = fault_simulate_many(
            jobs, backend="kernel", shards=1, batch=True, collapse=True
        )
        full = fault_simulate_many(
            jobs, backend="kernel", shards=1, batch=True, collapse=False
        )
        assert collapsed == full

    def test_mixed_signatures_never_fuse_wider(self):
        """Jobs with different cycle counts group apart and still
        come back in submission order."""
        designs = [genscale.generate_netlist(80, seed=s)
                   for s in (1, 2, 3, 4)]
        jobs = []
        for k, nl in enumerate(designs):
            cycles = 2 if k % 2 == 0 else 3
            jobs.append(SimJob(nl, all_faults(nl),
                               _sequence(nl, 8, cycles, seed=k),
                               width=8))
        fused = fault_simulate_many(jobs, backend="kernel", shards=1,
                                    batch=True, collapse=False)
        for job, got in zip(jobs, fused):
            ref = fault_simulate_cycles(
                job.netlist, job.faults, job.pi_sequence, width=8,
                backend="kernel", shards=1, collapse=False,
            )
            assert got == ref

    def test_batch_off_and_interp_fall_back(self):
        designs = [genscale.generate_netlist(60, seed=s) for s in (5, 6)]
        jobs = _sim_jobs(designs)
        ref = [fault_simulate_cycles(
            j.netlist, j.faults, j.pi_sequence, width=j.width,
            backend="kernel", shards=1, collapse=False,
        ) for j in jobs]
        assert fault_simulate_many(jobs, backend="kernel", shards=1,
                                   batch=False, collapse=False) == ref
        assert fault_simulate_many(jobs, backend="interp", shards=1,
                                   batch=True, collapse=False) == ref

    def test_occupancy_metrics_recorded(self):
        from repro.flow.metrics import collect

        designs = [genscale.generate_netlist(60, seed=s) for s in (7, 8)]
        jobs = _sim_jobs(designs)
        before = batch.batch_stats()["fused_calls"]
        with collect() as custom:
            fault_simulate_many(jobs, backend="kernel", shards=1,
                                batch=True, collapse=False)
        stats = batch.batch_stats()
        assert stats["fused_calls"] == before + 1
        assert stats["last_designs"] == 2
        assert 0.0 < stats["last_fill_ratio"] <= 1.0
        assert custom["batch_designs"] == 2
        assert custom["batch_rows"] == stats["last_rows"]


# -- shard identity ---------------------------------------------------------

class TestShardIdentity:
    def test_fused_sharded_identical_1_2_4(self, monkeypatch):
        monkeypatch.setattr(fault_sim, "MIN_FAULTS_PER_SHARD", 4)
        designs = [genscale.generate_netlist(120, seed=s)
                   for s in (11, 12, 13, 14)]
        jobs = _sim_jobs(designs, n_cycles=2, width=8)
        runs = {
            shards: fault_simulate_many(
                jobs, backend="kernel", shards=shards, batch=True,
                collapse=False,
            )
            for shards in (1, 2, 4)
        }
        assert runs[1] == runs[2] == runs[4]
        for res1, res2, res4 in zip(runs[1], runs[2], runs[4]):
            assert list(res1) == list(res2) == list(res4)
        serial = [fault_simulate_cycles(
            j.netlist, j.faults, j.pi_sequence, width=8,
            backend="kernel", shards=1, collapse=False,
        ) for j in jobs]
        assert runs[1] == serial


# -- fused detect masks -----------------------------------------------------

class TestDetectMasks:
    @settings(max_examples=10, deadline=None)
    @given(designs=corpora())
    def test_batched_masks_equal_serial(self, designs):
        rng = random.Random(17)
        jobs = [
            MaskJob(nl, all_faults(nl),
                    {pi: rng.getrandbits(8) for pi in nl.inputs()},
                    width=8)
            for nl in designs
        ]
        fused = detect_masks_many(jobs, batch=True)
        for job, got in zip(jobs, fused):
            ref = compiled(job.netlist).detect_masks(
                job.faults, job.pi_values, job.state, job.width
            )
            assert got == ref
            assert list(got) == list(ref)


# -- fused sequential free-runs and BIST attribution ------------------------

def _bist_items(seeds, n_faults=24):
    items = []
    for seed in seeds:
        nl = genscale.generate_netlist(150, seed=seed, signature_bits=8)
        hw = genscale.bist_wrap(nl)
        faults = genscale.sample_faults(hw.netlist, n_faults, seed=seed)
        items.append((hw, [["u0"]], faults))
    return items


class TestSequentialDetect:
    def test_fused_free_runs_equal_serial(self):
        from repro.gatelevel.batch import sequential_detect_many

        marks = _default_checkpoints(32)
        jobs = []
        for hw, sessions, faults in _bist_items((21, 22, 23)):
            cfg = session_configuration(hw, sessions[0])
            observe = [net for bits in hw.signature_bit_nets().values()
                       for net in bits]
            jobs.append(SeqJob(hw.netlist, faults, cfg, marks, observe))
        fused = sequential_detect_many(jobs, batch=True)
        for job, got in zip(jobs, fused):
            ref = compiled(job.netlist).sequential_fault_detect(
                job.faults, job.pi_values, list(job.checkpoints),
                job.observe,
            )
            assert got == ref
            assert list(got) == list(ref)


class TestBistAttribution:
    def test_batched_attribution_equals_serial(self):
        items = _bist_items((31, 32, 33))
        fused = bist_attribution_many(items, cycles=32, batch=True,
                                      collapse=False)
        for (hw, sessions, faults), got in zip(items, fused):
            ref = bist_fault_attribution(
                hw, sessions=sessions, cycles=32, faults=faults,
                collapse=False,
            )
            assert got == ref
            assert list(got) == list(ref)

    def test_batched_attribution_collapse_identity(self):
        items = _bist_items((34, 35))
        assert bist_attribution_many(
            items, cycles=32, batch=True, collapse=True
        ) == bist_attribution_many(
            items, cycles=32, batch=True, collapse=False
        )


# -- fused corpus coverage --------------------------------------------------

class TestRandomCoverageMany:
    @pytest.mark.parametrize("backend", ["kernel", "interp"])
    def test_corpus_coverage_equals_serial(self, backend):
        from repro.gatelevel.random_patterns import (
            random_pattern_coverage,
        )

        designs = [genscale.generate_netlist(g, seed=s)
                   for g, s in ((80, 41), (150, 42), (120, 43))]
        fused = random_coverage_many(
            designs, n_patterns=96, seed=3, backend=backend,
            batch=True, collapse=True,
        )
        serial = [random_pattern_coverage(
            nl, n_patterns=96, seed=3, backend=backend, collapse=True,
        ) for nl in designs]
        assert fused == serial

    def test_corpus_coverage_shard_identity(self, monkeypatch):
        monkeypatch.setattr(fault_sim, "MIN_FAULTS_PER_SHARD", 4)
        designs = [genscale.generate_netlist(100, seed=s)
                   for s in (44, 45, 46, 47)]
        runs = {
            shards: random_coverage_many(
                designs, n_patterns=64, seed=3, shards=shards,
                batch=True,
            )
            for shards in (1, 2, 4)
        }
        assert runs[1] == runs[2] == runs[4]


# -- hierarchical width-packing ---------------------------------------------

class TestHierPacking:
    def test_hier_apply_packed_equals_per_test(self):
        from repro.flow.flows import hierarchical_flow
        from repro.flow.runner import Runner

        packed = Runner().run(hierarchical_flow(batch=True))
        solo = Runner().run(hierarchical_flow(batch=False))
        assert packed.ok and solo.ok
        assert (packed.artifacts["hier_detected"]
                == solo.artifacts["hier_detected"])


# -- the d_machine CPU ------------------------------------------------------

class TestDmachine:
    def test_default_build_is_cpu_scale(self):
        from repro.designs import build_dmachine

        nl = build_dmachine()
        nl.validate(strict=True)
        assert nl.num_gates() >= 5000
        assert len(nl.dffs()) >= 500
        assert len(nl.scan_dffs()) == len(nl.dffs())  # full scan

    def test_scan_modes_and_bist_variant(self):
        from repro.designs import build_dmachine, dmachine_bist

        core = build_dmachine(width=8, nregs=4, ram_words=8,
                              scan="core")
        none = build_dmachine(width=8, nregs=4, ram_words=8,
                              scan="none")
        assert 0 < len(core.scan_dffs()) < len(core.dffs())
        assert len(none.scan_dffs()) == 0
        hw = dmachine_bist(width=8, nregs=4, ram_words=8)
        assert hw.signature_registers == ("sr0",)

    def test_resolve_design_specs(self):
        from repro.designs import resolve_design
        from repro.gatelevel.gates import NetlistError

        assert resolve_design("dmachine:8:4:8").num_gates() > 100
        assert resolve_design("gs:200:3").num_gates() > 100
        with pytest.raises(NetlistError):
            resolve_design("dmachine:8:oops:8")
        with pytest.raises(NetlistError):
            resolve_design("warp-core")

    def test_dmachine_flow_end_to_end(self):
        """The registered flow: scan-selection, ATPG, random patterns
        and BIST all complete on a small build."""
        from repro.flow.flows import dmachine_flow
        from repro.flow.runner import Runner

        result = Runner().run(dmachine_flow(
            width=8, nregs=4, ram_words=8, n_faults=40, patterns=32,
            bist_cycles=16, backtracks=60,
        ))
        assert result.ok
        table = result.artifacts["table"]
        assert [row[0] for row in table["rows"]] == [
            "scan-select", "atpg", "random", "bist"]

    def test_coverage_flow_accepts_dmachine_spec(self):
        from repro.flow.flows import coverage_flow
        from repro.flow.runner import Runner

        result = Runner().run(coverage_flow(
            design="dmachine:8:4:8", n_patterns=32))
        assert result.ok
        assert result.artifacts["cov_row"][0] == "dmachine:8:4:8"


# -- serve coalescing -------------------------------------------------------

class TestServeCoalescing:
    def _run_group(self, window):
        from repro.serve.scheduler import Scheduler

        async def go():
            sched = Scheduler(workers=1, batch_window=window)
            await sched.start()
            jobs = [
                await sched.submit(
                    "coverage",
                    {"design": f"gs:200:{seed}", "n_patterns": 32},
                )
                for seed in (3, 4, 5)
            ]
            await asyncio.gather(*[
                asyncio.wait_for(j.execution.done.wait(), 120)
                for j in jobs
            ])
            results = [j.execution.result for j in jobs]
            stats = sched.stats()
            await sched.close()
            return results, stats

        return asyncio.run(go())

    def test_coalesced_results_byte_identical_to_solo(self):
        solo, solo_stats = self._run_group(0.0)
        fused, fused_stats = self._run_group(0.2)
        assert solo_stats["counters"]["batches"] == 0
        assert fused_stats["counters"]["batches"] >= 1
        assert fused_stats["counters"]["batch_fused"] >= 2
        for a, b in zip(solo, fused):
            assert a is not None and b is not None
            assert a["rendered"] == b["rendered"]
            assert a["artifacts"] == b["artifacts"]
            assert a["omitted"] == b["omitted"]
            assert a["keys"] == b["keys"]
            assert a["ok"] and b["ok"]

    def test_server_forks_pool_before_serving(self, tmp_path):
        # Startup must prewarm the worker pool while only the event
        # loop thread is running.  A lazy first-submit fork from a
        # request thread can inherit an importlib lock held by a
        # concurrent coalesced batch run mid-import, deadlocking the
        # child worker on its first numpy attribute access.
        from repro.serve.client import ServeClient
        from repro.serve.server import BackgroundServer

        with BackgroundServer(port=0, cache_dir=str(tmp_path),
                              batch_window=0.2) as bg:
            client = ServeClient(bg.url)
            client.wait_until_up()
            pool = client.healthz()["pool"]
            assert pool["alive"]
            assert pool["builds"] >= 1
            client.shutdown()

    def test_incompatible_params_do_not_fuse(self):
        from repro.serve.scheduler import Scheduler

        async def go():
            sched = Scheduler(workers=1, batch_window=0.2)
            await sched.start()
            jobs = [
                await sched.submit(
                    "coverage",
                    {"design": "gs:200:6", "n_patterns": 32},
                ),
                await sched.submit(
                    "coverage",
                    {"design": "gs:200:7", "n_patterns": 64},
                ),
            ]
            await asyncio.gather(*[
                asyncio.wait_for(j.execution.done.wait(), 120)
                for j in jobs
            ])
            stats = sched.stats()
            ok = all(j.execution.state == "done" for j in jobs)
            await sched.close()
            return stats, ok

        stats, ok = asyncio.run(go())
        assert ok
        assert stats["counters"]["batches"] == 0


# -- knobs ------------------------------------------------------------------

class TestBatchKnobs:
    def test_kernel_batch_flag(self, monkeypatch):
        assert resolve_batch(None) is True  # default on
        monkeypatch.setenv(batch.BATCH_ENV, "0")
        assert resolve_batch(None) is False
        assert resolve_batch(True) is True  # arg wins
        monkeypatch.setenv(batch.BATCH_ENV, "maybe")
        with pytest.raises(KnobError):
            resolve_batch(None)

    def test_serve_batch_window(self, monkeypatch):
        assert resolve_batch_window(None) == 0.0
        monkeypatch.setenv(batch.WINDOW_ENV, "0.25")
        assert resolve_batch_window(None) == 0.25
        assert resolve_batch_window(1.5) == 1.5  # arg wins
        monkeypatch.setenv(batch.WINDOW_ENV, "-3")
        assert resolve_batch_window(None) == 0.0  # clamped
        monkeypatch.setenv(batch.WINDOW_ENV, "soon")
        with pytest.raises(KnobError):
            resolve_batch_window(None)

    def test_knobs_registered(self):
        from repro.knobs import KNOWN_KNOBS

        assert batch.BATCH_ENV in KNOWN_KNOBS
        assert batch.WINDOW_ENV in KNOWN_KNOBS
