"""Tests for test-behavior insertion and the three-session scheme."""

import random

from repro.cdfg import suite
from repro.cdfg.interpret import equivalent_behavior, functional_mode_inputs
from repro.bist.test_behavior import (
    insert_test_behavior,
    signal_coverage,
    three_session_plan,
)


class TestSignalCoverage:
    def test_inputs_have_high_coverage(self, diffeq):
        cov = signal_coverage(diffeq, n_vectors=64, k=3)
        assert cov["x"] > 0.9

    def test_all_variables_scored(self, diffeq):
        cov = signal_coverage(diffeq)
        assert set(cov) == set(diffeq.variables)

    def test_values_bounded(self, diffeq):
        cov = signal_coverage(diffeq)
        assert all(0.0 <= v <= 1.0 for v in cov.values())


class TestInsertion:
    def test_points_target_lowest_coverage(self, diffeq):
        res = insert_test_behavior(diffeq, coverage_threshold=0.95,
                                   max_points=2)
        internals = [
            v.name for v in diffeq.variables.values()
            if not v.is_input and not v.is_output
        ]
        worst = min(internals, key=lambda v: res.coverage_before[v])
        assert worst in res.controlled_variables

    def test_no_points_when_everything_covered(self, diffeq):
        res = insert_test_behavior(diffeq, coverage_threshold=0.0)
        assert res.controlled_variables == ()
        assert res.modified is diffeq

    def test_budget_respected(self, diffeq):
        res = insert_test_behavior(diffeq, coverage_threshold=1.0,
                                   max_points=3)
        assert len(res.controlled_variables) <= 3

    def test_functional_mode_preserved(self, diffeq):
        res = insert_test_behavior(diffeq, coverage_threshold=0.9,
                                   max_points=2)
        rng = random.Random(0)
        stream = [
            {v.name: rng.randrange(256) for v in diffeq.primary_inputs()}
            for _ in range(6)
        ]
        assert equivalent_behavior(
            diffeq, res.modified, stream,
            functional_mode_inputs(res.modified, diffeq),
        )

    def test_tpgr_sr_accounting(self, diffeq):
        res = insert_test_behavior(diffeq, coverage_threshold=0.9,
                                   max_points=2)
        assert res.extra_tpgrs == len(res.controlled_variables)
        assert res.extra_srs in (0, 1)


class TestThreeSessions:
    def test_always_three(self, diffeq, iir2):
        for c in (diffeq, iir2):
            res = insert_test_behavior(c, coverage_threshold=0.9)
            plan = three_session_plan(res)
            assert plan.num_sessions == 3

    def test_sessions_name_fus_controller_interconnect(self, diffeq):
        res = insert_test_behavior(diffeq)
        plan = three_session_plan(res)
        assert ("controller",) in plan.sessions
        assert ("interconnect",) in plan.sessions
