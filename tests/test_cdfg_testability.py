"""Tests for behavioral testability analysis ([9] classification)."""

from repro.cdfg import suite, testability


class TestAnalyze:
    def test_inputs_are_controllable(self, diffeq):
        recs = testability.analyze(diffeq)
        assert recs["x"].control_depth == 0
        assert recs["x"].controllability == testability.CONTROLLABLE

    def test_outputs_are_observable(self, diffeq):
        recs = testability.analyze(diffeq)
        assert recs["u1"].observe_depth == 0
        assert recs["u1"].observability == testability.OBSERVABLE

    def test_internal_depths(self, diffeq):
        recs = testability.analyze(diffeq)
        assert recs["m4"].control_depth == 2  # via m1 or m2
        assert recs["m4"].observe_depth == 2  # -1 then -2

    def test_loop_membership(self, diffeq_loop):
        recs = testability.analyze(diffeq_loop)
        assert recs["u1"].on_loop
        assert not recs["c"].on_loop

    def test_loop_penalty_in_score(self, diffeq_loop):
        recs = testability.analyze(diffeq_loop)
        base = recs["u1"].score(loop_penalty=0)
        assert recs["u1"].score(loop_penalty=5) == base + 5


class TestHardest:
    def test_excludes_primary_io(self, diffeq):
        hard = testability.hardest_variables(diffeq, 5)
        io = {v.name for v in diffeq.primary_inputs()} | {
            v.name for v in diffeq.primary_outputs()
        }
        assert not set(hard) & io

    def test_count_respected(self, diffeq):
        assert len(testability.hardest_variables(diffeq, 3)) == 3

    def test_deep_variable_ranked_hard(self, diffeq):
        hard = testability.hardest_variables(diffeq, 3)
        assert "m4" in hard or "m1" in hard
