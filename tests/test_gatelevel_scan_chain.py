"""Tests for scan-chain stitching and the shift/capture protocol."""

import pytest

from repro.cdfg import suite
from repro.gatelevel.atpg import combinational_atpg
from repro.gatelevel.expand import expand_datapath
from repro.gatelevel.faults import Fault, all_faults
from repro.gatelevel.scan_chain import (
    apply_scan_test,
    scan_test_detects,
    stitch_scan_chain,
)
from tests.conftest import synthesize


@pytest.fixture
def chained_figure1():
    dp, *_ = synthesize(suite.figure1(width=3))
    dp.mark_scan(*[r.name for r in dp.registers])
    nl, _ = expand_datapath(dp)
    chained, chain = stitch_scan_chain(nl)
    return nl, chained, chain


class TestStitching:
    def test_chain_covers_all_scan_ffs(self, chained_figure1):
        nl, chained, chain = chained_figure1
        assert sorted(chain.order) == sorted(
            g.name for g in nl.scan_dffs()
        )

    def test_adds_scan_ports(self, chained_figure1):
        _nl, chained, chain = chained_figure1
        ins = set(chained.inputs())
        assert {"scan_in", "scan_en"} <= ins
        assert chain.order[-1] in chained.outputs  # scan_out

    def test_functional_mode_unchanged(self, chained_figure1):
        """With scan_en=0 the chained netlist behaves like the original."""
        from repro.gatelevel.simulate import simulate_sequence

        nl, chained, chain = chained_figure1
        piv = {pi: (hash(pi) >> 3) & 1 for pi in nl.inputs()}
        piv2 = dict(piv, scan_en=0, scan_in=0)
        t1 = simulate_sequence(nl, [piv] * 4, width=1)
        t2 = simulate_sequence(chained, [piv2] * 4, width=1)
        for a, b in zip(t1, t2):
            for po in nl.outputs:
                assert a[po] == b[po]

    def test_bad_order_rejected(self, chained_figure1):
        nl, _c, chain = chained_figure1
        with pytest.raises(ValueError):
            stitch_scan_chain(nl, order=list(chain.order[:-1]))


class TestProtocol:
    def test_shift_in_reaches_all_ffs(self, chained_figure1):
        _nl, chained, chain = chained_figure1
        want = {ff: (i % 2) for i, ff in enumerate(chain.order)}
        # Use a capture-free check: shift in, then read DFF state by
        # simulating zero further cycles -- apply_scan_test captures
        # once, so instead verify via the captured response of an
        # all-zero-input capture: state gets clobbered by capture; so
        # here just assert the protocol runs and accounts its cycles.
        res = apply_scan_test(
            chained, chain, {pi: 0 for pi in chained.inputs()}, want
        )
        assert res.cycles_used == 2 * chain.length + 1

    def test_podem_tests_detect_through_protocol(self, chained_figure1):
        nl, chained, chain = chained_figure1
        faults = all_faults(nl)
        checked = 0
        ffs = set(chain.order)
        for f in faults[30:60]:
            res = combinational_atpg(nl, f, backtrack_limit=300)
            if not res.detected:
                continue
            piv = {k: v for k, v in res.test.items() if k not in ffs}
            sv = {k: v for k, v in res.test.items() if k in ffs}
            assert scan_test_detects(chained, chain, f, piv, sv), f
            checked += 1
            if checked >= 6:
                break
        assert checked >= 4

    def test_fault_on_chain_detected(self, chained_figure1):
        """A stuck scan-path mux breaks shifting and is observable."""
        _nl, chained, chain = chained_figure1
        mux = f"scanmux_{chain.order[0]}"
        f = Fault(mux, 0)
        detected = scan_test_detects(
            chained, chain, f,
            {pi: 0 for pi in chained.inputs()},
            {ff: 1 for ff in chain.order},
        )
        assert detected

    def test_capture_observes_functional_logic(self, chained_figure1):
        """Captured state equals the functional D values."""
        from repro.gatelevel.simulate import parallel_simulate

        nl, chained, chain = chained_figure1
        piv = {pi: 1 for pi in nl.inputs()}
        state = {ff: 0 for ff in chain.order}
        res = apply_scan_test(
            chained, chain, dict(piv), state
        )
        # reference: one functional cycle of the original netlist
        _vals, ref = parallel_simulate(nl, piv, state, width=1)
        for ff in chain.order:
            assert res.captured_state[ff] == ref[ff]


class TestMultipleChains:
    @pytest.fixture
    def nl(self):
        dp, *_ = synthesize(suite.figure1(width=3))
        dp.mark_scan(*[r.name for r in dp.registers])
        netlist, _ = expand_datapath(dp)
        return netlist

    def test_balanced_split(self, nl):
        _c, chain = stitch_scan_chain(nl, n_chains=3)
        lengths = [len(c) for c in chain.chains]
        assert max(lengths) - min(lengths) <= 1
        assert sum(lengths) == len(nl.scan_dffs())

    def test_per_chain_ports(self, nl):
        chained, chain = stitch_scan_chain(nl, n_chains=3)
        ins = set(chained.inputs())
        for k in range(len(chain.chains)):
            assert f"scan_in{k}" in ins
        for c in chain.chains:
            assert c[-1] in chained.outputs

    def test_parallel_shift_reduces_cycles(self, nl):
        chained1, one = stitch_scan_chain(nl, n_chains=1)
        chained3, three = stitch_scan_chain(nl, n_chains=3)
        piv = {pi: 0 for pi in nl.inputs()}
        sv = {g.name: 1 for g in nl.scan_dffs()}
        r1 = apply_scan_test(chained1, one, piv, sv)
        r3 = apply_scan_test(chained3, three, piv, sv)
        assert r3.cycles_used < r1.cycles_used
        assert r3.cycles_used == 2 * three.depth + 1

    def test_capture_identical_across_chain_counts(self, nl):
        """The protocol must load the same state regardless of how the
        FFs are split into chains."""
        from repro.gatelevel.simulate import parallel_simulate

        piv = {pi: 1 for pi in nl.inputs()}
        sv = {g.name: (i % 2) for i, g in enumerate(nl.scan_dffs())}
        results = []
        for n in (1, 2, 4):
            chained, chain = stitch_scan_chain(nl, n_chains=n)
            results.append(
                apply_scan_test(chained, chain, dict(piv), sv)
            )
        ref = results[0].captured_state
        for r in results[1:]:
            assert r.captured_state == ref

    def test_detection_works_with_chains(self, nl):
        chained, chain = stitch_scan_chain(nl, n_chains=2)
        faults = all_faults(nl)
        ffs = set(chain.order)
        found = 0
        for f in faults[30:50]:
            res = combinational_atpg(nl, f, backtrack_limit=300)
            if not res.detected:
                continue
            piv = {k: v for k, v in res.test.items() if k not in ffs}
            sv = {k: v for k, v in res.test.items() if k in ffs}
            assert scan_test_detects(chained, chain, f, piv, sv), f
            found += 1
            if found >= 3:
                break
        assert found >= 2

    def test_more_chains_than_ffs_clamped(self, nl):
        _c, chain = stitch_scan_chain(nl, n_chains=500)
        assert len(chain.chains) == len(nl.scan_dffs())

    def test_zero_chains_rejected(self, nl):
        with pytest.raises(ValueError):
            stitch_scan_chain(nl, n_chains=0)
