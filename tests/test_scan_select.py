"""Tests for CDFG scan-variable selection [33] and plans."""

import pytest

from repro.cdfg import suite
from repro.cdfg.analysis import cdfg_loops, unbroken_loops
from repro.hls.scheduling import asap
from repro.scan.report import ScanPlan
from repro.scan.scan_select import (
    assign_registers_with_plan,
    scan_register_names,
    select_scan_variables,
)


class TestSelection:
    @pytest.mark.parametrize("name", ["diffeq_loop", "iir2", "ar4", "ewf"])
    def test_breaks_all_loops(self, name):
        c = suite.standard_suite()[name]
        plan = select_scan_variables(c)
        loops = cdfg_loops(c, bound=2000)
        assert unbroken_loops(loops, plan.variables) == []

    def test_empty_plan_on_acyclic(self, figure1):
        plan = select_scan_variables(figure1)
        assert plan.num_scan_registers == 0

    def test_groups_lifetime_disjoint(self, iir2):
        s = asap(iir2)
        plan = select_scan_variables(iir2, s)
        plan.verify(iir2, s)  # raises on overlap

    def test_sharing_beats_one_register_per_variable(self, iir2):
        plan = select_scan_variables(iir2)
        assert plan.num_scan_registers <= len(plan.variables)

    def test_deterministic(self, iir2):
        assert (
            select_scan_variables(iir2).groups
            == select_scan_variables(iir2).groups
        )


class TestPlanAwareAssignment:
    def test_groups_land_in_one_register_each(self, iir2):
        s = asap(iir2)
        plan = select_scan_variables(iir2, s)
        ra = assign_registers_with_plan(iir2, s, plan)
        names = scan_register_names(plan, ra)
        assert len(names) == plan.num_scan_registers

    def test_all_variables_assigned(self, iir2):
        s = asap(iir2)
        plan = select_scan_variables(iir2, s)
        ra = assign_registers_with_plan(iir2, s, plan)
        assert set(ra.register_of) == set(iir2.variables)

    def test_nonscan_variables_can_share_scan_registers(self, iir2):
        s = asap(iir2)
        plan = select_scan_variables(iir2, s)
        ra = assign_registers_with_plan(iir2, s, plan)
        scan_regs = {
            int(n[1:]) for n in scan_register_names(plan, ra)
        }
        extra = [
            v for v, r in ra.register_of.items()
            if r in scan_regs and v not in plan.variables
        ]
        # sharing is the whole point -- at least sometimes it happens
        assert isinstance(extra, list)

    def test_mismatched_plan_rejected(self, iir2):
        s = asap(iir2)
        lts_vars = sorted(iir2.variables)[:2]
        bogus = ScanPlan((tuple(lts_vars),))
        from repro.cdfg.lifetimes import variable_lifetimes

        lt = variable_lifetimes(iir2, s.steps)
        if lt[lts_vars[0]].overlaps(lt[lts_vars[1]]):
            with pytest.raises(ValueError):
                assign_registers_with_plan(iir2, s, bogus)
