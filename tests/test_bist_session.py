"""Tests for in-situ gate-level BIST execution."""

import pytest

from repro.cdfg import suite
from repro.bist import assign_test_roles, schedule_sessions
from repro.gatelevel.bist_session import (
    bist_fault_coverage,
    build_bist_hardware,
    run_signature,
    session_configuration,
)
from repro.gatelevel.faults import Fault, all_faults
from tests.conftest import synthesize


@pytest.fixture
def hardware():
    dp, *_ = synthesize(suite.iir_biquad(1, width=4), slack=1.5)
    _cfg, envs = assign_test_roles(dp)
    hw = build_bist_hardware(dp, envs)
    return dp, hw, envs


class TestHardware:
    def test_bist_en_added(self, hardware):
        _dp, hw, _envs = hardware
        assert "bist_en" in hw.netlist.inputs()

    def test_signature_registers_from_roles(self, hardware):
        _dp, hw, envs = hardware
        assert set(hw.signature_registers) == {
            e.sr_register for e in envs
        }

    def test_functional_mode_preserved(self, hardware):
        """bist_en=0 must leave the data path functionally intact."""
        from repro.gatelevel.simulate import simulate_sequence

        dp, hw, _envs = hardware
        from repro.gatelevel.expand import expand_datapath

        plain, _ = expand_datapath(dp)
        piv_plain = {pi: (hash(pi) >> 2) & 1 for pi in plain.inputs()}
        piv_bist = dict(piv_plain, bist_en=0)
        t1 = simulate_sequence(plain, [piv_plain] * 4, width=1)
        t2 = simulate_sequence(hw.netlist, [piv_bist] * 4, width=1)
        for a, b in zip(t1, t2):
            for po in plain.outputs:
                assert a[po] == b[po]


class TestSignatures:
    def test_deterministic(self, hardware):
        _dp, hw, envs = hardware
        cfg = session_configuration(hw, [envs[0].unit])
        assert run_signature(hw, cfg, 32) == run_signature(hw, cfg, 32)

    def test_evolves_with_cycles(self, hardware):
        _dp, hw, envs = hardware
        cfg = session_configuration(hw, [envs[0].unit])
        assert run_signature(hw, cfg, 32) != run_signature(hw, cfg, 33)

    def test_tpgr_escapes_zero_state(self, hardware):
        """XNOR feedback: the all-zero reset state must not lock up."""
        _dp, hw, envs = hardware
        cfg = session_configuration(hw, [envs[0].unit])
        nl = hw.netlist
        from repro.gatelevel.simulate import parallel_simulate

        order = nl.topo_order()
        state = {}
        _v, state = parallel_simulate(nl, cfg, state, 1, order)
        _v, state = parallel_simulate(nl, cfg, state, 1, order)
        tpgrs = [r for r, role in hw.role_map.items() if role == "TPGR"]
        live = any(
            any(state.get(f"{r}_b{i}", 0) for i in range(8))
            for r in tpgrs
        )
        assert live


class TestCoverage:
    def test_detects_unit_faults(self, hardware):
        _dp, hw, _envs = hardware
        unit_faults = [
            f for f in all_faults(hw.netlist)
            if f.net.startswith(("fa_", "pp_"))
        ][:60]
        cov = bist_fault_coverage(hw, cycles=64, faults=unit_faults)
        assert cov >= 0.75

    def test_sessions_improve_shared_sr_coverage(self, hardware):
        """The executable [20] story: a shared SR forces sessions."""
        dp, hw, envs = hardware
        sessions = schedule_sessions(list(envs))
        if len(sessions) < 2:
            pytest.skip("no SR sharing on this binding")
        faults = all_faults(hw.netlist)[:100]
        one = bist_fault_coverage(
            hw, sessions=[[u.name for u in dp.units]],
            cycles=48, faults=faults,
        )
        multi = bist_fault_coverage(
            hw, sessions=sessions, cycles=48, faults=faults
        )
        assert multi >= one

    def test_undetectable_without_bist_path(self, hardware):
        """A fault on a net outside every steered cone stays silent."""
        _dp, hw, _envs = hardware
        # bist_en stuck at 1 cannot change the signature (it is 1)
        cfgs = [session_configuration(hw, [e.unit]) for e in hw.envs]
        golden = run_signature(hw, cfgs[0], 24)
        sig = run_signature(
            hw, cfgs[0], 24, forced={hw.control["bist_en"]: 1}
        )
        assert sig == golden
