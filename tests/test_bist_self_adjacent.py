"""Tests for self-adjacency-minimising BIST register assignment [3]."""

import pytest

from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro.bist.self_adjacent import (
    avra_test_overhead,
    bist_register_assignment,
    module_io_conflicts,
    self_adjacent_registers,
)
from repro.hls import (
    allocate_for_latency,
    assign_registers_left_edge,
    bind_functional_units,
    build_datapath,
    list_schedule,
)


def flows(c, slack=1.6):
    lat = int(slack * critical_path_length(c))
    alloc = allocate_for_latency(c, lat)
    sched = list_schedule(c, alloc)
    fub = bind_functional_units(c, sched, alloc)
    conv = build_datapath(c, sched, fub, assign_registers_left_edge(c, sched))
    avra = build_datapath(
        c, sched, fub, bist_register_assignment(c, sched, fub)
    )
    return conv, avra


class TestConflicts:
    def test_module_io_pairs_found(self, figure1):
        from repro.hls import Allocation

        alloc = Allocation({"alu": 2})
        sched = list_schedule(figure1, alloc)
        fub = bind_functional_units(figure1, sched, alloc)
        conflicts = module_io_conflicts(figure1, fub)
        assert conflicts  # adders read and write shared variables
        assert all(a < b for a, b in conflicts)


class TestAssignment:
    @pytest.mark.parametrize(
        "name",
        ["figure1", "diffeq", "tseng", "iir2", "ar4", "ewf", "fir8"],
    )
    def test_never_more_self_adjacent(self, name):
        conv, avra = flows(suite.standard_suite()[name])
        assert len(self_adjacent_registers(avra)) <= len(
            self_adjacent_registers(conv)
        )

    @pytest.mark.parametrize("name", ["figure1", "diffeq", "iir2"])
    def test_register_count_not_worse(self, name):
        conv, avra = flows(suite.standard_suite()[name])
        assert len(avra.registers) <= len(conv.registers)

    def test_strict_improvement_somewhere(self):
        improved = 0
        for name in ("diffeq", "diffeq_loop", "iir3", "ar6"):
            conv, avra = flows(suite.standard_suite()[name])
            if len(self_adjacent_registers(avra)) < len(
                self_adjacent_registers(conv)
            ):
                improved += 1
        assert improved >= 2

    def test_overhead_tracks_self_adjacency(self, diffeq):
        conv, avra = flows(diffeq)
        assert avra_test_overhead(avra) <= avra_test_overhead(conv)


class TestDetection:
    def test_self_adjacent_definition(self):
        """A register both read and written by the same unit is listed."""
        from repro.survey import figure1_datapath

        dp = figure1_datapath("c")
        sa = self_adjacent_registers(dp)
        assert "R0" in sa  # the chain register of variant (c)
