"""Tests for boundary-variable scan selection [24]."""

import pytest

from repro.cdfg import suite
from repro.cdfg.analysis import cdfg_loops, unbroken_loops
from repro.scan.boundary import boundary_variables, select_boundary_variables


class TestBoundaryVariables:
    def test_detects_carried_reads(self, iir2):
        bv = boundary_variables(iir2)
        assert "w0" in bv and "w1_0" in bv

    def test_acyclic_with_carried_chain(self):
        c = suite.fir(4)
        bv = boundary_variables(c)
        assert bv  # delay-line taps are carried
        assert not cdfg_loops(c, bound=1)


class TestSelection:
    @pytest.mark.parametrize("name", ["diffeq_loop", "iir2", "ar4"])
    def test_breaks_all_loops(self, name):
        c = suite.standard_suite()[name]
        plan = select_boundary_variables(c)
        loops = cdfg_loops(c, bound=2000)
        assert unbroken_loops(loops, plan.variables) == []

    def test_one_register_per_boundary_variable(self, iir2):
        plan = select_boundary_variables(iir2)
        assert all(len(g) == 1 for g in plan.groups)

    def test_only_boundary_variables_selected(self, iir2):
        plan = select_boundary_variables(iir2)
        assert plan.variables <= boundary_variables(iir2)

    def test_acyclic_needs_nothing(self, figure1):
        assert select_boundary_variables(figure1).groups == ()

    def test_typically_at_most_scan_select_plus_margin(self, iir2):
        """[24] uses one register per boundary variable: never fewer
        registers than the sharing-aware [33] selection."""
        from repro.scan.scan_select import select_scan_variables

        b = select_boundary_variables(iir2)
        s = select_scan_variables(iir2)
        assert b.num_scan_registers >= s.num_scan_registers
