"""The service over real HTTP: endpoints, dedupe fan-out, byte-identity
with the batch CLI, admission control, and worker-loss survival.

Each test runs a real :class:`repro.serve.server.Server` on its own
event-loop thread (``BackgroundServer``, port 0) and drives it with the
blocking :class:`repro.serve.client.ServeClient` -- the same path CI
and the benchmarks use.
"""

from __future__ import annotations

import concurrent.futures
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.flow import Flow
from repro.flow import chaos
from repro.flow.chaos import Injection
from repro.serve import (
    BackgroundServer,
    QueueFull,
    ServeClient,
    ServeError,
)
from tests.test_serve_scheduler import executions, gated_flow

REPO = Path(__file__).resolve().parent.parent


# -- module-level stage functions (picklable: they run in pool workers) ----

def emit(value):
    return value


def double(x):
    return 2 * x


def add(a, b):
    return a + b


def diamond_flow() -> Flow:
    """Wide enough to exercise the warm pool (and chaos kills)."""
    f = Flow("diamond")
    f.stage("source", emit, outputs=("x",), params={"value": 10})
    f.stage("left", double, inputs=("x",), outputs=("l",))
    f.stage("right", double, inputs=("x",), outputs=("r",))
    f.stage("join", add, inputs={"a": "l", "b": "r"}, outputs=("sum",))
    return f


TEST_FLOWS = {"gated": gated_flow, "diamond": diamond_flow}


class TestEndpoints:
    def test_introspection_surface(self, tmp_path):
        with BackgroundServer(cache_dir=str(tmp_path / "fc")) as bg:
            client = ServeClient(bg.url)
            health = client.healthz()
            assert health["ok"] is True
            assert health["queued"] == 0

            flows = client.flows()
            names = {f["name"] for f in flows}
            assert {"figure1", "fullscan", "table1"} <= names
            fig1 = next(f for f in flows if f["name"] == "figure1")
            assert fig1["description"]
            fullscan = next(f for f in flows
                            if f["name"] == "fullscan")
            assert "slack" in fullscan["params"]

            knobs = client.knobs()
            assert "REPRO_SERVE_PORT" in knobs
            assert knobs["REPRO_SERVE_QUEUE"]["default"] == "64"

            metrics = client.metrics()
            assert metrics["counters"]["submitted"] == 0
            # startup prewarms the worker pool (forking lazily from a
            # request thread risks inheriting a held import lock)
            assert metrics["registry"]["pool"]["alive"] is True

    def test_error_statuses(self, tmp_path):
        with BackgroundServer(cache_dir=str(tmp_path / "fc")) as bg:
            client = ServeClient(bg.url)
            with pytest.raises(ServeError) as err:
                client.submit("not-a-flow")
            assert err.value.status == 404
            with pytest.raises(ServeError) as err:
                client.submit("figure1", {"bogus_param": 1})
            assert err.value.status == 400
            with pytest.raises(ServeError) as err:
                client.status("j999999")
            assert err.value.status == 404
            with pytest.raises(ServeError) as err:
                client._get("/no/such/route")
            assert err.value.status == 404

    def test_shutdown_endpoint_stops_the_server(self, tmp_path):
        bg = BackgroundServer(cache_dir=str(tmp_path / "fc")).start()
        client = ServeClient(bg.url)
        assert client.shutdown()["ok"] is True
        bg._thread.join(timeout=15)
        assert not bg._thread.is_alive()


class TestByteIdentity:
    def test_served_result_matches_direct_cli_run(self, tmp_path):
        """Acceptance: the warm server's rendered result is
        byte-identical to ``python -m repro.flow run``."""
        with BackgroundServer(cache_dir=str(tmp_path / "fc"),
                              workers=1, jobs=1) as bg:
            served = ServeClient(bg.url).run("figure1")
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        direct = subprocess.run(
            [sys.executable, "-m", "repro.flow", "run", "figure1",
             "--no-cache"],
            capture_output=True, text=True, env=env, cwd=REPO,
            timeout=300,
        )
        assert direct.returncode == 0, direct.stderr
        assert served["ok"] is True
        assert served["rendered"] == direct.stdout

    def test_warm_rerun_hits_the_memory_cache(self, tmp_path):
        with BackgroundServer(cache_dir=str(tmp_path / "fc"),
                              workers=1, jobs=1) as bg:
            client = ServeClient(bg.url)
            cold = client.run("figure1")
            warm = client.run("figure1")
            assert warm["rendered"] == cold["rendered"]
            stats = client.metrics()["registry"]["cache"]
            assert stats["memory_hits"] > 0

    def test_prewarm_hashes_recipes(self, tmp_path):
        with BackgroundServer(cache_dir=str(tmp_path / "fc")) as bg:
            assert bg.server.registry.prewarm(["figure1"]) == \
                ["figure1"]


class TestConcurrentDedupe:
    def test_64_concurrent_submissions_execute_once(self, tmp_path):
        """Acceptance: 64 concurrent identical submissions -> ONE
        engine execution, all 64 clients get the same result."""
        gate = tmp_path / "gate"
        counter = tmp_path / "counter"
        params = {"gate": str(gate), "counter": str(counter)}
        with BackgroundServer(cache_dir=str(tmp_path / "fc"),
                              workers=2, jobs=1, queue_limit=128,
                              flows=TEST_FLOWS) as bg:
            client = ServeClient(bg.url)
            try:
                with concurrent.futures.ThreadPoolExecutor(64) as tp:
                    submits = [
                        tp.submit(client.submit, "gated", params)
                        for _ in range(64)
                    ]
                    jobs = [f.result(timeout=60) for f in submits]
            finally:
                gate.write_text("go")
            assert len(jobs) == 64
            assert len({j["key"] for j in jobs}) == 1
            assert sum(1 for j in jobs if not j["deduped"]) == 1

            with concurrent.futures.ThreadPoolExecutor(16) as tp:
                waits = [tp.submit(client.wait, j["id"], 60)
                         for j in jobs]
                states = [f.result(timeout=120) for f in waits]
            assert all(s["state"] == "done" for s in states)

            results = [client.result(j["id"]) for j in jobs]
            assert len({r["rendered"] for r in results}) == 1
            assert all(r["artifacts"]["out"] == 1 for r in results)

            counters = client.metrics()["counters"]
            assert counters["submitted"] == 64
            assert counters["runs"] == 1  # exactly-once, via metrics
            assert counters["deduped"] == 63
        assert executions(counter) == 1  # and via the engine counter


class TestAdmissionControl:
    def test_429_retry_after_and_drain(self, tmp_path):
        blocker_gate = tmp_path / "bg"
        open_gate = tmp_path / "og"
        open_gate.write_text("open")
        with BackgroundServer(cache_dir=str(tmp_path / "fc"),
                              workers=1, jobs=1, queue_limit=1,
                              retry_after=0.2,
                              flows=TEST_FLOWS) as bg:
            client = ServeClient(bg.url)
            try:
                blocker = client.submit("gated", {
                    "gate": str(blocker_gate),
                    "counter": str(tmp_path / "blk"),
                })
                deadline = time.monotonic() + 30
                while client.status(blocker["id"])["state"] != \
                        "running":
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                queued = client.submit("gated", {
                    "gate": str(open_gate),
                    "counter": str(tmp_path / "c1"), "salt": 1,
                })
                with pytest.raises(QueueFull) as err:
                    client.submit("gated", {
                        "gate": str(open_gate),
                        "counter": str(tmp_path / "c2"), "salt": 2,
                    })
                assert err.value.status == 429
                assert err.value.retry_after == pytest.approx(0.2)
            finally:
                blocker_gate.write_text("go")
            client.wait(blocker["id"], 60)
            client.wait(queued["id"], 60)
            # with the queue drained, retries get through
            late = client.submit("gated", {
                "gate": str(open_gate),
                "counter": str(tmp_path / "c2"), "salt": 2,
            }, retries=8)
            assert client.wait(late["id"], 60)["state"] == "done"
            assert client.metrics()["counters"]["rejected"] >= 1


class TestWorkerLossRecovery:
    def test_pool_worker_kill_mid_job_completes_without_restart(
            self, tmp_path):
        """Acceptance: killing a pool worker mid-job still completes
        the job -- the warm pool is rebuilt, the server never
        restarts."""
        with chaos.active([Injection("stage:left", "kill")],
                          tmp_path / "chaos"):
            with BackgroundServer(cache_dir=str(tmp_path / "fc"),
                                  workers=1, jobs=2,
                                  flows=TEST_FLOWS) as bg:
                client = ServeClient(bg.url)
                first = client.run("diamond", timeout=120)
                assert first["ok"] is True
                assert first["artifacts"]["sum"] == 40

                pool = client.metrics()["registry"]["pool"]
                assert pool["discards"] >= 1  # a pool really died
                assert pool["builds"] >= 2    # and was rebuilt warm

                # same server keeps serving -- no restart happened
                second = client.run("diamond", timeout=120)
                assert second["artifacts"]["sum"] == 40
                counters = client.metrics()["counters"]
                assert counters["completed"] == 2
                assert counters["failed"] == 0


class TestLongPoll:
    def test_wait_param_returns_terminal_state_in_one_call(
            self, tmp_path):
        gate = tmp_path / "gate"
        gate.write_text("open")
        with BackgroundServer(cache_dir=str(tmp_path / "fc"),
                              workers=1, jobs=1,
                              flows=TEST_FLOWS) as bg:
            client = ServeClient(bg.url)
            job = client.submit("gated", {
                "gate": str(gate), "counter": str(tmp_path / "c"),
            })
            state = client.status(job["id"], wait=30)
            assert state["state"] == "done"
            assert state["metrics"]["flow"] == "gated"
            assert state["fanout"] == 1
