"""Minimized fuzzing reproducer -- auto-generated.

origin:  campaign seed=5 trial=5 spec_seed=500020
oracle:  injected:nand_noscan
outcome: divergence
detail:  {'legs': ['real', 'injected:nand_noscan'], 'diff': 'synthetic divergence (injected bug)'}
"""

from repro.gatelevel.gates import Netlist
from repro.fuzz.generator import DesignSpec
from repro.fuzz.oracles import injected_divergence


SPEC = DesignSpec.from_dict({'n_gates': 80, 'seed': 500020, 'op_mix': 'inverting', 'profile': 'noscan', 'dff_ratio': 0.15, 'scan': False, 'bist': False, 'window': 24, 'pool_every': 8, 'width': 1, 'n_cycles': 3, 'n_faults': 40})


def build() -> Netlist:
    nl = Netlist('fuzz_inverting_noscan_g80_s500020_min')
    nl.add('i0', 'input')
    nl.add('i1', 'input')
    nl.add('i2', 'input')
    nl.add('i3', 'input')
    nl.add('i4', 'input')
    nl.add('i5', 'input')
    nl.add('i6', 'input')
    nl.add('i7', 'input')
    nl.add('rz0', 'input')
    nl.add('rz1', 'input')
    nl.add('g62', 'nand', 'rz0', 'rz1')
    nl.add('rz2', 'input')
    nl.add('d0', 'dff', 'rz2')
    nl.add_output('g62')
    return nl


def test_injected_nand_noscan_still_fires():
    nl = build()
    assert injected_divergence('nand_noscan', nl, SPEC) is not None
