"""Tests for TFB [31] and XTFB [19] architectures."""

import pytest

from repro.cdfg import suite
from repro.bist.tfb import (
    actions_of,
    map_to_tfbs,
    verify_no_self_adjacency,
)
from repro.bist.xtfb import map_to_xtfbs
from repro.hls.scheduling import asap

NAMES = ["figure1", "diffeq", "tseng", "fir8", "iir2"]


class TestTFB:
    @pytest.mark.parametrize("name", NAMES)
    def test_no_self_adjacency_by_construction(self, name):
        c = suite.standard_suite()[name]
        alloc = map_to_tfbs(c, asap(c))
        verify_no_self_adjacency(c, alloc)

    @pytest.mark.parametrize("name", NAMES)
    def test_partition_covers_all_actions(self, name):
        c = suite.standard_suite()[name]
        alloc = map_to_tfbs(c, asap(c))
        assigned = [a for b in alloc.blocks for a in b]
        assert len(assigned) == len(actions_of(c))
        assert len(set(assigned)) == len(assigned)

    def test_one_test_register_per_tfb(self, diffeq):
        alloc = map_to_tfbs(diffeq, asap(diffeq))
        assert alloc.num_test_registers == alloc.num_tfbs

    def test_area_positive(self, diffeq):
        alloc = map_to_tfbs(diffeq, asap(diffeq))
        assert alloc.area(diffeq) > alloc.test_overhead(diffeq) > 0


class TestXTFB:
    @pytest.mark.parametrize("name", NAMES)
    def test_never_more_blocks_than_tfb(self, name):
        c = suite.standard_suite()[name]
        s = asap(c)
        tfb = map_to_tfbs(c, s)
        xtfb = map_to_xtfbs(c, s)
        assert xtfb.num_xtfbs <= tfb.num_tfbs

    @pytest.mark.parametrize("name", NAMES)
    def test_overhead_ladder(self, name):
        """[19]'s claim: XTFB overhead <= TFB overhead."""
        c = suite.standard_suite()[name]
        s = asap(c)
        tfb = map_to_tfbs(c, s)
        x1 = map_to_xtfbs(c, s, sr_depth=1)
        assert x1.test_overhead(c) <= tfb.test_overhead(c)

    @pytest.mark.parametrize("name", NAMES)
    def test_deeper_capture_fewer_srs(self, name):
        c = suite.standard_suite()[name]
        s = asap(c)
        x1 = map_to_xtfbs(c, s, sr_depth=1)
        x2 = map_to_xtfbs(c, s, sr_depth=2)
        assert x2.num_srs <= x1.num_srs
        assert x2.test_overhead(c) <= x1.test_overhead(c)

    def test_sr_depth_one_captures_everywhere(self, diffeq):
        x1 = map_to_xtfbs(diffeq, asap(diffeq), sr_depth=1)
        assert x1.num_srs == x1.num_xtfbs

    def test_self_adjacent_become_tpgrs_not_cbilbos(self, diffeq_loop):
        x = map_to_xtfbs(diffeq_loop, asap(diffeq_loop))
        # accumulator-style variables feed their own producer
        assert x.num_tpgr_only >= 1
