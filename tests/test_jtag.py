"""Tests for the IEEE 1149.1 TAP, boundary cells, and wrapper."""

import pytest

from repro.gatelevel.gates import Netlist
from repro.jtag import (
    BoundaryCell,
    BoundaryRegister,
    Instruction,
    JTAGWrapper,
    TAPController,
    TAPState,
)
from repro.jtag.tap import tms_path_to


def half_adder_core() -> Netlist:
    core = Netlist("ha")
    core.add("a", "input")
    core.add("b", "input")
    core.add("s", "xor", "a", "b")
    core.add("c", "and", "a", "b")
    core.add_output("s")
    core.add_output("c")
    return core


def toggle_core() -> Netlist:
    core = Netlist("tog")
    core.add("en", "input")
    core.add("q", "dff", "d")
    core.add("nq", "not", "q")
    core.add("d", "mux", "en", "nq", "q")
    core.add_output("q")
    return core


class TestTAPController:
    def test_reset_from_anywhere_in_five(self):
        tap = TAPController()
        # wander somewhere deep
        for tms in (0, 1, 0, 0, 1, 0):
            tap.step(tms)
        for _ in range(5):
            tap.step(1)
        assert tap.state is TAPState.TEST_LOGIC_RESET

    def test_dr_scan_path(self):
        tap = TAPController()
        for tms in (0, 1, 0, 0):  # RTI, Select-DR, Capture, Shift
            tap.step(tms)
        assert tap.state is TAPState.SHIFT_DR
        tap.step(1)
        assert tap.state is TAPState.EXIT1_DR
        tap.step(1)
        assert tap.state is TAPState.UPDATE_DR

    def test_pause_loop(self):
        tap = TAPController()
        for tms in (0, 1, 0, 0, 1, 0):  # ... Exit1-DR, Pause-DR
            tap.step(tms)
        assert tap.state is TAPState.PAUSE_DR
        tap.step(0)
        assert tap.state is TAPState.PAUSE_DR
        tap.step(1)
        assert tap.state is TAPState.EXIT2_DR
        tap.step(0)
        assert tap.state is TAPState.SHIFT_DR

    def test_ir_branch(self):
        tap = TAPController()
        for tms in (0, 1, 1, 0, 0):  # RTI, Sel-DR, Sel-IR, Capture, Shift
            tap.step(tms)
        assert tap.state is TAPState.SHIFT_IR

    def test_tms_path_finder(self):
        for goal in TAPState:
            tap = TAPController()
            for tms in tms_path_to(TAPState.TEST_LOGIC_RESET, goal):
                tap.step(tms)
            assert tap.state is goal


class TestBoundaryRegister:
    def test_shift_order(self):
        cells = [BoundaryCell(f"c{i}", "input") for i in range(4)]
        br = BoundaryRegister(cells)
        outs = [br.shift(b) for b in (1, 0, 1, 1)]
        # initial zeros emerge first
        assert outs == [0, 0, 0, 0]
        assert [c.shift_ff for c in cells] == [1, 1, 0, 1]

    def test_preload_round_trip(self):
        cells = [BoundaryCell(f"c{i}", "input") for i in range(5)]
        br = BoundaryRegister(cells)
        want = {f"c{i}": (i * 3) % 2 for i in range(5)}
        for bit in br.preload(want):
            br.shift(bit)
        assert br.snapshot() == want

    def test_update_and_drive(self):
        cell = BoundaryCell("p", "input")
        cell.capture(1)
        cell.update()
        assert cell.drive(functional=0, test_mode=True) == 1
        assert cell.drive(functional=0, test_mode=False) == 0


class TestWrapper:
    def test_idcode_round_trip(self):
        w = JTAGWrapper(half_adder_core(), idcode=0xCAFED00D)
        assert w.read_idcode() == 0xCAFED00D

    def test_bypass_is_one_bit_delay(self):
        w = JTAGWrapper(half_adder_core())
        w.reset()
        w.load_instruction(Instruction.BYPASS)
        assert w.shift_dr_bits([1, 0, 1, 1]) == [0, 1, 0, 1]

    def test_unknown_opcode_falls_back_to_bypass(self):
        w = JTAGWrapper(half_adder_core())
        w.reset()
        # shift the unused opcode 0b011 into the IR by hand
        w._goto(TAPState.SHIFT_IR)
        for k, bit in enumerate((1, 1, 0)):  # LSB first
            w.tick(1 if k == 2 else 0, bit)
        w._goto(TAPState.UPDATE_IR)
        assert w.instruction is Instruction.BYPASS

    @pytest.mark.parametrize("a,b", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_intest_truth_table(self, a, b):
        w = JTAGWrapper(half_adder_core())
        w.reset()
        res = w.run_intest({"a": a, "b": b})
        assert res == {"s": a ^ b, "c": a & b}

    def test_sample_snapshots_functional_pins(self):
        w = JTAGWrapper(half_adder_core())
        w.reset()
        snap = w.sample_pins({"a": 1, "b": 1})
        assert snap == {"a": 1, "b": 1, "s": 0, "c": 1}

    def test_intest_single_steps_sequential_core(self):
        w = JTAGWrapper(toggle_core())
        w.reset()
        assert w.run_intest({"en": 1}, run_cycles=1) == {"q": 1}
        assert w.run_intest({"en": 1}, run_cycles=1) == {"q": 0}
        assert w.run_intest({"en": 0}, run_cycles=3) == {"q": 0}
        assert w.run_intest({"en": 1}, run_cycles=3) == {"q": 1}

    def test_reset_selects_idcode(self):
        w = JTAGWrapper(half_adder_core())
        w.load_instruction(Instruction.BYPASS)
        w.reset()
        assert w.instruction is Instruction.IDCODE

    def test_run_cycles_positive(self):
        w = JTAGWrapper(toggle_core())
        with pytest.raises(ValueError):
            w.run_intest({"en": 1}, run_cycles=0)

    def test_boundary_length(self):
        w = JTAGWrapper(half_adder_core())
        assert len(w.boundary) == 4  # a, b inputs + s, c outputs
