"""E-4.1 -- RTL testability analysis and RTL partial scan [11,12,35,37].

Survey claims (section 4.1): RTL testability analysis gives a partial
scan selection "significantly better ... when compared to techniques
limited to gate-level information only", and mixed register /
transparent-scan breaking "significantly reduc[es] the number of scan
registers needed".

Measured: (a) scan bits of the mixed register/transparent-scan cover
vs register-only MFVS; (b) quality of the RTL hardness ranking: the
top-ranked registers must include the loop registers the MFVS ends up
needing.
"""

from common import Table, conventional_flow
from repro.cdfg import suite
from repro.rtl import hard_registers
from repro.scan import gate_level_partial_scan, rtl_partial_scan
from repro.sgraph import build_sgraph, estimate_cost, minimum_feedback_vertex_set

NAMES = ["diffeq_loop", "iir2", "iir3", "ewf", "ar4", "ar6"]


def _cost_after_scanning(dp, registers) -> float:
    for r in dp.registers:
        r.scan = r.name in registers
    score = estimate_cost(build_sgraph(dp)).score
    for r in dp.registers:
        r.scan = False
    return score


def run_experiment() -> Table:
    t = Table(
        "E-4.1",
        "[35,37] mixed RTL partial scan vs register-only MFVS",
        ["design", "reg-only bits", "mixed bits", "scan regs", "transp units",
         "rank cost drop"],
    )
    totals = [0, 0]
    drops = []
    for name in NAMES:
        c = suite.standard_suite()[name]
        dp1, *_ = conventional_flow(c, slack=1.5)
        dp2, *_ = conventional_flow(c, slack=1.5)
        mfvs = minimum_feedback_vertex_set(build_sgraph(dp1))
        k = max(1, len(mfvs))
        ranked = hard_registers(dp1, k)
        base = estimate_cost(build_sgraph(dp1)).score
        after = _cost_after_scanning(dp1, set(ranked))
        drop = 1.0 - after / base
        drops.append(drop)
        reg_only = gate_level_partial_scan(dp1)
        mixed = rtl_partial_scan(dp2)
        totals[0] += reg_only.scan_bits
        totals[1] += mixed.scan_bits
        t.add(name, reg_only.scan_bits, mixed.scan_bits,
              len(mixed.scanned_registers), len(mixed.transparent_units),
              f"{drop:.2f}")
    t.add("TOTAL", *totals, "", "", "")
    t.totals = totals
    t.drops = drops
    t.notes.append(
        "claim shape: mixed breaking needs no more scan bits in total; "
        "scanning only the top-|MFVS| RTL-ranked registers already "
        "removes most of the ATPG cost (RTL info beats gate-blind "
        "selection)"
    )
    return t


def test_rtl_partial_scan(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    reg_total, mixed_total = table.totals
    assert mixed_total <= reg_total
    assert sum(table.drops) / len(table.drops) >= 0.5
    for row in table.rows[:-1]:
        assert row[2] <= row[1] + 8, row[0]
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
