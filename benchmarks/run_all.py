"""Regenerate every experiment table in one go.

Usage::

    python benchmarks/run_all.py            # print + write results/
    python benchmarks/run_all.py --quiet    # write results/ only
    REPRO_BENCH_QUICK=1 python benchmarks/run_all.py   # < 60s sweep

Imports each ``bench_*.py`` module and calls its ``run_experiment()``;
the rendered tables land in ``benchmarks/results/`` (the same files the
pytest entries write, each with a machine-readable ``.json`` twin),
giving EXPERIMENTS.md a one-command refresh.  Per-bench wall times are
aggregated into ``benchmarks/results/run_all_timings.json``.

``REPRO_BENCH_QUICK=1`` (or ``--quick``) switches the slow scoreboard
benches (``bench_atpg``'s ~150s reference-engine sweep,
``bench_bist_faultsim``'s fault-serial baseline, ``bench_collapse``/
``bench_batch``/``bench_dmachine``'s full sweeps) to their smallest
equality-gate case so the full suite finishes in well under a minute
for CI and local sweeps.  Quick runs leave every committed full-sweep
artifact untouched: the ``BENCH_*.json`` scoreboards, the
``results/`` tables, *and* the timings aggregate -- quick timings go
to ``run_all_timings_quick.json`` instead.  A partial full run
(``--only``) merges its timings into the existing aggregate rather
than clobbering the other benches' entries.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import pathlib
import sys
import time

HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))


def bench_modules() -> list[str]:
    return sorted(
        p.stem for p in HERE.glob("bench_*.py")
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quiet", action="store_true")
    parser.add_argument(
        "--quick", action="store_true",
        help="same as REPRO_BENCH_QUICK=1: slow benches run their "
             "smallest equality-gate case only",
    )
    parser.add_argument(
        "--only", nargs="*", default=None,
        help="bench module stems to run (default: all)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        os.environ["REPRO_BENCH_QUICK"] = "1"
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    names = args.only if args.only else bench_modules()
    failures: list[str] = []
    timings: dict[str, dict] = {}
    t_all = time.perf_counter()
    for name in names:
        t0 = time.perf_counter()
        try:
            mod = importlib.import_module(name)
            table = mod.run_experiment()
            # Quick runs use reduced cases; don't overwrite the
            # committed full-sweep tables in results/.
            where = "" if quick else (
                f" -> {table.save().relative_to(HERE.parent)}"
            )
            timings[name] = {
                "seconds": round(time.perf_counter() - t0, 3),
                "status": "ok",
            }
            if not args.quiet:
                print(table.render())
                print()
            print(f"[{name}] ok in {time.perf_counter() - t0:.1f}s"
                  f"{where}", file=sys.stderr)
        except Exception as exc:  # keep going; report at the end
            failures.append(f"{name}: {exc!r}")
            timings[name] = {
                "seconds": round(time.perf_counter() - t0, 3),
                "status": "failed",
            }
            print(f"[{name}] FAILED: {exc!r}", file=sys.stderr)
    results_dir = HERE / "results"
    results_dir.mkdir(exist_ok=True)
    # Quick runs measure reduced cases -- keep them out of the
    # committed full-sweep aggregate.  Partial full runs (--only)
    # merge into it so the other benches' entries survive.
    timings_path = results_dir / (
        "run_all_timings_quick.json" if quick else
        "run_all_timings.json"
    )
    if not quick and args.only and timings_path.exists():
        try:
            previous = json.loads(timings_path.read_text())
            merged = dict(previous.get("benches", {}))
        except (ValueError, OSError):
            merged = {}
        merged.update(timings)
        timings = merged
    timings_path.write_text(json.dumps({
        "total_seconds": round(time.perf_counter() - t_all, 3),
        "quick": quick,
        "benches": dict(sorted(timings.items())),
    }, indent=2) + "\n")
    print(
        f"{len(names) - len(failures)}/{len(names)} experiments in "
        f"{time.perf_counter() - t_all:.1f}s",
        file=sys.stderr,
    )
    if failures:
        print("failures:", *failures, sep="\n  ", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
