"""Regenerate every experiment table in one go.

Usage::

    python benchmarks/run_all.py            # print + write results/
    python benchmarks/run_all.py --quiet    # write results/ only

Imports each ``bench_*.py`` module and calls its ``run_experiment()``;
the rendered tables land in ``benchmarks/results/`` (the same files the
pytest entries write, each with a machine-readable ``.json`` twin),
giving EXPERIMENTS.md a one-command refresh.  Per-bench wall times are
aggregated into ``benchmarks/results/run_all_timings.json``.
"""

from __future__ import annotations

import argparse
import importlib
import json
import pathlib
import sys
import time

HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))


def bench_modules() -> list[str]:
    return sorted(
        p.stem for p in HERE.glob("bench_*.py")
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quiet", action="store_true")
    parser.add_argument(
        "--only", nargs="*", default=None,
        help="bench module stems to run (default: all)",
    )
    args = parser.parse_args(argv)
    names = args.only if args.only else bench_modules()
    failures: list[str] = []
    timings: dict[str, dict] = {}
    t_all = time.perf_counter()
    for name in names:
        t0 = time.perf_counter()
        try:
            mod = importlib.import_module(name)
            table = mod.run_experiment()
            path = table.save()
            timings[name] = {
                "seconds": round(time.perf_counter() - t0, 3),
                "status": "ok",
            }
            if not args.quiet:
                print(table.render())
                print()
            print(f"[{name}] ok in {time.perf_counter() - t0:.1f}s "
                  f"-> {path.relative_to(HERE.parent)}",
                  file=sys.stderr)
        except Exception as exc:  # keep going; report at the end
            failures.append(f"{name}: {exc!r}")
            timings[name] = {
                "seconds": round(time.perf_counter() - t0, 3),
                "status": "failed",
            }
            print(f"[{name}] FAILED: {exc!r}", file=sys.stderr)
    results_dir = HERE / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "run_all_timings.json").write_text(json.dumps({
        "total_seconds": round(time.perf_counter() - t_all, 3),
        "benches": timings,
    }, indent=2) + "\n")
    print(
        f"{len(names) - len(failures)}/{len(names)} experiments in "
        f"{time.perf_counter() - t_all:.1f}s",
        file=sys.stderr,
    )
    if failures:
        print("failures:", *failures, sep="\n  ", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
