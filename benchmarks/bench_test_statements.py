"""E-3.4b -- behavioral test statements raise coverage [9].

Survey claim (section 3.4): "The modified behaviors produce circuits
with higher fault coverage and efficiency than the original
description, at modest area overhead."

Measured at the gate level: pseudorandom stuck-at coverage of the
synthesized diffeq data path, original vs test-statement-modified
(test-mode inputs driven pseudorandomly too), plus the area overhead.
"""

from common import Table, conventional_flow
from repro.cdfg import suite
from repro.cdfg.transform import insert_test_statements
from repro.hls.estimate import area_estimate
from repro.gatelevel import all_faults, expand_datapath
from repro.gatelevel.random_patterns import random_pattern_coverage

WIDTH = 3
N_PATTERNS = 128


def coverage_of(cdfg):
    dp, *_ = conventional_flow(cdfg, slack=1.5)
    nl, _ = expand_datapath(dp)
    faults = all_faults(nl)  # full universe: sampling would bias
    cov = random_pattern_coverage(
        nl, n_patterns=N_PATTERNS, sequence_length=4, faults=faults
    )
    return cov, area_estimate(dp)["total"]


def run_experiment() -> Table:
    t = Table(
        "E-3.4b",
        "[9] test statements: pseudorandom coverage, original vs modified",
        ["design", "coverage orig", "coverage +tstmt", "area overhead %"],
    )
    original = suite.diffeq(width=WIDTH)
    modified = insert_test_statements(original, budget=2)
    cov_o, area_o = coverage_of(original)
    cov_m, area_m = coverage_of(modified)
    overhead = 100.0 * (area_m - area_o) / area_o
    t.add("diffeq", f"{cov_o:.3f}", f"{cov_m:.3f}", f"{overhead:.1f}")
    t.cov_o, t.cov_m, t.overhead = cov_o, cov_m, overhead
    t.notes.append(
        "claim shape: modified coverage >= original at modest (<40%) "
        "area overhead"
    )
    return t


def test_test_statements(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert table.cov_m >= table.cov_o
    assert table.overhead < 40.0
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
