"""F1 -- regenerate Figure 1: assignment loops in the data path.

Paper exhibit: the 5-addition CDFG under a 3-step / 2-adder constraint.
Binding (b) creates the assignment loop RA1 -> RA2 -> RA1 (one register
must be scanned); binding (c) leaves only two self-loops (no scan
needed).  The bench reproduces both data paths exactly and also shows
that the loop-aware binder of [33] finds a (c)-class solution under the
same constraints.
"""

from common import Table, run_flow_table
from repro.flow.flows import figure1_flow


def run_experiment() -> Table:
    return run_flow_table(figure1_flow())


def test_figure1(benchmark):
    table = benchmark(run_experiment)
    by = {r[0]: r for r in table.rows}
    assert by["figure1(b)"][1] == 1 and by["figure1(b)"][3] == 1
    assert by["figure1(c)"][1] == 0 and by["figure1(c)"][2] == 2
    assert by["figure1(c)"][3] == 0
    assert by["loop-aware [33]"][1] == 0 and by["loop-aware [33]"][3] == 0
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
