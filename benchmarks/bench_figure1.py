"""F1 -- regenerate Figure 1: assignment loops in the data path.

Paper exhibit: the 5-addition CDFG under a 3-step / 2-adder constraint.
Binding (b) creates the assignment loop RA1 -> RA2 -> RA1 (one register
must be scanned); binding (c) leaves only two self-loops (no scan
needed).  The bench reproduces both data paths exactly and also shows
that the loop-aware binder of [33] finds a (c)-class solution under the
same constraints.
"""

from common import Table
from repro.cdfg.suite import figure1
from repro.hls import Allocation
from repro.scan import loop_aware_synthesis
from repro.sgraph import (
    build_sgraph,
    estimate_cost,
    minimum_feedback_vertex_set,
    nontrivial_cycles,
    self_loops,
)
from repro.survey import figure1_datapath


def run_experiment() -> Table:
    t = Table(
        "F1",
        "Figure 1: loops formed during assignment (3 steps, 2 adders)",
        ["variant", "nontrivial cycles", "self-loops", "scan regs needed",
         "ATPG cost score"],
    )
    for variant in ("b", "c"):
        g = build_sgraph(figure1_datapath(variant))
        t.add(
            f"figure1({variant})",
            len(nontrivial_cycles(g)),
            len(self_loops(g)),
            len(minimum_feedback_vertex_set(g)),
            f"{estimate_cost(g, respect_scan=False).score:.1f}",
        )
    dp, _plan = loop_aware_synthesis(
        figure1(), Allocation({"alu": 2}), num_steps=3
    )
    g = build_sgraph(dp)
    t.add(
        "loop-aware [33]",
        len(nontrivial_cycles(g)),
        len(self_loops(g)),
        len(minimum_feedback_vertex_set(g)),
        f"{estimate_cost(g, respect_scan=False).score:.1f}",
    )
    t.notes.append(
        "paper: (b) needs one scanned register; (c) 'contains only two "
        "self-loops' and needs none"
    )
    return t


def test_figure1(benchmark):
    table = benchmark(run_experiment)
    by = {r[0]: r for r in table.rows}
    assert by["figure1(b)"][1] == 1 and by["figure1(b)"][3] == 1
    assert by["figure1(c)"][1] == 0 and by["figure1(c)"][2] == 2
    assert by["figure1(c)"][3] == 0
    assert by["loop-aware [33]"][1] == 0 and by["loop-aware [33]"][3] == 0
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
