"""E-5.3 -- test behavior and the three-session scheme [30,31].

Survey claim (section 5.3): test points inserted into the behavior
(extra TPGRs/SRs at new primary I/O) raise the testability of internal
signals, and "a testing scheme ... uses the test behavior to generate
tests for the complete design, controller and data path, using only
three test sessions" -- independent of design size, unlike per-module
session counts.
"""

from common import Table
from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro import hls
from repro.bist import (
    assign_test_roles,
    insert_test_behavior,
    schedule_sessions,
    sharing_register_assignment,
    signal_coverage,
    three_session_plan,
)

NAMES = ["diffeq", "iir2", "ewf", "ar4"]


def run_experiment() -> Table:
    t = Table(
        "E-5.3",
        "[30,31] test behavior: coverage lift and fixed 3 sessions",
        ["design", "worst signal cov before", "worst after", "test points",
         "extra TPGR/SR", "sessions [31]", "sessions per-module"],
    )
    for name in NAMES:
        c = suite.standard_suite()[name]
        res = insert_test_behavior(c, coverage_threshold=0.85, max_points=3)
        cov_after = signal_coverage(res.modified)
        internals = [
            v.name for v in c.variables.values()
            if not v.is_input and not v.is_output
        ]
        worst_before = min(res.coverage_before[v] for v in internals)

        def seen_by_consumers(v: str) -> float:
            # a controlled variable is rerouted through v_t: that is
            # the signal the rest of the design (and the test) sees
            vt = f"{v}_t"
            return cov_after.get(vt, cov_after.get(v, 1.0))

        worst_after = min(seen_by_consumers(v) for v in internals)
        plan = three_session_plan(res)
        latency = int(1.6 * critical_path_length(c))
        alloc = hls.allocate_for_latency(c, latency)
        sched = hls.list_schedule(c, alloc)
        fub = hls.bind_functional_units(c, sched, alloc)
        dp = hls.build_datapath(
            c, sched, fub, sharing_register_assignment(c, sched, fub)
        )
        _cfg, envs = assign_test_roles(dp)
        t.add(name, f"{worst_before:.2f}", f"{worst_after:.2f}",
              len(res.controlled_variables),
              f"{res.extra_tpgrs}/{res.extra_srs}",
              plan.num_sessions, len(schedule_sessions(envs)))
    t.notes.append(
        "claim shape: three sessions regardless of design size; test "
        "points target the lowest-coverage internals"
    )
    return t


def test_test_behavior(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    strict = 0
    for row in table.rows:
        assert row[5] == 3, row[0]  # always exactly three sessions
        before, after = float(row[1]), float(row[2])
        assert after >= before, row[0]
        strict += after > before
    assert strict >= 1  # the test points actually lift coverage
    # on at least one design the per-module count differs from 3's
    # size-independence (i.e. the scheme is not vacuous)
    assert any(row[6] != 3 or row[3] > 0 for row in table.rows)
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
