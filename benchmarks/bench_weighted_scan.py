"""E-3.3.1d -- width-aware loop breaking (mixed-width data paths).

The surveyed gate-level criterion counts scan *flip-flops*, not
registers: on a data path with mixed register widths, cutting a loop
at a narrow register is cheaper than at a wide one.  This bench builds
looped behaviors whose data path mixes 16-bit data registers with
4-bit control/coefficient registers and compares node-count MFVS
against :func:`repro.sgraph.mfvs.weighted_mfvs`.

Claim shape: the weighted selection never needs more scan bits and
strictly fewer wherever a narrow cut exists on each loop.
"""

from common import Table, conventional_flow
from repro.cdfg.builder import CDFGBuilder
from repro.sgraph import build_sgraph, is_loop_free, weighted_mfvs
from repro.sgraph.mfvs import minimum_feedback_vertex_set


def mixed_width_filter(stages: int, seed: int = 0) -> "CDFG":
    """A feedback filter whose state is wide but whose coefficient
    scaling path is narrow: every loop crosses both widths."""
    b = CDFGBuilder(f"mixed{stages}_{seed}", width=16)
    b.inputs("x", "zero")
    b.inputs(*[f"k{i}" for i in range(stages)], width=4)
    b.outputs("y")
    prev = "x"
    for i in range(stages):
        # narrow scaled copy of the wide state (4-bit truncation path)
        b.var(f"n{i}", width=4)
        b.op("&", (f"s{i}", f"k{i}"), f"n{i}", name=f"&n{i}",
             carried=(f"s{i}",))
        b.var(f"w{i}", width=16)
        b.op("+", (prev, f"n{i}"), f"w{i}", name=f"+w{i}")
        b.var(f"s{i}", width=16) if f"s{i}" not in b._cdfg.variables else None
        b.op("+", (f"w{i}", "zero"), f"s{i}", name=f"+s{i}")
        prev = f"s{i}"
    b.op("+", (prev, "zero"), "y", name="+y")
    return b.build()


def width_banked_flow(c, slack=1.5):
    """Conventional flow with width-banked register allocation: narrow
    and wide variables never share a register (merging a 4-bit value
    into a 16-bit register would waste the narrow bank -- standard
    register-file practice, and what keeps narrow cut points narrow)."""
    from itertools import combinations

    from repro.cdfg.analysis import critical_path_length
    from repro import hls

    latency = int(slack * critical_path_length(c))
    alloc = hls.allocate_for_latency(c, latency)
    sched = hls.list_schedule(c, alloc)
    fub = hls.bind_functional_units(c, sched, alloc)
    conflicts = [
        (a.name, b.name)
        for a, b in combinations(c.variables.values(), 2)
        if a.width != b.width
    ]
    ra = hls.assign_registers_left_edge(c, sched, extra_conflicts=conflicts)
    return hls.build_datapath(c, sched, fub, ra)


def run_experiment() -> Table:
    t = Table(
        "E-3.3.1d",
        "width-aware loop breaking: scan bits, node-count vs weighted",
        ["design", "count-MFVS regs", "count bits", "weighted regs",
         "weighted bits", "loop-free"],
    )
    for stages in (2, 3, 4):
        c = mixed_width_filter(stages)
        dp = width_banked_flow(c)
        g = build_sgraph(dp)
        by_count = minimum_feedback_vertex_set(g)
        by_weight = weighted_mfvs(g)
        bits = lambda regs: sum(
            g.nodes[n].get("width", 1) for n in regs
        )
        h = g.copy()
        h.remove_nodes_from(by_weight)
        from repro.sgraph import is_loop_free as lf

        t.add(f"mixed{stages}", len(by_count), bits(by_count),
              len(by_weight), bits(by_weight), lf(h))
    t.notes.append(
        "claim shape: weighted selection never costs more scan bits; "
        "strictly fewer whenever a loop offers a narrow cut"
    )
    return t


def test_weighted_scan(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    strict = 0
    for name, _cr, cb, _wr, wb, loop_free in table.rows:
        assert loop_free, name
        assert wb <= cb, name
        strict += wb < cb
    assert strict >= 1
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
