"""E-5.2 -- test-session minimisation [20].

Survey claim (section 5.2): conflict-aware synthesis "generate[s] data
paths that require only one test session"; sharing-oriented assignment
"[32] ... may lead to test path conflicts and hence reduced test
concurrency".

Measured: sessions needed under per-module role assignment (the
[32]-style, sharing-first view) vs the path-based test scheme of [20],
plus the register cost of the concurrency-oriented assignment.
"""

from common import Table
from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro import hls
from repro.bist import (
    assign_test_roles,
    schedule_sessions,
    sharing_register_assignment,
)
from repro.bist.sessions import path_based_sessions, session_aware_assignment

NAMES = ["diffeq", "iir2", "iir3", "ewf", "ar4", "fir8"]


def run_experiment() -> Table:
    t = Table(
        "E-5.2",
        "[20] test concurrency: per-module sessions vs path-based",
        ["design", "sessions per-module", "sessions path [20]",
         "regs shared", "regs concurrency"],
    )
    for name in NAMES:
        c = suite.standard_suite()[name]
        latency = int(1.6 * critical_path_length(c))
        alloc = hls.allocate_for_latency(c, latency)
        sched = hls.list_schedule(c, alloc)
        fub = hls.bind_functional_units(c, sched, alloc)
        shared = hls.build_datapath(
            c, sched, fub, sharing_register_assignment(c, sched, fub)
        )
        aware = hls.build_datapath(
            c, sched, fub, session_aware_assignment(c, sched, fub)
        )
        _cfg, envs = assign_test_roles(shared)
        t.add(
            name,
            len(schedule_sessions(envs)),
            len(path_based_sessions(aware)),
            len(shared.registers),
            len(aware.registers),
        )
    t.notes.append(
        "claim shape: path-based testing reaches one session on every "
        "data path; per-module sharing needs several; concurrency may "
        "cost extra registers (the survey's noted trade-off)"
    )
    return t


def test_sessions(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for name, per_module, path, _rs, _rc in table.rows:
        assert path == 1, name
        assert per_module >= path, name
    assert any(r[1] > 1 for r in table.rows)  # conflicts really occur
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
