"""E-5.2 -- test-session minimisation [20].

Survey claim (section 5.2): conflict-aware synthesis "generate[s] data
paths that require only one test session"; sharing-oriented assignment
"[32] ... may lead to test path conflicts and hence reduced test
concurrency".

Measured: sessions needed under per-module role assignment (the
[32]-style, sharing-first view) vs the path-based test scheme of [20],
plus the register cost of the concurrency-oriented assignment.
"""

from common import Table, run_flow_table
from repro.flow.flows import BIST_SESSION_NAMES, bist_sessions_flow

NAMES = BIST_SESSION_NAMES


def run_experiment() -> Table:
    return run_flow_table(bist_sessions_flow(names=NAMES))


def test_sessions(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for name, per_module, path, _rs, _rc in table.rows:
        assert path == 1, name
        assert per_module >= path, name
    assert any(r[1] > 1 for r in table.rows)  # conflicts really occur
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
