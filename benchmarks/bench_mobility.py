"""E-3.2b -- mobility-path scheduling [26].

Survey claim (section 3.2): rescheduling within mobility windows lets
intermediate variables share I/O registers ("the lifetime of an
intermediate variable does not overlap with the lifetime of an
input/output variable") and minimises register-to-register sequential
depth.

Measured: with the same I/O-first register assigner, the mobility-path
schedule packs at least as many variables into I/O registers as the
mobility-blind list schedule, at equal latency.
"""

from common import Table
from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro import hls
from repro.hls.scheduling import mobility_path_schedule
from repro.scan.io_registers import assign_registers_io_first, io_register_stats

NAMES = ["figure1", "diffeq", "tseng", "fir8", "iir2"]


def build(c, sched, alloc):
    fub = hls.bind_functional_units(c, sched, alloc)
    ra = assign_registers_io_first(c, sched)
    return hls.build_datapath(c, sched, fub, ra)


def run_experiment() -> Table:
    t = Table(
        "E-3.2b",
        "[26] mobility-path scheduling vs list scheduling (IO-first regs)",
        ["design", "latency", "vars-in-IO list", "vars-in-IO mobility",
         "regs list", "regs mobility"],
    )
    for name in NAMES:
        c = suite.standard_suite()[name]
        latency = int(1.5 * critical_path_length(c))
        alloc = hls.allocate_for_latency(c, latency)
        base = hls.list_schedule(c, alloc)
        latency = max(latency, base.length_with_delays(c))
        # Greedy placement can dead-end under tight resources; the [26]
        # flow relaxes latency until feasible.
        for extra in range(8):
            try:
                mob = mobility_path_schedule(
                    c, latency + extra, allocation=alloc
                )
                break
            except hls.allocation.AllocationError:
                continue
        else:
            raise RuntimeError(f"mobility schedule infeasible for {name}")
        dp_b, dp_m = build(c, base, alloc), build(c, mob, alloc)
        s_b, s_m = io_register_stats(dp_b), io_register_stats(dp_m)
        t.add(name, latency, s_b.variables_in_io_registers,
              s_m.variables_in_io_registers, s_b.total_registers,
              s_m.total_registers)
    t.notes.append(
        "claim shape: mobility-path never stores fewer variables in "
        "I/O registers than the mobility-blind schedule"
    )
    return t


def test_mobility(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    better_or_equal = 0
    for _name, _lat, v_list, v_mob, _rl, _rm in table.rows:
        if v_mob >= v_list:
            better_or_equal += 1
    assert better_or_equal >= len(table.rows) - 1
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
