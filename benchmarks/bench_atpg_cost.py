"""E-3.1 -- sequential ATPG effort: exponential in cycle length, linear
in sequential depth.

Survey claim (section 3.1, after [10,22]): "the complexity of
generating sequential test patterns grows exponentially with the length
of cycles in the S-graph, and linearly with the sequential depth."

Substrate: synthetic gate-level circuits with controlled topology --
register rings of increasing length (cycle sweep) and register chains
of increasing depth (depth sweep) -- driven through our time-frame
ATPG; plus the analytic cost model, which must order the same way.
"""

import math

from common import Table
from repro.gatelevel.atpg import combinational_atpg
from repro.gatelevel.faults import Fault
from repro.gatelevel.gates import Netlist
from repro.gatelevel.seq_atpg import sequential_atpg
from repro.sgraph.atpg_cost import estimate_cost
import networkx as nx


def register_ring(length: int, width: int = 2) -> Netlist:
    """A ring of ``length`` registers with an inverting hop and a
    synchronous clear: the canonical length-L S-graph cycle."""
    nl = Netlist(f"ring{length}")
    nl.add("en", "input")
    nl.add("zero", "const0")
    for i in range(length):
        prev = f"q{(i - 1) % length}"
        inject = f"v{i}"
        nl.add(inject, "not", prev) if i == 0 else nl.add(
            inject, "buf", prev
        )
        nl.add(f"d{i}", "mux", "en", inject, "zero")
        nl.add(f"q{i}", "dff", f"d{i}")
    nl.add_output(f"q{length - 1}")
    return nl


def register_chain(depth: int) -> Netlist:
    """A shift chain of ``depth`` registers: pure sequential depth."""
    nl = Netlist(f"chain{depth}")
    nl.add("x", "input")
    prev = "x"
    for i in range(depth):
        nl.add(f"inv{i}", "not", prev)
        nl.add(f"q{i}", "dff", f"inv{i}")
        prev = f"q{i}"
    nl.add_output(prev)
    return nl


def run_experiment() -> Table:
    t = Table(
        "E-3.1",
        "sequential ATPG effort vs S-graph topology",
        ["circuit", "structure", "frames", "measured effort",
         "model score"],
    )
    ring_efforts = []
    for length in (2, 3, 4, 5):
        nl = register_ring(length)
        res = sequential_atpg(
            nl, Fault("v0", 0), max_frames=length + 3,
            backtrack_limit=300,
        )
        g = nx.DiGraph()
        nx.add_cycle(g, [f"q{i}" for i in range(length)])
        score = estimate_cost(g).score
        ring_efforts.append(res.effort)
        t.add(f"ring{length}", f"cycle len {length}", res.frames,
              res.effort, f"{score:.0f}")
    chain_efforts = []
    for depth in (2, 4, 6, 8):
        nl = register_chain(depth)
        res = sequential_atpg(
            nl, Fault("inv0", 1), max_frames=depth + 2,
            backtrack_limit=300,
        )
        g = nx.DiGraph()
        nx.add_path(g, [f"q{i}" for i in range(depth)])
        score = estimate_cost(g).score
        chain_efforts.append(res.effort)
        t.add(f"chain{depth}", f"depth {depth}", res.frames,
              res.effort, f"{score:.0f}")
    t.notes.append(
        "claim shape: ring efforts grow superlinearly with cycle "
        "length; chain efforts grow ~linearly with depth"
    )
    t.ring_efforts = ring_efforts
    t.chain_efforts = chain_efforts
    return t


def test_atpg_cost(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rings = table.ring_efforts
    chains = table.chain_efforts
    # monotone growth in both sweeps
    assert rings == sorted(rings)
    assert chains == sorted(chains)
    # exponential-vs-linear shape: ring effort growth factor from the
    # shortest to the longest cycle exceeds the chain growth factor.
    ring_factor = rings[-1] / max(1, rings[0])
    chain_factor = chains[-1] / max(1, chains[0])
    assert ring_factor > chain_factor
    # chain effort is ~linear: effort per unit depth roughly constant
    per_depth = [e / d for e, d in zip(chains, (2, 4, 6, 8))]
    assert max(per_depth) <= 4 * min(per_depth)
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
