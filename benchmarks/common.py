"""Shared helpers for the experiment benches.

Every bench module exposes ``run_experiment()`` returning a
:class:`Table`, asserts the experiment's shape claims in its pytest
entry, and prints the table when executed directly
(``python benchmarks/bench_x.py``).  Tables are also written to
``benchmarks/results/`` so EXPERIMENTS.md can reference stable output.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Sequence

from repro.cdfg.analysis import critical_path_length
from repro import hls

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


@dataclass
class Table:
    """A printable experiment result."""

    experiment: str
    title: str
    header: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row: object) -> None:
        self.rows.append(row)

    def render(self) -> str:
        widths = [
            max(len(str(h)), *(len(str(r[i])) for r in self.rows), 1)
            if self.rows else len(str(h))
            for i, h in enumerate(self.header)
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append(
            "  ".join(str(h).ljust(w) for h, w in zip(self.header, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for r in self.rows:
            lines.append(
                "  ".join(str(v).ljust(w) for v, w in zip(r, widths))
            )
        for n in self.notes:
            lines.append(f"note: {n}")
        return "\n".join(lines)

    def save(self) -> pathlib.Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.experiment}.txt"
        path.write_text(self.render() + "\n")
        return path

    def emit(self) -> None:
        print(self.render())
        self.save()


def conventional_flow(cdfg, slack: float = 1.5, register_style="left_edge"):
    """The testability-blind baseline synthesis used across benches."""
    latency = max(
        critical_path_length(cdfg),
        int(slack * critical_path_length(cdfg)),
    )
    alloc = hls.allocate_for_latency(cdfg, latency)
    sched = hls.list_schedule(cdfg, alloc)
    fub = hls.bind_functional_units(cdfg, sched, alloc)
    if register_style == "left_edge":
        regs = hls.assign_registers_left_edge(cdfg, sched)
    else:
        regs = hls.assign_registers_coloring(cdfg, sched)
    dp = hls.build_datapath(cdfg, sched, fub, regs)
    return dp, sched, fub, alloc
