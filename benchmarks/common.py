"""Shared helpers for the experiment benches.

Every bench module exposes ``run_experiment()`` returning a
:class:`Table`, asserts the experiment's shape claims in its pytest
entry, and prints the table when executed directly
(``python benchmarks/bench_x.py``).  Tables are also written to
``benchmarks/results/`` so EXPERIMENTS.md can reference stable output.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.cdfg.analysis import critical_path_length
from repro import hls
from repro.flow.metrics import column_widths

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
FLOWCACHE_DIR = pathlib.Path(__file__).resolve().parent.parent / ".flowcache"


@dataclass
class Table:
    """A printable experiment result."""

    experiment: str
    title: str
    header: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row: object) -> None:
        self.rows.append(row)

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "Table":
        """Rehydrate from a flow-engine table spec; ``extra`` entries
        become attributes (``totals``, timing fields, ...)."""
        t = cls(
            spec["experiment"],
            spec["title"],
            list(spec["header"]),
            [tuple(r) for r in spec.get("rows", [])],
            list(spec.get("notes", [])),
        )
        for key, value in spec.get("extra", {}).items():
            setattr(t, key, value)
        return t

    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "title": self.title,
            "header": list(self.header),
            "rows": [list(r) for r in self.rows],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        widths = column_widths(self.header, self.rows)
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append(
            "  ".join(str(h).ljust(w) for h, w in zip(self.header, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for r in self.rows:
            lines.append(
                "  ".join(str(v).ljust(w) for v, w in zip(r, widths))
            )
        for n in self.notes:
            lines.append(f"note: {n}")
        return "\n".join(lines)

    def save(self) -> pathlib.Path:
        """Write the rendered table plus a machine-readable twin."""
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.experiment}.txt"
        path.write_text(self.render() + "\n")
        json_path = RESULTS_DIR / f"{self.experiment}.json"
        json_path.write_text(
            json.dumps(self.to_dict(), indent=2, default=str) + "\n"
        )
        return path

    def emit(self) -> None:
        print(self.render())
        self.save()


def run_flow_table(flow, *, jobs: int | None = None,
                   cache: bool | None = None, artifact: str = "table",
                   metrics_path: str | None = None) -> Table:
    """Execute a flow and rehydrate its ``table`` artifact.

    The shared adapter every flow-ported bench goes through.  Knobs
    default from the environment so one variable reconfigures the whole
    suite: ``BENCH_JOBS`` (worker processes, default serial) and
    ``BENCH_FLOW_CACHE`` (``0`` disables the on-disk artifact cache).
    """
    from repro.flow import FlowCache, Runner

    if jobs is None:
        jobs = int(os.environ.get("BENCH_JOBS", "1") or 1)
    if cache is None:
        cache = os.environ.get("BENCH_FLOW_CACHE", "1") != "0"
    runner = Runner(cache=FlowCache(FLOWCACHE_DIR) if cache else None)
    result = runner.run(flow, jobs=jobs, metrics_path=metrics_path)
    return Table.from_spec(result[artifact])


def conventional_flow(cdfg, slack: float = 1.5, register_style="left_edge"):
    """The testability-blind baseline synthesis used across benches."""
    latency = max(
        critical_path_length(cdfg),
        int(slack * critical_path_length(cdfg)),
    )
    alloc = hls.allocate_for_latency(cdfg, latency)
    sched = hls.list_schedule(cdfg, alloc)
    fub = hls.bind_functional_units(cdfg, sched, alloc)
    if register_style == "left_edge":
        regs = hls.assign_registers_left_edge(cdfg, sched)
    else:
        regs = hls.assign_registers_coloring(cdfg, sched)
    dp = hls.build_datapath(cdfg, sched, fub, regs)
    return dp, sched, fub, alloc
