"""E-7b -- control-flow-oriented designs (survey future work).

Survey section 7a: "currently, the proposed techniques are mostly
applicable to data-flow intensive and arithmetic intensive designs ...
To broaden the scope of their applicability, techniques need to be
evolved for control-flow oriented designs."

This bench evaluates exactly that: the GCD behavior (state flowing
through select operations rather than arithmetic chains) pushed through
every major technique in the library.  Claim shape: the loop-breaking
machinery still works (CDFG loops through selects are found and broken,
loop-aware synthesis stays ahead of gate-level MFVS), quantifying that
the techniques *do* extend to the control-flow class on this substrate.
"""

from common import Table, conventional_flow
from repro.cdfg.analysis import cdfg_loops, critical_path_length
from repro.cdfg.suite import gcd
from repro import hls, rtl
from repro.scan import gate_level_partial_scan, loop_aware_synthesis
from repro.sgraph import build_sgraph, is_loop_free, sgraph_without_scan
from repro.bist.sessions import path_based_sessions


def run_experiment() -> Table:
    t = Table(
        "E-7b",
        "control-flow design (GCD) through the survey's techniques",
        ["metric", "value"],
    )
    c = gcd()
    loops = cdfg_loops(c, bound=200)
    t.add("CDFG loops (through selects)", len(loops))
    latency = int(1.5 * critical_path_length(c))
    dp_gate, *_ = conventional_flow(c, slack=1.5)
    rep = gate_level_partial_scan(dp_gate)
    t.add("gate-level MFVS scan bits", rep.scan_bits)
    alloc = hls.allocate_for_latency(c, latency)
    dp, _plan = loop_aware_synthesis(c, alloc, num_steps=latency)
    bits = sum(r.width for r in dp.scan_registers())
    t.add("loop-aware [33] scan bits", bits)
    lf = is_loop_free(sgraph_without_scan(build_sgraph(dp)))
    t.add("loop-free after [33]", lf)
    dp_tp, *_ = conventional_flow(c, slack=1.5)
    t.add("test points k=1 [15]", len(rtl.insert_k_level_test_points(dp_tp, 1)))
    dp_b, *_ = conventional_flow(c, slack=1.5)
    t.add("BIST sessions (path-based [20])", len(path_based_sessions(dp_b)))
    t.gate_bits = rep.scan_bits
    t.hls_bits = bits
    t.loop_free = lf

    # Sweep over the random control-flow class (select-steered loops).
    from repro.cdfg.generate import random_control_cdfg

    wins = total = 0
    gate_sum = hls_sum = 0
    for seed in range(5):
        rc = random_control_cdfg(24, 4, n_loops=2, seed=seed)
        lat2 = int(1.5 * critical_path_length(rc))
        dpg, *_ = conventional_flow(rc, slack=1.5)
        g_bits = gate_level_partial_scan(dpg).scan_bits
        alloc2 = hls.allocate_for_latency(rc, lat2)
        dph, _ = loop_aware_synthesis(rc, alloc2, num_steps=lat2)
        h_bits = sum(r.width for r in dph.scan_registers())
        gate_sum += g_bits
        hls_sum += h_bits
        wins += h_bits <= g_bits
        total += 1
    t.add("random class: gate bits (sum of 5 seeds)", gate_sum)
    t.add("random class: [33] bits (sum of 5 seeds)", hls_sum)
    t.sweep_wins, t.sweep_total = wins, total
    t.gate_sum, t.hls_sum = gate_sum, hls_sum
    t.notes.append(
        "claim shape: the data-flow techniques carry over -- loops "
        "through selects are broken, [33] needs no more scan than the "
        "gate baseline, one BIST session suffices"
    )
    return t


def test_control_flow(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert table.loop_free
    assert table.hls_bits <= table.gate_bits
    rows = {r[0]: r[1] for r in table.rows}
    assert rows["CDFG loops (through selects)"] >= 3
    assert rows["BIST sessions (path-based [20])"] == 1
    assert table.sweep_wins == table.sweep_total
    assert table.hls_sum <= table.gate_sum
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
