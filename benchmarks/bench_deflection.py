"""E-3.4 -- deflection operations reduce scan registers [16].

Survey claim (section 3.4): inserting identity ("deflection")
operations "eliminates resource sharing bottlenecks ... such that more
of the selected scan variables can share the same scan registers,
thereby reducing the number of scan registers needed to break the CDFG
loops", at no behavioral change and bounded extra operations.

Workloads: the looped suite plus the synthetic looped class (the
bottleneck pattern needs crossing lifetimes, which the regular filters
mostly avoid by construction -- the synthetic class exhibits it).
"""

from common import Table
from repro.cdfg import suite
from repro.cdfg.generate import random_looped_cdfg
from repro.scan.deflect import deflect_for_scan_sharing


def workloads():
    out = dict(suite.standard_suite(looped_only=True))
    for seed in range(6):
        out[f"loopy24-{seed}"] = random_looped_cdfg(
            24, 3, loop_length=4, seed=seed
        )
    return out


def run_experiment() -> Table:
    t = Table(
        "E-3.4",
        "[16] deflection: scan registers before/after transformation",
        ["design", "scan regs before", "scan regs after", "deflections",
         "extra ops"],
    )
    improved = 0
    for name, c in workloads().items():
        r = deflect_for_scan_sharing(c)
        improved += r.scan_registers_saved > 0
        t.add(name, r.plan_before.num_scan_registers,
              r.plan_after.num_scan_registers, r.deflections,
              r.extra_operations)
    t.improved = improved
    t.notes.append(
        "claim shape: transformation never increases scan registers; "
        "strictly fewer on workloads with sharing bottlenecks"
    )
    return t


def test_deflection(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for name, before, after, defl, extra in table.rows:
        assert after <= before, name
        assert extra == defl, name
    assert table.improved >= 2
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
