"""E-4.1b -- full-scan restructured designs are fully testable [8].

Survey claim (section 4.1): transformations with data-path don't-cares
"can yield optimized 100% single stuck-at fault testable fullscan
designs".

Measured: with every register scanned and the by-construction
redundancies removed (constant folding + dead-logic sweep, our
equivalent of [8]'s don't-care restructuring), combinational ATPG
achieves 100% test efficiency -- every fault detected or proven
untestable with zero aborts -- and coverage itself is ~100%.
"""

from common import Table, run_flow_table
from repro.flow.flows import FULLSCAN_CASES, fullscan_flow

# (design, width, backtrack budget) -- the multiplier's xor-dense cones
# in tseng need a deeper search than the adder-only designs.
CASES = FULLSCAN_CASES


def run_experiment() -> Table:
    return run_flow_table(fullscan_flow(cases=CASES))


def test_fullscan(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for name, _n, _d, _u, aborted, cov, eff in table.rows:
        assert aborted == 0, name
        assert float(eff) == 1.0, name
        assert float(cov) >= 0.97, name
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
