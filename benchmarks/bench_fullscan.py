"""E-4.1b -- full-scan restructured designs are fully testable [8].

Survey claim (section 4.1): transformations with data-path don't-cares
"can yield optimized 100% single stuck-at fault testable fullscan
designs".

Measured: with every register scanned and the by-construction
redundancies removed (constant folding + dead-logic sweep, our
equivalent of [8]'s don't-care restructuring), combinational ATPG
achieves 100% test efficiency -- every fault detected or proven
untestable with zero aborts -- and coverage itself is ~100%.
"""

from common import Table, conventional_flow
from repro.cdfg import suite
from repro.rtl import fullscan_report

# (design, width, backtrack budget) -- the multiplier's xor-dense cones
# in tseng need a deeper search than the adder-only designs.
CASES = [("figure1", 3, 400), ("tseng", 3, 3000), ("fir8", 2, 400)]


def run_experiment() -> Table:
    t = Table(
        "E-4.1b",
        "[8] full-scan test efficiency after restructuring",
        ["design", "faults", "detected", "untestable", "aborted",
         "coverage", "efficiency"],
    )
    for name, width, backtracks in CASES:
        c = suite.standard_suite(width=width)[name]
        dp, *_ = conventional_flow(c, slack=1.5)
        rep = fullscan_report(
            dp, backtrack_limit=backtracks, max_faults=300
        )
        t.add(name, rep.total_faults, rep.detected, rep.untestable,
              rep.aborted, f"{rep.coverage:.3f}",
              f"{rep.test_efficiency:.3f}")
    t.notes.append(
        "claim shape: 100% test efficiency (no aborts) on every "
        "full-scan design; coverage ~100%"
    )
    return t


def test_fullscan(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for name, _n, _d, _u, aborted, cov, eff in table.rows:
        assert aborted == 0, name
        assert float(eff) == 1.0, name
        assert float(cov) >= 0.97, name
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
