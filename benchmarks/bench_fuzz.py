"""ROBUST -- the differential fuzzing campaign benchmark.

Three claims, all recorded in the repo-root ``BENCH_fuzz.json``
scoreboard:

* **throughput**: a real-oracle campaign (every differential oracle,
  both transports, shards 1/2) sustains a useful trial rate and a
  clean tree is all-match;
* **injected harness**: each seeded corner bug
  (:data:`repro.fuzz.oracles.INJECTED_BUGS`) is found and the
  divergent design minimized to a handful of gates;
* **bandit vs uniform**: LinUCB reaches first-find in fewer trials
  than uniform sampling on >= 2 of the 3 seeded bugs -- the bugs live
  in sparse feature-space corners (2 of 40 arms each), exactly where
  the bandit's cold-start diversity sweep looks first.

``--smoke`` (or ``REPRO_BENCH_QUICK=1``) runs reduced budgets as the
CI gate and leaves the committed scoreboard alone.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import tempfile
import time

from common import Table
from repro.fuzz.campaign import CampaignConfig, load_journal, run_campaign
from repro.fuzz.oracles import INJECTED_BUGS
from repro.gatelevel.kernel import have_kernel

ROOT_JSON = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_fuzz.json"
)

#: campaign seed; every measurement below is deterministic in it.
SEED = 1

FULL = {"real_trials": 24, "inject_trials": 40}
SMOKE = {"real_trials": 6, "inject_trials": 20}


def _first_find(journal: str) -> int | None:
    """Trial index of the first non-match line, or None."""
    _, trials = load_journal(journal)
    for line in trials:
        if line["outcome"] != "match":
            return line["trial"]
    return None


def _injected_run(bug: str, policy: str, trials: int,
                  workdir: str) -> dict:
    """One injected-bug campaign; minimization on for the bandit leg
    so the scoreboard also records the ddmin shrink."""
    journal = os.path.join(workdir, f"{bug}_{policy}.jsonl")
    config = CampaignConfig(
        seed=SEED,
        trials=trials,
        policy=policy,
        max_gates=400,
        inject=bug,
        exec_mode="inproc",
        journal=journal,
        repro_dir=os.path.join(workdir, "repros"),
        minimize=(policy == "linucb"),
    )
    summary = run_campaign(config)
    out = {
        "first_find": _first_find(journal),
        "divergences": summary["outcomes"]["divergence"],
        "trials": summary["trials"],
    }
    minimized = [f for f in summary["findings"] if f.get("repro")]
    if minimized:
        f = minimized[0]
        out["orig_gates"] = f["orig_gates"]
        out["min_gates"] = f["min_gates"]
    return out


def run_experiment(budgets=None, root_json: bool = True) -> Table:
    if budgets is None:
        if os.environ.get("REPRO_BENCH_QUICK"):
            # CI gate only -- leave the committed scoreboard alone.
            budgets, root_json = SMOKE, False
        else:
            budgets = FULL
    t_bench = time.perf_counter()
    table = Table(
        "ROBUST-fuzz",
        "differential fuzzing: throughput, seeded bugs, bandit lift",
        ["bug", "linucb find@", "uniform find@", "divergences",
         "shrink", "winner"],
    )

    with tempfile.TemporaryDirectory() as workdir:
        # 1. real-oracle throughput on a clean tree
        real = run_campaign(CampaignConfig(
            seed=SEED,
            trials=budgets["real_trials"],
            max_gates=400,
            shards=(1, 2),
            transports=("shm", "pickle"),
            journal=os.path.join(workdir, "real.jsonl"),
            repro_dir=os.path.join(workdir, "repros"),
        ))

        # 2+3. injected harness, bandit vs uniform
        injected: dict[str, dict] = {}
        bandit_wins = 0
        for bug in sorted(INJECTED_BUGS):
            legs = {
                policy: _injected_run(
                    bug, policy, budgets["inject_trials"], workdir
                )
                for policy in ("linucb", "uniform")
            }
            b, u = legs["linucb"]["first_find"], \
                legs["uniform"]["first_find"]
            win = b is not None and (u is None or b < u)
            bandit_wins += win
            injected[bug] = {**legs, "bandit_win": win}
            shrink = ""
            if "min_gates" in legs["linucb"]:
                shrink = (f"{legs['linucb']['orig_gates']}->"
                          f"{legs['linucb']['min_gates']}")
            table.add(
                bug,
                "-" if b is None else b,
                "-" if u is None else u,
                legs["linucb"]["divergences"],
                shrink,
                "linucb" if win else "uniform",
            )

    bench_seconds = time.perf_counter() - t_bench
    out = real["outcomes"]
    table.notes.append(
        f"real oracles: {real['trials']} trials, "
        f"{out['match']} match / "
        f"{out['divergence'] + out['crash'] + out['hang']} non-match, "
        f"{real['trials_per_min']} trials/min "
        f"(all oracles, shm+pickle, shards 1/2)"
    )
    table.notes.append(
        f"bandit first-find beats uniform on {bandit_wins}/"
        f"{len(injected)} seeded corner bugs "
        f"(seed={SEED}, {budgets['inject_trials']}-trial budget)"
    )
    table.real_campaign = {
        "trials": real["trials"],
        "trials_per_min": real["trials_per_min"],
        "outcomes": out,
    }
    table.injected = injected
    table.bandit_wins = bandit_wins
    if root_json:
        ROOT_JSON.write_text(json.dumps({
            "experiment": "ROBUST-fuzz",
            "kernel_available": have_kernel(),
            "nproc": os.cpu_count(),
            "seed": SEED,
            "budgets": budgets,
            "real_campaign": table.real_campaign,
            "injected": injected,
            "bandit_wins": bandit_wins,
            "bench_seconds": round(bench_seconds, 2),
        }, indent=2) + "\n")
    return table


def test_fuzz(benchmark):
    import pytest

    if not have_kernel():
        pytest.skip("the differential oracles need the numpy kernel")
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # a clean tree must fuzz clean under the real oracles
    real = table.real_campaign["outcomes"]
    assert real["divergence"] + real["crash"] + real["hang"] == 0, real
    # every seeded bug is findable and minimized hard
    for bug, legs in table.injected.items():
        assert legs["linucb"]["first_find"] is not None, bug
        if "min_gates" in legs["linucb"]:
            assert legs["linucb"]["min_gates"] <= \
                0.25 * legs["linucb"]["orig_gates"], (bug, legs)
    if not os.environ.get("REPRO_BENCH_QUICK"):
        # the acceptance bar: bandit beats uniform on >= 2 of 3 bugs
        assert table.bandit_wins >= 2, table.injected
    table.emit()


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--smoke", action="store_true",
                        help="reduced budgets (CI gate)")
    args = parser.parse_args()
    if args.smoke:
        # Print only: don't overwrite the committed full-run results.
        print(run_experiment(SMOKE, root_json=False).render())
    else:
        run_experiment().emit()
