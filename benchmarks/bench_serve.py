"""PERF -- warm service vs cold CLI, and deduped throughput.

Measures what ``repro.serve`` buys over batch invocation:

* **latency** -- wall time of one flow request as a cold CLI process
  (``python -m repro.flow run``: interpreter + import + cache probes
  per call) vs the warm server (resident engine, memory cache,
  persistent scheduler), both against the same pre-populated cache
  directory so only the serving model differs;
* **deduped throughput** -- requests/sec at 1, 8, and 64 concurrent
  *identical* submissions of a fixed-cost flow.  In-flight dedupe
  collapses each burst to ONE engine execution (asserted via the
  scheduler's run counter), so requests/sec scales with the burst
  size instead of the engine.

Results land in ``benchmarks/results/PERF-serve.{txt,json}`` and the
repo-root ``BENCH_serve.json`` scoreboard.  ``REPRO_BENCH_QUICK=1``
(or ``--smoke``) runs a reduced sweep and leaves the committed
scoreboard untouched.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import pathlib
import statistics
import subprocess
import sys
import tempfile
import time

from common import Table
from repro.flow import Flow
from repro.flow.flows import FLOWS

ROOT_JSON = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_serve.json"
)
REPO = pathlib.Path(__file__).resolve().parent.parent

LATENCY_FLOWS = ["figure1", "table1"]
CONCURRENCY = [1, 8, 64]
QUICK_CONCURRENCY = [1, 8]


# -- fixed-cost flow for the throughput section ---------------------------

def busy_work(spins: int, salt: int = 0):
    """Deterministic CPU-bound stage (~0.2s at the default spins)."""
    acc = 0
    for i in range(spins):
        acc = (acc + i * i) % 1000000007
    return acc


def benchwork_flow(spins: int = 2_000_000, salt: int = 0) -> Flow:
    f = Flow("benchwork")
    f.stage("work", busy_work, outputs=("out",),
            params={"spins": spins, "salt": salt})
    return f


def _cli_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _cold_cli_seconds(flow: str, cache_dir: str, trials: int) -> float:
    """Median wall time of one whole CLI invocation (warm disk cache:
    the cost measured is the per-process overhead the server amortises)."""
    times = []
    for _ in range(trials):
        t0 = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "repro.flow", "run", flow,
             "--cache-dir", cache_dir, "--quiet"],
            capture_output=True, text=True, env=_cli_env(), cwd=REPO,
            timeout=600,
        )
        times.append(time.perf_counter() - t0)
        assert proc.returncode == 0, proc.stderr
    return statistics.median(times)


def _warm_server_seconds(client, flow: str, trials: int) -> float:
    times = []
    for _ in range(trials):
        t0 = time.perf_counter()
        result = client.run(flow)
        times.append(time.perf_counter() - t0)
        assert result["ok"], result
    return statistics.median(times)


def _dedup_burst(client, n: int, salt: int, spins: int):
    """One burst of ``n`` identical submissions; returns (req/s, runs)."""
    before = client.metrics()["counters"]["runs"]
    params = {"spins": spins, "salt": salt}
    t0 = time.perf_counter()
    with concurrent.futures.ThreadPoolExecutor(min(n, 64)) as tp:
        submits = [tp.submit(client.submit, "benchwork", params,
                             retries=8)
                   for _ in range(n)]
        jobs = [f.result(timeout=120) for f in submits]
        waits = [tp.submit(client.wait, j["id"], 120) for j in jobs]
        states = [f.result(timeout=180) for f in waits]
    wall = time.perf_counter() - t0
    assert all(s["state"] == "done" for s in states)
    runs = client.metrics()["counters"]["runs"] - before
    return n / wall if wall > 0 else 0.0, runs, wall


def run_experiment(quick: bool | None = None,
                   root_json: bool | None = None) -> Table:
    from repro.serve import BackgroundServer, ServeClient

    if quick is None:
        quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    if root_json is None:
        root_json = not quick
    trials = 2 if quick else 3
    spins = 200_000 if quick else 2_000_000
    concurrency = QUICK_CONCURRENCY if quick else CONCURRENCY

    t_bench = time.perf_counter()
    table = Table(
        "PERF-serve",
        "warm service vs cold CLI, deduped throughput",
        ["case", "cold CLI s", "warm serve s", "speedup", "req/s",
         "engine runs"],
    )
    latency_records, burst_records = [], []
    flows = dict(FLOWS, benchwork=benchwork_flow)
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = str(pathlib.Path(tmp) / "fc")
        with BackgroundServer(cache_dir=cache_dir, workers=2, jobs=1,
                              queue_limit=128, flows=flows) as bg:
            client = ServeClient(bg.url)
            for flow in LATENCY_FLOWS:
                client.run(flow, timeout=600)  # populate the cache
                cold = _cold_cli_seconds(flow, cache_dir, trials)
                warm = _warm_server_seconds(client, flow, trials)
                speedup = cold / warm if warm > 0 else 0.0
                table.add(f"latency:{flow}", f"{cold:.3f}",
                          f"{warm:.3f}", f"{speedup:.1f}x", "-", "-")
                latency_records.append({
                    "flow": flow,
                    "cold_cli_s": round(cold, 4),
                    "warm_serve_s": round(warm, 4),
                    "speedup": round(speedup, 2),
                })
            for i, n in enumerate(concurrency):
                rps, runs, wall = _dedup_burst(client, n, salt=i,
                                               spins=spins)
                assert runs == 1, (
                    f"burst of {n} identical submissions ran "
                    f"{runs} times; dedupe failed"
                )
                table.add(f"dedupe:{n}x", "-", f"{wall:.3f}", "-",
                          f"{rps:.1f}", runs)
                burst_records.append({
                    "concurrent": n,
                    "wall_s": round(wall, 4),
                    "req_per_s": round(rps, 2),
                    "engine_runs": runs,
                })
    bench_seconds = time.perf_counter() - t_bench
    table.notes.append(
        "cold CLI = full `python -m repro.flow run` process against a "
        "warm disk cache; warm serve = same flow via the resident "
        "server; dedupe bursts are identical submissions collapsed to "
        "one engine execution"
    )
    table.latency_records = latency_records
    table.burst_records = burst_records
    if root_json:
        ROOT_JSON.write_text(json.dumps({
            "experiment": "PERF-serve",
            "latency": latency_records,
            "dedup_throughput": burst_records,
            "bench_seconds": round(bench_seconds, 2),
        }, indent=2) + "\n")
    return table


def test_serve_bench(benchmark):
    os.environ.setdefault("REPRO_BENCH_QUICK", "1")
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for rec in table.burst_records:
        assert rec["engine_runs"] == 1, rec
    # the server must beat a fresh process on warm repeat traffic
    for rec in table.latency_records:
        assert rec["warm_serve_s"] < rec["cold_cli_s"], rec
    table.emit()


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sweep; keep committed scoreboard")
    args = parser.parse_args()
    run_experiment(quick=args.smoke or None).emit()
