"""E-6 -- hierarchical test generation via test environments [7,29,38].

Survey claim (section 6): "The hierarchical tests, providing high fault
coverage, can be generated using the module tests and test environments
more quickly than test generation done at the gate-level."

Measured: on the figure1 design (4-bit), (a) wall time to produce the
hierarchical chip-level test suite vs flat sequential ATPG over a fault
sample; (b) gate-level stuck-at coverage achieved when the composed
tests are applied to the expanded data path through fault simulation.
"""

from common import Table, run_flow_table
from repro.flow.flows import (
    HIER_FAULT_SAMPLE,
    HIER_WIDTH,
    hierarchical_flow,
)

WIDTH = HIER_WIDTH
FAULT_SAMPLE = HIER_FAULT_SAMPLE


def run_experiment() -> Table:
    return run_flow_table(
        hierarchical_flow(width=WIDTH, fault_sample=FAULT_SAMPLE)
    )


def test_hierarchical(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert not table.uncovered
    assert table.t_hier < table.t_flat
    assert table.det_h >= 0.8 * table.det_f
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
