"""E-6 -- hierarchical test generation via test environments [7,29,38].

Survey claim (section 6): "The hierarchical tests, providing high fault
coverage, can be generated using the module tests and test environments
more quickly than test generation done at the gate-level."

Measured: on the figure1 design (4-bit), (a) wall time to produce the
hierarchical chip-level test suite vs flat sequential ATPG over a fault
sample; (b) gate-level stuck-at coverage achieved when the composed
tests are applied to the expanded data path through fault simulation.
"""

import time

from common import Table
from repro.cdfg import suite
from repro import hls
from repro.gatelevel import all_faults, expand_datapath
from repro.gatelevel.fault_sim import fault_simulate
from repro.gatelevel.seq_atpg import sequential_atpg
from repro.hier import hierarchical_test_suite, module_test_environments

WIDTH = 4
FAULT_SAMPLE = 40


def build():
    c = suite.figure1(width=WIDTH)
    alloc = hls.Allocation({"alu": 2})
    sched = hls.list_schedule(c, alloc)
    fub = hls.bind_functional_units(c, sched, alloc)
    ra = hls.assign_registers_left_edge(c, sched)
    dp = hls.build_datapath(c, sched, fub, ra)
    return c, dp, fub


def apply_tests_at_gate_level(composite, num_steps, tests, faults):
    """Drive each composed test through the controller-sequenced
    composite netlist and fault-simulate."""
    detected = set()
    remaining = list(faults)
    for test in tests:
        if not remaining:
            break
        piv = {"reset": 0}
        for name, val in test.inputs.items():
            for i in range(WIDTH):
                piv[f"pi_{name}_b{i}"] = (val >> i) & 1
        seq = [dict(piv, reset=1)] + [piv] * (num_steps + 1)
        results = fault_simulate(composite, remaining, seq, width=1)
        for f, d in results.items():
            if d:
                detected.add(f)
        remaining = [f for f in remaining if f not in detected]
    return len(detected)


def run_experiment() -> Table:
    t = Table(
        "E-6",
        "[7,38] hierarchical test generation vs flat sequential ATPG",
        ["method", "tests / faults", "detected", "time (s)"],
    )
    c, dp, fub = build()
    from repro.hls import build_controller
    from repro.gatelevel import expand_composite

    ctrl = build_controller(dp)
    composite = expand_composite(dp, ctrl)
    faults = [
        f for f in all_faults(composite)
        if f.net.startswith(("fa", "mx"))
    ][:FAULT_SAMPLE]

    t0 = time.perf_counter()
    envs = module_test_environments(c, fub)
    tests, uncovered = hierarchical_test_suite(
        c, envs, width=WIDTH, budget_per_module=16
    )
    t_hier_gen = time.perf_counter() - t0
    det_h = apply_tests_at_gate_level(
        composite, ctrl.num_steps, tests, faults
    )

    t0 = time.perf_counter()
    det_f = 0
    for f in faults:
        res = sequential_atpg(composite, f, max_frames=6,
                              backtrack_limit=60)
        det_f += res.detected
    t_flat = time.perf_counter() - t0

    t.add("hierarchical [7,38]", f"{len(tests)} tests",
          f"{det_h}/{len(faults)}", f"{t_hier_gen:.3f}")
    t.add("flat sequential ATPG", f"{len(faults)} faults",
          f"{det_f}/{len(faults)}", f"{t_flat:.3f}")
    t.det_h, t.det_f = det_h, det_f
    t.t_hier, t.t_flat = t_hier_gen, t_flat
    t.uncovered = uncovered
    t.notes.append(
        "claim shape: hierarchical generation is much faster at "
        "comparable coverage of the sampled unit faults"
    )
    return t


def test_hierarchical(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert not table.uncovered
    assert table.t_hier < table.t_flat
    assert table.det_h >= 0.8 * table.det_f
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
