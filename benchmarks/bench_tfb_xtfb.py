"""E-5.1b -- TFB vs XTFB vs [3] BIST overhead ladder [19,31].

Survey claim (section 5.1): the TFB architecture avoids self-adjacency
entirely (no CBILBOs); the XTFB relaxation "enable[s] generation of
self-testable data paths with less test area overhead than either the
traditional high level synthesis techniques or the BIST register
assignment approach [3]"; relaxing SR placement further ("sequential
depth between TPGRs and SRs greater than 1") trades even more area for
coverage.
"""

from common import Table
from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro import hls
from repro.bist.self_adjacent import avra_test_overhead, bist_register_assignment
from repro.bist.tfb import map_to_tfbs, verify_no_self_adjacency
from repro.bist.xtfb import map_to_xtfbs

NAMES = ["figure1", "diffeq", "tseng", "fir8", "iir2", "ewf"]


def run_experiment() -> Table:
    t = Table(
        "E-5.1b",
        "test-area-overhead ladder: [3] vs TFB [31] vs XTFB [19]",
        ["design", "[3] overhead", "TFB overhead", "XTFB d1", "XTFB d2",
         "TFBs", "XTFBs", "SRs d1", "SRs d2"],
    )
    for name in NAMES:
        c = suite.standard_suite()[name]
        latency = int(1.6 * critical_path_length(c))
        alloc = hls.allocate_for_latency(c, latency)
        sched = hls.list_schedule(c, alloc)
        fub = hls.bind_functional_units(c, sched, alloc)
        avra = hls.build_datapath(
            c, sched, fub, bist_register_assignment(c, sched, fub)
        )
        s = hls.asap(c)
        tfb = map_to_tfbs(c, s)
        verify_no_self_adjacency(c, tfb)
        x1 = map_to_xtfbs(c, s, sr_depth=1)
        x2 = map_to_xtfbs(c, s, sr_depth=2)
        t.add(name, f"{avra_test_overhead(avra):.0f}",
              f"{tfb.test_overhead(c):.0f}",
              f"{x1.test_overhead(c):.0f}",
              f"{x2.test_overhead(c):.0f}",
              tfb.num_tfbs, x1.num_xtfbs, x1.num_srs, x2.num_srs)
    t.notes.append(
        "claim shape: XTFB(d2) <= XTFB(d1) <= TFB <= [3] on overhead; "
        "no CBILBOs anywhere in the TFB/XTFB columns by construction"
    )
    return t


def test_tfb_xtfb(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in table.rows:
        name = row[0]
        avra, tfb, x1, x2 = (float(row[i]) for i in (1, 2, 3, 4))
        assert x2 <= x1 <= tfb <= avra, name
        assert row[7] >= row[8], name  # SRs shrink with depth
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
