"""E-5.1a -- BIST register assignment minimising self-adjacency [3].

Survey claim (section 5.1): "Experimental techniques generate data
paths with fewer self-adjacent registers and an equal number of total
registers, when compared with data paths produced by conventional
register assignment techniques."
"""

from common import Table
from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro import hls
from repro.bist.self_adjacent import (
    avra_test_overhead,
    bist_register_assignment,
    self_adjacent_registers,
)

NAMES = ["figure1", "diffeq", "tseng", "fir8", "diffeq_loop",
         "iir2", "iir3", "ewf", "ar4", "ar6"]


def run_experiment() -> Table:
    t = Table(
        "E-5.1a",
        "[3] self-adjacent registers: conventional vs BIST assignment",
        ["design", "SA conv", "SA [3]", "regs conv", "regs [3]",
         "overhead conv", "overhead [3]"],
    )
    strict = 0
    for name in NAMES:
        c = suite.standard_suite()[name]
        latency = int(1.6 * critical_path_length(c))
        alloc = hls.allocate_for_latency(c, latency)
        sched = hls.list_schedule(c, alloc)
        fub = hls.bind_functional_units(c, sched, alloc)
        conv = hls.build_datapath(
            c, sched, fub, hls.assign_registers_left_edge(c, sched)
        )
        avra = hls.build_datapath(
            c, sched, fub, bist_register_assignment(c, sched, fub)
        )
        sa_c, sa_a = (
            len(self_adjacent_registers(conv)),
            len(self_adjacent_registers(avra)),
        )
        strict += sa_a < sa_c
        t.add(name, sa_c, sa_a, len(conv.registers), len(avra.registers),
              f"{avra_test_overhead(conv):.0f}",
              f"{avra_test_overhead(avra):.0f}")
    t.strict = strict
    t.notes.append(
        "claim shape: SA [3] <= SA conv on every design, strictly fewer "
        "on several; total registers never increase"
    )
    return t


def test_self_adjacent(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for name, sa_c, sa_a, r_c, r_a, *_ in table.rows:
        assert sa_a <= sa_c, name
        assert r_a <= r_c, name
    assert table.strict >= 3
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
