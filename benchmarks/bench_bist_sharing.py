"""E-5.1c -- TPGR/SR sharing with exact CBILBO conditions [32].

Survey claim (section 5.1): register assignment can maximise the
modules a register serves as TPGR/SR for, "resulting in a minimal
number of registers that need to be converted"; and "every self-
adjacent register ... does not need to be converted into a CBILBO" --
the exact conditions avoid CBILBOs whenever some clean output register
exists.
"""

from common import Table
from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro import hls
from repro.bist import TestRole, assign_test_roles, sharing_register_assignment
from repro.bist.self_adjacent import self_adjacent_registers

NAMES = ["diffeq", "iir2", "iir3", "ewf", "ar4"]


def flows(name):
    c = suite.standard_suite()[name]
    latency = int(1.6 * critical_path_length(c))
    alloc = hls.allocate_for_latency(c, latency)
    sched = hls.list_schedule(c, alloc)
    fub = hls.bind_functional_units(c, sched, alloc)
    conv = hls.build_datapath(
        c, sched, fub, hls.assign_registers_left_edge(c, sched)
    )
    shared = hls.build_datapath(
        c, sched, fub, sharing_register_assignment(c, sched, fub)
    )
    return conv, shared


def run_experiment() -> Table:
    t = Table(
        "E-5.1c",
        "[32] TPGR/SR sharing: converted registers and CBILBO avoidance",
        ["design", "conv converted", "[32] converted", "CBILBO conv",
         "CBILBO [32]", "SA [32]"],
    )
    for name in NAMES:
        conv, shared = flows(name)
        cfg_c, _ = assign_test_roles(conv)
        cfg_s, _ = assign_test_roles(shared)
        t.add(
            name,
            cfg_c.converted_registers,
            cfg_s.converted_registers,
            cfg_c.count(TestRole.CBILBO),
            cfg_s.count(TestRole.CBILBO),
            len(self_adjacent_registers(shared)),
        )
    t.notes.append(
        "claim shape: sharing never converts more registers; CBILBOs "
        "are far rarer than self-adjacent registers (exact conditions), "
        "and never more than in the conventional assignment"
    )
    return t


def test_bist_sharing(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for name, conv_cvt, shr_cvt, cb_c, cb_s, sa in table.rows:
        assert shr_cvt <= conv_cvt + 1, name
        assert cb_s <= cb_c, name
        assert cb_s <= sa, name  # exact conditions beat the [3] assumption
    total_cb = sum(r[4] for r in table.rows)
    total_sa = sum(r[5] for r in table.rows)
    assert total_cb <= 0.4 * total_sa
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
