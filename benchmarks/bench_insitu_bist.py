"""E-5.5 -- in-situ BIST executed at the gate level.

Section 5's premise made executable: registers reconfigured as
TPGRs/SRs (LFSR/MISR hardware at the bit level), the data path
free-running in test mode, faults detected by signature comparison.

Claims exercised: (a) the logic blocks between test registers reach
high coverage within a short session (the premise of [31,32]);
(b) running the conflict-free session schedule beats cramming every
unit into one session when an SR is shared -- the executable form of
the [20] test-conflict argument; (c) coverage grows with session
length (pseudorandom BIST economics).
"""

from common import Table, conventional_flow
from repro.cdfg import suite
from repro.bist import assign_test_roles, schedule_sessions
from repro.gatelevel.bist_session import (
    bist_fault_coverage,
    build_bist_hardware,
)
from repro.gatelevel.faults import all_faults

WIDTH = 4
N_FAULTS = 90


def run_experiment() -> Table:
    t = Table(
        "E-5.5",
        "in-situ BIST: signature-based coverage of the logic blocks",
        ["design", "sessions", "unit cov @16", "unit cov @64",
         "all-in-one cov", "scheduled cov"],
    )
    for name in ("iir2", "ar4"):
        c = suite.standard_suite(width=WIDTH)[name]
        dp, *_ = conventional_flow(c, slack=1.5)
        _cfg, envs = assign_test_roles(dp)
        hw = build_bist_hardware(dp, envs)
        sessions = schedule_sessions(list(envs))
        unit_faults = [
            f for f in all_faults(hw.netlist)
            if f.net.startswith(("fa_", "pp_"))
        ][:N_FAULTS]
        cov16 = bist_fault_coverage(
            hw, sessions=sessions, cycles=16, faults=unit_faults
        )
        cov64 = bist_fault_coverage(
            hw, sessions=sessions, cycles=64, faults=unit_faults
        )
        all_faults_sample = all_faults(hw.netlist)[:N_FAULTS]
        one = bist_fault_coverage(
            hw, sessions=[[u.name for u in dp.units]],
            cycles=48, faults=all_faults_sample,
        )
        multi = bist_fault_coverage(
            hw, sessions=sessions, cycles=48, faults=all_faults_sample
        )
        t.add(name, len(sessions), f"{cov16:.3f}", f"{cov64:.3f}",
              f"{one:.3f}", f"{multi:.3f}")
    t.notes.append(
        "claim shape: logic-block coverage high and growing with "
        "session length; the conflict-free session schedule never "
        "covers less than the all-in-one session"
    )
    return t


def test_insitu_bist(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for name, _s, c16, c64, one, multi in table.rows:
        assert float(c64) >= float(c16), name
        assert float(c64) >= 0.7, name
        assert float(multi) >= float(one), name
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
