"""E-5.5 -- in-situ BIST executed at the gate level.

Section 5's premise made executable: registers reconfigured as
TPGRs/SRs (LFSR/MISR hardware at the bit level), the data path
free-running in test mode, faults detected by signature comparison.

Claims exercised: (a) the logic blocks between test registers reach
high coverage within a short session (the premise of [31,32]);
(b) running the conflict-free session schedule beats cramming every
unit into one session when an SR is shared -- the executable form of
the [20] test-conflict argument; (c) coverage grows with session
length (pseudorandom BIST economics).

Ported onto ``repro.flow.flows.insitu_bist_flow``; coverage is computed
by the fault-parallel compiled kernel (``PERF-bist`` gates its
equivalence against the fault-serial interpreter).
"""

from common import Table, run_flow_table
from repro.flow.flows import INSITU_BIST_NAMES, insitu_bist_flow

NAMES = INSITU_BIST_NAMES


def run_experiment() -> Table:
    return run_flow_table(insitu_bist_flow(names=NAMES))


def test_insitu_bist(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for name, _s, c16, c64, one, multi in table.rows:
        assert float(c64) >= float(c16), name
        assert float(c64) >= 0.7, name
        assert float(multi) >= float(one), name
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
