"""E-3.3.1c -- scan cost vs performance constraint (ablation sweep).

Survey context (section 3.3): the high-level techniques synthesize
testable implementations "while preserving the performance and area
constraints of the design", and loops "cannot be avoided due to the
given performance and resource constraints" when those are tight.

Sweep: latency slack from 1.0x (critical path) to 2.0x on the looped
suite; measured: scan bits of the loop-aware flow and of the gate-level
baseline.  Claim shape: tighter constraints never make the high-level
flow worse than the baseline, and relaxing the constraint monotonically
helps (more freedom to avoid assignment loops) or is neutral.
"""

from common import Table, conventional_flow
from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro import hls
from repro.scan import gate_level_partial_scan, loop_aware_synthesis

SLACKS = (1.0, 1.25, 1.5, 2.0)
NAMES = ["iir2", "ar4", "ewf"]


def run_experiment() -> Table:
    t = Table(
        "E-3.3.1c",
        "scan bits vs latency slack: [33] under tightening constraints",
        ["design"] + [f"[33] @{s}x" for s in SLACKS]
        + [f"gate @{s}x" for s in SLACKS],
    )
    per_design = {}
    for name in NAMES:
        c = suite.standard_suite()[name]
        cpl = critical_path_length(c)
        hls_bits = []
        gate_bits = []
        for slack in SLACKS:
            latency = max(cpl, int(slack * cpl))
            alloc = hls.allocate_for_latency(c, latency)
            dp, _ = loop_aware_synthesis(c, alloc, num_steps=latency)
            hls_bits.append(sum(r.width for r in dp.scan_registers()))
            dpc, *_ = conventional_flow(c, slack=max(slack, 1.0))
            gate_bits.append(gate_level_partial_scan(dpc).scan_bits)
        per_design[name] = (hls_bits, gate_bits)
        t.add(name, *hls_bits, *gate_bits)
    t.per_design = per_design
    t.notes.append(
        "claim shape: at every slack the [33] flow needs no more scan "
        "bits than the gate baseline; the advantage holds even at the "
        "tightest (critical-path) constraint"
    )
    return t


def test_latency_tradeoff(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for name, (hls_bits, gate_bits) in table.per_design.items():
        for h, g in zip(hls_bits, gate_bits):
            assert h <= g, (name, h, g)
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
