"""E-3.2 -- I/O-register-maximising assignment [25].

Survey claim (section 3.2): assigning intermediates into I/O registers
improves controllability/observability of the data path "while in most
cases assigning a minimum number of registers".

Measured: variables living in I/O registers, I/O register fraction,
total registers, and S-graph input-to-output depth, versus the
conventional left-edge assignment.
"""

from common import Table, conventional_flow
from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro import hls
from repro.scan.io_registers import assign_registers_io_first, io_register_stats
from repro.sgraph.build import build_sgraph
from repro.sgraph.cycles import input_to_output_depth

NAMES = ["figure1", "diffeq", "tseng", "fir8", "iir2", "ewf"]


def io_flow(cdfg, slack=1.5):
    latency = int(slack * critical_path_length(cdfg))
    alloc = hls.allocate_for_latency(cdfg, latency)
    sched = hls.list_schedule(cdfg, alloc)
    fub = hls.bind_functional_units(cdfg, sched, alloc)
    ra = assign_registers_io_first(cdfg, sched)
    return hls.build_datapath(cdfg, sched, fub, ra)


def run_experiment() -> Table:
    t = Table(
        "E-3.2",
        "[25] I/O-first register assignment vs conventional left-edge",
        ["design", "regs LE", "regs IO", "vars-in-IO LE", "vars-in-IO IO",
         "depth LE", "depth IO"],
    )
    wins = 0
    for name in NAMES:
        c = suite.standard_suite()[name]
        dp_le, *_ = conventional_flow(c)
        dp_io = io_flow(c)
        s_le, s_io = io_register_stats(dp_le), io_register_stats(dp_io)
        d_le = input_to_output_depth(build_sgraph(dp_le))
        d_io = input_to_output_depth(build_sgraph(dp_io))
        if s_io.variables_in_io_registers > s_le.variables_in_io_registers:
            wins += 1
        t.add(name, s_le.total_registers, s_io.total_registers,
              s_le.variables_in_io_registers,
              s_io.variables_in_io_registers,
              d_le if d_le is not None else "inf",
              d_io if d_io is not None else "inf")
    t.wins = wins
    t.notes.append(
        "claim shape: IO-first stores >= as many variables in I/O "
        "registers on every design, strictly more on most, with a "
        "near-minimal register count"
    )
    return t


def test_io_registers(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in table.rows:
        _name, regs_le, regs_io, vle, vio, *_ = row
        assert vio >= vle
        assert regs_io <= regs_le + 2
    assert table.wins >= len(NAMES) // 2
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
