"""T1 -- regenerate Table 1 of the survey verbatim.

Paper exhibit: "Operational Level of Testability Insertion" for seven
commercial tool offerings.  This bench reproduces the table exactly and
additionally maps each insertion level to the executable flow in this
library demonstrating it.
"""

from common import Table, run_flow_table
from repro.flow.flows import table1_flow
from repro.survey import render_table1


def run_experiment() -> Table:
    return run_flow_table(table1_flow())


def test_table1(benchmark):
    table = benchmark(run_experiment)
    assert len(table.rows) == 7
    names = [r[0] for r in table.rows]
    assert names == [
        "Sunrise", "Mentor", "LogicVision", "IBM",
        "Synopsys", "Compass", "AT&T",
    ]
    # the paper's level assignments, spot checks
    levels = {r[0]: r[2] for r in table.rows}
    assert levels["LogicVision"] == "HDL"
    assert "technology-independent" in levels["IBM"]
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
    print()
    print(render_table1())
