"""T1 -- regenerate Table 1 of the survey verbatim.

Paper exhibit: "Operational Level of Testability Insertion" for seven
commercial tool offerings.  This bench reproduces the table exactly and
additionally maps each insertion level to the executable flow in this
library demonstrating it.
"""

from common import Table
from repro.survey import TABLE1, render_table1
from repro.survey.table1 import InsertionLevel


def run_experiment() -> Table:
    t = Table(
        "T1",
        "Operational Level of Testability Insertion (Table 1, verbatim)",
        ["Name", "Synthesis Base", "Insertion Level", "repro flow"],
    )
    for row in TABLE1:
        t.add(
            row.name,
            row.synthesis_base,
            " or ".join(l.value for l in row.levels),
            row.repro_flow,
        )
    return t


def test_table1(benchmark):
    table = benchmark(run_experiment)
    assert len(table.rows) == 7
    names = [r[0] for r in table.rows]
    assert names == [
        "Sunrise", "Mentor", "LogicVision", "IBM",
        "Synopsys", "Compass", "AT&T",
    ]
    # the paper's level assignments, spot checks
    levels = {r[0]: r[2] for r in table.rows}
    assert levels["LogicVision"] == "HDL"
    assert "technology-independent" in levels["IBM"]
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
    print()
    print(render_table1())
