"""PERF -- fault-parallel sequential BIST simulation vs the interpreter.

Measures end-to-end ``bist_fault_attribution`` wall time (the engine
under E-5.5's signature coverage) on BIST hardware of increasing size,
in two configurations that must produce identical attribution maps
(fault -> first-detecting (session, checkpoint) or None):

* **interp** -- the fault-serial reference: one full multi-cycle
  interpreter simulation per fault per session;
* **kernel** -- the fault-parallel compiled path: faults packed as bit
  columns of one wide state vector (column 0 golden), all session
  cycles free-run once per batch of ``SEQ_FAULT_COLUMNS - 1`` faults,
  detected faults dropped from later sessions.

The largest case additionally cross-checks that fault-parallel sharded
runs (``shards=2/4``) merge identically, and the full sweep times
``bench_insitu_bist``'s whole E-5.5 flow end-to-end under both
backends (identical tables required).  Results land in
``benchmarks/results/PERF-bist.{txt,json}`` and the repo-root
``BENCH_bist.json`` scoreboard.  ``--smoke`` (or ``REPRO_BENCH_QUICK=1``
through ``run_all.py``) runs a single small case, the CI equality gate.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

from common import Table, conventional_flow
from repro.bist import assign_test_roles, schedule_sessions
from repro.cdfg import suite
from repro.gatelevel.bist_session import (
    bist_fault_attribution,
    build_bist_hardware,
)
from repro.gatelevel.faults import all_faults
from repro.gatelevel.kernel import have_kernel

ROOT_JSON = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_bist.json"
)

#: (design, bit width, session cycles, fault sample) -- small to large
CASES = [
    ("iir2", 4, 48, 90),
    ("ar4", 4, 48, 90),
    ("ar4", 8, 48, 120),
]
SMOKE_CASES = [("iir2", 2, 16, 40)]


def _bist_hardware(design: str, bits: int):
    cdfg = suite.standard_suite(width=bits)[design]
    dp, *_ = conventional_flow(cdfg, slack=1.5)
    _cfg, envs = assign_test_roles(dp)
    hw = build_bist_hardware(dp, envs)
    return hw, schedule_sessions(list(envs))


def _insitu_e2e() -> dict:
    """Time E-5.5 end-to-end (the whole ``insitu_bist`` flow) under
    both backends, uncached; the tables must match row for row."""
    from common import run_flow_table
    from repro.flow.flows import insitu_bist_flow

    out = {}
    rows = {}
    for backend in ("interp", "kernel"):
        t0 = time.perf_counter()
        table = run_flow_table(insitu_bist_flow(backend=backend),
                               cache=False)
        out[f"{backend}_s"] = round(time.perf_counter() - t0, 3)
        rows[backend] = table.rows
    assert rows["kernel"] == rows["interp"], (
        "E-5.5 coverage differs between backends"
    )
    out["speedup"] = round(out["interp_s"] / out["kernel_s"], 2)
    out["identical"] = True
    return out


def _run(hw, sessions, cycles, faults, backend: str, shards: int = 1):
    t0 = time.perf_counter()
    att = bist_fault_attribution(
        hw, sessions=sessions, cycles=cycles, faults=faults,
        backend=backend, shards=shards,
    )
    return att, time.perf_counter() - t0


def run_experiment(cases=None, root_json: bool = True) -> Table:
    if cases is None:
        if os.environ.get("REPRO_BENCH_QUICK"):
            # Equality gate only -- leave the committed scoreboard alone.
            cases, root_json = SMOKE_CASES, False
        else:
            cases = CASES
    t_bench = time.perf_counter()
    table = Table(
        "PERF-bist",
        "BIST signature coverage: fault-parallel kernel vs interpreter",
        ["design", "gates", "faults", "sessions", "interp s", "kernel s",
         "speedup", "coverage", "identical"],
    )
    records = []
    for i, (design, bits, cycles, n_faults) in enumerate(cases):
        hw, sessions = _bist_hardware(design, bits)
        faults = all_faults(hw.netlist)[:n_faults]
        att_i, secs_i = _run(hw, sessions, cycles, faults, "interp")
        att_k, secs_k = _run(hw, sessions, cycles, faults, "kernel")
        identical = att_i == att_k and list(att_i) == list(att_k)
        assert identical, f"kernel != interpreter on {design}"
        if i == len(cases) - 1:
            for shards in (2, 4):
                att_s, _ = _run(hw, sessions, cycles, faults, "kernel",
                                shards=shards)
                assert att_s == att_k and list(att_s) == list(att_k), (
                    f"shards={shards} != serial on {design}"
                )
        coverage = sum(
            1 for hit in att_k.values() if hit is not None
        ) / len(faults)
        speedup = secs_i / secs_k if secs_k > 0 else 0.0
        table.add(design, len(hw.netlist), len(faults), len(sessions),
                  f"{secs_i:.2f}", f"{secs_k:.3f}", f"{speedup:.1f}x",
                  f"{coverage:.3f}", identical)
        records.append({
            "design": design,
            "gates": len(hw.netlist),
            "faults": len(faults),
            "sessions": len(sessions),
            "cycles": cycles,
            "interp_s": round(secs_i, 3),
            "kernel_s": round(secs_k, 4),
            "speedup": round(speedup, 2),
            "interp_faults_per_s": round(len(faults) / secs_i, 1),
            "kernel_faults_per_s": round(len(faults) / secs_k, 1),
            "coverage": round(coverage, 4),
            "identical": identical,
        })
    bench_seconds = time.perf_counter() - t_bench
    table.notes.append(
        "speedup = interpreter fault-serial wall / fault-parallel "
        "kernel wall for identical attribution maps (fault -> first "
        "detecting session+checkpoint); largest case also cross-checks "
        "shards=2/4 merge identically"
    )
    table.largest_speedup = records[-1]["speedup"]
    table.records = records
    if root_json:
        e2e = _insitu_e2e()
        table.notes.append(
            f"bench_insitu_bist end-to-end (E-5.5 flow, identical "
            f"tables): {e2e['interp_s']:.1f}s interp -> "
            f"{e2e['kernel_s']:.1f}s kernel ({e2e['speedup']:.1f}x)"
        )
        ROOT_JSON.write_text(json.dumps({
            "experiment": "PERF-bist",
            "kernel_available": have_kernel(),
            "cases": records,
            "largest_case_speedup": records[-1]["speedup"],
            "insitu_bist_end_to_end": e2e,
            "bench_seconds": round(bench_seconds, 2),
        }, indent=2) + "\n")
    return table


def test_bist_faultsim_kernel(benchmark):
    import pytest

    if not have_kernel():
        pytest.skip("fault-parallel backend needs numpy")
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in table.rows:
        assert row[-1], row  # kernel == interpreter on every case
    assert table.largest_speedup >= 10.0, table.largest_speedup
    table.emit()


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--smoke", action="store_true",
                        help="one small case (CI equality gate)")
    args = parser.parse_args()
    if args.smoke:
        # Print only: don't overwrite the committed full-sweep results.
        print(run_experiment(SMOKE_CASES, root_json=False).render())
    else:
        run_experiment().emit()
