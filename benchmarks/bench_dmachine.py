"""PERF -- the d_machine CPU benchmark through the full test flows.

The d_machine (:mod:`repro.designs.dmachine`) is the repo's first
architected benchmark: a hand-built 16-bit accumulator CPU -- ALU,
register file, instruction decode, PC/SP datapath, embedded RAM bank
-- rather than a genscale random graph.  This bench runs the complete
design-for-test menu on it and records wall-clock per phase:

* **scan-select**: random coverage, full scan vs core scan (RAM bank
  left unscanned) on the same fault sample;
* **atpg**: deterministic PODEM test generation;
* **random**: random-pattern coverage on a fresh fault sample;
* **bist**: the no-scan MISR-observed variant through BIST fault
  coverage (one session, all units).

The full sweep runs the default >= 5k-gate configuration plus a wider
32-bit datapath; results land in
``benchmarks/results/PERF-dmachine.{txt,json}`` and the repo-root
``BENCH_dmachine.json`` scoreboard.  ``--smoke`` (or
``REPRO_BENCH_QUICK=1``) runs a narrow 8-bit configuration as the CI
gate and leaves the committed scoreboard alone.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

from common import Table
from repro.flow.flows import (
    dmachine_atpg_row,
    dmachine_bist_row,
    dmachine_build,
    dmachine_random_row,
    dmachine_scan_row,
)
from repro.gatelevel.kernel import have_kernel

ROOT_JSON = (
    pathlib.Path(__file__).resolve().parent.parent
    / "BENCH_dmachine.json"
)

def _compact(doc: dict) -> dict:
    """One trajectory entry: the sweep boiled down to what drifts."""
    return {
        "nproc": doc.get("nproc"),
        "gates_default": doc.get("gates_default"),
        "bench_seconds": doc.get("bench_seconds"),
        "totals": {
            f"w{c['config']['width']} r{c['config']['nregs']} "
            f"ram{c['config']['ram_words']}": c["total_s"]
            for c in doc.get("cases", [])
        },
    }


def _load_trajectory() -> list[dict]:
    """Prior runs' compact summaries, oldest first.

    The scoreboard keeps a ``trajectory`` list so successive full
    sweeps accumulate a perf history instead of overwriting each
    other; a pre-trajectory scoreboard contributes its own run as the
    first entry.
    """
    if not ROOT_JSON.exists():
        return []
    try:
        old = json.loads(ROOT_JSON.read_text())
    except (json.JSONDecodeError, OSError):
        return []
    prior = old.get("trajectory")
    if isinstance(prior, list):
        return prior
    return [_compact(old)] if old.get("cases") else []


#: configuration dicts swept in the full run; the default must stay
#: the >= 5k-gate CPU the acceptance bar names.
CASES = [
    {"width": 16, "nregs": 16, "ram_words": 128, "n_faults": 240,
     "patterns": 256, "bist_cycles": 128, "backtracks": 600},
    {"width": 32, "nregs": 16, "ram_words": 64, "n_faults": 160,
     "patterns": 128, "bist_cycles": 96, "backtracks": 400},
]
SMOKE = [
    {"width": 8, "nregs": 8, "ram_words": 16, "n_faults": 48,
     "patterns": 32, "bist_cycles": 24, "backtracks": 200},
]


def _phase_seconds(row) -> float:
    """The trailing ``time (s)`` cell every dmachine row carries."""
    return float(row[-1])


def run_experiment(cases=None, root_json: bool = True) -> Table:
    if cases is None:
        if os.environ.get("REPRO_BENCH_QUICK"):
            # CI gate only -- leave the committed scoreboard alone.
            cases, root_json = SMOKE, False
        else:
            cases = CASES
    t_bench = time.perf_counter()
    table = Table(
        "PERF-dmachine",
        "the hand-built d_machine CPU through the full test flows",
        ["config", "gates", "dffs", "scan-sel s", "atpg s",
         "random s", "bist s", "total s"],
    )
    records = []
    for cfg in cases:
        width, nregs, ram = cfg["width"], cfg["nregs"], cfg["ram_words"]
        seed = 1
        t0 = time.perf_counter()
        nl = dmachine_build(width, nregs, ram)
        t_build = time.perf_counter() - t0
        scan_row = dmachine_scan_row(
            nl, width, nregs, ram, cfg["n_faults"], cfg["patterns"],
            seed,
        )
        atpg_row = dmachine_atpg_row(nl, cfg["n_faults"],
                                     cfg["backtracks"], seed)
        random_row = dmachine_random_row(nl, cfg["patterns"],
                                         cfg["n_faults"], seed)
        bist_row = dmachine_bist_row(
            width, nregs, ram, cfg["bist_cycles"], cfg["n_faults"],
            seed,
        )
        phases = {
            "scan_select": scan_row,
            "atpg": atpg_row,
            "random": random_row,
            "bist": bist_row,
        }
        total = t_build + sum(_phase_seconds(r) for r in phases.values())
        table.add(
            f"w{width} r{nregs} ram{ram}", nl.num_gates(),
            len(nl.dffs()),
            f"{_phase_seconds(scan_row):.2f}",
            f"{_phase_seconds(atpg_row):.2f}",
            f"{_phase_seconds(random_row):.2f}",
            f"{_phase_seconds(bist_row):.2f}",
            f"{total:.2f}",
        )
        records.append({
            "config": {"width": width, "nregs": nregs,
                       "ram_words": ram},
            "gates": nl.num_gates(),
            "dffs": len(nl.dffs()),
            "scan_dffs": len(nl.scan_dffs()),
            "build_s": round(t_build, 3),
            "phases": {
                name: {"row": [str(c) for c in row],
                       "seconds": _phase_seconds(row)}
                for name, row in phases.items()
            },
            "total_s": round(total, 3),
        })

    bench_seconds = time.perf_counter() - t_bench
    table.notes.append(
        "hand-built accumulator CPU (ALU / regfile / decode / RAM / "
        "PC+SP), not genscale-generated; phase columns are the flow "
        "rows' own wall-clock; scan-select compares full vs core scan "
        "on one fault sample"
    )
    table.records = records
    table.gates_default = records[0]["gates"]
    if root_json:
        doc = {
            "experiment": "PERF-dmachine",
            "kernel_available": have_kernel(),
            "nproc": os.cpu_count(),
            "cases": records,
            "gates_default": records[0]["gates"],
            "bench_seconds": round(bench_seconds, 2),
        }
        # Append this run to the perf trajectory (prior runs kept).
        doc["trajectory"] = _load_trajectory() + [_compact(doc)]
        ROOT_JSON.write_text(json.dumps(doc, indent=2) + "\n")
    return table


def test_dmachine(benchmark):
    import pytest

    if not have_kernel():
        pytest.skip("the CPU flows need the numpy kernel")
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    if not quick:
        # the acceptance bar: a >= 5k-gate hand-built CPU
        assert table.gates_default >= 5_000, table.gates_default
    table.emit()


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--smoke", action="store_true",
                        help="reduced configuration (CI gate)")
    args = parser.parse_args()
    if args.smoke:
        # Print only: don't overwrite the committed full-sweep results.
        print(run_experiment(SMOKE, root_json=False).render())
    else:
        run_experiment().emit()
