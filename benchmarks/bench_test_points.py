"""E-4.2 -- k-level test points: non-scan DFT [15].

Survey claim (section 4.2): "it suffices to make all the loops k-level
(k>0) controllable and observable to achieve very high test efficiency.
This ... eliminates the need ... to make one or more registers in each
loop directly (k=0) accessible to scan or primary I/O, significantly
reducing the number of test points needed while maintaining high fault
coverage."

Measured: test points needed at k=0,1,2 across the looped suite, the
fraction of loops already covered without insertion, and pseudorandom
fault coverage of a k=1 test-pointed data path vs the scanned one.
"""

from common import Table, conventional_flow
from repro.cdfg import suite
from repro.rtl import insert_k_level_test_points, k_level_coverage
from repro.gatelevel import all_faults, expand_datapath
from repro.gatelevel.random_patterns import random_pattern_coverage

NAMES = ["diffeq_loop", "iir2", "iir3", "ewf", "ar4", "ar6"]


def run_experiment() -> Table:
    t = Table(
        "E-4.2",
        "[15] k-level test points vs direct (k=0) accessibility",
        ["design", "tp k=0", "tp k=1", "tp k=2", "loops pre-covered k=1"],
    )
    totals = [0, 0, 0]
    for name in NAMES:
        c = suite.standard_suite()[name]
        dp, *_ = conventional_flow(c, slack=1.5)
        tps = [
            len(insert_k_level_test_points(dp, k=k)) for k in (0, 1, 2)
        ]
        pre = k_level_coverage(dp, 1)
        totals = [a + b for a, b in zip(totals, tps)]
        t.add(name, *tps, f"{pre:.2f}")
    t.add("TOTAL", *totals, "")
    t.totals = totals

    # Coverage check on one design: k=1 test points (modelled as direct
    # access points = scan-equivalent observe/control at those nodes)
    # against pseudorandom patterns.
    c = suite.iir_biquad(1, width=3)
    dp_tp, *_ = conventional_flow(c, slack=1.5)
    points = insert_k_level_test_points(dp_tp, k=1)
    dp_tp.mark_scan(*[p.register for p in points])
    nl, _ = expand_datapath(dp_tp)
    faults = all_faults(nl)
    cov = random_pattern_coverage(
        nl, n_patterns=128, sequence_length=4, faults=faults
    )
    t.cov_k1 = cov
    t.notes.append(
        f"claim shape: tp(k=1) << tp(k=0) in total; k=1 pseudorandom "
        f"coverage stays high (measured {cov:.3f} on iir1)"
    )
    return t


def test_test_points(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    k0, k1, k2 = table.totals
    assert k1 <= 0.5 * k0  # "significantly reducing"
    assert k2 <= k1
    assert table.cov_k1 >= 0.85  # "maintaining high fault coverage"
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
