"""PERF -- structural fault collapsing + SCOAP-guided ATPG.

Measures what the :mod:`repro.gatelevel.structure` engine buys on the
two fault-facing hot paths:

* **Fault simulation**: full stuck-at universes on genscale designs
  with technology-mapper-shaped buffer/inverter chains
  (``buf_ratio``), swept over {collapse on, off} x shard counts
  {1, 2, 4} on the compiled kernel, plus a reference-interpreter row
  on the smallest case.  Every collapsed run must expand
  byte-identically to its uncollapsed twin.
* **Deterministic ATPG**: ``generate_tests`` with pre-drop disabled so
  PODEM does the work, {collapse+guidance on, off}, on abort-free
  configurations (classification identity is exact only when no
  search aborts -- see ``docs/fault_collapsing.md``).  Reports
  wall-clock and PODEM backtracks.

Results land in ``benchmarks/results/PERF-collapse.{txt,json}`` and
the repo-root ``BENCH_collapse.json`` scoreboard.  ``--smoke`` (or
``REPRO_BENCH_QUICK=1``) runs reduced cases as the CI identity gate
and leaves the committed scoreboard alone.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

from common import Table
from repro.flow.metrics import collect
from repro.gatelevel import genscale
from repro.gatelevel.fault_sim import fault_simulate_cycles
from repro.gatelevel.faults import all_faults
from repro.gatelevel.kernel import have_kernel
from repro.gatelevel.structure import structural_analysis
from repro.gatelevel.test_generation import generate_tests

ROOT_JSON = (
    pathlib.Path(__file__).resolve().parent.parent
    / "BENCH_collapse.json"
)

#: buffer/inverter chain density for the swept designs -- the shape a
#: technology mapper leaves behind, and the shape collapsing eats.
BUF_RATIO = 0.55

#: (gate budget, pattern cycles) -- small to large, full fault
#: universe each (sampling would break up the equivalence classes).
FS_CASES = [
    (2_000, 8),
    (5_000, 8),
    (10_000, 6),
]
FS_SMOKE = [(800, 4)]

#: (gate budget, backtrack limit) for the ATPG sweep; both
#: configurations are abort-free at these limits, so collapsed and
#: guided runs classify every fault identically to the reference.
ATPG_CASES = [
    (300, 4_000),
    (500, 4_000),
]
ATPG_SMOKE = [(300, 4_000)]

SHARD_SWEEP = (1, 2, 4)


def _design(n_gates: int):
    nl = genscale.generate_netlist(
        n_gates, seed=1, signature_bits=32, buf_ratio=BUF_RATIO
    )
    return nl, all_faults(nl)


def _timed_fs(nl, faults, pats, collapse, shards, backend=None):
    t0 = time.perf_counter()
    res = fault_simulate_cycles(
        nl, faults, pats, collapse=collapse, shards=shards,
        backend=backend,
    )
    return res, time.perf_counter() - t0


def _timed_atpg(nl, limit, on):
    t0 = time.perf_counter()
    with collect() as m:
        ts = generate_tests(
            nl, backtrack_limit=limit, predrop=0,
            collapse=on, guidance=on,
        )
    return ts, time.perf_counter() - t0, m.get("podem_backtracks", 0)


def run_experiment(fs_cases=None, atpg_cases=None,
                   root_json: bool = True) -> Table:
    if fs_cases is None:
        if os.environ.get("REPRO_BENCH_QUICK"):
            # Identity gate only -- leave the committed scoreboard alone.
            fs_cases, atpg_cases, root_json = FS_SMOKE, ATPG_SMOKE, False
        else:
            fs_cases, atpg_cases = FS_CASES, ATPG_CASES
    t_bench = time.perf_counter()
    table = Table(
        "PERF-collapse",
        "fault collapsing + SCOAP guidance on the fault-facing paths",
        ["path", "gates", "faults", "reps", "off s", "on s",
         "speedup", "identical"],
    )
    fs_records = []
    for i, (n_gates, cycles) in enumerate(fs_cases):
        nl, faults = _design(n_gates)
        struct = structural_analysis(nl)
        ratio = struct.collapse.ratio
        n_reps = len(struct.collapse.representatives(faults))
        pats = genscale.random_patterns(nl, cycles, seed=4)
        # warm the compiled program so the off row does not pay the
        # one-time compile that the on row would then skip
        fault_simulate_cycles(nl, faults[:8], pats[:1], collapse=False)

        per_shards = {}
        identical = True
        for shards in SHARD_SWEEP:
            off, t_off = _timed_fs(nl, faults, pats, False, shards)
            on, t_on = _timed_fs(nl, faults, pats, True, shards)
            ok = on == off and list(on) == list(off)
            identical &= ok
            per_shards[shards] = {
                "off_s": round(t_off, 3),
                "on_s": round(t_on, 3),
                "speedup": round(t_off / t_on, 2),
            }
        assert identical, f"collapse identity broke at {n_gates} gates"

        interp = None
        if i == 0:
            off, t_off = _timed_fs(nl, faults, pats, False, 1,
                                   backend="interpreter")
            on, t_on = _timed_fs(nl, faults, pats, True, 1,
                                 backend="interpreter")
            assert on == off and list(on) == list(off)
            interp = {
                "off_s": round(t_off, 3),
                "on_s": round(t_on, 3),
                "speedup": round(t_off / t_on, 2),
            }

        serial = per_shards[1]
        table.add(
            "fault-sim", len(nl), len(faults), n_reps,
            f"{serial['off_s']:.2f}", f"{serial['on_s']:.2f}",
            f"{serial['speedup']:.2f}x", identical,
        )
        fs_records.append({
            "design": nl.name,
            "gates": len(nl),
            "cycles": cycles,
            "faults": len(faults),
            "representatives": n_reps,
            "collapse_ratio": round(ratio, 4),
            "kernel_shards": per_shards,
            **({"interpreter": interp} if interp else {}),
            "speedup_serial": serial["speedup"],
            "identical": identical,
        })

    atpg_records = []
    for n_gates, limit in atpg_cases:
        nl = genscale.generate_netlist(n_gates, seed=1,
                                       buf_ratio=BUF_RATIO)
        off, t_off, bt_off = _timed_atpg(nl, limit, on=False)
        on, t_on, bt_on = _timed_atpg(nl, limit, on=True)
        abort_free = not off.aborted and not on.aborted
        identical = (
            abort_free
            and set(on.detected) == set(off.detected)
            and set(on.untestable) == set(off.untestable)
            and on.total_faults == off.total_faults
        )
        assert abort_free, f"ATPG case {n_gates} is not abort-free"
        assert identical, f"ATPG classification broke at {n_gates}"
        table.add(
            "atpg", len(nl), off.total_faults,
            len(structural_analysis(nl).collapse.representatives(
                all_faults(nl))),
            f"{t_off:.2f}", f"{t_on:.2f}",
            f"{t_off / t_on:.2f}x", identical,
        )
        atpg_records.append({
            "design": nl.name,
            "gates": len(nl),
            "backtrack_limit": limit,
            "faults": off.total_faults,
            "coverage": round(off.coverage, 4),
            "off_s": round(t_off, 3),
            "on_s": round(t_on, 3),
            "speedup": round(t_off / t_on, 2),
            "backtracks_off": bt_off,
            "backtracks_on": bt_on,
            "backtrack_reduction": round(bt_off / max(1, bt_on), 2),
            "identical": identical,
        })

    bench_seconds = time.perf_counter() - t_bench
    table.notes.append(
        "fault-sim rows: full stuck-at universe, collapse on vs off, "
        "serial kernel times (shards 1/2/4 in the JSON); atpg rows: "
        "generate_tests with predrop=0, collapse+guidance on vs off, "
        "abort-free so classification is exactly identical"
    )
    table.records = {"fault_sim": fs_records, "atpg": atpg_records}
    table.fs_speedup_largest = fs_records[-1]["speedup_serial"]
    table.atpg_speedup_largest = atpg_records[-1]["speedup"]
    if root_json:
        ROOT_JSON.write_text(json.dumps({
            "experiment": "PERF-collapse",
            "kernel_available": have_kernel(),
            "nproc": os.cpu_count(),
            "buf_ratio": BUF_RATIO,
            "fault_sim": fs_records,
            "atpg": atpg_records,
            "fs_speedup_largest": fs_records[-1]["speedup_serial"],
            "atpg_speedup_largest": atpg_records[-1]["speedup"],
            "atpg_backtrack_reduction_largest": atpg_records[-1][
                "backtrack_reduction"],
            "bench_seconds": round(bench_seconds, 2),
        }, indent=2) + "\n")
    return table


def test_collapse(benchmark):
    import pytest

    if not have_kernel():
        pytest.skip("kernel backend needs numpy")
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in table.rows:
        assert row[-1], row  # identity on every row
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    if not quick:
        # the acceptance bar; timing-based, so full sweeps only
        assert table.fs_speedup_largest >= 1.3, table.fs_speedup_largest
        assert table.atpg_speedup_largest >= 1.3, \
            table.atpg_speedup_largest
    table.emit()


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--smoke", action="store_true",
                        help="reduced cases (CI identity gate)")
    args = parser.parse_args()
    if args.smoke:
        # Print only: don't overwrite the committed full-sweep results.
        print(run_experiment(FS_SMOKE, ATPG_SMOKE,
                             root_json=False).render())
    else:
        run_experiment().emit()
