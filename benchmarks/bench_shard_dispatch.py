"""PERF -- zero-copy shard dispatch vs whole-payload pickles at scale.

Measures what a fault-parallel shard *costs to dispatch* on genscale
designs of 10k-100k gates: bytes shipped through the pool pipe per
shard (``payload_bytes`` under ``REPRO_SHARD_TRANSPORT=pickle`` vs
``shm``), plus cold and warm-pool wall clock for the same
``fault_simulate_cycles`` run.  Every sharded run must merge
byte-identically to the serial reference -- across both transports and
shard counts 1 (serial), 2, and 4 -- and the smallest case additionally
proves the BIST attribution path identical under both transports.

Warm rows reuse one persistent :class:`WarmPoolProvider` pool, so they
show the compiled-program cache payoff: under shm a warm worker
receives content digests and tiny segment refs, resolves its cached
``Netlist``, and reuses its compiled program -- no netlist bytes cross
the pipe at all after the first call.

Results land in ``benchmarks/results/PERF-shard-dispatch.{txt,json}``
and the repo-root ``BENCH_shard_dispatch.json`` scoreboard.  ``--smoke``
(or ``REPRO_BENCH_QUICK=1``) runs one reduced 10k-gate case as the CI
identity gate and leaves the committed scoreboard alone.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

from common import Table
from repro.flow import shm
from repro.flow.metrics import collect
from repro.flow.resilience import set_shard_pool_provider
from repro.gatelevel import genscale
from repro.gatelevel.bist_session import bist_fault_attribution
from repro.gatelevel.fault_sim import fault_simulate_cycles
from repro.gatelevel.kernel import have_kernel
from repro.serve.registry import WarmPoolProvider

ROOT_JSON = (
    pathlib.Path(__file__).resolve().parent.parent
    / "BENCH_shard_dispatch.json"
)

#: (gate budget, fault sample, pattern cycles) -- small to large.  The
#: fault sample shrinks as designs grow so a full sweep stays minutes.
CASES = [
    (10_000, 512, 8),
    (30_000, 384, 8),
    (100_000, 256, 6),
]
SMOKE_CASES = [(10_000, 128, 4)]

SHARDS = 4


def _design(n_gates: int):
    nl = genscale.generate_netlist(n_gates, seed=1, signature_bits=32)
    faults = genscale.sample_faults(nl, 10 ** 9, seed=2)
    return nl, faults


def _timed(nl, faults, pats, shards: int):
    t0 = time.perf_counter()
    res = fault_simulate_cycles(nl, faults, pats, shards=shards)
    return res, time.perf_counter() - t0


def _payload_bytes(nl, faults, pats, transport: str) -> dict:
    """Dispatch-cost pass: bytes per shard, measured not timed."""
    os.environ[shm.TRANSPORT_ENV] = transport
    with collect() as custom:
        fault_simulate_cycles(nl, faults, pats, shards=SHARDS)
    return {
        "payload_bytes": custom["payload_bytes"],
        "payload_bytes_per_shard": custom["payload_bytes"] // SHARDS,
        "shm_bytes": custom.get("shm_bytes", 0),
    }


def _bist_identity(nl, n_faults: int = 64) -> bool:
    hw = genscale.bist_wrap(nl)
    faults = genscale.sample_faults(nl, n_faults, seed=5)
    kw = dict(sessions=[["u0"]], cycles=16, faults=faults)
    serial = bist_fault_attribution(hw, shards=1, **kw)
    for transport in ("pickle", "shm"):
        os.environ[shm.TRANSPORT_ENV] = transport
        for shards in (2, 4):
            att = bist_fault_attribution(hw, shards=shards, **kw)
            if att != serial or list(att) != list(serial):
                return False
    return True


def run_experiment(cases=None, root_json: bool = True) -> Table:
    if cases is None:
        if os.environ.get("REPRO_BENCH_QUICK"):
            # Identity gate only -- leave the committed scoreboard alone.
            cases, root_json = SMOKE_CASES, False
        else:
            cases = CASES
    t_bench = time.perf_counter()
    table = Table(
        "PERF-shard-dispatch",
        "shard dispatch: shm payload plane + warm workers vs pickles",
        ["gates", "faults", "serial s", "pkl cold s", "shm cold s",
         "pkl warm s", "shm warm s", "B/shard pkl", "B/shard shm",
         "reduction", "identical"],
    )
    records = []
    saved_env = os.environ.get(shm.TRANSPORT_ENV)
    try:
        for i, (n_gates, n_faults, cycles) in enumerate(cases):
            nl, universe = _design(n_gates)
            faults = genscale.sample_faults(nl, n_faults, seed=3)
            pats = genscale.random_patterns(nl, cycles, seed=4)
            os.environ.pop(shm.TRANSPORT_ENV, None)
            serial, serial_s = _timed(nl, faults, pats, shards=1)

            cold = {}
            identical = True
            for transport in ("pickle", "shm"):
                os.environ[shm.TRANSPORT_ENV] = transport
                for shards in (2, SHARDS):
                    res, secs = _timed(nl, faults, pats, shards)
                    cold[(transport, shards)] = secs
                    identical &= (res == serial
                                  and list(res) == list(serial))
            assert identical, f"transport/shard mismatch at {n_gates}"

            # Warm-pool rows: one persistent pool, workers keep their
            # compiled programs; two untimed laps spread the netlist
            # to every worker before the measured laps.
            provider = WarmPoolProvider(jobs=SHARDS)
            provider.prewarm()
            set_shard_pool_provider(provider)
            warm = {}
            try:
                os.environ[shm.TRANSPORT_ENV] = "shm"
                for _lap in range(2):
                    fault_simulate_cycles(nl, faults, pats,
                                          shards=SHARDS)
                for transport in ("pickle", "shm"):
                    os.environ[shm.TRANSPORT_ENV] = transport
                    res, secs = _timed(nl, faults, pats, SHARDS)
                    warm[transport] = secs
                    assert res == serial, f"warm {transport} mismatch"
            finally:
                set_shard_pool_provider(None)
                provider.close()

            sizes = {
                t: _payload_bytes(nl, faults, pats, t)
                for t in ("pickle", "shm")
            }
            reduction = (sizes["pickle"]["payload_bytes_per_shard"]
                         / max(1, sizes["shm"]["payload_bytes_per_shard"]))
            bist_ok = _bist_identity(nl) if i == 0 else None
            if bist_ok is False:
                raise AssertionError("BIST transport identity failed")

            table.add(
                len(nl), len(faults), f"{serial_s:.2f}",
                f"{cold[('pickle', SHARDS)]:.2f}",
                f"{cold[('shm', SHARDS)]:.2f}",
                f"{warm['pickle']:.2f}", f"{warm['shm']:.2f}",
                sizes["pickle"]["payload_bytes_per_shard"],
                sizes["shm"]["payload_bytes_per_shard"],
                f"{reduction:.0f}x", identical,
            )
            records.append({
                "design": nl.name,
                "gates": len(nl),
                "fault_universe": len(universe),
                "faults": len(faults),
                "cycles": cycles,
                "serial_s": round(serial_s, 3),
                "pickle": {
                    "cold2_s": round(cold[("pickle", 2)], 3),
                    "cold4_s": round(cold[("pickle", SHARDS)], 3),
                    "warm4_s": round(warm["pickle"], 3),
                    **sizes["pickle"],
                },
                "shm": {
                    "cold2_s": round(cold[("shm", 2)], 3),
                    "cold4_s": round(cold[("shm", SHARDS)], 3),
                    "warm4_s": round(warm["shm"], 3),
                    **sizes["shm"],
                },
                "payload_reduction_per_shard": round(reduction, 1),
                "cold4_speedup_vs_pickle": round(
                    cold[("pickle", SHARDS)] / cold[("shm", SHARDS)], 2),
                "warm4_speedup_vs_pickle": round(
                    warm["pickle"] / warm["shm"], 2),
                "identical": identical,
                **({"bist_identical": bist_ok}
                   if bist_ok is not None else {}),
            })
    finally:
        if saved_env is None:
            os.environ.pop(shm.TRANSPORT_ENV, None)
        else:
            os.environ[shm.TRANSPORT_ENV] = saved_env
    bench_seconds = time.perf_counter() - t_bench
    table.notes.append(
        "B/shard = pickled bytes of one shard's args (whole netlist + "
        "patterns + fault chunk under pickle; digests + segment refs "
        "under shm); warm rows reuse one persistent pool so shm pays "
        "neither ship nor unpickle nor recompile"
    )
    table.records = records
    table.reduction_10k = records[0]["payload_reduction_per_shard"]
    table.warm_speedup_largest = records[-1]["warm4_speedup_vs_pickle"]
    if root_json:
        ROOT_JSON.write_text(json.dumps({
            "experiment": "PERF-shard-dispatch",
            "kernel_available": have_kernel(),
            "nproc": os.cpu_count(),
            "shards": SHARDS,
            "cases": records,
            "payload_reduction_10k": records[0][
                "payload_reduction_per_shard"],
            "warm_speedup_largest": records[-1][
                "warm4_speedup_vs_pickle"],
            "bench_seconds": round(bench_seconds, 2),
        }, indent=2) + "\n")
    return table


def test_shard_dispatch(benchmark):
    import pytest

    if not have_kernel():
        pytest.skip("kernel backend needs numpy")
    if not shm.shm_available():
        pytest.skip("no usable shared memory here")
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in table.rows:
        assert row[-1], row  # byte-identical on every case
    assert table.reduction_10k >= 5.0, table.reduction_10k
    table.emit()


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--smoke", action="store_true",
                        help="one reduced case (CI identity gate)")
    args = parser.parse_args()
    if args.smoke:
        # Print only: don't overwrite the committed full-sweep results.
        print(run_experiment(SMOKE_CASES, root_json=False).render())
    else:
        run_experiment().emit()
