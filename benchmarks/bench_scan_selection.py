"""E-3.3.1 -- CDFG-level scan selection vs gate-level partial scan.

Survey claim (section 3.3): "Results from high level scan selection and
loop-breaking indicate that loop-free highly testable designs can be
synthesized that require significantly fewer scan FFs than conventional
processes."

Measured: scan registers / scan bits of (a) the conventional flow
(testability-blind synthesis + MFVS partial scan), (b) the boundary-
variable flow [24], and (c) the full loop-aware flow [33]; all results
must be loop-free.
"""

from common import Table, conventional_flow
from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro import hls
from repro.scan import (
    gate_level_partial_scan,
    loop_aware_synthesis,
    select_boundary_variables,
)
from repro.scan.report import minimize_scan_registers
from repro.scan.scan_select import assign_registers_with_plan
from repro.sgraph import build_sgraph, is_loop_free, sgraph_without_scan

NAMES = ["diffeq_loop", "iir2", "iir3", "ewf", "ar4", "ar6"]


def boundary_flow(c, latency):
    alloc = hls.allocate_for_latency(c, latency)
    sched = hls.list_schedule(c, alloc)
    plan = select_boundary_variables(c, sched)
    ra = assign_registers_with_plan(c, sched, plan)
    fub = hls.bind_functional_units(c, sched, alloc)
    dp = hls.build_datapath(c, sched, fub, ra)
    dp.mark_scan(*sorted({
        dp.register_of_variable(v).name for v in plan.variables
    }))
    # residual assignment loops still need scanning (no loop-aware
    # binder in the [24] flow modelled here)
    from repro.scan.simultaneous import ensure_loop_free

    ensure_loop_free(dp)
    minimize_scan_registers(dp)
    return dp


def run_experiment() -> Table:
    t = Table(
        "E-3.3.1",
        "scan cost: gate-level MFVS vs [24] boundary vs [33] loop-aware",
        ["design", "gate bits", "[24] bits", "[33] bits", "all loop-free"],
    )
    totals = [0, 0, 0]
    for name in NAMES:
        c = suite.standard_suite()[name]
        latency = int(1.5 * critical_path_length(c))
        dp_gate, *_ = conventional_flow(c, slack=1.5)
        rep = gate_level_partial_scan(dp_gate)
        dp_b = boundary_flow(c, latency)
        alloc = hls.allocate_for_latency(c, latency)
        dp_a, _plan = loop_aware_synthesis(c, alloc, num_steps=latency)
        bits = lambda dp: sum(r.width for r in dp.scan_registers())
        lf = all(
            is_loop_free(sgraph_without_scan(build_sgraph(d)))
            for d in (dp_gate, dp_b, dp_a)
        )
        row = (name, rep.scan_bits, bits(dp_b), bits(dp_a), lf)
        totals = [a + b for a, b in zip(totals, row[1:4])]
        t.add(*row)
    t.add("TOTAL", *totals, "")
    t.totals = totals
    t.notes.append(
        "claim shape: [33] <= [24] <= gate-level on totals; every flow "
        "loop-free (self-loops tolerated)"
    )
    return t


def test_scan_selection(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    gate_total, b_total, a_total = table.totals
    assert a_total <= b_total <= gate_total
    # "significantly fewer": at least 25% total reduction for [33]
    assert a_total <= 0.75 * gate_total
    for row in table.rows[:-1]:
        name, gate, b24, a33, lf = row
        assert lf, name
        assert a33 <= gate, name
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
