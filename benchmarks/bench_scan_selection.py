"""E-3.3.1 -- CDFG-level scan selection vs gate-level partial scan.

Survey claim (section 3.3): "Results from high level scan selection and
loop-breaking indicate that loop-free highly testable designs can be
synthesized that require significantly fewer scan FFs than conventional
processes."

Measured: scan registers / scan bits of (a) the conventional flow
(testability-blind synthesis + MFVS partial scan), (b) the boundary-
variable flow [24], and (c) the full loop-aware flow [33]; all results
must be loop-free.
"""

from common import Table, run_flow_table
from repro.flow.flows import PARTIAL_SCAN_NAMES, partial_scan_flow

NAMES = PARTIAL_SCAN_NAMES


def run_experiment() -> Table:
    return run_flow_table(partial_scan_flow(names=NAMES))


def test_scan_selection(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    gate_total, b_total, a_total = table.totals
    assert a_total <= b_total <= gate_total
    # "significantly fewer": at least 25% total reduction for [33]
    assert a_total <= 0.75 * gate_total
    for row in table.rows[:-1]:
        name, gate, b24, a33, lf = row
        assert lf, name
        assert a33 <= gate, name
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
