"""E-3.3.2 -- avoiding assignment loops during binding (ablation D2).

Survey claim (section 3.3.2): hardware sharing introduces loops even in
loop-free behaviors; "formation of loops in the data path may be
avoided by proper scheduling and assignment."

Ablation: the [33] simultaneous scheduler/binder with its testability
cost term on vs off (off = conventional load-balancing binder with
left-edge registers).  Measured on loop-free *and* looped behaviors:
S-graph cycles before scan, and scan bits needed after repair.
"""

from common import Table
from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro import hls
from repro.scan import loop_aware_synthesis
from repro.sgraph import build_sgraph, nontrivial_cycles

NAMES = ["figure1", "diffeq", "tseng", "fir8", "iir2", "ar4", "ewf"]


def run_experiment() -> Table:
    t = Table(
        "E-3.3.2",
        "[33] loop-aware binder vs cost-blind binder (ablation)",
        ["design", "cycles blind", "cycles aware", "scan bits blind",
         "scan bits aware"],
    )
    for name in NAMES:
        c = suite.standard_suite()[name]
        latency = int(1.5 * critical_path_length(c))
        alloc = hls.allocate_for_latency(c, latency)
        dp_aware, _ = loop_aware_synthesis(c, alloc, num_steps=latency)
        dp_blind, _ = loop_aware_synthesis(
            c, alloc, num_steps=latency, testability_weight=0.0
        )
        bits = lambda dp: sum(r.width for r in dp.scan_registers())
        # cycles measured on the raw structure (ignoring scan marks)
        cyc = lambda dp: len(
            nontrivial_cycles(build_sgraph(dp), bound=500)
        )
        t.add(name, cyc(dp_blind), cyc(dp_aware), bits(dp_blind),
              bits(dp_aware))
    t.notes.append(
        "claim shape: the aware binder forms no more data-path cycles "
        "and needs no more scan than the blind binder; on loop-free "
        "behaviors it reaches zero scan"
    )
    return t


def test_assignment_loops(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    loop_free_behaviors = {"figure1", "diffeq", "tseng", "fir8"}
    strict = 0
    for name, cyc_blind, cyc_aware, bits_blind, bits_aware in table.rows:
        assert bits_aware <= bits_blind, name
        if name in loop_free_behaviors:
            assert bits_aware == 0, name
        if bits_aware < bits_blind or cyc_aware < cyc_blind:
            strict += 1
    assert strict >= 2  # the ablation actually bites somewhere
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
