"""E-3.3.1e -- allocation's effect on loop formation (ablation sweep).

Allocation is the third fundamental HLS task (survey §1.1); section
3.3.2 shows assignment loops are a *sharing* phenomenon: "when the
operations along a CDFG path from operation u to operation v are
assigned n separate modules, with u and v assigned to the same module,
a loop of length n is created".  More units means less sharing pressure
and fewer forced loops.

Sweep: 1..4 ALUs/multipliers on the looped suite, cost-blind binder
(so allocation is the only testability lever).  Measured: data-path
cycles and scan bits needed.  Claim shape: scan cost is monotone
non-increasing (within noise) as the allocation grows, and the
loop-aware binder at the *minimum* allocation still beats the blind
binder at the *maximum* one -- algorithms beat hardware.
"""

from common import Table
from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro import hls
from repro.scan import loop_aware_synthesis

UNITS = (1, 2, 3)
NAMES = ["iir2", "ar4"]


def run_experiment() -> Table:
    t = Table(
        "E-3.3.1e",
        "allocation sweep: scan bits of the cost-blind binder vs units",
        ["design"] + [f"blind @{u} units" for u in UNITS]
        + ["loop-aware @1 unit"],
    )
    for name in NAMES:
        c = suite.standard_suite()[name]
        cpl = critical_path_length(c)
        row = [name]
        for u in UNITS:
            alloc = hls.Allocation({"alu": u, "mult": u})
            dp, _ = loop_aware_synthesis(
                c, alloc, testability_weight=0.0
            )
            row.append(sum(r.width for r in dp.scan_registers()))
        alloc1 = hls.Allocation({"alu": 1, "mult": 1})
        dp_aware, _ = loop_aware_synthesis(c, alloc1)
        row.append(sum(r.width for r in dp_aware.scan_registers()))
        t.add(*row)
    t.notes.append(
        "claim shape: the loop-aware binder at the minimum allocation "
        "needs no more scan than the blind binder at any allocation "
        "(algorithms beat extra hardware for testability)"
    )
    return t


def test_allocation_tradeoff(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in table.rows:
        name, *blind_bits, aware_min = row
        assert aware_min <= min(blind_bits), name
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
