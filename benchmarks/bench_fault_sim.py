"""PERF -- compiled fault-simulation kernel vs the reference interpreter.

Measures patterns/sec (pattern-cycles simulated per second, the PPSFP
throughput metric) on full-scan expanded suite designs of increasing
size, for the pure-Python interpreter and the compiled numpy kernel
(:mod:`repro.gatelevel.kernel`).  Every run cross-checks the two
engines for bit-identical results, and the largest case additionally
checks that a fault-parallel sharded run merges byte-identically.

Results land in ``benchmarks/results/PERF-faultsim.{txt,json}`` and in
the repo-root ``BENCH_fault_sim.json`` scoreboard.  ``--smoke`` runs a
single small case (the CI job's equality gate).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import time

from common import Table, conventional_flow
from repro.cdfg import suite
from repro.gatelevel import all_faults, expand_datapath
from repro.gatelevel.fault_sim import fault_simulate_cycles
from repro.gatelevel.kernel import have_kernel

ROOT_JSON = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_fault_sim.json"
)

#: (design, bit width, pattern width, cycles) -- sorted small to large
CASES = [
    ("figure1", 3, 256, 2),
    ("tseng", 3, 256, 2),
    ("fir8", 3, 256, 2),
    ("fir8", 8, 256, 2),
]
SMOKE_CASES = [("figure1", 2, 64, 2)]


def _fullscan_netlist(design: str, bits: int):
    cdfg = suite.standard_suite(width=bits)[design]
    dp, *_ = conventional_flow(cdfg)
    dp.mark_scan(*[r.name for r in dp.registers])
    netlist, _ctrl = expand_datapath(dp)
    return netlist


def _sequence(netlist, width: int, cycles: int, seed: int = 11):
    rng = random.Random(seed)
    return [
        {pi: rng.getrandbits(width) for pi in netlist.inputs()}
        for _ in range(cycles)
    ]


def _run(netlist, faults, seq, width: int, backend: str, shards: int = 1):
    t0 = time.perf_counter()
    res = fault_simulate_cycles(
        netlist, faults, seq, width=width, backend=backend, shards=shards
    )
    secs = time.perf_counter() - t0
    # Work actually done: a fault detected at cycle c simulated c+1
    # cycles of `width` patterns (identical accounting for both engines).
    work = sum(
        width * (len(seq) if c is None else c + 1) for c in res.values()
    )
    return res, (work / secs if secs > 0 else 0.0), secs


def run_experiment(cases=None, root_json: bool = True) -> Table:
    cases = CASES if cases is None else cases
    t_bench = time.perf_counter()
    table = Table(
        "PERF-faultsim",
        "fault-simulation throughput: compiled kernel vs interpreter",
        ["design", "gates", "faults", "interp pps", "kernel pps",
         "speedup", "identical"],
    )
    records = []
    for i, (design, bits, width, cycles) in enumerate(cases):
        netlist = _fullscan_netlist(design, bits)
        faults = all_faults(netlist)
        seq = _sequence(netlist, width, cycles)
        res_i, pps_i, _ = _run(netlist, faults, seq, width, "interp")
        res_k, pps_k, _ = _run(netlist, faults, seq, width, "kernel")
        identical = res_i == res_k and list(res_i) == list(res_k)
        assert identical, f"kernel != interpreter on {design}"
        if i == len(cases) - 1:
            res_s, _, _ = _run(netlist, faults, seq, width, "kernel",
                               shards=2)
            assert res_s == res_k and list(res_s) == list(res_k), (
                f"sharded != serial on {design}"
            )
        speedup = pps_k / pps_i if pps_i > 0 else 0.0
        table.add(design, len(netlist), len(faults),
                  f"{pps_i:.0f}", f"{pps_k:.0f}", f"{speedup:.1f}x",
                  identical)
        records.append({
            "design": design,
            "gates": len(netlist),
            "faults": len(faults),
            "pattern_width": width,
            "cycles": cycles,
            "interp_patterns_per_s": round(pps_i, 1),
            "kernel_patterns_per_s": round(pps_k, 1),
            "speedup": round(speedup, 2),
            "identical": identical,
        })
    bench_seconds = time.perf_counter() - t_bench
    table.notes.append(
        "pps = pattern-cycles/sec over the collapsed fault list; "
        "identical = kernel bit-identical to the interpreter"
    )
    table.largest_speedup = records[-1]["speedup"]
    table.records = records
    if root_json:
        ROOT_JSON.write_text(json.dumps({
            "experiment": "PERF-faultsim",
            "kernel_available": have_kernel(),
            "cases": records,
            "largest_case_speedup": records[-1]["speedup"],
            "bench_seconds": round(bench_seconds, 2),
        }, indent=2) + "\n")
    return table


def test_fault_sim_kernel(benchmark):
    import pytest

    if not have_kernel():
        pytest.skip("kernel backend needs numpy")
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in table.rows:
        assert row[-1], row  # kernel == interpreter on every case
    assert table.largest_speedup >= 5.0, table.largest_speedup
    table.emit()


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--smoke", action="store_true",
                        help="one small case (CI equality gate)")
    args = parser.parse_args()
    if args.smoke:
        # Equality gate only -- leave the committed scoreboard alone.
        run_experiment(SMOKE_CASES, root_json=False).emit()
    else:
        run_experiment().emit()
