"""PERF -- fused multi-design kernel execution (block-diagonal batching).

Measures what :mod:`repro.gatelevel.batch` buys over per-design serial
kernel calls on the regimes the fusion targets:

* **Sparse corpus coverage** -- many small designs, a targeted fault
  sample each (the hierarchical per-module / serve-coalescing shape).
  Serial runs pay one ``good_cycle`` plus padded fault batches per
  design per pattern block; the fused run shares one good-machine pass
  across the corpus and packs 32-fault batches across design
  boundaries.  This is the headline sweep the >= 2x acceptance bar
  rides on.
* **Sequential free-runs** -- BIST-style packed fault columns over
  hundreds of cycles.  Serial runs leave most of the 256 word-bit
  columns empty on small fault lists; the fused run fills them across
  designs, amortising per-(level, opcode) numpy dispatch corpus-wide.
* **Dense corpus coverage** -- full stuck-at universes, where every
  design already fills whole batches and fusion can only share the
  good machine: reported honestly as a parity row, no speedup claimed.
* **Shard sweep** -- the headline case re-run at shards {1, 2, 4}
  through the shm payload plane; every row must stay byte-identical.

Every fused row asserts byte-identity against its serial twin.
Results land in ``benchmarks/results/PERF-batch.{txt,json}`` and the
repo-root ``BENCH_batch.json`` scoreboard.  ``--smoke`` (or
``REPRO_BENCH_QUICK=1``) runs reduced cases as the CI identity gate
and leaves the committed scoreboard alone.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import random
import time

from common import Table
from repro.gatelevel import batch as gbatch
from repro.gatelevel import genscale
from repro.gatelevel.batch import SeqJob, sequential_detect_many
from repro.gatelevel.faults import all_faults
from repro.gatelevel.kernel import compiled, have_kernel
from repro.gatelevel.random_patterns import random_pattern_coverage
from repro.gatelevel.structure import structural_analysis

ROOT_JSON = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_batch.json"
)

#: (designs, gates each, sampled faults each, patterns) -- the
#: targeted-check shape: hier per-module sweeps, serve coalescing.
SPARSE_CASES = [
    (48, 150, 12, 256),
    (100, 80, 8, 256),
    (200, 60, 6, 256),
]
SPARSE_SMOKE = [(8, 100, 8, 64)]

#: (designs, gates each, faults each, free-run cycles) -- packed
#: sequential columns, observed at quarter-point checkpoints.
SEQ_CASES = [
    (24, 200, 16, 256),
    (48, 120, 8, 256),
]
SEQ_SMOKE = [(6, 100, 8, 64)]

#: (designs, gates each, patterns) -- full fault universes; the
#: parity regime (serial already amortises well, no win claimed).
DENSE_CASES = [(16, 500, 256)]
DENSE_SMOKE = [(4, 120, 64)]

SHARD_SWEEP = (1, 2, 4)


def _corpus(n: int, gates: int, nf: int | None):
    """``n`` genscale designs with (optionally sampled) fault lists,
    structure/compile caches warmed so neither side pays them."""
    nls = [genscale.generate_netlist(gates, seed=100 + i)
           for i in range(n)]
    fls = []
    for i, nl in enumerate(nls):
        fl = all_faults(nl)
        if nf is not None:
            fl = random.Random(50 + i).sample(fl, min(nf, len(fl)))
        fls.append(fl)
        structural_analysis(nl)
        compiled(nl)
    gbatch.fused_compiled(nls)
    return nls, fls


def _timed_cov(nls, fls, patterns, fused: bool, shards=None,
               trials: int = 1):
    """Best-of-``trials`` wall clock (min over repeats, the standard
    steady-state measure: trial 1 additionally pays one-time cone and
    batch cache construction both engines memoise per program)."""
    best = None
    covs = None
    for _ in range(trials):
        t0 = time.perf_counter()
        if fused:
            got = gbatch.random_coverage_many(
                nls, n_patterns=patterns, seed=7, faults_list=fls,
                backend="kernel", shards=shards,
            )
        else:
            got = [
                random_pattern_coverage(nl, n_patterns=patterns,
                                        seed=7, faults=fl,
                                        backend="kernel")
                for nl, fl in zip(nls, fls)
            ]
        t = time.perf_counter() - t0
        if covs is not None:
            assert got == covs, "coverage drifted across trials"
        covs = got
        best = t if best is None else min(best, t)
    return covs, best


def run_experiment(sparse_cases=None, seq_cases=None, dense_cases=None,
                   root_json: bool = True) -> Table:
    if sparse_cases is None:
        if os.environ.get("REPRO_BENCH_QUICK"):
            # Identity gate only -- leave the committed scoreboard alone.
            sparse_cases, seq_cases, dense_cases, root_json = (
                SPARSE_SMOKE, SEQ_SMOKE, DENSE_SMOKE, False)
        else:
            sparse_cases, seq_cases, dense_cases = (
                SPARSE_CASES, SEQ_CASES, DENSE_CASES)
    t_bench = time.perf_counter()
    table = Table(
        "PERF-batch",
        "fused multi-design kernel execution vs per-design serial",
        ["sweep", "corpus", "faults", "serial s", "fused s",
         "speedup", "identical"],
    )

    sparse_records = []
    for n, gates, nf, patterns in sparse_cases:
        nls, fls = _corpus(n, gates, nf)
        serial, t_s = _timed_cov(nls, fls, patterns, fused=False,
                                 trials=3)
        fused, t_f = _timed_cov(nls, fls, patterns, fused=True,
                                trials=3)
        identical = serial == fused
        assert identical, f"sparse identity broke at {n}x{gates}"
        stats = gbatch.batch_stats()
        table.add(
            "coverage-sparse", f"{n}x{gates}g", f"{nf}/design",
            f"{t_s:.3f}", f"{t_f:.3f}", f"{t_s / t_f:.2f}x", identical,
        )
        sparse_records.append({
            "designs": n,
            "gates_each": gates,
            "faults_each": nf,
            "patterns": patterns,
            "serial_s": round(t_s, 3),
            "fused_s": round(t_f, 3),
            "speedup": round(t_s / t_f, 2),
            "trials": 3,
            "fill_ratio": stats["last_fill_ratio"],
            "identical": identical,
        })

    # Shard sweep on the first sparse case: shm transport, positional
    # merge, byte-identity at every shard count.
    n, gates, nf, patterns = sparse_cases[0]
    nls, fls = _corpus(n, gates, nf)
    baseline, _ = _timed_cov(nls, fls, patterns, fused=False)
    shard_records = {}
    shards_identical = True
    for shards in SHARD_SWEEP:
        covs, t = _timed_cov(nls, fls, patterns, fused=True,
                             shards=shards)
        ok = covs == baseline
        shards_identical &= ok
        shard_records[shards] = {"fused_s": round(t, 3),
                                 "identical": ok}
    assert shards_identical, "shard identity broke"

    seq_records = []
    for n, gates, nf, cycles in seq_cases:
        nls, fls = _corpus(n, gates, nf)
        marks = [max(1, cycles // 4), max(1, cycles // 2),
                 max(1, 3 * cycles // 4), cycles]
        pivs = [{pi: (i + 1) & 1 for pi in nl.inputs()}
                for i, nl in enumerate(nls)]
        t0 = time.perf_counter()
        serial = [
            compiled(nl).sequential_fault_detect(
                fl, piv, marks, observe=list(compiled(nl).dff_names))
            for nl, fl, piv in zip(nls, fls, pivs)
        ]
        t_s = time.perf_counter() - t0
        jobs = [
            SeqJob(nl, fl, piv, marks,
                   observe=list(compiled(nl).dff_names))
            for nl, fl, piv in zip(nls, fls, pivs)
        ]
        t0 = time.perf_counter()
        fused = sequential_detect_many(jobs)
        t_f = time.perf_counter() - t0
        identical = serial == fused
        assert identical, f"sequential identity broke at {n}x{gates}"
        table.add(
            "seq-free-run", f"{n}x{gates}g", f"{nf}/design",
            f"{t_s:.3f}", f"{t_f:.3f}", f"{t_s / t_f:.2f}x", identical,
        )
        seq_records.append({
            "designs": n,
            "gates_each": gates,
            "faults_each": nf,
            "cycles": cycles,
            "serial_s": round(t_s, 3),
            "fused_s": round(t_f, 3),
            "speedup": round(t_s / t_f, 2),
            "identical": identical,
        })

    dense_records = []
    for n, gates, patterns in dense_cases:
        nls, fls = _corpus(n, gates, None)
        serial, t_s = _timed_cov(nls, fls, patterns, fused=False)
        fused, t_f = _timed_cov(nls, fls, patterns, fused=True)
        identical = serial == fused
        assert identical, f"dense identity broke at {n}x{gates}"
        table.add(
            "coverage-dense", f"{n}x{gates}g", "all",
            f"{t_s:.3f}", f"{t_f:.3f}", f"{t_s / t_f:.2f}x", identical,
        )
        dense_records.append({
            "designs": n,
            "gates_each": gates,
            "patterns": patterns,
            "serial_s": round(t_s, 3),
            "fused_s": round(t_f, 3),
            "speedup": round(t_s / t_f, 2),
            "identical": identical,
        })

    bench_seconds = time.perf_counter() - t_bench
    table.notes.append(
        "sparse rows: targeted fault samples (the hier/serve regime), "
        "best-of-3 wall clock -- the fused run shares one good-machine "
        "pass and packs fault batches across designs; seq rows: packed "
        "sequential "
        "free-run columns filled corpus-wide; dense rows: full fault "
        "universes, parity regime, no win claimed; every fused row is "
        "byte-identical to its per-design serial twin"
    )
    table.records = {"sparse": sparse_records, "seq": seq_records,
                     "dense": dense_records, "shards": shard_records}
    table.sparse_speedup_best = max(r["speedup"] for r in sparse_records)
    table.seq_speedup_best = max(r["speedup"] for r in seq_records)
    if root_json:
        ROOT_JSON.write_text(json.dumps({
            "experiment": "PERF-batch",
            "kernel_available": have_kernel(),
            "nproc": os.cpu_count(),
            "coverage_sparse": sparse_records,
            "seq_free_run": seq_records,
            "coverage_dense": dense_records,
            "shard_sweep": {str(k): v for k, v in shard_records.items()},
            "sparse_speedup_best": table.sparse_speedup_best,
            "seq_speedup_best": table.seq_speedup_best,
            "bench_seconds": round(bench_seconds, 2),
        }, indent=2) + "\n")
    return table


def test_batch(benchmark):
    import pytest

    if not have_kernel():
        pytest.skip("fused kernel batching needs numpy")
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in table.rows:
        assert row[-1], row  # identity on every row
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    if not quick:
        # the acceptance bar; timing-based, so full sweeps only
        assert table.sparse_speedup_best >= 2.0, \
            table.sparse_speedup_best
        assert table.seq_speedup_best >= 2.0, table.seq_speedup_best
    table.emit()


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--smoke", action="store_true",
                        help="reduced cases (CI identity gate)")
    args = parser.parse_args()
    if args.smoke:
        # Print only: don't overwrite the committed full-sweep results.
        print(run_experiment(SPARSE_SMOKE, SEQ_SMOKE, DENSE_SMOKE,
                             root_json=False).render())
    else:
        run_experiment().emit()
