"""E-6b -- global test modes in hierarchical designs [37,39].

Survey claim (section 3.4): generating top-level test modes "may reveal
that some constraints cannot be satisfied, in which case, either the
top level description, or the description of an individual module,
must be modified to satisfy the constraints.  It has been shown that
behavioral modification can yield an implementation with higher test
efficiency than the original design with a modest increase in area."

Workload: processing pipelines where some stages are transparent
(adder-based) and some are not (squaring stages block symbolic
justification).  Measured: modules with verified global test modes
before and after AMBIANT-style modification, and the operation-count
cost of the modification.
"""

from common import Table
from repro.cdfg.builder import CDFGBuilder
from repro.hier.system import (
    SystemDesign,
    flatten,
    modify_top_level,
    module_access,
)


def stage(name, transparent=True):
    b = CDFGBuilder(name)
    b.inputs("x", "k")
    b.outputs("y")
    if transparent:
        b.add("x", "k", "t1")
        b.add("t1", "k", "y")
    else:
        b.mul("x", "x", "t1")
        b.add("t1", "k", "y")
    return b.build()


def pipeline(pattern: str) -> SystemDesign:
    """``pattern`` like 'TNT': T = transparent stage, N = squaring."""
    s = SystemDesign(f"pipe_{pattern}")
    prev = None
    for i, ch in enumerate(pattern):
        inst = f"s{i}"
        s.add_module(inst, stage(inst, transparent=(ch == "T")))
        if prev is not None:
            s.connect((prev, "y"), (inst, "x"))
        prev = inst
    return s


PATTERNS = ["TTT", "TNT", "NTN", "NNN", "TNNT"]


def run_experiment() -> Table:
    t = Table(
        "E-6b",
        "[37,39] global test modes before/after behavioral modification",
        ["pipeline", "modules", "accessible before", "after", "ops added"],
    )
    for pattern in PATTERNS:
        s = pipeline(pattern)
        flat = flatten(s)
        before = sum(
            module_access(s, inst, flat=flat) is not None
            for inst in s.modules
        )
        current = s
        added = 0
        for inst in list(s.modules):
            if module_access(current, inst) is None:
                before_ops = sum(len(m) for m in current.modules.values())
                current, changed = modify_top_level(current, inst)
                added += sum(
                    len(m) for m in current.modules.values()
                ) - before_ops
        after = sum(
            module_access(current, inst) is not None
            for inst in current.modules
        )
        t.add(pattern, len(s.modules), before, after, added)
    t.notes.append(
        "claim shape: modification recovers access for every blocked "
        "module at a modest operation-count increase"
    )
    return t


def test_global_test_modes(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for pattern, n, before, after, added in table.rows:
        assert after == n, pattern  # all modules accessible after
        assert after >= before, pattern
        assert added <= 3 * n, pattern  # modest
    assert any(r[2] < r[1] for r in table.rows)  # blocking really occurs
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
