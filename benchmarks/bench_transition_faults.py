"""E-7a -- delay-fault testing of scan designs (survey future work).

Survey section 7b: "all the existing high-level approaches consider
only the stuck-at-fault model; other testing methodologies like delay
fault testing and IDDQ testing have not yet been addressed."

This bench addresses the named gap on our substrate: the transition
(gate-delay) fault model with launch-on-capture vector pairs, applied
to the same scan-vs-no-scan comparison the stuck-at experiments use.
Claim shape (transferring the stuck-at story): scan access raises
transition-fault coverage of sequential data paths, and partial scan
recovers most of the full-scan coverage.
"""

from common import Table, conventional_flow
from repro.cdfg import suite
from repro.gatelevel.expand import expand_datapath
from repro.gatelevel.transition_faults import (
    all_transition_faults,
    random_pair_coverage,
)
from repro.scan import gate_level_partial_scan

WIDTH = 3
N_PAIRS = 96
MAX_FAULTS = 200


def coverage(dp) -> float:
    nl, _ = expand_datapath(dp)
    faults = all_transition_faults(nl)[:MAX_FAULTS]
    return random_pair_coverage(nl, n_pairs=N_PAIRS, faults=faults)


def run_experiment() -> Table:
    t = Table(
        "E-7a",
        "transition-fault coverage: no scan vs partial vs full scan",
        ["design", "no scan", "partial scan", "full scan"],
    )
    for name in ("iir2", "ar4", "diffeq_loop"):
        c = suite.standard_suite(width=WIDTH)[name]
        dp_none, *_ = conventional_flow(c, slack=1.5)
        dp_part, *_ = conventional_flow(c, slack=1.5)
        gate_level_partial_scan(dp_part)
        dp_full, *_ = conventional_flow(c, slack=1.5)
        dp_full.mark_scan(*[r.name for r in dp_full.registers])
        t.add(
            name,
            f"{coverage(dp_none):.3f}",
            f"{coverage(dp_part):.3f}",
            f"{coverage(dp_full):.3f}",
        )
    t.notes.append(
        "claim shape (extension): coverage(no scan) <= coverage(partial)"
        " <= coverage(full); the stuck-at access story transfers to the"
        " delay-fault model.  Absolute numbers are low by nature: random"
        " launch-on-capture pairs are weak transition tests, which is"
        " itself the classic delay-fault result."
    )
    return t


def test_transition_faults(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for name, none, part, full in table.rows:
        assert float(none) <= float(part) + 0.02, name
        assert float(part) <= float(full) + 0.02, name
        # scan must lift coverage by an order of magnitude here
        assert float(full) >= 10 * float(none), name
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
