"""E-5.5b -- MISR aliasing: theory vs measurement, and checkpoints.

Supporting study for the in-situ BIST experiments: signature registers
alias with probability ~2^-w, which is why E-5.5 compares signatures
at four checkpoints.  Measured: empirical aliasing vs the theoretical
bound across widths, and the reduction from checkpointing.
"""

from common import Table
from repro.bist.aliasing import (
    checkpointed_aliasing,
    measure_aliasing,
    theoretical_aliasing_probability,
)

TRIALS = 4000


def run_experiment() -> Table:
    t = Table(
        "E-5.5b",
        "MISR aliasing probability: theory vs measured vs checkpointed",
        ["width", "theory 2^-w", "measured", "4 checkpoints"],
    )
    rows = []
    for width in (4, 8, 16):
        theory = theoretical_aliasing_probability(width)
        single = measure_aliasing(width, trials=TRIALS, seed=2)
        quad = checkpointed_aliasing(
            width, checkpoints=4, trials=TRIALS, seed=2
        )
        rows.append((width, theory, single.probability,
                     quad.probability))
        t.add(width, f"{theory:.5f}", f"{single.probability:.5f}",
              f"{quad.probability:.5f}")
    t.series = rows
    t.notes.append(
        "claim shape: measured tracks 2^-w; checkpointed compare "
        "suppresses aliasing further (the E-5.5 design choice)"
    )
    return t


def test_aliasing(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for width, theory, single, quad in table.series:
        # measured within 3x of theory (sampling noise at wide widths)
        assert single <= max(3 * theory, 0.01)
        assert quad <= single
    # monotone in width
    singles = [s for _w, _t, s, _q in table.series]
    assert singles == sorted(singles, reverse=True)
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
