"""E-3.3.1b -- scan-cost scaling with behavioral loop count (sweep).

Extension of E-3.3.1: how does the gap between gate-level MFVS and
CDFG-level scan selection evolve as the number of behavioral loops
grows?  The sharing effect should keep the high-level scan-register
count nearly flat (selected scan variables share registers) while the
gate-level count tracks the loop structure.
"""

from common import Table, conventional_flow
from repro.cdfg.analysis import critical_path_length
from repro.cdfg.generate import random_looped_cdfg
from repro import hls
from repro.scan import gate_level_partial_scan, loop_aware_synthesis

LOOP_COUNTS = (1, 2, 3, 4, 5)
SEEDS = (0, 1, 2)
N_OPS = 30


def run_experiment() -> Table:
    t = Table(
        "E-3.3.1b",
        "scan bits vs number of behavioral loops (mean over seeds)",
        ["loops", "gate bits", "[33] bits", "ratio"],
    )
    series = []
    for n_loops in LOOP_COUNTS:
        gate_total = hls_total = 0
        for seed in SEEDS:
            c = random_looped_cdfg(
                N_OPS, n_loops, loop_length=3, seed=seed
            )
            latency = int(1.5 * critical_path_length(c))
            dp, *_ = conventional_flow(c, slack=1.5)
            rep = gate_level_partial_scan(dp)
            alloc = hls.allocate_for_latency(c, latency)
            dp2, _ = loop_aware_synthesis(c, alloc, num_steps=latency)
            gate_total += rep.scan_bits
            hls_total += sum(r.width for r in dp2.scan_registers())
        gate_mean = gate_total / len(SEEDS)
        hls_mean = hls_total / len(SEEDS)
        series.append((n_loops, gate_mean, hls_mean))
        t.add(n_loops, f"{gate_mean:.1f}", f"{hls_mean:.1f}",
              f"{hls_mean / gate_mean:.2f}" if gate_mean else "-")
    t.series = series
    t.notes.append(
        "claim shape: high-level bits stay at or below gate-level bits "
        "at every loop count, with the mean ratio well under 1"
    )
    return t


def test_scan_scaling(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    ratios = []
    for _n, gate_mean, hls_mean in table.series:
        assert hls_mean <= gate_mean
        if gate_mean:
            ratios.append(hls_mean / gate_mean)
    assert sum(ratios) / len(ratios) <= 0.8
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
