"""E-5.4 -- arithmetic BIST with subspace state coverage [28].

Survey claim (section 5.4): arithmetic units replace dedicated BIST
hardware; the "subspace state coverage" metric characterises pattern
quality after "the degradation suffered by the patterns due to
propagation through various operations", and "assignment of operations
to functional units is done to maximize the state coverage obtained at
the inputs of each functional unit".

Measured: (1) the degradation premise -- deep operations see lower
coverage than PI-fed ones; (2) coverage-guided binding raises the
minimum per-unit coverage versus the conventional binder.
"""

from common import Table
from repro.cdfg import suite
from repro import hls
from repro.bist.arithmetic import (
    coverage_guided_binding,
    measure_operation_coverage,
    unit_coverage,
)

N_VECTORS = 20
K = 6


def run_experiment() -> Table:
    t = Table(
        "E-5.4",
        "[28] subspace-state-coverage-guided binding",
        ["design", "min unit cov naive", "min guided", "mean naive",
         "mean guided"],
    )
    wins = 0
    cases = {
        "diffeq": (suite.diffeq(), hls.Allocation({"alu": 2, "mult": 2})),
        "fir8": (suite.fir(8), hls.Allocation({"alu": 2, "mult": 2})),
        "iir2": (suite.iir_biquad(2), hls.Allocation({"alu": 2, "mult": 2})),
        "tseng": (suite.tseng(), hls.Allocation({"alu": 2, "mult": 1})),
        "matmul2": (suite.matmul2(), hls.Allocation({"alu": 2, "mult": 3})),
        "dct4": (suite.dct4(), hls.Allocation({"alu": 2, "mult": 2})),
    }
    degradation_checked = False
    for name, (c, alloc) in cases.items():
        cov = measure_operation_coverage(c, n_vectors=N_VECTORS, k=K)
        sched = hls.list_schedule(c, alloc)
        naive = hls.bind_functional_units(c, sched, alloc)
        guided = coverage_guided_binding(c, sched, alloc, cov)
        un = unit_coverage(c, naive, cov)
        ug = unit_coverage(c, guided, cov)
        wins += min(ug.values()) > min(un.values())
        t.add(name, f"{min(un.values()):.3f}", f"{min(ug.values()):.3f}",
              f"{sum(un.values()) / len(un):.3f}",
              f"{sum(ug.values()) / len(ug):.3f}")
        if name == "diffeq":
            shallow = cov.coverage_of(cov.states["*1"])
            deep = cov.coverage_of(cov.states["*4"])
            t.degradation = (shallow, deep)
            degradation_checked = True
    assert degradation_checked
    t.wins = wins
    t.notes.append(
        f"degradation premise on diffeq: PI-fed op coverage "
        f"{t.degradation[0]:.3f} vs product-fed {t.degradation[1]:.3f}"
    )
    t.notes.append(
        "claim shape: guided binding never lowers the minimum per-unit "
        "coverage and strictly raises it where binding freedom exists"
    )
    return t


def test_arith_bist(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in table.rows:
        assert float(row[2]) >= float(row[1]), row[0]
    assert table.wins >= 2
    shallow, deep = table.degradation
    assert deep <= shallow
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
