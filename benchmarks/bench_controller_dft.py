"""E-3.5 -- controller-based DFT [14].

Survey claim (section 3.5): "even when both the controller and the data
path are individually testable, the composite circuit may not be easily
testable ... The main problem is control signal implications which may
create conflicts during sequential ATPG.  ...  adding a few extra
control vectors ... produce[s] highly testable controller-data path
circuits, with only marginal area overhead."

Measured: (1) implication count of the synthesized controller;
(2) the control requirements of data-path tests that no functional
word satisfies; (3) requirement coverage and composite sequential-ATPG
detections before vs after adding the extra vectors; (4) the area cost
of the redesign.
"""

from common import Table, conventional_flow
from repro.cdfg import suite
from repro.controller_dft import (
    control_implications,
    infeasible_requirements,
    redesign_with_test_vectors,
    requirements_from_netlist,
)
from repro.controller_dft.redesign import coverage_of_requirements
from repro.hls import build_controller
from repro.hls.estimate import area_estimate
from repro.gatelevel import all_faults, expand_composite, expand_datapath
from repro.gatelevel.seq_atpg import sequential_atpg

WIDTH = 3
SAMPLE = 14
FRAMES = 5
BACKTRACKS = 60


def datapath_test_requirements(dp, ctrl):
    """Control assignments real data-path tests need: run the ATPG
    driver on the control-as-PI netlist (registers scanned, the §3.5
    assumption) and translate each test's control-net assignments back
    into the symbolic control-word language."""
    dp.mark_scan(*[r.name for r in dp.registers])
    nl, control_map = expand_datapath(dp)
    faults = all_faults(nl)[:80]
    # requirements_from_netlist runs ATPG with pre-drop disabled: the
    # partial vectors carry only what each test requires of the
    # controller; filled-in vectors would over-constrain
    reqs = requirements_from_netlist(nl, control_map, faults=faults,
                                     backtrack_limit=300)
    for r in dp.registers:
        r.scan = False
    return reqs


def run_experiment() -> Table:
    t = Table(
        "E-3.5",
        "[14] controller redesign with extra test control vectors",
        ["metric", "before", "after"],
    )
    c = suite.diffeq(width=WIDTH)
    dp, *_ = conventional_flow(c, slack=1.5)
    ctrl = build_controller(dp)
    implications = control_implications(ctrl)
    reqs = datapath_test_requirements(dp, ctrl)
    missing = infeasible_requirements(ctrl, reqs)
    vectors, cost = redesign_with_test_vectors(ctrl, reqs)
    cov_before = coverage_of_requirements(ctrl, reqs)
    cov_after = coverage_of_requirements(ctrl, reqs, vectors)

    comp_before = expand_composite(dp, ctrl)
    comp_after = expand_composite(dp, ctrl, extra_words=vectors)
    faults_b = [
        f for f in all_faults(comp_before) if f.net.startswith("R")
    ][:SAMPLE]
    faults_a = [
        f for f in all_faults(comp_after) if f.net.startswith("R")
    ][:SAMPLE]
    det_b = sum(
        sequential_atpg(comp_before, f, max_frames=FRAMES,
                        backtrack_limit=BACKTRACKS).detected
        for f in faults_b
    )
    det_a = sum(
        sequential_atpg(comp_after, f, max_frames=FRAMES,
                        backtrack_limit=BACKTRACKS).detected
        for f in faults_a
    )
    # Base area: the *real-width* (8-bit) data path plus the controller
    # decode table priced with the same per-vector model.  The ATPG runs
    # at 3 bits for speed, but extra control vectors cost the same
    # regardless of data-path width, so the overhead ratio belongs to
    # the real design.
    from repro.hls.estimate import AREA_MODEL

    ctrl_area = sum(
        AREA_MODEL["control_vector"] * len(w.signals) for w in ctrl.words
    )
    dp8, *_ = conventional_flow(suite.diffeq(width=8), slack=1.5)
    area = area_estimate(dp8)["total"] + ctrl_area
    t.add("control implications", len(implications), len(implications))
    t.add("infeasible ATPG requirements", len(missing), 0)
    t.add("requirement coverage", f"{cov_before:.2f}", f"{cov_after:.2f}")
    t.add(f"composite seq-ATPG detections (of {SAMPLE})", det_b, det_a)
    t.add("extra vectors / area overhead %", 0,
          f"{len(vectors)} / {100 * cost / area:.1f}")
    t.cov_before, t.cov_after = cov_before, cov_after
    t.det_b, t.det_a = det_b, det_a
    t.n_missing, t.n_vectors, t.cost_pct = (
        len(missing), len(vectors), 100 * cost / area
    )
    t.notes.append(
        "claim shape: some data-path test requirements are unreachable "
        "through the functional controller; a few extra vectors restore "
        "them at marginal area cost and composite detections do not drop"
    )
    return t


def test_controller_dft(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert table.n_missing > 0
    assert table.cov_before < 1.0 and table.cov_after == 1.0
    assert table.det_a >= table.det_b
    assert table.n_vectors <= 6
    assert table.cost_pct < 15.0
    table.emit()


if __name__ == "__main__":
    run_experiment().emit()
