"""PERF -- accelerated deterministic ATPG vs the reference pipeline.

Measures end-to-end ``generate_tests`` wall time on full-scan expanded
suite designs of increasing size, in two configurations that must
produce byte-identical :class:`TestSet` results:

* **reference** -- whole-netlist 3-valued resimulation inside PODEM,
  interpreter fault dropping, no pre-drop, no sharding (the exact
  pre-acceleration pipeline);
* **accelerated** -- event-driven incremental PODEM plus the compiled
  fault-dropping kernel, same fault list and settings.

The speedup gate (>= 5x on the largest case) is taken between those
two, because they are exactly equivalent.  A third **staged** run
additionally enables the random-pattern pre-drop stage (the default
production configuration) and, on the largest case, cross-checks that
fault-parallel sharded runs merge byte-identically.  Pre-drop changes
which vectors are emitted (random vectors replace many PODEM cubes),
so its win is reported as a separate wall-time column rather than
folded into the equivalence-gated speedup.

Results land in ``benchmarks/results/PERF-atpg.{txt,json}`` and the
repo-root ``BENCH_atpg.json`` scoreboard.  ``--quick`` (or
``REPRO_BENCH_QUICK=1``, honoured when ``run_all.py`` imports this
module) runs a single small case -- the CI job's equality gate --
instead of the ~150s reference-engine timing sweep.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

from common import Table, conventional_flow
from repro.cdfg import suite
from repro.gatelevel import all_faults, expand_datapath, generate_tests
from repro.gatelevel.kernel import have_kernel

ROOT_JSON = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_atpg.json"
)

#: (design, bit width) -- sorted small to large
CASES = [
    ("figure1", 3),
    ("tseng", 3),
    ("fir8", 3),
    ("fir8", 8),
]
QUICK_CASES = [("figure1", 2)]

REFERENCE = dict(predrop=0, backend="interp", atpg_backend="reference",
                 shards=1)
ACCELERATED = dict(predrop=0, backend="kernel", atpg_backend="event",
                   shards=1)
STAGED = dict(backend="kernel", atpg_backend="event", shards=1)


def _fullscan_netlist(design: str, bits: int):
    cdfg = suite.standard_suite(width=bits)[design]
    dp, *_ = conventional_flow(cdfg)
    dp.mark_scan(*[r.name for r in dp.registers])
    netlist, _ctrl = expand_datapath(dp)
    return netlist


def _same(a, b) -> bool:
    return (
        a.vectors == b.vectors
        and a.partial_vectors == b.partial_vectors
        and a.detected == b.detected
        and a.untestable == b.untestable
        and a.aborted == b.aborted
        and a.total_faults == b.total_faults
    )


def _run(netlist, faults, **config):
    t0 = time.perf_counter()
    ts = generate_tests(netlist, faults=faults, **config)
    return ts, time.perf_counter() - t0


def run_experiment(cases=None, root_json: bool = True) -> Table:
    if cases is None:
        if os.environ.get("REPRO_BENCH_QUICK"):
            # Byte-identity gate on the smallest case only -- skip the
            # reference-engine timing sweep, keep the scoreboard alone.
            cases, root_json = QUICK_CASES, False
        else:
            cases = CASES
    t_bench = time.perf_counter()
    table = Table(
        "PERF-atpg",
        "deterministic ATPG: event PODEM + kernel drop vs reference",
        ["design", "gates", "faults", "ref s", "accel s", "speedup",
         "staged s", "identical"],
    )
    records = []
    for i, (design, bits) in enumerate(cases):
        netlist = _fullscan_netlist(design, bits)
        faults = all_faults(netlist)
        ts_ref, secs_ref = _run(netlist, faults, **REFERENCE)
        ts_acc, secs_acc = _run(netlist, faults, **ACCELERATED)
        identical = _same(ts_ref, ts_acc)
        assert identical, f"accelerated != reference on {design}"
        ts_stg, secs_stg = _run(netlist, faults, **STAGED)
        if i == len(cases) - 1:
            for shards in (2, 4):
                ts_sh, _ = _run(netlist, faults,
                                **{**STAGED, "shards": shards})
                assert _same(ts_sh, ts_stg), (
                    f"shards={shards} != serial on {design}"
                )
        speedup = secs_ref / secs_acc if secs_acc > 0 else 0.0
        table.add(design, len(netlist), len(faults),
                  f"{secs_ref:.2f}", f"{secs_acc:.2f}", f"{speedup:.1f}x",
                  f"{secs_stg:.2f}", identical)
        records.append({
            "design": design,
            "gates": len(netlist),
            "faults": len(faults),
            "reference_s": round(secs_ref, 3),
            "accelerated_s": round(secs_acc, 3),
            "speedup": round(speedup, 2),
            "staged_s": round(secs_stg, 3),
            "reference_faults_per_s": round(len(faults) / secs_ref, 1),
            "accelerated_faults_per_s": round(len(faults) / secs_acc, 1),
            "vectors": len(ts_acc.vectors),
            "staged_vectors": len(ts_stg.vectors),
            "coverage": round(ts_acc.coverage, 4),
            "identical": identical,
        })
    bench_seconds = time.perf_counter() - t_bench
    table.notes.append(
        "speedup = reference wall / accelerated wall at predrop=0 "
        "(byte-identical TestSet); staged adds the random pre-drop "
        "stage, which swaps PODEM cubes for random vectors and is "
        "therefore timed but not equivalence-gated"
    )
    table.largest_speedup = records[-1]["speedup"]
    table.records = records
    if root_json:
        ROOT_JSON.write_text(json.dumps({
            "experiment": "PERF-atpg",
            "kernel_available": have_kernel(),
            "cases": records,
            "largest_case_speedup": records[-1]["speedup"],
            "bench_seconds": round(bench_seconds, 2),
        }, indent=2) + "\n")
    return table


def test_atpg_accel(benchmark):
    import pytest

    if not have_kernel():
        pytest.skip("accelerated fault dropping needs numpy")
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in table.rows:
        assert row[-1], row  # accelerated == reference on every case
    assert table.largest_speedup >= 5.0, table.largest_speedup
    table.emit()


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="one small case (CI equality gate)")
    args = parser.parse_args()
    if args.quick:
        # Equality gate only -- leave the committed scoreboard alone.
        run_experiment(QUICK_CASES, root_json=False).emit()
    else:
        run_experiment().emit()
