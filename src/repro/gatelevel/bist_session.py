"""In-situ pseudorandom BIST execution at the gate level.

The section-5 role assigners decide *which* registers become TPGRs and
SRs; this module actually runs the self-test: the data path is expanded
with the registers' BIST hardware in place
(:func:`repro.gatelevel.expand.expand_datapath` with ``bist_roles``),
each test session's control configuration steers the signature
registers' data muxes at their units under test, the machine free-runs
with ``bist_en=1``, and the MISR states are the signature.  Fault
coverage is measured the way silicon measures it: a fault is detected
iff it changes some session's signature.

Session structure matters here exactly as section 5.2 says: two units
sharing one SR cannot be observed in the same session (the SR's data
mux selects one of them), so the coverage of a one-session run with a
shared SR is low -- the executable form of the test conflicts [20]
minimises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.bist.registers import TestRole
from repro.bist.sessions import schedule_sessions
from repro.bist.sharing import ModuleTestEnvironment
from repro.gatelevel.expand import expand_datapath
from repro.gatelevel.faults import Fault, all_faults
from repro.gatelevel.gates import Netlist
from repro.gatelevel.simulate import parallel_simulate
from repro.hls.datapath import Datapath


@dataclass(frozen=True)
class BISTHardware:
    """A data path expanded with its in-situ BIST registers."""

    netlist: Netlist
    control: dict
    role_map: Mapping[str, str]
    envs: tuple[ModuleTestEnvironment, ...]
    datapath_name: str

    @property
    def signature_registers(self) -> tuple[str, ...]:
        return tuple(sorted(
            r for r, role in self.role_map.items()
            if role in ("SR", "BILBO")
        ))


def build_bist_hardware(
    datapath: Datapath,
    envs: Sequence[ModuleTestEnvironment],
    roles: Mapping[str, TestRole] | None = None,
) -> BISTHardware:
    """Expand the data path with BIST registers per the environments.

    When ``roles`` is omitted it is reconstructed from ``envs``
    (inputs -> TPGR; chosen SRs -> SR, or BILBO when also a TPGR).
    """
    if roles is None:
        role_map: dict[str, str] = {}
        for e in envs:
            for r in e.tpgr_registers:
                role_map.setdefault(r, "TPGR")
        for e in envs:
            prev = role_map.get(e.sr_register)
            role_map[e.sr_register] = "BILBO" if prev == "TPGR" else "SR"
    else:
        role_map = {
            name: role.value
            for name, role in roles.items()
            if role is not TestRole.NONE
        }
    nl, control = expand_datapath(datapath, bist_roles=role_map)
    return BISTHardware(nl, control, role_map, tuple(envs),
                        datapath.name)


def session_configuration(
    hardware: BISTHardware,
    session_units: Sequence[str],
) -> dict[str, int]:
    """Control/PI pinning for one session testing ``session_units``."""
    control = hardware.control
    config: dict[str, int] = {control["bist_en"]: 1}
    for pi in hardware.netlist.inputs():
        config.setdefault(pi, 0)
    active = {e.unit: e for e in hardware.envs if e.unit in session_units}
    for unit, env in active.items():
        sels, sources = control["reg_sel"].get(env.sr_register, ([], []))
        if unit in sources:
            idx = sources.index(unit)
            for k, net in enumerate(sels):
                config[net] = (idx >> k) & 1
    for (unit, port), (sels, sources) in control["port_sel"].items():
        idx = 0
        for j, s in enumerate(sources):
            if hardware.role_map.get(s) in ("TPGR", "BILBO", "CBILBO"):
                idx = j
                break
        for k, net in enumerate(sels):
            config[net] = (idx >> k) & 1
    return config


def run_signature(
    hardware: BISTHardware,
    config: Mapping[str, int],
    cycles: int,
    forced: Mapping[str, int] | None = None,
    backend: str | None = None,
) -> dict[str, int]:
    """Free-run one session; returns the final per-SR signatures."""
    sigs = run_signatures(hardware, config, (cycles,), forced=forced,
                          backend=backend)
    return sigs[cycles]


def run_signatures(
    hardware: BISTHardware,
    config: Mapping[str, int],
    checkpoints: Sequence[int],
    forced: Mapping[str, int] | None = None,
    backend: str | None = None,
) -> dict[int, dict[str, int]]:
    """Free-run one session, snapshotting signatures at checkpoints.

    Comparing at several checkpoints is the standard guard against
    MISR aliasing (a w-bit MISR aliases with probability ~2^-w at any
    single compare point).  Runs on the compiled kernel by default
    (``backend="interp"`` or ``REPRO_FAULTSIM_BACKEND`` selects the
    reference interpreter).
    """
    from repro.gatelevel.fault_sim import resolve_backend

    nl = hardware.netlist
    piv = dict(config)
    marks = sorted(set(checkpoints))
    if resolve_backend(backend) == "kernel":
        from repro.gatelevel.kernel import compiled

        states = compiled(nl).state_checkpoints(
            piv, marks, width=1, forced=forced
        )
        return {
            cycle: _read_signatures(hardware, state)
            for cycle, state in states.items()
        }
    order = nl.topo_order()
    state: dict[str, int] = {}
    out: dict[int, dict[str, int]] = {}
    for cycle in range(1, marks[-1] + 1):
        _vals, state = parallel_simulate(
            nl, piv, state, width=1, order=order, forced=forced
        )
        if cycle in marks:
            out[cycle] = _read_signatures(hardware, state)
    return out


def _read_signatures(
    hardware: BISTHardware, state: Mapping[str, int]
) -> dict[str, int]:
    out: dict[str, int] = {}
    for reg in hardware.signature_registers:
        bits = [n for n in state if n.startswith(f"{reg}_b")]
        out[reg] = sum(
            (state[f"{reg}_b{i}"] & 1) << i for i in range(len(bits))
        )
    return out


def bist_fault_coverage(
    hardware: BISTHardware,
    sessions: Sequence[Sequence[str]] | None = None,
    cycles: int = 64,
    faults: Sequence[Fault] | None = None,
    backend: str | None = None,
) -> float:
    """Signature-based stuck-at coverage over the given sessions.

    ``sessions`` defaults to the conflict-free partition from
    :func:`repro.bist.sessions.schedule_sessions`; a fault counts as
    detected when any session's signature set differs from golden.
    """
    if sessions is None:
        sessions = schedule_sessions(list(hardware.envs))
    if faults is None:
        faults = all_faults(hardware.netlist)
    checkpoints = sorted(
        {max(1, cycles // 4), max(1, cycles // 2),
         max(1, 3 * cycles // 4), cycles}
    )
    configs = [
        session_configuration(hardware, units) for units in sessions
    ]
    goldens = [
        run_signatures(hardware, cfg, checkpoints, backend=backend)
        for cfg in configs
    ]
    detected = 0
    for f in faults:
        forced = {f.net: f.stuck_at}
        for cfg, golden in zip(configs, goldens):
            if run_signatures(hardware, cfg, checkpoints,
                              forced=forced, backend=backend) != golden:
                detected += 1
                break
    return detected / len(faults) if faults else 1.0
