"""In-situ pseudorandom BIST execution at the gate level.

The section-5 role assigners decide *which* registers become TPGRs and
SRs; this module actually runs the self-test: the data path is expanded
with the registers' BIST hardware in place
(:func:`repro.gatelevel.expand.expand_datapath` with ``bist_roles``),
each test session's control configuration steers the signature
registers' data muxes at their units under test, the machine free-runs
with ``bist_en=1``, and the MISR states are the signature.  Fault
coverage is measured the way silicon measures it: a fault is detected
iff it changes some session's signature.

Session structure matters here exactly as section 5.2 says: two units
sharing one SR cannot be observed in the same session (the SR's data
mux selects one of them), so the coverage of a one-session run with a
shared SR is low -- the executable form of the test conflicts [20]
minimises.

Fault coverage runs **fault-parallel** on the compiled kernel by
default: up to ``SEQ_FAULT_COLUMNS - 1`` faulty machines are packed as
bit columns of one wide state vector (column 0 = golden) and the whole
session free-runs once per batch
(:meth:`repro.gatelevel.kernel.CompiledNetlist.sequential_fault_detect`),
instead of once per fault.  A fault detected in an early session leaves
the batch for later sessions (cross-session fault dropping).  The
fault-serial interpreter loop is kept as the equivalence reference
behind ``backend="interp"`` / ``REPRO_FAULTSIM_BACKEND``; ``shards=`` /
``REPRO_FAULTSIM_SHARDS`` split the fault list across worker processes
with a deterministic, byte-identical merge (PR 2/3 conventions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.bist.registers import TestRole
from repro.bist.sessions import schedule_sessions
from repro.bist.sharing import ModuleTestEnvironment
from repro.gatelevel.expand import expand_datapath
from repro.gatelevel.faults import Fault, all_faults
from repro.gatelevel.gates import Netlist
from repro.gatelevel.simulate import parallel_simulate
from repro.hls.datapath import Datapath


@dataclass(frozen=True)
class BISTHardware:
    """A data path expanded with its in-situ BIST registers."""

    netlist: Netlist
    control: dict
    role_map: Mapping[str, str]
    envs: tuple[ModuleTestEnvironment, ...]
    datapath_name: str

    @property
    def signature_registers(self) -> tuple[str, ...]:
        return tuple(sorted(
            r for r, role in self.role_map.items()
            if role in ("SR", "BILBO")
        ))

    def signature_bit_nets(self) -> Mapping[str, tuple[str, ...]]:
        """``{signature register: (bit-0 net, bit-1 net, ...)}``.

        Computed once by scanning the netlist's flip-flops (register bit
        *i* of ``reg`` is the DFF ``{reg}_b{i}``) and cached on the
        instance; signature reads used to rescan the entire state dict
        per register per checkpoint.
        """
        cached = self.__dict__.get("_signature_bits")
        if cached is None:
            regs = set(self.signature_registers)
            by_reg: dict[str, list[tuple[int, str]]] = {
                r: [] for r in regs
            }
            for g in self.netlist.dffs():
                stem, sep, idx = g.name.rpartition("_b")
                if sep and stem in regs and idx.isdigit():
                    by_reg[stem].append((int(idx), g.name))
            cached = {
                reg: tuple(net for _i, net in sorted(bits))
                for reg, bits in by_reg.items()
            }
            object.__setattr__(self, "_signature_bits", cached)
        return cached


def build_bist_hardware(
    datapath: Datapath,
    envs: Sequence[ModuleTestEnvironment],
    roles: Mapping[str, TestRole] | None = None,
) -> BISTHardware:
    """Expand the data path with BIST registers per the environments.

    When ``roles`` is omitted it is reconstructed from ``envs``
    (inputs -> TPGR; chosen SRs -> SR, or BILBO when also a TPGR).
    """
    if roles is None:
        role_map: dict[str, str] = {}
        for e in envs:
            for r in e.tpgr_registers:
                role_map.setdefault(r, "TPGR")
        for e in envs:
            prev = role_map.get(e.sr_register)
            role_map[e.sr_register] = "BILBO" if prev == "TPGR" else "SR"
    else:
        role_map = {
            name: role.value
            for name, role in roles.items()
            if role is not TestRole.NONE
        }
    nl, control = expand_datapath(datapath, bist_roles=role_map)
    return BISTHardware(nl, control, role_map, tuple(envs),
                        datapath.name)


def session_configuration(
    hardware: BISTHardware,
    session_units: Sequence[str],
) -> dict[str, int]:
    """Control/PI pinning for one session testing ``session_units``."""
    control = hardware.control
    config: dict[str, int] = {control["bist_en"]: 1}
    for pi in hardware.netlist.inputs():
        config.setdefault(pi, 0)
    active = {e.unit: e for e in hardware.envs if e.unit in session_units}
    for unit, env in active.items():
        sels, sources = control["reg_sel"].get(env.sr_register, ([], []))
        if unit in sources:
            idx = sources.index(unit)
            for k, net in enumerate(sels):
                config[net] = (idx >> k) & 1
    for (unit, port), (sels, sources) in control["port_sel"].items():
        idx = 0
        for j, s in enumerate(sources):
            if hardware.role_map.get(s) in ("TPGR", "BILBO", "CBILBO"):
                idx = j
                break
        for k, net in enumerate(sels):
            config[net] = (idx >> k) & 1
    return config


def run_signature(
    hardware: BISTHardware,
    config: Mapping[str, int],
    cycles: int,
    forced: Mapping[str, int] | None = None,
    backend: str | None = None,
) -> dict[str, int]:
    """Free-run one session; returns the final per-SR signatures."""
    sigs = run_signatures(hardware, config, (cycles,), forced=forced,
                          backend=backend)
    return sigs[cycles]


def run_signatures(
    hardware: BISTHardware,
    config: Mapping[str, int],
    checkpoints: Sequence[int],
    forced: Mapping[str, int] | None = None,
    backend: str | None = None,
) -> dict[int, dict[str, int]]:
    """Free-run one session, snapshotting signatures at checkpoints.

    Comparing at several checkpoints is the standard guard against
    MISR aliasing (a w-bit MISR aliases with probability ~2^-w at any
    single compare point).  Runs on the compiled kernel by default
    (``backend="interp"`` or ``REPRO_FAULTSIM_BACKEND`` selects the
    reference interpreter).
    """
    from repro.gatelevel.fault_sim import resolve_backend

    nl = hardware.netlist
    piv = dict(config)
    marks = sorted(set(checkpoints))
    if resolve_backend(backend) == "kernel":
        from repro.gatelevel.kernel import compiled

        states = compiled(nl).state_checkpoints(
            piv, marks, width=1, forced=forced
        )
        return {
            cycle: _read_signatures(hardware, state)
            for cycle, state in states.items()
        }
    order = nl.topo_order()
    state: dict[str, int] = {}
    out: dict[int, dict[str, int]] = {}
    for cycle in range(1, marks[-1] + 1):
        _vals, state = parallel_simulate(
            nl, piv, state, width=1, order=order, forced=forced
        )
        if cycle in marks:
            out[cycle] = _read_signatures(hardware, state)
    return out


def _read_signatures(
    hardware: BISTHardware, state: Mapping[str, int]
) -> dict[str, int]:
    return {
        reg: sum(
            (state.get(net, 0) & 1) << i for i, net in enumerate(bits)
        )
        for reg, bits in hardware.signature_bit_nets().items()
    }


def _default_checkpoints(cycles: int) -> list[int]:
    """The standard quarter-session signature compare points."""
    return sorted(
        {max(1, cycles // 4), max(1, cycles // 2),
         max(1, 3 * cycles // 4), cycles}
    )


def bist_fault_attribution(
    hardware: BISTHardware,
    sessions: Sequence[Sequence[str]] | None = None,
    cycles: int = 64,
    faults: Sequence[Fault] | None = None,
    checkpoints: Sequence[int] | None = None,
    backend: str | None = None,
    shards: int | None = None,
    collapse: bool | None = None,
) -> dict[Fault, tuple[int, int] | None]:
    """First-detection bookkeeping for every fault.

    Returns fault -> ``(session index, checkpoint cycle)`` of the first
    session/checkpoint whose signatures differ from golden (``None``
    when no session detects it), in the order the faults were given.

    On the kernel backend all remaining faults of a session run as one
    fault-parallel packed free-run per batch; a fault detected in an
    early session is dropped from every later session's batch.  The
    interpreter backend re-runs the session once per fault (the
    equivalence reference).  ``shards`` (or ``REPRO_FAULTSIM_SHARDS``)
    splits the fault list across worker processes; fault independence
    makes the contiguous-chunk merge byte-identical to a serial run.

    ``collapse`` (``REPRO_FAULT_COLLAPSE``, default on) attributes one
    representative per structural equivalence class and fans the
    ``(session, checkpoint)`` result back out -- exact, because
    collapsing never crosses a flip-flop and the signature bits are
    flip-flop states, so equivalent faults corrupt every signature
    identically.
    """
    from repro.gatelevel.fault_sim import (
        MIN_FAULTS_PER_SHARD,
        resolve_backend,
        resolve_shards,
    )
    from repro.gatelevel.structure import (
        collapse_map,
        record_collapse_metrics,
        resolve_collapse,
    )

    if sessions is None:
        sessions = schedule_sessions(list(hardware.envs))
    sessions = [list(units) for units in sessions]
    if faults is None:
        faults = all_faults(hardware.netlist)
    if resolve_collapse(collapse):
        cmap = collapse_map(hardware.netlist)
        reps = cmap.representatives(faults)
        if len(reps) < len(faults):
            record_collapse_metrics(len(faults), len(reps))
            res = bist_fault_attribution(
                hardware, sessions=sessions, cycles=cycles,
                faults=reps, checkpoints=checkpoints, backend=backend,
                shards=shards, collapse=False,
            )
            return cmap.expand(res, list(faults))
    marks = (sorted({int(c) for c in checkpoints})
             if checkpoints is not None else _default_checkpoints(cycles))
    backend = resolve_backend(backend)
    shards = resolve_shards(shards)
    if shards > 1 and len(faults) >= 2 * MIN_FAULTS_PER_SHARD:
        return _attribution_sharded(
            hardware, sessions, faults, marks, backend, shards
        )
    configs = [
        session_configuration(hardware, units) for units in sessions
    ]
    result: dict[Fault, tuple[int, int] | None] = {
        f: None for f in faults
    }
    if backend == "kernel":
        from repro.gatelevel.kernel import compiled

        comp = compiled(hardware.netlist)
        observe = [
            net for bits in hardware.signature_bit_nets().values()
            for net in bits
        ]
        remaining = list(faults)
        for s, cfg in enumerate(configs):
            if not remaining:
                break
            det = comp.sequential_fault_detect(
                remaining, cfg, marks, observe
            )
            still = []
            for f in remaining:
                if det[f] is None:
                    still.append(f)
                else:
                    result[f] = (s, det[f])
            remaining = still
        return result
    goldens = [
        run_signatures(hardware, cfg, marks, backend=backend)
        for cfg in configs
    ]
    for f in faults:
        forced = {f.net: f.stuck_at}
        for s, cfg in enumerate(configs):
            sigs = run_signatures(hardware, cfg, marks, forced=forced,
                                  backend=backend)
            hit = next(
                (m for m in marks if sigs[m] != goldens[s][m]), None
            )
            if hit is not None:
                result[f] = (s, hit)
                break
    return result


def _rehost_hardware(hardware: BISTHardware, digest: str) -> BISTHardware:
    """Swap the hardware's netlist for the worker-cached copy.

    ``resolve_netlist`` keeps one :class:`Netlist` per content hash
    alive in the worker, and the compiled-program cache is keyed on
    that object -- re-pointing the (cheap, frozen) hardware record at
    it means a warm worker never recompiles the datapath.
    """
    import dataclasses

    from repro.gatelevel.kernel import resolve_netlist

    netlist = resolve_netlist(digest, hardware.netlist)
    if netlist is not hardware.netlist:
        hardware = dataclasses.replace(hardware, netlist=netlist)
    return hardware


def _attribution_shard_worker(args):
    shard_index, digest, hardware, chunk, sessions, marks, backend = args
    from repro.flow import chaos

    chaos.checkpoint(f"bist_shard:{shard_index}")
    hardware = _rehost_hardware(hardware, digest)
    # collapse=False: the parent collapsed before sharding.
    return bist_fault_attribution(
        hardware, sessions=sessions, faults=chunk, checkpoints=marks,
        backend=backend, shards=1, collapse=False,
    )


def _attribution_shard_worker_shm(args):
    (shard_index, digest, hw_ref, fault_block, sessions, marks,
     backend) = args
    from repro.flow import chaos, shm
    from repro.gatelevel.fault_sim import _decode_fault_block

    chaos.checkpoint(f"bist_shard:{shard_index}")
    hardware = _rehost_hardware(shm.fetch_object(hw_ref), digest)
    chunk = (_decode_fault_block(hardware.netlist, fault_block)
             if isinstance(fault_block, tuple)
             else shm.fetch_object(fault_block))
    return bist_fault_attribution(
        hardware, sessions=sessions, faults=chunk, checkpoints=marks,
        backend=backend, shards=1, collapse=False,
    )


def _attribution_sharded(
    hardware: BISTHardware,
    sessions: Sequence[Sequence[str]],
    faults: Sequence[Fault],
    marks: Sequence[int],
    backend: str,
    shards: int,
) -> dict[Fault, tuple[int, int] | None]:
    """Fault-word sharding with deterministic merge (PR 2 convention):
    contiguous fault chunks, per-fault independence makes any partition
    exact, and the result dict is rebuilt in the caller's order.

    A crashed, killed, or pool-less shard is retried once and then run
    in-process (:func:`repro.flow.resilience.run_sharded`); the merge
    stays byte-identical and the fallback shows up in flow metrics.

    Payload transport follows ``REPRO_SHARD_TRANSPORT``: ``shm``
    publishes the hardware record (cache-stripped, so its content
    digest is stable) and the fault index array once in shared memory;
    ``pickle`` ships a full copy to every shard, the historical
    baseline.
    """
    import dataclasses

    from repro.flow import shm
    from repro.flow.resilience import run_sharded
    from repro.gatelevel import kernel
    from repro.gatelevel.fault_sim import (
        MIN_FAULTS_PER_SHARD,
        _encode_fault_block,
        _record_payload_bytes,
        _record_shard_info,
    )

    shards = min(shards, max(1, len(faults) // MIN_FAULTS_PER_SHARD))
    if shards <= 1:
        return bist_fault_attribution(
            hardware, sessions=sessions, faults=faults,
            checkpoints=marks, backend=backend, shards=1,
            collapse=False,
        )
    bounds = [round(i * len(faults) / shards) for i in range(shards + 1)]
    chunks = [list(faults[bounds[i]:bounds[i + 1]]) for i in range(shards)]
    sess = [list(u) for u in sessions]
    marks = list(marks)
    digest = kernel.netlist_hash(hardware.netlist)
    if shm.resolve_transport() == "shm":
        with shm.PayloadPlane() as plane:
            # replace() rebuilds through __init__, dropping the lazy
            # _signature_bits cache so the pickled bytes (and hence the
            # worker-side object-cache digest) are content-determined.
            hw_ref = plane.publish_object(dataclasses.replace(hardware))
            if kernel.have_kernel():
                arr, extras = _encode_fault_block(
                    hardware.netlist, list(faults)
                )
                fh = plane.publish_array(arr)
                blocks = [
                    (fh, bounds[i], bounds[i + 1],
                     {p: f for p, f in extras.items()
                      if bounds[i] <= p < bounds[i + 1]})
                    for i in range(shards)
                ]
            else:
                blocks = [plane.publish_object(c) for c in chunks]
            args = [(i, digest, hw_ref, blocks[i], sess, marks, backend)
                    for i in range(shards)]
            _record_payload_bytes(args, plane)
            results, info = run_sharded(
                _attribution_shard_worker_shm, args, max_workers=shards,
                label="bist_shard",
            )
    else:
        args = [(i, digest, hardware, chunk, sess, marks, backend)
                for i, chunk in enumerate(chunks)]
        _record_payload_bytes(args, None)
        results, info = run_sharded(
            _attribution_shard_worker, args, max_workers=shards,
            label="bist_shard",
        )
    merged: dict[Fault, tuple[int, int] | None] = {}
    for res in results:
        merged.update(res)
    _record_shard_info(info)
    return {f: merged[f] for f in faults}


def bist_fault_coverage(
    hardware: BISTHardware,
    sessions: Sequence[Sequence[str]] | None = None,
    cycles: int = 64,
    faults: Sequence[Fault] | None = None,
    backend: str | None = None,
    shards: int | None = None,
    collapse: bool | None = None,
) -> float:
    """Signature-based stuck-at coverage over the given sessions.

    ``sessions`` defaults to the conflict-free partition from
    :func:`repro.bist.sessions.schedule_sessions`; a fault counts as
    detected when any session's signature set differs from golden at
    any checkpoint.  Backed by :func:`bist_fault_attribution`, so the
    kernel backend simulates every remaining fault of a session in one
    fault-parallel packed free-run per batch.
    """
    if faults is None:
        faults = all_faults(hardware.netlist)
    att = bist_fault_attribution(
        hardware, sessions=sessions, cycles=cycles, faults=faults,
        backend=backend, shards=shards, collapse=collapse,
    )
    detected = sum(1 for v in att.values() if v is not None)
    return detected / len(faults) if faults else 1.0


def jtag_session_signature(
    hardware: BISTHardware,
    config: Mapping[str, int],
    cycles: int,
    backend: str | None = None,
) -> dict[str, int]:
    """Run one BIST session through a JTAG wrapper and read signatures.

    The silicon procedure for the session check: wrap the expanded
    netlist in an IEEE 1149.1 boundary, preload the session's control
    configuration through the boundary register under INTEST, free-run
    ``cycles`` core clocks in Run-Test/Idle, and read the signature
    registers out of the core state.  Must equal :func:`run_signature`
    for the same configuration and cycle count.
    """
    from repro.jtag.wrapper import JTAGWrapper

    wrapper = JTAGWrapper(hardware.netlist, backend=backend)
    state = wrapper.free_run(config, cycles)
    return _read_signatures(hardware, state)
