"""Fused multi-design kernel execution (block-diagonal batching).

The compiled kernel (:mod:`repro.gatelevel.kernel`) amortises per-gate
Python cost, but every *call* still pays fixed dispatch overhead: one
``good_cycle`` per design per cycle, one numpy call per (level, opcode)
group, per-call packing.  In the many-small-designs regime — corpus
coverage sweeps, hierarchical per-module checks, multi-tenant serving —
that per-call overhead dominates wall-clock.

This module packs N independent :class:`CompiledNetlist` programs into
**one** block-diagonal program:

* **Concatenated row spaces** — design *k*'s gate rows are offset by
  the total row count of designs ``0..k-1``, so the fused value matrix
  is block-diagonal and every existing kernel method (cone closures,
  fault batches, packed sequential free-runs) works unchanged: cones
  of faults from different designs are disjoint by construction.
* **Merged opcode groups** — instruction groups are re-merged by
  ``(level, opcode)`` *across* designs, so one numpy call evaluates
  every same-kind gate of a level in every design at once.  Bitwise
  ops are row- and column-independent, which makes the fused
  evaluation byte-identical to per-design serial runs.
* **Namespaced observation** — nets are qualified per design
  (``d3/net``), so fault splitting, PI packing, and result fan-out are
  exact inverses of the fusion.

Jobs fuse only when compatible (same pattern width and cycle count —
a design evaluated at a wider width than its own pattern block would
see phantom all-zero patterns, breaking identity), so the public
entry points group jobs first and fall back to per-design serial runs
for singletons, the interpreter backend, or ``REPRO_KERNEL_BATCH=0``.

Sharded fused runs partition the *job list* into contiguous chunks
(per-design independence makes any partition exact) and reuse the
PR-7 shm payload plane: member netlists travel once, by content
digest, so a warm worker serves repeated corpora from its compiled
cache and the per-worker fused-program LRU below.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from collections import OrderedDict
from typing import Mapping, Sequence

from repro.flow.metrics import metrics_active, record_metric
from repro.gatelevel.faults import Fault
from repro.gatelevel.gates import Netlist

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

BATCH_ENV = "REPRO_KERNEL_BATCH"
WINDOW_ENV = "REPRO_SERVE_BATCH_WINDOW"

#: cumulative fused-execution counters; served by ``/metrics`` (see
#: :func:`batch_stats`) so under-filled fusions are visible in ops.
_BATCH_STATS = {
    "fused_calls": 0,
    "fused_designs": 0,
    "fused_rows": 0,
    "last_designs": 0,
    "last_rows": 0,
    "last_fill_ratio": 0.0,
}


def resolve_batch(batch: bool | None = None) -> bool:
    """Normalise the fused-execution switch: arg > env > on."""
    from repro.knobs import coerce_flag, env_flag

    if batch is None:
        return env_flag(BATCH_ENV, True)
    return coerce_flag(batch, "batch")


def resolve_batch_window(window: float | None = None) -> float:
    """The serve scheduler's coalescing window in seconds (>= 0)."""
    from repro.knobs import coerce_float, env_float

    if window is None:
        return env_float(WINDOW_ENV, 0.0, minimum=0.0)
    return coerce_float(window, "batch_window", minimum=0.0)


def batch_stats() -> dict[str, float]:
    """Cumulative fused-execution counters (process-wide)."""
    return dict(_BATCH_STATS)


def _qual(k: int, name: str) -> str:
    return f"d{k}/{name}"


# ---------------------------------------------------------------------------
# the fused program


class FusedProgram:
    """N compiled netlists concatenated into one block-diagonal program.

    Subclasses nothing but *duck-types* :class:`CompiledNetlist`: it
    builds the exact field layout (``opcode``/``level``/``program``/
    row index arrays/``_consumers``) by concatenation with per-design
    row offsets and borrows the kernel's unbound methods, so
    ``good_cycle``, ``detect_masks``, ``fault_simulate_cycles`` and
    ``sequential_fault_detect`` run on it unchanged.
    """

    def __init__(self, members: Sequence) -> None:
        from repro.gatelevel.gates import NetlistError

        if _np is None:  # pragma: no cover - guarded by have_kernel()
            raise NetlistError("fused kernel requires numpy")
        self.members = list(members)
        self.netlist = None
        offsets: list[int] = []
        dff_offsets: list[int] = []
        rows = 0
        dffs = 0
        for comp in self.members:
            offsets.append(rows)
            dff_offsets.append(dffs)
            rows += comp.n_gates
            dffs += len(comp.dff_names)
        self.offsets = offsets
        self.dff_offsets = dff_offsets
        self.n_gates = rows

        self.names = [
            _qual(k, n)
            for k, comp in enumerate(self.members) for n in comp.names
        ]
        self.index = {n: i for i, n in enumerate(self.names)}
        self.opcode = _np.concatenate(
            [comp.opcode for comp in self.members]
        )
        self.level = _np.concatenate(
            [comp.level for comp in self.members]
        )
        self.fanin = _np.concatenate(
            [comp.fanin + ofs for comp, ofs in zip(self.members, offsets)]
        )

        def cat(attr):
            parts = [
                getattr(comp, attr) + ofs
                for comp, ofs in zip(self.members, offsets)
                if len(getattr(comp, attr))
            ]
            return (_np.concatenate(parts) if parts
                    else _np.array([], dtype=_np.int64))

        self.input_rows = cat("input_rows")
        self.const0_rows = cat("const0_rows")
        self.const1_rows = cat("const1_rows")
        self.dff_rows = cat("dff_rows")
        self.dff_d_rows = cat("dff_d_rows")
        self.output_rows = cat("output_rows")
        self.input_names = [
            _qual(k, n)
            for k, comp in enumerate(self.members)
            for n in comp.input_names
        ]
        self.dff_names = [
            _qual(k, n)
            for k, comp in enumerate(self.members)
            for n in comp.dff_names
        ]
        self.dff_pos = {
            int(row): pos for pos, row in enumerate(self.dff_rows)
        }
        scan_parts = [
            comp.scan_pos + dofs
            for comp, dofs in zip(self.members, dff_offsets)
            if len(comp.scan_pos)
        ]
        self.scan_pos = (_np.concatenate(scan_parts) if scan_parts
                         else _np.array([], dtype=_np.int64))

        # Re-merge instruction groups by (level, opcode) across designs:
        # one numpy call per group evaluates that group in *every*
        # member at once.  Row offsets keep the blocks disjoint.
        groups: dict[tuple[int, int], list] = {}
        for k, (comp, ofs) in enumerate(zip(self.members, offsets)):
            for op, dst, a, b, c in comp.program:
                lvl = int(comp.level[dst[0]])
                groups.setdefault((lvl, op), []).append(
                    (k, dst + ofs, a + ofs,
                     b + ofs if b is not None else None,
                     c + ofs if c is not None else None)
                )
        self.program: list[tuple] = []
        for (_lvl, op), parts in sorted(groups.items()):
            if len(parts) == 1:
                _k, dst, a, b, c = parts[0]
            else:
                dst = _np.concatenate([p[1] for p in parts])
                a = _np.concatenate([p[2] for p in parts])
                b = (_np.concatenate([p[3] for p in parts])
                     if parts[0][3] is not None else None)
                c = (_np.concatenate([p[4] for p in parts])
                     if parts[0][4] is not None else None)
            self.program.append((op, dst, a, b, c))
        # Row -> (merged group, position within it): ``_make_batch``
        # derives each batch's kept instructions straight from the
        # cone-union row set with vectorised gathers, never visiting
        # the (mostly empty) merged groups one by one.
        row_group = _np.full(self.n_gates, -1, dtype=_np.int64)
        row_pos = _np.zeros(self.n_gates, dtype=_np.int64)
        for g, (_op, dst, _a, _b, _c) in enumerate(self.program):
            row_group[dst] = g
            row_pos[dst] = _np.arange(len(dst))
        self._row_group = row_group
        self._row_pos = row_pos

        consumers: list[list[int]] = []
        for comp, ofs in zip(self.members, offsets):
            for lst in comp._consumers:
                consumers.append([i + ofs for i in lst])
        self._consumers = consumers
        self._cones: dict = {}
        self._level_program_cache = None

    def qualify_faults(self, k: int, faults: Sequence[Fault]) -> list[Fault]:
        """Design *k*'s faults renamed into the fused namespace."""
        return [Fault(_qual(k, f.net), f.stuck_at) for f in faults]

    def merge_values(self, per_design: Sequence[Mapping[str, int]]
                     ) -> dict[str, int]:
        """Per-design name->value dicts merged into one qualified dict."""
        out: dict[str, int] = {}
        for k, values in enumerate(per_design):
            if values:
                for name, v in values.items():
                    out[_qual(k, name)] = v
        return out

    # ------------------------------------------------------------------
    # span-aware overrides
    #
    # The borrowed kernel methods are correct on the fused layout but
    # three of them scan the *whole* fused program per fault site or
    # batch -- O(total rows) pure-Python work that scales with corpus
    # size, not member size, and would make fusion slower than serial.
    # Each override below is byte-identical by construction: fault
    # cones never cross member blocks, so work outside the member-row
    # span a batch touches can neither be read by its cone program nor
    # observed.

    def cone(self, site: int):
        """Member-delegating cone: the owning design's cached cone with
        its rows and DFF positions shifted by the block offsets."""
        c = self._cones.get(site)
        if c is not None:
            return c
        from repro.gatelevel.kernel import _Cone

        k = bisect_right(self.offsets, site) - 1
        ofs = self.offsets[k]
        dofs = self.dff_offsets[k]
        mc = self.members[k].cone(site - ofs)
        program = [
            (op, dst + ofs, a + ofs,
             b + ofs if b is not None else None,
             c_ + ofs if c_ is not None else None)
            for op, dst, a, b, c_ in mc.program
        ]
        cone = _Cone(
            site, program, mc.touched + ofs, mc.obs_out + ofs,
            mc.obs_scan + dofs,
            None if mc.site_dff_pos is None else mc.site_dff_pos + dofs,
        )
        self._cones[site] = cone
        return cone

    def _make_batch(self, faults: Sequence[Fault], width: int, init,
                    mask):
        """Vectorised union-of-cones compile plus row-span tagging.

        Same semantics as the kernel's ``_make_batch``, but the
        per-group membership test is a numpy gather instead of a
        Python scan, and the batch records the contiguous member-row
        (and DFF-position) span its faults live in so ``_batch_cycle``
        can restrict scratch refresh and state propagation to it.
        """
        from repro.gatelevel.kernel import OP_BUF, _n_words

        nw = _n_words(width)
        sites = [self.index[f.net] for f in faults]
        forced = [
            _np.zeros(nw, dtype=_np.uint64) if f.stuck_at == 0
            else mask.copy()
            for f in faults
        ]
        seen = set(sites)
        stack = list(sites)
        while stack:
            i = stack.pop()
            for k in self._consumers[i]:
                if k not in seen:
                    seen.add(k)
                    stack.append(k)
        member = _np.zeros(self.n_gates, dtype=bool)
        member[list(seen)] = True
        fix_by_level: dict[int, list[tuple[int, int]]] = {}
        for blk, site in enumerate(sites):
            if int(self.opcode[site]) >= OP_BUF:
                fix_by_level.setdefault(int(self.level[site]), []).append(
                    (site, blk)
                )

        # The contiguous run of member blocks this batch's cones span
        # (faults arrive sorted by fused row, so the run is tight).
        klo = bisect_right(self.offsets, min(seen)) - 1
        khi = bisect_right(self.offsets, max(seen)) - 1
        row_lo = self.offsets[klo]
        row_hi = self.offsets[khi] + self.members[khi].n_gates

        # Kept instructions straight from the cone union: gather each
        # seen row's (group, position), order by group then position
        # (the kernel's within-group order), split at group changes.
        rows = _np.fromiter(seen, dtype=_np.int64, count=len(seen))
        g_of = self._row_group[rows]
        comb = g_of >= 0
        rows, g_of = rows[comb], g_of[comb]
        pos = self._row_pos[rows]
        order = _np.lexsort((pos, g_of))
        g_of, pos = g_of[order], pos[order]
        uniq, starts = _np.unique(g_of, return_index=True)
        bounds = _np.append(starts, len(g_of))
        levels: list[tuple[list, tuple]] = []
        cur_lvl: int | None = None
        cur: list[tuple] = []
        for gi, g in enumerate(uniq):
            op, dst, a, b, c = self.program[g]
            lvl = int(self.level[dst[0]])
            if lvl != cur_lvl:
                if cur:
                    levels.append((cur, tuple(fix_by_level.get(cur_lvl,
                                                               ()))))
                cur_lvl, cur = lvl, []
            sel = pos[starts[gi]:bounds[gi + 1]]
            if len(sel) == len(dst):
                cur.append((op, dst, a, b, c))
            else:
                cur.append((
                    op, dst[sel], a[sel],
                    b[sel] if b is not None else None,
                    c[sel] if c is not None else None,
                ))
        if cur:
            levels.append((cur, tuple(fix_by_level.get(cur_lvl, ()))))
        obs_out = self.output_rows[member[self.output_rows]]
        obs_scan = self.scan_pos[member[self.dff_rows[self.scan_pos]]]
        pos_lo = self.dff_offsets[klo]
        pos_hi = self.dff_offsets[khi] + len(self.members[khi].dff_names)

        # Scan reload only matters for state rows that can be observed
        # or re-read -- both in-span -- so clip the keep lists to it.
        sp = self.scan_pos
        if len(sp):
            sp = sp[(sp >= pos_lo) & (sp < pos_hi)]
        site_dff = [self.dff_pos.get(site) for site in sites]
        keep = []
        for pos in site_dff:
            if len(sp) and pos is not None:
                keep.append(sp[sp != pos])
            else:
                keep.append(sp)
        state = _np.tile(init, (1, len(faults))) if len(self.dff_rows) \
            else _np.zeros((0, len(faults) * nw), dtype=_np.uint64)
        batch = _span_batch()(list(faults), sites, forced, site_dff,
                              keep, levels, obs_out, obs_scan, state)
        batch.row_lo = row_lo
        batch.row_hi = row_hi
        batch.pos_lo = pos_lo
        batch.pos_hi = pos_hi
        return batch

    def _batch_cycle(self, batch, VS, mask_b, VG, gnxt, nw: int,
                     width: int, cycle: int, detected: dict) -> None:
        """Span-restricted clone of the kernel's ``_batch_cycle``.

        Per-column semantics are identical; scratch refresh and state
        propagation touch only the member-row span recorded by
        :meth:`_make_batch`.  Out-of-span rows hold stale scratch, but
        the batch's cone program neither reads nor observes them.
        """
        B = batch.size
        lo, hi = batch.row_lo, batch.row_hi
        plo, phi = batch.pos_lo, batch.pos_hi
        VS.reshape(self.n_gates, B, nw)[lo:hi] = VG[lo:hi, None, :]
        if phi > plo:
            VS[self.dff_rows[plo:phi]] = batch.state[plo:phi]
        for blk in range(B):
            if batch.alive[blk]:
                VS[batch.sites[blk],
                   blk * nw:(blk + 1) * nw] = batch.forced[blk]
        for instrs, fixes in batch.levels:
            self._run_program(VS, instrs, mask_b)
            for site, blk in fixes:
                if batch.alive[blk]:
                    VS[site, blk * nw:(blk + 1) * nw] = batch.forced[blk]
        if phi > plo:
            bnxt = VS[self.dff_d_rows].copy()
        else:
            bnxt = _np.zeros((0, B * nw), dtype=_np.uint64)
        for blk in range(B):
            if batch.alive[blk] and batch.site_dff[blk] is not None:
                bnxt[batch.site_dff[blk],
                     blk * nw:(blk + 1) * nw] = batch.forced[blk]
        good_out = VG[batch.obs_out] if len(batch.obs_out) else None
        good_scan = gnxt[batch.obs_scan] if len(batch.obs_scan) else None
        for blk, fault in enumerate(batch.faults):
            if not batch.alive[blk]:
                continue
            sl = slice(blk * nw, (blk + 1) * nw)
            self._pattern_cycles += width
            hit = (
                good_out is not None
                and not _np.array_equal(VS[batch.obs_out, sl], good_out)
            ) or (
                good_scan is not None
                and not _np.array_equal(bnxt[batch.obs_scan, sl],
                                        good_scan)
            )
            if hit:
                detected[fault] = cycle
                batch.alive[blk] = False
                continue
            if len(batch.keep[blk]):
                bnxt[batch.keep[blk], sl] = gnxt[batch.keep[blk]]
            batch.state[plo:phi, sl] = bnxt[plo:phi, sl]


# Borrow the kernel's methods: FusedProgram has the exact field layout
# CompiledNetlist's evaluation paths read, and none of them touch
# ``self.netlist``.  ``cone``/``_make_batch``/``_batch_cycle`` are NOT
# borrowed -- their span-aware overrides live in the class body above.
def _borrow_kernel_methods() -> None:
    from repro.gatelevel.kernel import CompiledNetlist

    for name in (
        "words_from_int", "int_from_words", "_mask_words", "_pi_matrix",
        "pack_pi_sequence", "_state_matrix", "_run_program", "good_cycle",
        "_faulty_cycle", "_restore", "diff_words", "simulate",
        "state_checkpoints", "_level_program", "sequential_fault_detect",
        "_seq_fault_batch", "detect_masks", "fault_simulate_cycles",
    ):
        setattr(FusedProgram, name, CompiledNetlist.__dict__[name])


_SPAN_BATCH = None


def _span_batch():
    """The span-tagged :class:`_FaultBatch` subclass (lazy: keeps the
    kernel import out of this module's import time on no-numpy hosts)."""
    global _SPAN_BATCH
    if _SPAN_BATCH is None:
        from repro.gatelevel.kernel import _FaultBatch

        class _SpanFaultBatch(_FaultBatch):
            __slots__ = ("row_lo", "row_hi", "pos_lo", "pos_hi")

        _SPAN_BATCH = _SpanFaultBatch
    return _SPAN_BATCH


if _np is not None:
    _borrow_kernel_methods()


# ---------------------------------------------------------------------------
# fused-program cache (warm workers fuse each corpus once)

_FUSED: "OrderedDict[tuple, FusedProgram]" = OrderedDict()


def fused_compiled(netlists: Sequence[Netlist]) -> FusedProgram:
    """The cached fused program for this exact design sequence.

    Keyed by the members' content digests (plus each netlist's
    mutation counter via :func:`repro.gatelevel.kernel.netlist_blob`'s
    memo), so a warm worker that has seen a corpus re-fuses nothing.
    Bounded by ``REPRO_WORKER_CACHE_SIZE`` like the kernel's own
    netlist registry.
    """
    from repro.flow.shm import default_cache_size
    from repro.gatelevel.kernel import compiled, netlist_hash

    key = tuple(netlist_hash(nl) for nl in netlists)
    hit = _FUSED.get(key)
    if hit is not None:
        _FUSED.move_to_end(key)
        return hit
    fused = FusedProgram([compiled(nl) for nl in netlists])
    _FUSED[key] = fused
    limit = default_cache_size()
    while len(_FUSED) > limit:
        _FUSED.popitem(last=False)
    return fused


def _note_fusion(n_designs: int, fused: FusedProgram) -> None:
    """Batch-occupancy bookkeeping: cumulative counters for ``/metrics``
    plus per-stage flow metrics when a collector is open."""
    rows = fused.n_gates
    biggest = max(comp.n_gates for comp in fused.members)
    fill = rows / (n_designs * biggest) if n_designs else 0.0
    _BATCH_STATS["fused_calls"] += 1
    _BATCH_STATS["fused_designs"] += n_designs
    _BATCH_STATS["fused_rows"] += rows
    _BATCH_STATS["last_designs"] = n_designs
    _BATCH_STATS["last_rows"] = rows
    _BATCH_STATS["last_fill_ratio"] = round(fill, 4)
    if metrics_active():
        record_metric("batch_designs", n_designs)
        record_metric("batch_rows", rows)
        record_metric("batch_fill_ratio", round(fill, 4))


# ---------------------------------------------------------------------------
# job types


class SimJob:
    """One design's fault-simulation request (see
    :func:`fault_simulate_many`)."""

    __slots__ = ("netlist", "faults", "pi_sequence", "width",
                 "initial_state", "drop_detected")

    def __init__(self, netlist: Netlist, faults: Sequence[Fault],
                 pi_sequence: Sequence[Mapping[str, int]],
                 width: int = 64,
                 initial_state: Mapping[str, int] | None = None,
                 drop_detected: bool = False) -> None:
        self.netlist = netlist
        self.faults = list(faults)
        self.pi_sequence = list(pi_sequence)
        self.width = width
        self.initial_state = dict(initial_state) if initial_state else None
        self.drop_detected = drop_detected


class SeqJob:
    """One design's packed sequential free-run request (see
    :func:`sequential_detect_many`)."""

    __slots__ = ("netlist", "faults", "pi_values", "checkpoints",
                 "observe", "forced", "initial_state")

    def __init__(self, netlist: Netlist, faults: Sequence[Fault],
                 pi_values: Mapping[str, int],
                 checkpoints: Sequence[int],
                 observe: Sequence[str],
                 forced: Mapping[str, int] | None = None,
                 initial_state: Mapping[str, int] | None = None) -> None:
        self.netlist = netlist
        self.faults = list(faults)
        self.pi_values = dict(pi_values)
        self.checkpoints = tuple(sorted({int(c) for c in checkpoints}))
        self.observe = list(observe)
        self.forced = dict(forced) if forced else None
        self.initial_state = dict(initial_state) if initial_state else None


class MaskJob:
    """One design's single-cycle detect-mask request (see
    :func:`detect_masks_many`)."""

    __slots__ = ("netlist", "faults", "pi_values", "state", "width")

    def __init__(self, netlist: Netlist, faults: Sequence[Fault],
                 pi_values: Mapping[str, int],
                 state: Mapping[str, int] | None = None,
                 width: int = 64) -> None:
        self.netlist = netlist
        self.faults = list(faults)
        self.pi_values = dict(pi_values)
        self.state = dict(state) if state else None
        self.width = width


# ---------------------------------------------------------------------------
# fused fault simulation


def _use_fused(backend: str, batch: bool) -> bool:
    from repro.gatelevel.kernel import have_kernel

    return batch and backend == "kernel" and have_kernel()


def fault_simulate_many(
    jobs: Sequence[SimJob],
    backend: str | None = None,
    shards: int | None = None,
    batch: bool | None = None,
    collapse: bool | None = None,
) -> list[dict[Fault, int | None]]:
    """Fault-simulate many designs; ``result[i]`` is byte-identical to
    ``fault_simulate_cycles(jobs[i].netlist, ...)`` run serially.

    Jobs with the same ``(cycles, width)`` signature fuse into one
    block-diagonal kernel invocation; the rest (and every job on the
    interpreter backend, or with ``batch`` off) run per design.
    ``shards`` partitions the *job list* of each fused group into
    contiguous chunks across worker processes — per-design
    independence makes the positional merge exact for any shard count.
    ``collapse`` collapses each design's fault list to structural
    representatives up front and fans results back out, exactly as the
    single-design path does.
    """
    from repro.gatelevel.fault_sim import resolve_backend, resolve_shards
    from repro.gatelevel.structure import (
        collapse_map,
        record_collapse_metrics,
        resolve_collapse,
    )

    jobs = list(jobs)
    if not jobs:
        return []
    backend = resolve_backend(backend)
    shards = resolve_shards(shards)
    batch = resolve_batch(batch)

    if resolve_collapse(collapse):
        cmaps = [collapse_map(j.netlist) for j in jobs]
        reps = [cm.representatives(j.faults)
                for cm, j in zip(cmaps, jobs)]
        if any(len(r) < len(j.faults) for r, j in zip(reps, jobs)):
            record_collapse_metrics(
                sum(len(j.faults) for j in jobs),
                sum(len(r) for r in reps),
            )
            reduced = [
                SimJob(j.netlist, r, j.pi_sequence, j.width,
                       j.initial_state, j.drop_detected)
                for j, r in zip(jobs, reps)
            ]
            res = fault_simulate_many(
                reduced, backend=backend, shards=shards, batch=batch,
                collapse=False,
            )
            return [cm.expand(r, list(j.faults))
                    for cm, r, j in zip(cmaps, res, jobs)]

    if not _use_fused(backend, batch) or len(jobs) == 1:
        return [_serial_sim(j, backend, shards) for j in jobs]

    # Group compatible jobs; incompatible signatures never fuse
    # (phantom zero-pattern columns would break identity).
    groups: dict[tuple[int, int], list[int]] = {}
    for i, j in enumerate(jobs):
        groups.setdefault((len(j.pi_sequence), j.width), []).append(i)
    out: list[dict[Fault, int | None] | None] = [None] * len(jobs)
    for _sig, idxs in sorted(groups.items()):
        if len(idxs) == 1:
            out[idxs[0]] = _serial_sim(jobs[idxs[0]], backend, shards)
            continue
        group = [jobs[i] for i in idxs]
        results = _fused_sim_group(group, shards)
        for i, res in zip(idxs, results):
            out[i] = res
    return out  # type: ignore[return-value]


def _serial_sim(job: SimJob, backend: str,
                shards: int) -> dict[Fault, int | None]:
    from repro.gatelevel.fault_sim import fault_simulate_cycles

    return fault_simulate_cycles(
        job.netlist, job.faults, job.pi_sequence, width=job.width,
        initial_state=job.initial_state,
        drop_detected=job.drop_detected, backend=backend,
        shards=shards, collapse=False,
    )


def _fused_sim_group(group: Sequence[SimJob],
                     shards: int) -> list[dict[Fault, int | None]]:
    from repro.gatelevel.fault_sim import MIN_FAULTS_PER_SHARD

    total_faults = sum(len(j.faults) for j in group)
    if shards > 1 and len(group) >= 2 and \
            total_faults >= 2 * MIN_FAULTS_PER_SHARD:
        return _fused_sim_sharded(group, shards)
    return _fused_sim(group)


def _fused_sim(group: Sequence[SimJob]) -> list[dict[Fault, int | None]]:
    """One fused kernel invocation for a compatible job group."""
    from repro.gatelevel.fault_sim import _record_pps

    fused = fused_compiled([j.netlist for j in group])
    _note_fusion(len(group), fused)
    qfaults: list[Fault] = []
    spans: list[tuple[int, int]] = []
    for k, job in enumerate(group):
        start = len(qfaults)
        qfaults.extend(fused.qualify_faults(k, job.faults))
        spans.append((start, len(qfaults)))
    cycles = len(group[0].pi_sequence)
    seq = [
        fused.merge_values([j.pi_sequence[c] for j in group])
        for c in range(cycles)
    ]
    state = fused.merge_values(
        [j.initial_state or {} for j in group]
    ) or None
    t0 = time.perf_counter()
    res = fused.fault_simulate_cycles(
        qfaults, seq, width=group[0].width, initial_state=state,
        drop_detected=all(j.drop_detected for j in group),
    )
    _record_pps(fused._pattern_cycles, time.perf_counter() - t0)
    out: list[dict[Fault, int | None]] = []
    for job, (start, end) in zip(group, spans):
        out.append({
            f: res[qf]
            for f, qf in zip(job.faults, qfaults[start:end])
        })
    return out


def _batch_shard_worker(args):
    """One contiguous job chunk of a fused group, re-fused in-worker."""
    shard_index, payload, refs = args
    from repro.flow import chaos, shm
    from repro.gatelevel.kernel import resolve_netlist

    chaos.checkpoint(f"batch_shard:{shard_index}")
    if refs is not None:
        payload = shm.fetch_object(payload)
    chunk = []
    for digest, faults, seq, width, state, drop in payload:
        ref = refs[digest] if refs is not None else None
        netlist = resolve_netlist(
            digest,
            (lambda r=ref: shm.attach_bytes(r.handle)) if ref is not None
            else None,
        )
        chunk.append(SimJob(netlist, faults, seq, width, state, drop))
    return fault_simulate_many(
        chunk, backend="kernel", shards=1, batch=True, collapse=False,
    )


def _fused_sim_sharded(group: Sequence[SimJob],
                       shards: int) -> list[dict[Fault, int | None]]:
    """Contiguous job partition across workers, shm-first transport.

    Member netlists are published once, keyed by content digest, so a
    warm worker resolves them from its hash cache without touching the
    segment; each worker fuses its own chunk (and caches the fused
    program by digest tuple), then the results merge positionally —
    byte-identical to the unsharded fused run, which is itself
    byte-identical to per-design serial runs.
    """
    from repro.flow import shm
    from repro.flow.resilience import run_sharded
    from repro.gatelevel import kernel
    from repro.gatelevel.fault_sim import (
        _record_payload_bytes,
        _record_shard_info,
    )

    shards = min(shards, len(group))
    bounds = [round(i * len(group) / shards) for i in range(shards + 1)]
    parts = [group[bounds[i]:bounds[i + 1]] for i in range(shards)]

    def encode(job: SimJob) -> tuple:
        digest = kernel.netlist_hash(job.netlist)
        return (digest, job.faults, job.pi_sequence, job.width,
                job.initial_state, job.drop_detected)

    if shm.resolve_transport() == "shm":
        with shm.PayloadPlane() as plane:
            refs: dict[str, object] = {}
            for job in group:
                digest, blob = kernel.netlist_blob(job.netlist)
                if digest not in refs:
                    refs[digest] = plane.publish_object(
                        None, blob=blob, digest=digest
                    )
            args = [
                (i, plane.publish_object([encode(j) for j in part]),
                 {e[0]: refs[e[0]]
                  for e in map(encode, part)})
                for i, part in enumerate(parts)
            ]
            _record_payload_bytes(args, plane)
            results, info = run_sharded(
                _batch_shard_worker, args, max_workers=shards,
                label="batch_shard",
            )
    else:
        # classic pickle transport: the netlist body crosses the pipe
        # with the job; resolve_netlist still dedups decode in-worker.
        args = [
            (i, [
                (j.netlist, j.faults, j.pi_sequence, j.width,
                 j.initial_state, j.drop_detected)
                for j in part
            ], None)
            for i, part in enumerate(parts)
        ]
        _record_payload_bytes(args, None)
        results, info = run_sharded(
            _batch_shard_worker_pickle, args, max_workers=shards,
            label="batch_shard",
        )
    _record_shard_info(info)
    out: list[dict[Fault, int | None]] = []
    for res in results:
        out.extend(res)
    return out


def _batch_shard_worker_pickle(args):
    shard_index, payload, _refs = args
    from repro.flow import chaos
    from repro.gatelevel.kernel import netlist_hash, resolve_netlist

    chaos.checkpoint(f"batch_shard:{shard_index}")
    chunk = []
    for netlist, faults, seq, width, state, drop in payload:
        netlist = resolve_netlist(netlist_hash(netlist), netlist)
        chunk.append(SimJob(netlist, faults, seq, width, state, drop))
    return fault_simulate_many(
        chunk, backend="kernel", shards=1, batch=True, collapse=False,
    )


# ---------------------------------------------------------------------------
# fused detect masks (corpus sweeps)


def detect_masks_many(
    jobs: Sequence[MaskJob],
    batch: bool | None = None,
) -> list[dict[Fault, int]]:
    """Per-design detect masks; byte-identical to serial
    ``compiled(nl).detect_masks`` calls.  Kernel-only (the mask path
    has no interpreter twin); jobs group by width."""
    from repro.gatelevel.kernel import compiled

    jobs = list(jobs)
    if not jobs:
        return []
    if not _use_fused("kernel", resolve_batch(batch)) or len(jobs) == 1:
        return [
            compiled(j.netlist).detect_masks(
                j.faults, j.pi_values, j.state, j.width
            )
            for j in jobs
        ]
    groups: dict[int, list[int]] = {}
    for i, j in enumerate(jobs):
        groups.setdefault(j.width, []).append(i)
    out: list[dict[Fault, int] | None] = [None] * len(jobs)
    for width, idxs in sorted(groups.items()):
        if len(idxs) == 1:
            j = jobs[idxs[0]]
            out[idxs[0]] = compiled(j.netlist).detect_masks(
                j.faults, j.pi_values, j.state, j.width
            )
            continue
        group = [jobs[i] for i in idxs]
        fused = fused_compiled([j.netlist for j in group])
        _note_fusion(len(group), fused)
        qfaults: list[Fault] = []
        spans: list[tuple[int, int]] = []
        for k, job in enumerate(group):
            start = len(qfaults)
            qfaults.extend(fused.qualify_faults(k, job.faults))
            spans.append((start, len(qfaults)))
        piv = fused.merge_values([j.pi_values for j in group])
        state = fused.merge_values(
            [j.state or {} for j in group]
        ) or None
        res = fused.detect_masks(qfaults, piv, state, width)
        for i, job, (start, end) in zip(idxs, group, spans):
            out[i] = {
                f: res[qf]
                for f, qf in zip(job.faults, qfaults[start:end])
            }
    return out  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# fused sequential free-runs (BIST attribution)


def sequential_detect_many(
    jobs: Sequence[SeqJob],
    batch: bool | None = None,
) -> list[dict[Fault, int | None]]:
    """Fused fault-parallel sequential free-runs; byte-identical to
    serial ``sequential_fault_detect`` per design.  Jobs group by
    checkpoint schedule (every column of a packed run sees the same
    cycle marks)."""
    jobs = list(jobs)
    if not jobs:
        return []
    if not _use_fused("kernel", resolve_batch(batch)) or len(jobs) == 1:
        return [_serial_seq(j) for j in jobs]
    groups: dict[tuple[int, ...], list[int]] = {}
    for i, j in enumerate(jobs):
        groups.setdefault(j.checkpoints, []).append(i)
    out: list[dict[Fault, int | None] | None] = [None] * len(jobs)
    for marks, idxs in sorted(groups.items()):
        if len(idxs) == 1:
            out[idxs[0]] = _serial_seq(jobs[idxs[0]])
            continue
        group = [jobs[i] for i in idxs]
        fused = fused_compiled([j.netlist for j in group])
        _note_fusion(len(group), fused)
        qfaults: list[Fault] = []
        spans: list[tuple[int, int]] = []
        observe: list[str] = []
        for k, job in enumerate(group):
            start = len(qfaults)
            qfaults.extend(fused.qualify_faults(k, job.faults))
            spans.append((start, len(qfaults)))
            observe.extend(_qual(k, n) for n in job.observe)
        piv = fused.merge_values([j.pi_values for j in group])
        forced = fused.merge_values(
            [j.forced or {} for j in group]
        ) or None
        state = fused.merge_values(
            [j.initial_state or {} for j in group]
        ) or None
        res = fused.sequential_fault_detect(
            qfaults, piv, list(marks), observe, forced=forced,
            initial_state=state,
        )
        for i, job, (start, end) in zip(idxs, group, spans):
            out[i] = {
                f: res[qf]
                for f, qf in zip(job.faults, qfaults[start:end])
            }
    return out  # type: ignore[return-value]


def _serial_seq(job: SeqJob) -> dict[Fault, int | None]:
    from repro.gatelevel.kernel import compiled

    return compiled(job.netlist).sequential_fault_detect(
        job.faults, job.pi_values, list(job.checkpoints), job.observe,
        forced=job.forced, initial_state=job.initial_state,
    )


def bist_attribution_many(
    items: Sequence[tuple],
    cycles: int = 64,
    checkpoints: Sequence[int] | None = None,
    backend: str | None = None,
    batch: bool | None = None,
    collapse: bool | None = None,
) -> list[dict[Fault, tuple[int, int] | None]]:
    """Batched BIST first-detection attribution over many designs.

    ``items`` is a sequence of ``(hardware, sessions, faults)``
    triples; ``result[i]`` is byte-identical to
    ``bist_fault_attribution(hardware, sessions=…, faults=…)`` run
    serially.  On the kernel backend every design's current session
    free-runs in one fused packed pass per round; the interpreter
    backend (or ``batch`` off) falls back to per-design attribution.
    """
    from repro.gatelevel.bist_session import (
        _default_checkpoints,
        bist_fault_attribution,
        session_configuration,
    )
    from repro.gatelevel.fault_sim import resolve_backend
    from repro.gatelevel.structure import (
        collapse_map,
        record_collapse_metrics,
        resolve_collapse,
    )

    items = [(hw, [list(u) for u in sessions], list(faults))
             for hw, sessions, faults in items]
    if not items:
        return []
    backend = resolve_backend(backend)
    if resolve_collapse(collapse):
        cmaps = [collapse_map(hw.netlist) for hw, _s, _f in items]
        reps = [cm.representatives(f)
                for cm, (_hw, _s, f) in zip(cmaps, items)]
        if any(len(r) < len(f) for r, (_hw, _s, f) in zip(reps, items)):
            record_collapse_metrics(
                sum(len(f) for _hw, _s, f in items),
                sum(len(r) for r in reps),
            )
            res = bist_attribution_many(
                [(hw, s, r) for (hw, s, _f), r in zip(items, reps)],
                cycles=cycles, checkpoints=checkpoints, backend=backend,
                batch=batch, collapse=False,
            )
            return [cm.expand(r, f)
                    for cm, r, (_hw, _s, f) in zip(cmaps, res, items)]

    if not _use_fused(backend, resolve_batch(batch)) or len(items) == 1:
        return [
            bist_fault_attribution(
                hw, sessions=sessions, cycles=cycles, faults=faults,
                checkpoints=checkpoints, backend=backend, collapse=False,
            )
            for hw, sessions, faults in items
        ]

    marks = (sorted({int(c) for c in checkpoints})
             if checkpoints is not None
             else _default_checkpoints(cycles))
    configs = [
        [session_configuration(hw, units) for units in sessions]
        for hw, sessions, _f in items
    ]
    observes = [
        [net for bits in hw.signature_bit_nets().values() for net in bits]
        for hw, _s, _f in items
    ]
    results: list[dict[Fault, tuple[int, int] | None]] = [
        {f: None for f in faults} for _hw, _s, faults in items
    ]
    remaining = [list(faults) for _hw, _s, faults in items]
    max_sessions = max(len(cfgs) for cfgs in configs)
    for s in range(max_sessions):
        active = [
            i for i in range(len(items))
            if s < len(configs[i]) and remaining[i]
        ]
        if not active:
            break
        jobs = [
            SeqJob(items[i][0].netlist, remaining[i], configs[i][s],
                   marks, observes[i])
            for i in active
        ]
        det_list = sequential_detect_many(jobs, batch=True)
        for i, det in zip(active, det_list):
            still = []
            for f in remaining[i]:
                if det[f] is None:
                    still.append(f)
                else:
                    results[i][f] = (s, det[f])
            remaining[i] = still
    return results


# ---------------------------------------------------------------------------
# fused corpus coverage (genscale campaigns)


def random_coverage_many(
    netlists: Sequence[Netlist],
    n_patterns: int = 256,
    seed: int = 1,
    faults_list: Sequence[Sequence[Fault]] | None = None,
    sequence_length: int = 1,
    backend: str | None = None,
    shards: int | None = None,
    batch: bool | None = None,
    collapse: bool | None = None,
) -> list[float]:
    """Random-pattern coverage over a design corpus, fused per block.

    ``result[k]`` is byte-identical to
    :func:`repro.gatelevel.random_patterns.random_pattern_coverage`
    run on ``netlists[k]`` with the same arguments: each design draws
    from its own ``random.Random(seed)`` stream, blocks are 64 wide,
    survivors carry forward — only the kernel invocations fuse across
    the corpus.
    """
    import random

    from repro.gatelevel.faults import all_faults, coverage
    from repro.gatelevel.structure import (
        collapse_map,
        record_collapse_metrics,
        resolve_collapse,
    )

    netlists = list(netlists)
    if not netlists:
        return []
    if faults_list is None:
        faults_list = [all_faults(nl) for nl in netlists]
    faults_list = [list(f) for f in faults_list]
    rngs = [random.Random(seed) for _ in netlists]
    pis_list = [nl.inputs() for nl in netlists]
    work = [list(f) for f in faults_list]
    cmaps: list = [None] * len(netlists)
    if resolve_collapse(collapse):
        for k, nl in enumerate(netlists):
            cmap = collapse_map(nl)
            reps = cmap.representatives(work[k])
            if len(reps) < len(work[k]):
                record_collapse_metrics(len(work[k]), len(reps))
                work[k] = reps
                cmaps[k] = cmap
    detected: list[set] = [set() for _ in netlists]
    remaining = work
    done = 0
    while done < n_patterns and any(remaining):
        width = min(64, n_patterns - done)
        # Every design stays in the job list -- finished ones carry an
        # empty fault list and draw no patterns (their rng stream stops
        # exactly where the serial loop stops), so the member tuple is
        # stable across blocks and the corpus fuses exactly once
        # instead of re-fusing each survivor subset.
        jobs = []
        for k in range(len(netlists)):
            seq = [
                {pi: rngs[k].getrandbits(width) for pi in pis_list[k]}
                if remaining[k] else {}
                for _ in range(sequence_length)
            ]
            jobs.append(SimJob(netlists[k], remaining[k], seq,
                               width=width, drop_detected=True))
        res_list = fault_simulate_many(
            jobs, backend=backend, shards=shards, batch=batch,
            collapse=False,
        )
        for k, res in zip(range(len(netlists)), res_list):
            detected[k].update(f for f, c in res.items()
                               if c is not None)
            remaining[k] = [f for f, c in res.items() if c is None]
        done += width
    out: list[float] = []
    for k, faults in enumerate(faults_list):
        if cmaps[k] is not None:
            n_det = sum(1 for f in faults
                        if cmaps[k].rep(f) in detected[k])
        else:
            n_det = len(detected[k])
        out.append(coverage(n_det, len(faults)))
    return out
