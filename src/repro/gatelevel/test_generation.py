"""Deterministic test-set generation: PODEM with fault dropping.

The driver the surveyed flows assume exists downstream: generate a
compact stuck-at test set for a (scan-equipped) netlist by alternating
targeted PODEM with parallel fault simulation so each generated vector
drops every other fault it happens to detect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.gatelevel.atpg import combinational_atpg
from repro.gatelevel.faults import Fault, all_faults
from repro.gatelevel.fault_sim import fault_simulate
from repro.gatelevel.gates import Netlist


@dataclass
class TestSet:
    """A generated test set and its bookkeeping."""

    netlist_name: str
    vectors: list[dict[str, int]] = field(default_factory=list)
    #: the PODEM assignments before free inputs were zero-filled --
    #: these carry only what each test *requires*
    partial_vectors: list[dict[str, int]] = field(default_factory=list)
    detected: set[Fault] = field(default_factory=set)
    untestable: list[Fault] = field(default_factory=list)
    aborted: list[Fault] = field(default_factory=list)
    total_faults: int = 0

    @property
    def coverage(self) -> float:
        if not self.total_faults:
            return 1.0
        return len(self.detected) / self.total_faults

    @property
    def test_efficiency(self) -> float:
        if not self.total_faults:
            return 1.0
        return (
            len(self.detected) + len(self.untestable)
        ) / self.total_faults


def _complete_vector(netlist: Netlist, partial: dict[str, int],
                     fill: int = 0) -> dict[str, int]:
    """PODEM leaves unassigned inputs free; pin them for simulation."""
    vec = {pi: fill for pi in netlist.inputs()}
    for g in netlist.scan_dffs():
        vec.setdefault(g.name, fill)
    vec.update(partial)
    return vec


def generate_tests(
    netlist: Netlist,
    faults: Sequence[Fault] | None = None,
    backtrack_limit: int = 600,
    backend: str | None = None,
) -> TestSet:
    """Generate a fault-dropping test set for the full-scan view.

    Scan flip-flop values in each vector are part of the test (loaded
    through the chain by :mod:`repro.gatelevel.scan_chain`).
    """
    if faults is None:
        faults = all_faults(netlist)
    result = TestSet(netlist.name, total_faults=len(faults))
    remaining = list(faults)
    scan_names = {g.name for g in netlist.scan_dffs()}

    while remaining:
        target = remaining[0]
        res = combinational_atpg(
            netlist, target, backtrack_limit=backtrack_limit
        )
        if not res.detected:
            remaining.pop(0)
            (result.aborted if res.aborted else result.untestable).append(
                target
            )
            continue
        vec = _complete_vector(netlist, res.test)
        result.vectors.append(vec)
        result.partial_vectors.append(dict(res.test))
        # Fault-drop: one capture cycle with the vector's PI and scan
        # state applied; scan FFs observe.
        piv = {k: v for k, v in vec.items() if k not in scan_names}
        state = {k: v for k, v in vec.items() if k in scan_names}
        dropped = fault_simulate(
            netlist, remaining, [piv], width=1, initial_state=state,
            backend=backend,
        )
        survivors = []
        for f in remaining:
            if dropped.get(f):
                result.detected.add(f)
            else:
                survivors.append(f)
        if target not in result.detected:
            # Defensive: PODEM said detected but the completed vector
            # missed it (free-input fill interaction); drop explicitly
            # to guarantee termination and flag via coverage.
            survivors = [f for f in survivors if f != target]
            result.aborted.append(target)
        remaining = survivors
    return result
