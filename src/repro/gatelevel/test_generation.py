"""Deterministic test-set generation: PODEM with fault dropping.

The driver the surveyed flows assume exists downstream: generate a
compact stuck-at test set for a (scan-equipped) netlist by alternating
targeted PODEM with parallel fault simulation so each generated vector
drops every other fault it happens to detect.

Three acceleration layers, each exactly-equivalent to the serial
reference pipeline (property-tested in
``tests/test_atpg_equivalence.py``):

* **Random-pattern pre-drop** — before any fault is targeted with
  PODEM, ``predrop`` kernel-backed pseudorandom patterns are
  fault-simulated in bulk (:meth:`CompiledNetlist.detect_masks`); the
  easy faults fall out of deterministic generation entirely, so PODEM
  only runs on the random-resistant residue (the classical
  random-then-deterministic staging).  Detecting random vectors join
  ``TestSet.vectors`` with full bookkeeping; set ``predrop=0`` (or
  ``REPRO_ATPG_PREDROP=0``) for benches that measure raw PODEM search.
* **Event-driven PODEM** — ``atpg_backend`` selects the incremental
  engine of :func:`repro.gatelevel.atpg.combinational_atpg`
  (``REPRO_ATPG_BACKEND``).
* **Fault-parallel generation** — ``shards`` (``REPRO_ATPG_SHARDS``)
  spreads the residue's PODEM searches across a process pool; each
  worker returns per-fault results and the parent replays them in
  canonical fault order with kernel fault-dropping, so the final
  :class:`TestSet` is byte-identical regardless of shard count (a
  per-fault PODEM search depends only on the netlist and the fault,
  never on which faults were dropped before it).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.flow.metrics import record_metric
from repro.gatelevel.atpg import ATPGResult, combinational_atpg
from repro.gatelevel.faults import Fault, all_faults
from repro.gatelevel.fault_sim import (
    _observable_difference,
    fault_simulate,
    resolve_backend,
)
from repro.gatelevel.gates import Netlist
from repro.gatelevel.simulate import parallel_simulate
from repro.gatelevel.structure import (
    collapse_map,
    record_collapse_metrics,
    resolve_collapse,
    resolve_guidance,
)

PREDROP_ENV = "REPRO_ATPG_PREDROP"
SHARDS_ENV = "REPRO_ATPG_SHARDS"
#: default random patterns simulated before deterministic generation
DEFAULT_PREDROP = 64
#: below this many residue faults a process pool costs more than it saves
MIN_FAULTS_PER_SHARD = 8


def resolve_predrop(predrop: int | None = None) -> int:
    """Pre-drop pattern count: explicit arg > env > default.

    Validated through :mod:`repro.knobs`; a malformed value raises a
    one-line actionable error in the caller's process.
    """
    from repro.knobs import coerce_int, env_int

    if predrop is None:
        return env_int(PREDROP_ENV, DEFAULT_PREDROP, minimum=0)
    return coerce_int(predrop, "predrop", minimum=0)


def resolve_atpg_shards(shards: int | None = None) -> int:
    from repro.knobs import coerce_int, env_int

    if shards is None:
        return env_int(SHARDS_ENV, 1, minimum=1)
    return coerce_int(shards, "shards", minimum=1)


@dataclass
class TestSet:
    """A generated test set and its bookkeeping."""

    netlist_name: str
    vectors: list[dict[str, int]] = field(default_factory=list)
    #: the PODEM assignments before free inputs were zero-filled --
    #: these carry only what each test *requires* (pre-drop random
    #: vectors require every bit and appear fully specified)
    partial_vectors: list[dict[str, int]] = field(default_factory=list)
    detected: set[Fault] = field(default_factory=set)
    untestable: list[Fault] = field(default_factory=list)
    aborted: list[Fault] = field(default_factory=list)
    total_faults: int = 0

    @property
    def coverage(self) -> float:
        if not self.total_faults:
            return 1.0
        return len(self.detected) / self.total_faults

    @property
    def test_efficiency(self) -> float:
        if not self.total_faults:
            return 1.0
        return (
            len(self.detected) + len(self.untestable)
        ) / self.total_faults


def _complete_vector(netlist: Netlist, partial: dict[str, int],
                     fill: int = 0) -> dict[str, int]:
    """PODEM leaves unassigned inputs free; pin them for simulation."""
    vec = {pi: fill for pi in netlist.inputs()}
    for g in netlist.scan_dffs():
        vec.setdefault(g.name, fill)
    vec.update(partial)
    return vec


# ---------------------------------------------------------------------------
# random-pattern pre-drop

def _detect_masks(
    netlist: Netlist,
    faults: Sequence[Fault],
    piv: Mapping[str, int],
    state: Mapping[str, int],
    width: int,
    backend: str | None,
) -> dict[Fault, int]:
    """Per-fault packed detection masks for one capture cycle."""
    if resolve_backend(backend) == "kernel":
        from repro.gatelevel.kernel import compiled

        return compiled(netlist).detect_masks(
            faults, piv, state, width=width
        )
    order = netlist.topo_order()
    mask = (1 << width) - 1
    gvals, gnxt = parallel_simulate(
        netlist, piv, state, width=width, order=order
    )
    out: dict[Fault, int] = {}
    for f in faults:
        if f.net not in netlist.gates:
            out[f] = 0
            continue
        forced = {f.net: 0 if f.stuck_at == 0 else mask}
        bvals, bnxt = parallel_simulate(
            netlist, piv, state, width=width, order=order, forced=forced
        )
        out[f] = _observable_difference(netlist, gvals, gnxt, bvals, bnxt)
    return out


def _random_predrop(
    netlist: Netlist,
    remaining: list[Fault],
    n_patterns: int,
    seed: int,
    result: TestSet,
    backend: str | None,
) -> list[Fault]:
    """Detect the easy faults with pseudorandom patterns in bulk.

    Patterns are packed 64 wide over the primary inputs *and* the scan
    flip-flops (the chain loads random state).  Each fault is
    attributed to the first pattern detecting it; only patterns that
    detect at least one new fault are kept as vectors, in pattern
    order, so the resulting bookkeeping is exactly what per-vector
    serial fault-dropping would produce.  Returns the random-resistant
    residue.
    """
    rng = random.Random(seed)
    pis = netlist.inputs()
    scans = [g.name for g in netlist.scan_dffs()]
    done = 0
    dropped = 0
    while done < n_patterns and remaining:
        width = min(64, n_patterns - done)
        piv = {pi: rng.getrandbits(width) for pi in pis}
        state = {s: rng.getrandbits(width) for s in scans}
        masks = _detect_masks(netlist, remaining, piv, state, width,
                              backend)
        by_pattern: dict[int, list[Fault]] = {}
        survivors: list[Fault] = []
        for f in remaining:
            m = masks.get(f, 0)
            if m:
                first = (m & -m).bit_length() - 1
                by_pattern.setdefault(first, []).append(f)
            else:
                survivors.append(f)
        for p in sorted(by_pattern):
            vec = {pi: (piv[pi] >> p) & 1 for pi in pis}
            vec.update({s: (state[s] >> p) & 1 for s in scans})
            result.vectors.append(vec)
            result.partial_vectors.append(dict(vec))
            result.detected.update(by_pattern[p])
            dropped += len(by_pattern[p])
        remaining = survivors
        done += width
    if dropped:
        record_metric("predrop_detected", dropped)
    return remaining


# ---------------------------------------------------------------------------
# fault-parallel PODEM

def _podem_worker(args) -> list[ATPGResult]:
    (shard_index, digest, netlist, chunk, backtrack_limit,
     atpg_backend, guidance) = args
    from repro.flow import chaos
    from repro.gatelevel.kernel import resolve_netlist
    from repro.gatelevel.structure import structural_analysis

    chaos.checkpoint(f"podem_shard:{shard_index}")
    netlist = resolve_netlist(digest, netlist)
    # The pickle transport recomputes the structural analysis locally
    # (deterministic, hash-cached across tasks in a warm worker).
    structure = structural_analysis(netlist) if guidance else None
    return [
        combinational_atpg(
            netlist, f, backtrack_limit=backtrack_limit,
            backend=atpg_backend, guidance=guidance,
            structure=structure,
        )
        for f in chunk
    ]


def _podem_worker_shm(args) -> list[ATPGResult]:
    (shard_index, digest, net_ref, fault_block, backtrack_limit,
     atpg_backend, guidance, scoap_ref) = args
    from repro.flow import chaos, shm
    from repro.gatelevel.fault_sim import _decode_fault_block
    from repro.gatelevel.kernel import resolve_netlist
    from repro.gatelevel.structure import resolve_structure

    chaos.checkpoint(f"podem_shard:{shard_index}")
    netlist = resolve_netlist(
        digest, lambda: shm.attach_bytes(net_ref.handle)
    )
    chunk = (_decode_fault_block(netlist, fault_block)
             if isinstance(fault_block, tuple)
             else shm.fetch_object(fault_block))
    structure = None
    if guidance:
        # The parent published its packed SCOAP rows once on the
        # payload plane; a warm worker resolves them from its digest
        # cache without touching the segment again.
        structure = resolve_structure(
            digest,
            (lambda: shm.attach_array(scoap_ref))
            if scoap_ref is not None else None,
            netlist,
        )
    return [
        combinational_atpg(
            netlist, f, backtrack_limit=backtrack_limit,
            backend=atpg_backend, guidance=guidance,
            structure=structure,
        )
        for f in chunk
    ]


def _parallel_podem(
    netlist: Netlist,
    faults: Sequence[Fault],
    backtrack_limit: int,
    atpg_backend: str | None,
    shards: int,
    guidance: bool = False,
) -> dict[Fault, ATPGResult] | None:
    """Speculative per-fault PODEM across a process pool.

    Every residue fault is searched, including ones a later replay
    will drop without using the result -- the speculation is the price
    of parallelism, and it is exact: a PODEM search depends only on
    (netlist, fault, backtrack limit), so the replayed merge is
    byte-identical to the serial loop.

    Payloads follow ``REPRO_SHARD_TRANSPORT``: under ``shm`` the
    netlist body and the fault index array are published once in shared
    memory (names + bounds per shard); under ``pickle`` each shard
    ships the whole netlist, the historical baseline.

    Resilient via :func:`repro.flow.resilience.run_sharded`: a crashed
    or killed shard is retried once in a fresh pool, then its chunk is
    searched in-process -- same results, fallback recorded in flow
    metrics.  Returns None only when sharding is not worthwhile.
    """
    from repro.flow import shm
    from repro.flow.resilience import run_sharded
    from repro.gatelevel import kernel
    from repro.gatelevel.fault_sim import (
        _encode_fault_block,
        _record_payload_bytes,
        _record_shard_info,
    )

    shards = min(shards, max(1, len(faults) // MIN_FAULTS_PER_SHARD))
    if shards <= 1:
        return None
    bounds = [round(i * len(faults) / shards) for i in range(shards + 1)]
    chunks = [
        list(faults[bounds[i]:bounds[i + 1]]) for i in range(shards)
    ]
    digest, blob = kernel.netlist_blob(netlist)
    if shm.resolve_transport() == "shm":
        with shm.PayloadPlane() as plane:
            net_ref = plane.publish_object(None, blob=blob,
                                           digest=digest)
            if kernel.have_kernel():
                arr, extras = _encode_fault_block(netlist, list(faults))
                fh = plane.publish_array(arr)
                blocks = [
                    (fh, bounds[i], bounds[i + 1],
                     {p: f for p, f in extras.items()
                      if bounds[i] <= p < bounds[i + 1]})
                    for i in range(shards)
                ]
            else:
                blocks = [plane.publish_object(c) for c in chunks]
            scoap_ref = None
            if guidance and kernel.have_kernel():
                from repro.gatelevel.structure import (
                    pack_scoap,
                    structural_analysis,
                )

                scoap_ref = plane.publish_array(
                    pack_scoap(structural_analysis(netlist), netlist)
                )
            args = [(i, digest, net_ref, blocks[i], backtrack_limit,
                     atpg_backend, guidance, scoap_ref)
                    for i in range(shards)]
            _record_payload_bytes(args, plane)
            results, info = run_sharded(
                _podem_worker_shm, args, max_workers=shards,
                label="podem_shard",
            )
    else:
        args = [(i, digest, netlist, chunk, backtrack_limit,
                 atpg_backend, guidance)
                for i, chunk in enumerate(chunks)]
        _record_payload_bytes(args, None)
        results, info = run_sharded(
            _podem_worker, args, max_workers=shards,
            label="podem_shard",
        )
    out: dict[Fault, ATPGResult] = {}
    for res_list in results:
        for res in res_list:
            out[res.fault] = res
    _record_shard_info(info)
    return out


# ---------------------------------------------------------------------------
# the driver

def generate_tests(
    netlist: Netlist,
    faults: Sequence[Fault] | None = None,
    backtrack_limit: int = 600,
    backend: str | None = None,
    atpg_backend: str | None = None,
    predrop: int | None = None,
    predrop_seed: int = 1,
    shards: int | None = None,
    collapse: bool | None = None,
    guidance: bool | None = None,
) -> TestSet:
    """Generate a fault-dropping test set for the full-scan view.

    Scan flip-flop values in each vector are part of the test (loaded
    through the chain by :mod:`repro.gatelevel.scan_chain`).

    ``backend`` selects the fault-simulation engine, ``atpg_backend``
    the PODEM engine, ``predrop`` the number of random patterns
    simulated before deterministic generation (0 disables), and
    ``shards`` the process-pool width for the residue's PODEM
    searches; every knob also has an environment-variable default
    (``REPRO_FAULTSIM_BACKEND``, ``REPRO_ATPG_BACKEND``,
    ``REPRO_ATPG_PREDROP``, ``REPRO_ATPG_SHARDS``).  The generated
    test set is identical for any backend/shard combination.

    ``collapse`` (``REPRO_FAULT_COLLAPSE``, default on) runs the whole
    pipeline on one representative per structural equivalence class
    and expands the classification at the end: equivalent faults share
    every detection set, so the expanded *detected* and *untestable*
    sets -- and hence coverage and test efficiency -- equal a
    collapse-off run, as long as no search aborts (PODEM's complete
    search is order-independent; an abort is the one
    backtrack-limit-dependent outcome).  The vector *list* may differ.
    ``guidance`` (``REPRO_ATPG_GUIDANCE``, default on) targets
    random-resistant faults hardest-first by SCOAP difficulty and
    steers each backtrace toward the easiest-to-set candidate.

    While a flow metrics collector is active the run records
    ``podem_backtracks`` / ``podem_objectives`` totals over the
    *consumed* searches (identical for serial and sharded runs) and
    the ``faults_total`` / ``faults_representative`` /
    ``collapse_ratio`` trio when collapsing reduced the universe.
    """
    if faults is None:
        faults = all_faults(netlist)
    if resolve_collapse(collapse):
        cmap = collapse_map(netlist)
        reps = cmap.representatives(faults)
        if len(reps) < len(faults):
            record_collapse_metrics(len(faults), len(reps))
            ts = generate_tests(
                netlist, reps, backtrack_limit=backtrack_limit,
                backend=backend, atpg_backend=atpg_backend,
                predrop=predrop, predrop_seed=predrop_seed,
                shards=shards, collapse=False, guidance=guidance,
            )
            return _expand_testset(ts, cmap, faults)

    result = TestSet(netlist.name, total_faults=len(faults))
    remaining = list(faults)
    scan_names = {g.name for g in netlist.scan_dffs()}

    predrop = resolve_predrop(predrop)
    if predrop and remaining:
        remaining = _random_predrop(
            netlist, remaining, predrop, predrop_seed, result, backend
        )

    guidance = resolve_guidance(guidance)
    structure = None
    if guidance and remaining:
        from repro.gatelevel.structure import (
            atpg_fault_order,
            structural_analysis,
        )

        structure = structural_analysis(netlist)
        # Hardest-first: random-resistant faults get targeted while
        # the easy tail still falls out of fault dropping for free.
        remaining = atpg_fault_order(remaining, structure)

    shards = resolve_atpg_shards(shards)
    searched: dict[Fault, ATPGResult] | None = None
    if shards > 1 and len(remaining) >= 2 * MIN_FAULTS_PER_SHARD:
        searched = _parallel_podem(
            netlist, remaining, backtrack_limit, atpg_backend, shards,
            guidance=guidance,
        )

    backtracks = 0
    objectives = 0
    idx = 0  # cursor past classified faults -- no O(n^2) pop(0)
    while idx < len(remaining):
        target = remaining[idx]
        if searched is not None:
            res = searched[target]
        else:
            res = combinational_atpg(
                netlist, target, backtrack_limit=backtrack_limit,
                backend=atpg_backend, guidance=guidance,
                structure=structure,
            )
        # Count only consumed searches, so the totals match between a
        # serial run and a sharded run's speculative search + replay.
        backtracks += res.backtracks
        objectives += res.decisions
        if not res.detected:
            idx += 1
            (result.aborted if res.aborted else result.untestable).append(
                target
            )
            continue
        vec = _complete_vector(netlist, res.test)
        result.vectors.append(vec)
        result.partial_vectors.append(dict(res.test))
        # Fault-drop: one capture cycle with the vector's PI and scan
        # state applied; scan FFs observe.
        piv = {k: v for k, v in vec.items() if k not in scan_names}
        state = {k: v for k, v in vec.items() if k in scan_names}
        active = remaining[idx:]
        dropped = fault_simulate(
            netlist, active, [piv], width=1, initial_state=state,
            backend=backend, collapse=False,
        )
        survivors = []
        for f in active:
            if dropped.get(f):
                result.detected.add(f)
            else:
                survivors.append(f)
        if survivors and survivors[0] == target:
            # Defensive: PODEM said detected but the completed vector
            # missed it (free-input fill interaction); classify the
            # target exactly once -- as aborted -- and drop it from the
            # survivors (it heads the list) to guarantee termination.
            survivors.pop(0)
            result.aborted.append(target)
        remaining = survivors
        idx = 0
    if backtracks or objectives:
        record_metric("podem_backtracks", backtracks)
        record_metric("podem_objectives", objectives)
    return result


def _expand_testset(
    ts: TestSet, cmap, faults: Sequence[Fault]
) -> TestSet:
    """Representative classification -> full-universe classification.

    Every class member inherits its representative's outcome (they are
    machine-identical), and the caller's fault order is preserved in
    the untestable/aborted lists.
    """
    untestable = set(ts.untestable)
    aborted = set(ts.aborted)
    out = TestSet(
        ts.netlist_name,
        vectors=ts.vectors,
        partial_vectors=ts.partial_vectors,
        total_faults=len(faults),
    )
    for f in faults:
        r = cmap.rep(f)
        if r in ts.detected:
            out.detected.add(f)
        elif r in untestable:
            out.untestable.append(f)
        elif r in aborted:
            out.aborted.append(f)
    return out
