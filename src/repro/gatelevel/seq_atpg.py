"""Sequential ATPG by time-frame expansion.

The netlist is unrolled for k frames: frame *t*'s flip-flop outputs are
driven by frame *t-1*'s D-inputs; frame 0's unscanned state is unknown
(X).  Scanned flip-flops are control/observation points in *every*
frame (the scan chain loads and unloads between captures).  The same
stuck-at fault is injected in every frame.

Frames grow from 1 until the fault is detected or the frame/backtrack
budgets are exhausted; the reported ``effort`` (decisions + backtracks,
summed over attempts) is the quantity that "grows exponentially with
the length of cycles in the S-graph, and linearly with the sequential
depth" (survey section 3.1) -- calibrated in ``bench_atpg_cost``.
"""

from __future__ import annotations

from dataclasses import dataclass
from weakref import WeakKeyDictionary

from repro.gatelevel.atpg import combinational_atpg
from repro.gatelevel.faults import Fault
from repro.gatelevel.gates import Netlist


def unroll(netlist: Netlist, frames: int) -> tuple[Netlist, dict[int, dict[str, str]]]:
    """Time-frame expansion.

    Returns the unrolled combinational netlist and, per frame, the name
    map ``original net -> frame net``.  Unscanned frame-0 state nets
    become plain (uncontrollable) ``dff`` sources; scanned FFs become
    per-frame ``dff`` sources marked scan (control points), and their
    D-input nets are added as observation outputs for every frame.
    """
    out = Netlist(f"{netlist.name}@x{frames}")
    maps: dict[int, dict[str, str]] = {}
    prev_d: dict[str, str] = {}
    for t in range(frames):
        m: dict[str, str] = {}
        for gate in netlist:
            m[gate.name] = f"f{t}_{gate.name}"
        maps[t] = m
        for gate in netlist:
            name = m[gate.name]
            if gate.kind == "dff":
                if gate.scan:
                    out.add(name, "dff", f"f{t}_unused_{gate.name}",
                            scan=True)
                    # Give the dangling D a driver so validate passes.
                    out.add(f"f{t}_unused_{gate.name}", "const0")
                elif t == 0:
                    out.add(name, "dff", f"f0_unused_{gate.name}")
                    out.add(f"f0_unused_{gate.name}", "const0")
                else:
                    # State comes from the previous frame's D input.
                    out.add(name, "buf", prev_d[gate.name])
            elif gate.kind == "input":
                out.add(name, "input")
            else:
                out.add(name, gate.kind,
                        *[m[i] for i in gate.inputs], scan=gate.scan)
        next_d = {}
        for gate in netlist.dffs():
            next_d[gate.name] = m[gate.inputs[0]]
            if gate.scan:
                out.add_output(m[gate.inputs[0]])
        prev_d = next_d
        for po in netlist.outputs:
            out.add_output(m[po])
    out.validate()
    return out, maps


_UNROLL_CACHE: "WeakKeyDictionary[Netlist, dict]" = WeakKeyDictionary()


def unroll_cached(
    netlist: Netlist, frames: int
) -> tuple[Netlist, dict[int, dict[str, str]]]:
    """Memoized :func:`unroll`.

    Sequential ATPG re-unrolls the same netlist for every fault and
    every frame count; the unrolled good-machine structure (and its
    cached topo order) is shared instead.  Keyed by the netlist's
    mutation counter so in-place edits invalidate.
    """
    per_netlist = _UNROLL_CACHE.setdefault(netlist, {})
    key = (netlist.version, frames)
    hit = per_netlist.get(key)
    if hit is None:
        if any(k[0] != netlist.version for k in per_netlist):
            per_netlist.clear()
        hit = per_netlist[key] = unroll(netlist, frames)
    return hit


@dataclass
class SequentialATPGResult:
    """Aggregate over the frame-growing attempts."""

    fault: Fault
    detected: bool
    aborted: bool
    frames: int
    effort: int
    backtracks: int


def sequential_atpg(
    netlist: Netlist,
    fault: Fault,
    max_frames: int = 8,
    backtrack_limit: int = 400,
    backend: str | None = None,
) -> SequentialATPGResult:
    """Try to detect ``fault`` with growing time-frame counts.

    ``backend`` selects the PODEM search engine
    (:data:`repro.gatelevel.atpg.BACKEND_ENV`); both engines report
    identical detections and effort.
    """
    total_effort = 0
    total_backtracks = 0
    aborted = False
    for frames in range(1, max_frames + 1):
        unrolled, maps = unroll_cached(netlist, frames)
        forced_extra = {
            maps[t][fault.net]: fault.stuck_at for t in range(frames)
        }
        # The canonical fault site is the last frame's copy.
        f = Fault(maps[frames - 1][fault.net], fault.stuck_at)
        del forced_extra[f.net]
        res = combinational_atpg(
            unrolled, f, backtrack_limit=backtrack_limit,
            forced_extra=forced_extra, backend=backend,
        )
        total_effort += res.effort
        total_backtracks += res.backtracks
        aborted = res.aborted
        if res.detected:
            return SequentialATPGResult(
                fault, True, False, frames, total_effort, total_backtracks
            )
    return SequentialATPGResult(
        fault, False, aborted, max_frames, total_effort, total_backtracks
    )
