"""Compiled bit-parallel fault-simulation kernel.

The reference interpreter (:mod:`repro.gatelevel.simulate`) re-walks a
name-keyed gate dict per gate, per fault, per cycle.  This module
compiles a :class:`~repro.gatelevel.gates.Netlist` **once** into a flat
integer-indexed program and evaluates it over numpy ``uint64`` words:

* **Levelized instruction stream** — gates are indexed in topological
  order and grouped by ``(level, opcode)``; one numpy call evaluates
  every same-kind gate of a level (``V[dst] = V[a] & V[b]``), so the
  per-gate Python overhead of the interpreter disappears.
* **Wide words** — net values are ``(n_words,)`` vectors of ``uint64``,
  simulating ``width = 64 * n_words`` packed patterns per pass instead
  of capping at 64.
* **Cone-restricted faulty evaluation** — for each fault site the
  kernel precomputes the transitive fanout closure (through DFFs, so
  multi-cycle propagation stays sound).  The faulty machine re-evaluates
  only the gates in that closure and splices good-machine values
  everywhere else; a scratch/restore discipline keeps the per-fault cost
  proportional to the cone, not the netlist.
* **Fault-batched blocks** — fault simulation packs ``FAULT_BATCH``
  faulty machines side by side along the word axis (fault *b* owns
  columns ``b*n_words:(b+1)*n_words``) and evaluates the *union* of
  their cones in one pass, re-forcing each site inside its own block
  when its level completes.  Blocks are column-disjoint, and a row
  outside fault *b*'s cone recomputes to good-machine values in block
  *b* (its inputs are good there), so per-block detection against the
  union's observation rows is exact.  This amortises the per-call numpy
  overhead that would otherwise dominate on per-fault-sized arrays.

Results are bit-identical to the interpreter (property-tested in
``tests/test_kernel_equivalence.py``): stuck-at forcing applies after a
net evaluates, scan flip-flops observe each cycle and reload from the
good machine, and a fault on a scan FF keeps corrupting its own state.

The kernel degrades gracefully: when numpy is unavailable,
:func:`have_kernel` is False and callers fall back to the interpreter.
"""

from __future__ import annotations

import hashlib
import pickle
from collections import OrderedDict
from typing import Mapping, Sequence
from weakref import WeakKeyDictionary

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

from repro.gatelevel.faults import Fault
from repro.gatelevel.gates import COMBINATIONAL_KINDS, Netlist, NetlistError


def have_kernel() -> bool:
    """True when the compiled kernel can run (numpy importable)."""
    return _np is not None


# Opcodes.  Sources first, then unary, then the binary/ternary ops.
OP_INPUT, OP_CONST0, OP_CONST1, OP_DFF = 0, 1, 2, 3
OP_BUF, OP_NOT = 4, 5
OP_AND, OP_OR, OP_NAND, OP_NOR, OP_XOR, OP_XNOR, OP_MUX = 6, 7, 8, 9, 10, 11, 12

_OPCODE = {
    "input": OP_INPUT, "const0": OP_CONST0, "const1": OP_CONST1,
    "dff": OP_DFF, "buf": OP_BUF, "not": OP_NOT, "and": OP_AND,
    "or": OP_OR, "nand": OP_NAND, "nor": OP_NOR, "xor": OP_XOR,
    "xnor": OP_XNOR, "mux": OP_MUX,
}
_MASKED_OPS = frozenset({OP_NOT, OP_NAND, OP_NOR, OP_XNOR})


def _n_words(width: int) -> int:
    return (width + 63) // 64


#: faulty machines evaluated side by side per batched pass
FAULT_BATCH = 32

#: packed columns per fault-parallel *sequential* pass (column 0 is the
#: golden machine, so each pass carries ``SEQ_FAULT_COLUMNS - 1`` faults)
SEQ_FAULT_COLUMNS = 256


class _FaultBatch:
    """Up to :data:`FAULT_BATCH` faulty machines sharing one pass.

    Fault *b* owns word columns ``b*nw:(b+1)*nw``; ``levels`` is the
    union-of-cones program grouped by level, each with the site
    re-forcings to apply in their blocks once that level completes.
    """

    __slots__ = ("faults", "sites", "forced", "site_dff", "keep",
                 "levels", "obs_out", "obs_scan", "state", "alive",
                 "size")

    def __init__(self, faults, sites, forced, site_dff, keep, levels,
                 obs_out, obs_scan, state) -> None:
        self.faults = faults
        self.sites = sites
        self.forced = forced          # per fault: word vector to force
        self.site_dff = site_dff      # per fault: DFF pos of site, or None
        self.keep = keep              # per fault: scan rows reloading good
        self.levels = levels          # [(instructions, site fixes)]
        self.obs_out = obs_out        # union observation: output rows
        self.obs_scan = obs_scan      # union observation: scan DFF pos
        self.state = state            # (n_dffs, size*nw) faulty states
        self.alive = [True] * len(faults)
        self.size = len(faults)


class _Cone:
    """Per-fault-site restricted program: the site's fanout closure."""

    __slots__ = ("site", "program", "touched", "obs_out", "obs_scan",
                 "site_dff_pos")

    def __init__(self, site: int, program: list, touched, obs_out,
                 obs_scan, site_dff_pos: int | None) -> None:
        self.site = site
        self.program = program        # [(op, dst, a, b, c)] in level order
        self.touched = touched        # comb gate rows the faulty eval writes
        self.obs_out = obs_out        # output rows that can differ
        self.obs_scan = obs_scan      # scan-DFF state rows that can differ
        self.site_dff_pos = site_dff_pos


class CompiledNetlist:
    """A :class:`Netlist` levelized into a flat numpy program."""

    def __init__(self, netlist: Netlist) -> None:
        if _np is None:
            raise NetlistError("compiled kernel requires numpy")
        # Fail on malformed structure here, with a NetlistError naming
        # the offending net, rather than as a numpy shape error three
        # layers down in the levelized program.
        netlist.validate()
        self.netlist = netlist
        order = netlist.topo_order()
        levels = netlist.levels()
        self.names: list[str] = list(order)
        self.index: dict[str, int] = {n: i for i, n in enumerate(order)}
        n = len(order)
        self.n_gates = n

        opcode = _np.zeros(n, dtype=_np.uint8)
        fanin = _np.zeros((n, 3), dtype=_np.int64)
        level = _np.zeros(n, dtype=_np.int64)
        input_rows: list[int] = []
        const0_rows: list[int] = []
        const1_rows: list[int] = []
        dff_rows: list[int] = []
        dff_d_rows: list[int] = []
        scan_flags: list[bool] = []
        for i, name in enumerate(order):
            g = netlist.gate(name)
            op = _OPCODE[g.kind]
            opcode[i] = op
            level[i] = levels[name]
            for j, src in enumerate(g.inputs):
                fanin[i, j] = self.index[src]
            if op == OP_INPUT:
                input_rows.append(i)
            elif op == OP_CONST0:
                const0_rows.append(i)
            elif op == OP_CONST1:
                const1_rows.append(i)
            elif op == OP_DFF:
                dff_rows.append(i)
                dff_d_rows.append(self.index[g.inputs[0]])
                scan_flags.append(g.scan)
        self.opcode = opcode
        self.fanin = fanin
        self.level = level
        self.input_rows = _np.array(input_rows, dtype=_np.int64)
        self.input_names = [order[i] for i in input_rows]
        self.const0_rows = _np.array(const0_rows, dtype=_np.int64)
        self.const1_rows = _np.array(const1_rows, dtype=_np.int64)
        self.dff_rows = _np.array(dff_rows, dtype=_np.int64)
        self.dff_names = [order[i] for i in dff_rows]
        self.dff_d_rows = _np.array(dff_d_rows, dtype=_np.int64)
        self.dff_pos = {row: pos for pos, row in enumerate(dff_rows)}
        self.scan_pos = _np.array(
            [pos for pos, s in enumerate(scan_flags) if s],
            dtype=_np.int64,
        )
        self.output_rows = _np.array(
            [self.index[o] for o in netlist.outputs], dtype=_np.int64
        )

        # The levelized instruction stream: gates grouped by
        # (level, opcode), indices ascending within a group.
        groups: dict[tuple[int, int], list[int]] = {}
        for i in range(n):
            op = int(opcode[i])
            if op >= OP_BUF:
                groups.setdefault((int(level[i]), op), []).append(i)
        self.program: list[tuple] = []
        for (lvl, op), rows in sorted(groups.items()):
            dst = _np.array(rows, dtype=_np.int64)
            a = fanin[dst, 0]
            b = fanin[dst, 1] if op >= OP_AND else None
            c = fanin[dst, 2] if op == OP_MUX else None
            self.program.append((op, dst, a, b, c))

        # Fanout adjacency (a DFF "consumes" its D input, which folds
        # the cross-cycle edge D -> state into the closure).
        consumers: list[list[int]] = [[] for _ in range(n)]
        for i, name in enumerate(order):
            g = netlist.gate(name)
            for src in g.inputs:
                consumers[self.index[src]].append(i)
        self._consumers = consumers
        self._cones: dict[int, _Cone] = {}
        self._level_program_cache: list[tuple[int, list]] | None = None

    # ------------------------------------------------------------------
    # word packing

    def words_from_int(self, value: int, width: int):
        """Packed Python int -> little-endian ``uint64`` word vector."""
        nw = _n_words(width)
        value &= (1 << width) - 1
        return _np.frombuffer(
            value.to_bytes(nw * 8, "little"), dtype="<u8"
        ).astype(_np.uint64)

    @staticmethod
    def int_from_words(words) -> int:
        """Inverse of :meth:`words_from_int`."""
        return int.from_bytes(words.astype("<u8").tobytes(), "little")

    def _mask_words(self, width: int):
        nw = _n_words(width)
        mask = _np.full(nw, _np.uint64(0xFFFFFFFFFFFFFFFF))
        top = width - 64 * (nw - 1)
        if top < 64:
            mask[-1] = _np.uint64((1 << top) - 1)
        return mask

    def _pi_matrix(self, pi_values: Mapping[str, int], width: int):
        m = _np.zeros((len(self.input_names), _n_words(width)),
                      dtype=_np.uint64)
        for k, name in enumerate(self.input_names):
            v = pi_values.get(name, 0)
            if v:
                m[k] = self.words_from_int(v, width)
        return m

    def pack_pi_sequence(self, pi_sequence, width: int):
        """``pi_sequence`` packed as one ``(cycles, inputs, n_words)``
        ``uint64`` array -- the shard-dispatch payload format.  Row *c*
        is exactly ``self._pi_matrix(pi_sequence[c], width)``, so a
        simulation fed the packed form is bit-identical to one packing
        per cycle."""
        nw = _n_words(width)
        if not pi_sequence:
            return _np.zeros((0, len(self.input_names), nw),
                             dtype=_np.uint64)
        return _np.stack(
            [self._pi_matrix(piv, width) for piv in pi_sequence]
        )

    def _state_matrix(self, state: Mapping[str, int] | None, width: int):
        m = _np.zeros((len(self.dff_names), _n_words(width)),
                      dtype=_np.uint64)
        if state:
            for pos, name in enumerate(self.dff_names):
                v = state.get(name, 0)
                if v:
                    m[pos] = self.words_from_int(v, width)
        return m

    # ------------------------------------------------------------------
    # evaluation

    def _run_program(self, V, program, mask) -> None:
        for op, dst, a, b, c in program:
            if op == OP_BUF:
                V[dst] = V[a]
            elif op == OP_NOT:
                V[dst] = ~V[a] & mask
            elif op == OP_AND:
                V[dst] = V[a] & V[b]
            elif op == OP_OR:
                V[dst] = V[a] | V[b]
            elif op == OP_NAND:
                V[dst] = ~(V[a] & V[b]) & mask
            elif op == OP_NOR:
                V[dst] = ~(V[a] | V[b]) & mask
            elif op == OP_XOR:
                V[dst] = V[a] ^ V[b]
            elif op == OP_XNOR:
                V[dst] = ~(V[a] ^ V[b]) & mask
            else:  # OP_MUX: (s & a) | (~s & b); operands stay masked
                s = V[a]
                V[dst] = (s & V[b]) | (~s & V[c])

    def good_cycle(self, pi_words, state_words, width: int,
                   forced: Mapping[int, object] | None = None):
        """Full evaluation of one cycle; returns ``(V, next_state)``.

        ``forced`` maps gate row -> word vector, applied the moment the
        net's level completes (so downstream gates see forced values,
        matching the interpreter's in-order override).
        """
        mask = self._mask_words(width)
        V = _np.zeros((self.n_gates, _n_words(width)), dtype=_np.uint64)
        if len(self.input_rows):
            V[self.input_rows] = pi_words
        if len(self.const1_rows):
            V[self.const1_rows] = mask
        if len(self.dff_rows):
            V[self.dff_rows] = state_words
        by_level: dict[int, list[tuple[int, object]]] = {}
        if forced:
            for row, words in forced.items():
                by_level.setdefault(int(self.level[row]), []).append(
                    (row, words)
                )
            for row, words in by_level.get(0, ()):
                V[row] = words
        cur = 0
        for op, dst, a, b, c in self.program:
            lvl = int(self.level[dst[0]])
            while cur < lvl:
                cur += 1
                for row, words in by_level.get(cur, ()):
                    V[row] = words
            # A forced net at this level must not be overwritten by its
            # own gate evaluation: re-apply after the group runs.
            self._run_program(V, [(op, dst, a, b, c)], mask)
            for row, words in by_level.get(lvl, ()):
                V[row] = words
        nxt = V[self.dff_d_rows].copy() if len(self.dff_rows) else (
            _np.zeros((0, _n_words(width)), dtype=_np.uint64)
        )
        if forced:
            for row, words in forced.items():
                pos = self.dff_pos.get(row)
                if pos is not None:
                    nxt[pos] = words
        return V, nxt

    # ------------------------------------------------------------------
    # cone-restricted faulty evaluation

    def cone(self, site: int) -> _Cone:
        """The compiled fanout closure of gate row ``site`` (cached)."""
        c = self._cones.get(site)
        if c is not None:
            return c
        seen = {site}
        stack = [site]
        while stack:
            i = stack.pop()
            for k in self._consumers[i]:
                if k not in seen:
                    seen.add(k)
                    stack.append(k)
        program: list[tuple] = []
        touched: list[int] = []
        for op, dst, a, b, c_ in self.program:
            keep = [j for j, row in enumerate(dst)
                    if int(row) in seen and int(row) != site]
            if not keep:
                continue
            sel = _np.array(keep, dtype=_np.int64)
            program.append((
                op, dst[sel], a[sel],
                b[sel] if b is not None else None,
                c_[sel] if c_ is not None else None,
            ))
            touched.extend(int(r) for r in dst[sel])
        obs_out = _np.array(
            [r for r in self.output_rows if int(r) in seen],
            dtype=_np.int64,
        )
        obs_scan = _np.array(
            [pos for pos in self.scan_pos if int(self.dff_rows[pos]) in seen],
            dtype=_np.int64,
        )
        cone = _Cone(
            site, program,
            _np.array(sorted(set(touched)), dtype=_np.int64),
            obs_out, obs_scan, self.dff_pos.get(site),
        )
        self._cones[site] = cone
        return cone

    def _faulty_cycle(self, VS, cone: _Cone, state_words, forced_words,
                      mask):
        """Evaluate the faulty machine into scratch ``VS``.

        ``VS`` must hold the good-machine values on entry; only the
        cone's gates (plus DFF source rows and the site) are rewritten.
        Returns the faulty next-state matrix.  Call :meth:`_restore`
        before reusing ``VS`` as good values.
        """
        if len(self.dff_rows):
            VS[self.dff_rows] = state_words
        VS[cone.site] = forced_words
        self._run_program(VS, cone.program, mask)
        nxt = VS[self.dff_d_rows].copy() if len(self.dff_rows) else (
            _np.zeros((0, VS.shape[1]), dtype=_np.uint64)
        )
        if cone.site_dff_pos is not None:
            nxt[cone.site_dff_pos] = forced_words
        return nxt

    def _restore(self, VS, VG, cone: _Cone) -> None:
        if len(self.dff_rows):
            VS[self.dff_rows] = VG[self.dff_rows]
        if len(cone.touched):
            VS[cone.touched] = VG[cone.touched]
        VS[cone.site] = VG[cone.site]

    def diff_words(self, VS, VG, bnxt, gnxt, cone: _Cone):
        """Packed mask of patterns where the fault is observable."""
        nw = VS.shape[1]
        diff = _np.zeros(nw, dtype=_np.uint64)
        if len(cone.obs_out):
            diff |= _np.bitwise_or.reduce(
                VS[cone.obs_out] ^ VG[cone.obs_out], axis=0
            )
        if len(cone.obs_scan):
            diff |= _np.bitwise_or.reduce(
                bnxt[cone.obs_scan] ^ gnxt[cone.obs_scan], axis=0
            )
        return diff

    # ------------------------------------------------------------------
    # interpreter-compatible façades

    def simulate(
        self,
        pi_values: Mapping[str, int],
        state: Mapping[str, int] | None = None,
        width: int = 64,
        forced: Mapping[str, int] | None = None,
    ) -> tuple[dict[str, int], dict[str, int]]:
        """Drop-in for :func:`repro.gatelevel.simulate.parallel_simulate`."""
        forced_rows = None
        if forced:
            forced_rows = {
                self.index[name]: self.words_from_int(v, width)
                for name, v in forced.items() if name in self.index
            }
        V, nxt = self.good_cycle(
            self._pi_matrix(pi_values, width),
            self._state_matrix(state, width),
            width, forced_rows,
        )
        values = {
            name: self.int_from_words(V[i])
            for i, name in enumerate(self.names)
        }
        next_state = {
            name: self.int_from_words(nxt[pos])
            for pos, name in enumerate(self.dff_names)
        }
        return values, next_state

    def state_checkpoints(
        self,
        pi_values: Mapping[str, int],
        checkpoints: Sequence[int],
        width: int = 1,
        forced: Mapping[str, int] | None = None,
        initial_state: Mapping[str, int] | None = None,
    ) -> dict[int, dict[str, int]]:
        """Free-run with constant inputs; snapshot DFF state at the
        given cycle counts (cycle 1 = state after one clock edge)."""
        forced_rows = None
        if forced:
            forced_rows = {
                self.index[name]: self.words_from_int(v, width)
                for name, v in forced.items() if name in self.index
            }
        pw = self._pi_matrix(pi_values, width)
        state = self._state_matrix(initial_state, width)
        marks = sorted(set(checkpoints))
        out: dict[int, dict[str, int]] = {}
        for cycle in range(1, marks[-1] + 1):
            _V, state = self.good_cycle(pw, state, width, forced_rows)
            if cycle in marks:
                out[cycle] = {
                    name: self.int_from_words(state[pos])
                    for pos, name in enumerate(self.dff_names)
                }
        return out

    # ------------------------------------------------------------------
    # fault-parallel sequential simulation

    def _level_program(self) -> list[tuple[int, list]]:
        """:attr:`program` regrouped as ``[(level, [instructions])]``.

        The fault-parallel sequential path re-forces fault columns once
        per level, so it wants level boundaries rather than the flat
        (level, opcode) stream.  Built once per compile.
        """
        cached = self._level_program_cache
        if cached is None:
            cached = []
            for instr in self.program:
                lvl = int(self.level[instr[1][0]])
                if not cached or cached[-1][0] != lvl:
                    cached.append((lvl, []))
                cached[-1][1].append(instr)
            self._level_program_cache = cached
        return cached

    def sequential_fault_detect(
        self,
        faults: Sequence[Fault],
        pi_values: Mapping[str, int],
        checkpoints: Sequence[int],
        observe: Sequence[str],
        forced: Mapping[str, int] | None = None,
        initial_state: Mapping[str, int] | None = None,
        columns: int | None = None,
    ) -> dict[Fault, int | None]:
        """Free-run every fault's full sequential machine **at once**.

        Packs up to ``columns - 1`` faults as bit columns of one wide
        state vector (column 0 is the golden machine; every column sees
        the same constant ``pi_values``), injects each fault by
        re-forcing its net's column whenever the net's level completes
        -- the same per-level re-forcing trick the combinational path
        uses -- and free-runs all cycles once.  At each checkpoint the
        ``observe`` flip-flops (signature-register bits) of every fault
        column are compared against column 0.

        Returns fault -> first detecting checkpoint cycle (``None`` if
        no checkpoint shows a difference), bit-identical to running the
        interpreter once per fault with ``forced={fault.net: stuck}``.
        A batch whose columns are all detected stops simulating early;
        larger fault lists are processed in successive batches.
        """
        marks = sorted({int(c) for c in checkpoints})
        result: dict[Fault, int | None] = {f: None for f in faults}
        known = [f for f in faults if f.net in self.index]
        pos: set[int] = set()
        for name in observe:
            row = self.index.get(name)
            if row is not None and row in self.dff_pos:
                pos.add(self.dff_pos[row])
        obs_pos = _np.array(sorted(pos), dtype=_np.int64)
        if not marks or not known or not len(obs_pos):
            return result
        per_batch = max(1, int(columns or SEQ_FAULT_COLUMNS) - 1)
        for start in range(0, len(known), per_batch):
            self._seq_fault_batch(
                known[start:start + per_batch], pi_values, marks,
                obs_pos, forced, initial_state, result,
            )
        return result

    def _seq_fault_batch(self, batch, pi_values, marks, obs_pos, forced,
                         initial_state, result) -> None:
        """One packed free-run: golden in column 0, fault *b* in column
        ``b + 1``; first-detection checkpoints land in ``result``."""
        nbits = len(batch) + 1
        nw = _n_words(nbits)
        all1 = _np.uint64(0xFFFFFFFFFFFFFFFF)
        ones = _np.full(nw, all1)
        zeros = _np.zeros(nw, dtype=_np.uint64)

        # Broadcast packing: every column runs the same session, so a
        # pin held at 1 is all-ones across the whole word vector.
        pw = _np.zeros((len(self.input_names), nw), dtype=_np.uint64)
        for k, name in enumerate(self.input_names):
            if pi_values.get(name, 0) & 1:
                pw[k] = ones
        state = _np.zeros((len(self.dff_names), nw), dtype=_np.uint64)
        if initial_state:
            for p, name in enumerate(self.dff_names):
                if initial_state.get(name, 0) & 1:
                    state[p] = ones

        # Session-level pin forcing (broadcast, golden included),
        # applied with good_cycle's level-completion semantics.
        forced_by_level: dict[int, list[tuple[int, object]]] = {}
        forced_state: list[tuple[int, object]] = []
        if forced:
            for name, v in forced.items():
                row = self.index.get(name)
                if row is None:
                    continue
                words = ones if v & 1 else zeros
                forced_by_level.setdefault(
                    int(self.level[row]), []
                ).append((row, words))
                p = self.dff_pos.get(row)
                if p is not None:
                    forced_state.append((p, words))

        # Per-site column fixes: fault b's column of its net is re-set
        # to the stuck value whenever the row is (re)written.  Multiple
        # faults on one net (s-a-0 and s-a-1) share a masked update.
        col_clear: dict[int, int] = {}
        col_set: dict[int, int] = {}
        for b, f in enumerate(batch):
            site = self.index[f.net]
            bit = 1 << (b + 1)
            col_clear[site] = col_clear.get(site, 0) | bit
            col_set[site] = col_set.get(site, 0) | (
                bit if f.stuck_at else 0
            )
        source_fixes: list[tuple] = []
        level_fixes: dict[int, list[tuple]] = {}
        state_fixes: list[tuple] = []
        width = 64 * nw
        for site, clear_bits in col_clear.items():
            keep = ~self.words_from_int(clear_bits, width)
            setw = self.words_from_int(col_set[site], width)
            fix = (site, keep, setw)
            if int(self.opcode[site]) >= OP_BUF:
                level_fixes.setdefault(
                    int(self.level[site]), []
                ).append(fix)
            else:
                source_fixes.append(fix)
            p = self.dff_pos.get(site)
            if p is not None:
                state_fixes.append((p, keep, setw))

        alive = (1 << nbits) - 2  # columns 1..len(batch)
        levels = self._level_program()
        V = _np.zeros((self.n_gates, nw), dtype=_np.uint64)
        mark_set = set(marks)
        for cycle in range(1, marks[-1] + 1):
            V[:] = 0
            if len(self.input_rows):
                V[self.input_rows] = pw
            if len(self.const1_rows):
                V[self.const1_rows] = ones
            if len(self.dff_rows):
                V[self.dff_rows] = state
            for row, words in forced_by_level.get(0, ()):
                V[row] = words
            for site, keep, setw in source_fixes:
                V[site] = (V[site] & keep) | setw
            for lvl, instrs in levels:
                self._run_program(V, instrs, ones)
                for row, words in forced_by_level.get(lvl, ()):
                    V[row] = words
                for site, keep, setw in level_fixes.get(lvl, ()):
                    V[site] = (V[site] & keep) | setw
            if len(self.dff_rows):
                nxt = V[self.dff_d_rows].copy()
                for p, words in forced_state:
                    nxt[p] = words
                for p, keep, setw in state_fixes:
                    nxt[p] = (nxt[p] & keep) | setw
                state = nxt
            self._pattern_cycles = getattr(
                self, "_pattern_cycles", 0
            ) + bin(alive).count("1")
            if cycle in mark_set:
                S = state[obs_pos]
                golden = (S[:, 0] & _np.uint64(1)).astype(bool)
                bcast = _np.where(golden, all1, _np.uint64(0))
                diff = _np.bitwise_or.reduce(
                    S ^ bcast[:, None], axis=0
                )
                hits = self.int_from_words(diff) & alive
                if hits:
                    for b, f in enumerate(batch):
                        if (hits >> (b + 1)) & 1:
                            result[f] = cycle
                    alive &= ~hits
                    if not alive:
                        break

    def detect_masks(
        self,
        faults: Sequence[Fault],
        pi_values: Mapping[str, int],
        state: Mapping[str, int] | None = None,
        width: int = 64,
    ) -> dict[Fault, int]:
        """Per-fault packed masks of detecting patterns, one capture cycle.

        The single-cycle analogue of :func:`transition_pair_detect`:
        the good machine evaluates once for the whole packed block and
        each fault replays only its cone.  Bit *p* of the returned mask
        is set when pattern *p* of the block detects the fault at an
        output or a scan flip-flop's captured state — exactly the
        condition the interpreter's ``_observable_difference`` checks.
        Used by the random-pattern pre-drop stage of
        :func:`repro.gatelevel.test_generation.generate_tests`.
        """
        mask = self._mask_words(width)
        pw = self._pi_matrix(pi_values, width)
        sw = self._state_matrix(state, width)
        VG, gnxt = self.good_cycle(pw, sw, width)
        VS = VG.copy()
        nw = _n_words(width)
        zero = _np.zeros(nw, dtype=_np.uint64)
        out: dict[Fault, int] = {}
        for f in faults:
            site = self.index.get(f.net)
            if site is None:
                out[f] = 0
                continue
            forced_words = zero if f.stuck_at == 0 else mask
            cone = self.cone(site)
            bnxt = self._faulty_cycle(VS, cone, sw, forced_words, mask)
            diff = self.diff_words(VS, VG, bnxt, gnxt, cone)
            self._restore(VS, VG, cone)
            out[f] = self.int_from_words(diff)
        return out

    # ------------------------------------------------------------------
    # fault simulation

    def _make_batch(self, faults: Sequence[Fault], width: int, init,
                    mask) -> _FaultBatch:
        """Compile one fault block batch: union-of-cones program plus
        per-fault forcing/observation bookkeeping."""
        nw = _n_words(width)
        sites = [self.index[f.net] for f in faults]
        forced = [
            _np.zeros(nw, dtype=_np.uint64) if f.stuck_at == 0
            else mask.copy()
            for f in faults
        ]
        seen = set(sites)
        stack = list(sites)
        while stack:
            i = stack.pop()
            for k in self._consumers[i]:
                if k not in seen:
                    seen.add(k)
                    stack.append(k)
        # Site re-forcings, keyed by the level whose evaluation would
        # overwrite them (source-row sites are never overwritten).
        fix_by_level: dict[int, list[tuple[int, int]]] = {}
        for blk, site in enumerate(sites):
            if int(self.opcode[site]) >= OP_BUF:
                fix_by_level.setdefault(int(self.level[site]), []).append(
                    (site, blk)
                )
        levels: list[tuple[list, tuple]] = []
        cur_lvl: int | None = None
        cur: list[tuple] = []
        for op, dst, a, b, c in self.program:
            kept = [j for j, row in enumerate(dst) if int(row) in seen]
            if not kept:
                continue
            lvl = int(self.level[dst[0]])
            if lvl != cur_lvl:
                if cur:
                    levels.append((cur, tuple(fix_by_level.get(cur_lvl, ()))))
                cur_lvl, cur = lvl, []
            if len(kept) == len(dst):
                cur.append((op, dst, a, b, c))
            else:
                sel = _np.array(kept, dtype=_np.int64)
                cur.append((
                    op, dst[sel], a[sel],
                    b[sel] if b is not None else None,
                    c[sel] if c is not None else None,
                ))
        if cur:
            levels.append((cur, tuple(fix_by_level.get(cur_lvl, ()))))
        obs_out = _np.array(
            [r for r in self.output_rows if int(r) in seen],
            dtype=_np.int64,
        )
        obs_scan = _np.array(
            [pos for pos in self.scan_pos
             if int(self.dff_rows[pos]) in seen],
            dtype=_np.int64,
        )
        site_dff = [self.dff_pos.get(site) for site in sites]
        keep = []
        for pos in site_dff:
            if len(self.scan_pos) and pos is not None:
                keep.append(self.scan_pos[self.scan_pos != pos])
            else:
                keep.append(self.scan_pos)
        state = _np.tile(init, (1, len(faults))) if len(self.dff_rows) \
            else _np.zeros((0, len(faults) * nw), dtype=_np.uint64)
        return _FaultBatch(list(faults), sites, forced, site_dff, keep,
                           levels, obs_out, obs_scan, state)

    def _batch_cycle(self, batch: _FaultBatch, VS, mask_b, VG, gnxt,
                     nw: int, width: int, cycle: int,
                     detected: dict) -> None:
        """One clock edge for every live fault block in ``batch``."""
        B = batch.size
        VS.reshape(self.n_gates, B, nw)[:] = VG[:, None, :]
        if len(self.dff_rows):
            VS[self.dff_rows] = batch.state
        for blk in range(B):
            if batch.alive[blk]:
                VS[batch.sites[blk],
                   blk * nw:(blk + 1) * nw] = batch.forced[blk]
        for instrs, fixes in batch.levels:
            self._run_program(VS, instrs, mask_b)
            for site, blk in fixes:
                if batch.alive[blk]:
                    VS[site, blk * nw:(blk + 1) * nw] = batch.forced[blk]
        if len(self.dff_rows):
            bnxt = VS[self.dff_d_rows].copy()
        else:
            bnxt = _np.zeros((0, B * nw), dtype=_np.uint64)
        for blk in range(B):
            if batch.alive[blk] and batch.site_dff[blk] is not None:
                bnxt[batch.site_dff[blk],
                     blk * nw:(blk + 1) * nw] = batch.forced[blk]
        good_out = VG[batch.obs_out] if len(batch.obs_out) else None
        good_scan = gnxt[batch.obs_scan] if len(batch.obs_scan) else None
        for blk, fault in enumerate(batch.faults):
            if not batch.alive[blk]:
                continue
            sl = slice(blk * nw, (blk + 1) * nw)
            self._pattern_cycles += width
            hit = (
                good_out is not None
                and not _np.array_equal(VS[batch.obs_out, sl], good_out)
            ) or (
                good_scan is not None
                and not _np.array_equal(bnxt[batch.obs_scan, sl],
                                        good_scan)
            )
            if hit:
                detected[fault] = cycle
                batch.alive[blk] = False
                continue
            # Scan reload: scanned state follows the good machine,
            # except a scan FF carrying the fault itself.
            if len(batch.keep[blk]):
                bnxt[batch.keep[blk], sl] = gnxt[batch.keep[blk]]
            batch.state[:, sl] = bnxt[:, sl]

    def fault_simulate_cycles(
        self,
        faults: Sequence[Fault],
        pi_sequence: Sequence[Mapping[str, int]] | None,
        width: int = 64,
        initial_state: Mapping[str, int] | None = None,
        drop_detected: bool = False,
        pi_words=None,
    ) -> dict[Fault, int | None]:
        """Array-native fault-batched PPSFP; bit-identical to the
        interpreter's :func:`repro.gatelevel.fault_sim.fault_simulate_cycles`.

        The kernel always retires a fault at its first detection, which
        is exactly what ``drop_detected`` asks for and also what the
        non-dropping interpreter computes per fault (it breaks at first
        detection) -- so the flag changes nothing here and is accepted
        for signature parity.

        ``pi_words`` optionally supplies the patterns pre-packed as a
        ``(cycles, inputs, n_words)`` array (see
        :meth:`pack_pi_sequence`); shard workers pass a zero-copy
        shared-memory view here, skipping per-worker re-packing.
        """
        mask = self._mask_words(width)
        nw = _n_words(width)
        known = [f for f in faults if f.net in self.index]
        detected: dict[Fault, int | None] = {f: None for f in faults}
        self._pattern_cycles = 0  # bookkeeping for patterns/sec metrics
        if pi_words is not None:
            pw_seq = list(pi_words)
        else:
            pw_seq = [self._pi_matrix(piv, width)
                      for piv in (pi_sequence or ())]
        if not known or not pw_seq:
            return detected
        init = self._state_matrix(initial_state, width)
        # Sorting by site keeps each batch's union-of-cones tight.
        by_site = sorted(
            known, key=lambda f: (self.index[f.net], f.stuck_at)
        )
        batches = [
            self._make_batch(by_site[i:i + FAULT_BATCH], width, init,
                             mask)
            for i in range(0, len(by_site), FAULT_BATCH)
        ]
        scratch: dict[int, tuple] = {}  # per batch size: (VS, mask_b)
        good_state = init
        for cycle, pw in enumerate(pw_seq):
            live = [b for b in batches if any(b.alive)]
            if not live:
                break
            VG, gnxt = self.good_cycle(pw, good_state, width)
            good_state = gnxt
            for batch in live:
                buf = scratch.get(batch.size)
                if buf is None:
                    buf = (
                        _np.zeros((self.n_gates, batch.size * nw),
                                  dtype=_np.uint64),
                        _np.tile(mask, batch.size),
                    )
                    scratch[batch.size] = buf
                self._batch_cycle(batch, buf[0], buf[1], VG, gnxt, nw,
                                  width, cycle, detected)
        return detected


# ---------------------------------------------------------------------------
# compile cache

_COMPILED: "WeakKeyDictionary[Netlist, tuple]" = WeakKeyDictionary()


def compiled(netlist: Netlist) -> CompiledNetlist:
    """The cached compiled form of ``netlist``.

    Keyed by the netlist's mutation counter plus its output list (the
    outputs are observation points but not part of the gate graph), so
    in-place growth or output changes trigger a recompile.
    """
    sig = (netlist.version, tuple(netlist.outputs))
    hit = _COMPILED.get(netlist)
    if hit is not None and hit[0] == sig:
        return hit[1]
    comp = CompiledNetlist(netlist)
    _COMPILED[netlist] = (sig, comp)
    return comp


# ---------------------------------------------------------------------------
# content-hash netlist cache (warm-worker compiled-program reuse)

#: per-instance (version, outputs) -> (digest, blob) memo, so repeated
#: sharded dispatches of one netlist hash and pickle it exactly once.
_CONTENT_MEMO: "WeakKeyDictionary[Netlist, tuple]" = WeakKeyDictionary()

#: per-process content-hash -> Netlist registry.  Holding the netlist
#: object alive keeps its :data:`_COMPILED` entry (a WeakKeyDictionary)
#: alive too, so a warm worker that has seen a design serves every later
#: shard/job from the cached :class:`CompiledNetlist` without ever
#: re-running levelization -- and, under the shm transport, without even
#: unpickling the body again.
_BY_HASH: "OrderedDict[str, Netlist]" = OrderedDict()
_HASH_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def netlist_blob(netlist: Netlist) -> tuple[str, bytes]:
    """``(content digest, pickled body)`` for ``netlist``, memoised.

    The digest follows the recipe-hash discipline of
    :mod:`repro.flow.cache`: a sha256 over a canonical rendering of the
    gate graph (name, kind, fanins, scan flag, in insertion order) plus
    the output list -- equal-content netlists hash equal across
    processes, unlike ``id``- or pickle-byte-based keys.  The memo is
    invalidated by the netlist's mutation counter and output list.
    """
    sig = (netlist.version, tuple(netlist.outputs))
    hit = _CONTENT_MEMO.get(netlist)
    if hit is not None and hit[0] == sig:
        return hit[1], hit[2]
    h = hashlib.sha256()
    h.update(netlist.name.encode())
    for g in netlist:
        h.update(
            f"\n{g.name}|{g.kind}|{','.join(g.inputs)}|{int(g.scan)}"
            .encode()
        )
    h.update(("\nouts:" + ",".join(netlist.outputs)).encode())
    digest = h.hexdigest()
    blob = pickle.dumps(netlist, protocol=pickle.HIGHEST_PROTOCOL)
    _CONTENT_MEMO[netlist] = (sig, digest, blob)
    return digest, blob


def netlist_hash(netlist: Netlist) -> str:
    """The content digest alone (see :func:`netlist_blob`)."""
    return netlist_blob(netlist)[0]


def resolve_netlist(digest: str, payload) -> Netlist:
    """The process-local netlist for ``digest``, decoding at most once.

    ``payload`` supplies the body on a cache miss: a :class:`Netlist`
    (classic pickle transport -- it already crossed the pipe), raw
    pickled ``bytes``, or a zero-argument callable returning either
    (the shm transport's lazy fetch, so a warm worker never touches the
    segment on a hit).  The registry is a bounded LRU
    (``REPRO_WORKER_CACHE_SIZE``).
    """
    hit = _BY_HASH.get(digest)
    if hit is not None:
        _BY_HASH.move_to_end(digest)
        _HASH_STATS["hits"] += 1
        return hit
    _HASH_STATS["misses"] += 1
    if callable(payload):
        payload = payload()
    if isinstance(payload, (bytes, bytearray, memoryview)):
        payload = pickle.loads(payload)
    if not isinstance(payload, Netlist):
        raise NetlistError(
            f"no cached netlist for {digest[:12]} and no body provided"
        )
    _BY_HASH[digest] = payload
    from repro.flow.shm import default_cache_size

    limit = default_cache_size()
    while len(_BY_HASH) > limit:
        _BY_HASH.popitem(last=False)
        _HASH_STATS["evictions"] += 1
    return payload


def netlist_cache_stats() -> dict[str, int]:
    """Per-process hash-cache counters (asserted by the dispatch tests)."""
    return dict(_HASH_STATS, entries=len(_BY_HASH))


# ---------------------------------------------------------------------------
# transition-fault support (vector pairs)

def transition_pair_detect(
    netlist: Netlist,
    pair: tuple[Mapping[str, int], Mapping[str, int]],
    fault_sites: Sequence[tuple[str, bool]],
    width: int = 64,
    initial_state: Mapping[str, int] | None = None,
) -> dict[tuple[str, bool], int]:
    """Detection masks for transition faults under one vector pair.

    ``fault_sites`` is a list of ``(net, rising)`` tuples; the return
    maps each to the packed mask of detecting patterns.  The good
    machine runs once per pair (the interpreter re-ran it per fault);
    each faulty machine is a cone-restricted launch-cycle replay.
    """
    k = compiled(netlist)
    v1, v2 = pair
    mask = k._mask_words(width)
    pw1 = k._pi_matrix(v1, width)
    pw2 = k._pi_matrix(v2, width)
    state0 = k._state_matrix(initial_state, width)
    VG1, gs1 = k.good_cycle(pw1, state0, width)
    VG2, gs2 = k.good_cycle(pw2, gs1, width)
    VS = VG2.copy()
    out: dict[tuple[str, bool], int] = {}
    for net, rising in fault_sites:
        if net not in k.index:
            out[(net, rising)] = 0
            continue
        site = k.index[net]
        before = VG1[site]
        after = VG2[site]
        if rising:
            slow = ~before & after & mask
        else:
            slow = before & ~after & mask
        if not slow.any():
            out[(net, rising)] = 0
            continue
        cone = k.cone(site)
        faulty_value = (after & ~slow) | (before & slow)
        bnxt = k._faulty_cycle(VS, cone, gs1, faulty_value, mask)
        diff = k.diff_words(VS, VG2, bnxt, gs2, cone) & slow
        k._restore(VS, VG2, cone)
        out[(net, rising)] = k.int_from_words(diff)
    return out
