"""Gate-level netlist model.

Every gate drives exactly one net, named after the gate.  Supported
kinds:

* ``input`` -- primary input (no gate inputs)
* ``const0`` / ``const1`` -- constants
* ``buf``, ``not`` -- one input
* ``and``, ``or``, ``nand``, ``nor``, ``xor``, ``xnor`` -- two inputs
* ``mux`` -- ``(sel, a, b)``: sel ? a : b
* ``dff`` -- one input (D); state element.  ``scan=True`` marks the
  flip-flop as scannable (directly controllable/observable in test).

Primary outputs are a list of net names.  The combinational part must
be acyclic; :meth:`Netlist.validate` checks this and that every net is
driven.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

COMBINATIONAL_KINDS = frozenset(
    {"buf", "not", "and", "or", "nand", "nor", "xor", "xnor", "mux"}
)
_ARITY = {
    "input": 0, "const0": 0, "const1": 0,
    "buf": 1, "not": 1, "dff": 1,
    "and": 2, "or": 2, "nand": 2, "nor": 2, "xor": 2, "xnor": 2,
    "mux": 3,
}


class NetlistError(ValueError):
    """Raised on malformed netlist constructions."""


@dataclass
class Gate:
    """One gate; the driven net shares the gate's name."""

    name: str
    kind: str
    inputs: tuple[str, ...] = ()
    scan: bool = False  # meaningful for dff only

    def __post_init__(self) -> None:
        if self.kind not in _ARITY:
            raise NetlistError(f"unknown gate kind {self.kind!r}")
        if len(self.inputs) != _ARITY[self.kind]:
            raise NetlistError(
                f"gate {self.name!r} ({self.kind}): expected "
                f"{_ARITY[self.kind]} inputs, got {len(self.inputs)}"
            )


class Netlist:
    """A flat gate-level netlist with D flip-flops."""

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self._gates: dict[str, Gate] = {}
        self.outputs: list[str] = []
        self._version = 0
        self._pickles = 0
        self._topo_cache: list[str] | None = None
        self._levels_cache: dict[str, int] | None = None
        self._consumers_cache: dict[str, list[str]] | None = None

    # ------------------------------------------------------------------

    def add(self, name: str, kind: str, *inputs: str, scan: bool = False) -> str:
        """Add a gate; returns the driven net name."""
        if name in self._gates:
            raise NetlistError(f"duplicate gate {name!r}")
        self._gates[name] = Gate(name, kind, tuple(inputs), scan=scan)
        self.invalidate()
        return name

    def add_output(self, net: str) -> None:
        self.outputs.append(net)

    def invalidate(self) -> None:
        """Drop derived caches (topo order, levels, compiled kernels).

        Called automatically by :meth:`add`; call it manually after
        mutating ``_gates`` or gate attributes in place.
        """
        self._version += 1
        self._topo_cache = None
        self._levels_cache = None
        self._consumers_cache = None

    @property
    def version(self) -> int:
        """Monotone mutation counter (cache key for derived structures)."""
        return self._version

    def __getstate__(self) -> dict:
        # Derived caches are cheap to rebuild and would bloat pickles
        # (flow-cache artifacts, process-pool shards); drop them.
        # ``_pickles`` counts serialisations of this instance -- the
        # dispatch-cost regression tests assert a sharded run ships the
        # netlist at most once -- and copies start their own count.
        self._pickles += 1
        state = self.__dict__.copy()
        state["_pickles"] = 0
        state["_topo_cache"] = None
        state["_levels_cache"] = None
        state["_consumers_cache"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Pickles from before the cache fields existed.
        self.__dict__.setdefault("_version", 0)
        self.__dict__.setdefault("_pickles", 0)
        self.__dict__.setdefault("_topo_cache", None)
        self.__dict__.setdefault("_levels_cache", None)
        self.__dict__.setdefault("_consumers_cache", None)

    # ------------------------------------------------------------------

    @property
    def gates(self) -> dict[str, Gate]:
        return self._gates

    def gate(self, name: str) -> Gate:
        return self._gates[name]

    def inputs(self) -> list[str]:
        return [g.name for g in self._gates.values() if g.kind == "input"]

    def dffs(self) -> list[Gate]:
        return [g for g in self._gates.values() if g.kind == "dff"]

    def scan_dffs(self) -> list[Gate]:
        return [g for g in self.dffs() if g.scan]

    def num_gates(self) -> int:
        return sum(
            1 for g in self._gates.values()
            if g.kind in COMBINATIONAL_KINDS
        )

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates.values())

    # ------------------------------------------------------------------

    def topo_order(self) -> list[str]:
        """Combinational evaluation order (DFF outputs are sources).

        The result is cached on the netlist and invalidated by
        :meth:`add` / :meth:`invalidate`; callers that loop over cycles
        or faults no longer pay for repeated traversals.

        Raises :class:`NetlistError` on combinational cycles.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        order: list[str] = []
        state = dict.fromkeys(self._gates, 0)  # 0 new, 1 visiting, 2 done
        stack: list[tuple[str, int]] = []
        for root in self._gates:
            if state[root]:
                continue
            stack.append((root, 0))
            while stack:
                node, phase = stack.pop()
                if phase == 0:
                    if state[node] == 2:
                        continue
                    if state[node] == 1:
                        continue
                    state[node] = 1
                    stack.append((node, 1))
                    gate = self._gates[node]
                    if gate.kind == "dff":
                        continue  # DFF breaks the cycle: output is state
                    for src in gate.inputs:
                        if src not in self._gates:
                            raise NetlistError(
                                f"gate {node!r} reads undriven net {src!r}"
                            )
                        if state[src] == 1:
                            raise NetlistError(
                                f"combinational cycle through {src!r}"
                            )
                        if state[src] == 0:
                            stack.append((src, 0))
                else:
                    state[node] = 2
                    order.append(node)
        self._topo_cache = order
        return order

    def levels(self) -> dict[str, int]:
        """Levelization: sources (inputs, constants, DFF outputs) are
        level 0; a combinational gate is one past its deepest fanin.

        This is the schedule the compiled kernel groups instructions
        by; cached alongside :meth:`topo_order`.
        """
        if self._levels_cache is not None:
            return self._levels_cache
        levels: dict[str, int] = {}
        for name in self.topo_order():
            gate = self._gates[name]
            if gate.kind in COMBINATIONAL_KINDS:
                levels[name] = 1 + max(levels[i] for i in gate.inputs)
            else:
                levels[name] = 0
        self._levels_cache = levels
        return levels

    def consumers(self) -> dict[str, list[str]]:
        """Fanout map: net -> names of the gates reading it.

        Consumers appear in gate-insertion order (matching ``iter(self)``),
        and a DFF "consumes" its D input.  Cached with the same
        version-based invalidation as :meth:`topo_order`; ATPG used to
        rebuild this map for every single fault.
        """
        if self._consumers_cache is not None:
            return self._consumers_cache
        consumers: dict[str, list[str]] = {}
        for g in self._gates.values():
            for src in g.inputs:
                consumers.setdefault(src, []).append(g.name)
        self._consumers_cache = consumers
        return consumers

    def validate(self, strict: bool = False) -> None:
        """Structural well-formedness check.

        Always verifies: primary outputs and DFF inputs are driven, no
        combinational cycles (via :meth:`topo_order`), and no
        multi-driven nets -- two gates claiming the same output net,
        which :meth:`add` prevents but in-place ``_gates`` surgery can
        reintroduce; multi-drive otherwise surfaces much later as a
        numpy shape error inside the compiled kernel.

        With ``strict=True`` also rejects dangling internal nets --
        combinational or constant gates that drive nothing (no
        consumer, not a primary output).  Dangling logic is legal (see
        :func:`sweep_dead_logic`, which removes it) but untestable by
        construction, so DFT entry points opt into the check.
        """
        seen_names: dict[str, str] = {}
        for key, g in self._gates.items():
            if g.name != key:
                raise NetlistError(
                    f"net {key!r} is driven by a gate named {g.name!r} "
                    f"(multi-driven net or in-place rename; every gate "
                    f"must drive the net of its own name)"
                )
            if g.name in seen_names:
                raise NetlistError(f"net {g.name!r} is multi-driven")
            seen_names[g.name] = key
        for net in self.outputs:
            if net not in self._gates:
                raise NetlistError(f"primary output {net!r} is undriven")
        for g in self.dffs():
            if g.inputs[0] not in self._gates:
                raise NetlistError(
                    f"dff {g.name!r} reads undriven net {g.inputs[0]!r}"
                )
        self.topo_order()
        if strict:
            consumed = {
                src for g in self._gates.values() for src in g.inputs
            }
            observed = set(self.outputs)
            dangling = sorted(
                g.name for g in self._gates.values()
                if g.kind in COMBINATIONAL_KINDS
                or g.kind in ("const0", "const1")
                if g.name not in consumed and g.name not in observed
            )
            if dangling:
                raise NetlistError(
                    f"dangling internal nets (driven but never read or "
                    f"observed): {dangling[:8]}"
                    f"{' ...' if len(dangling) > 8 else ''}; run "
                    f"sweep_dead_logic() or wire them up"
                )

    def stats(self) -> dict[str, int]:
        kinds: dict[str, int] = {}
        for g in self._gates.values():
            kinds[g.kind] = kinds.get(g.kind, 0) + 1
        return kinds


def sweep_dead_logic(netlist: Netlist) -> Netlist:
    """Remove gates outside the fan-in cone of any output or flip-flop.

    Dangling logic (e.g. the truncated MSB carry chain of a word-level
    adder) is untestable by construction; sweeping it keeps the fault
    universe meaningful.  Primary inputs are preserved (interface), as
    are all flip-flops and everything feeding them.
    """
    roots: list[str] = list(netlist.outputs)
    for g in netlist.dffs():
        roots.append(g.name)
        roots.append(g.inputs[0])
    needed: set[str] = set()
    stack = [r for r in roots if r in netlist.gates]
    while stack:
        n = stack.pop()
        if n in needed:
            continue
        needed.add(n)
        stack.extend(
            i for i in netlist.gate(n).inputs if i not in needed
        )
    out = Netlist(netlist.name)
    for g in netlist:
        if g.name in needed or g.kind == "input":
            out.add(g.name, g.kind, *g.inputs, scan=g.scan)
    out.outputs = list(netlist.outputs)
    out.validate()
    return out
