"""Gate-level substrate: netlists, faults, ATPG, fault simulation.

The surveyed papers report gate-level results (stuck-at fault coverage,
sequential ATPG effort) from 1990s commercial/university tools.  This
package is the self-contained replacement: bit-level expansion of
bound data paths, a collapsed single-stuck-at fault universe,
combinational PODEM, time-frame-expansion sequential ATPG with a
backtrack budget, parallel-pattern fault simulation, and pseudorandom
(LFSR-driven) BIST simulation.
"""

from repro.gatelevel.gates import Gate, Netlist, NetlistError
from repro.gatelevel.simulate import simulate, parallel_simulate
from repro.gatelevel.faults import Fault, all_faults, collapse_faults
from repro.gatelevel.fault_sim import (
    fault_simulate,
    detected_faults,
    resolve_backend,
)
from repro.gatelevel.kernel import CompiledNetlist, compiled, have_kernel
from repro.gatelevel.expand import expand_datapath, expand_composite
from repro.gatelevel.atpg import (
    combinational_atpg,
    ATPGResult,
    resolve_atpg_backend,
)
from repro.gatelevel.seq_atpg import sequential_atpg, SequentialATPGResult
from repro.gatelevel.random_patterns import (
    random_pattern_coverage,
    bist_coverage_curve,
)
from repro.gatelevel.scan_chain import (
    ScanChain,
    apply_scan_test,
    scan_test_detects,
    stitch_scan_chain,
)
from repro.gatelevel.verilog import datapath_to_verilog, netlist_to_verilog
from repro.gatelevel.test_generation import TestSet, generate_tests
from repro.gatelevel.transition_faults import (
    TransitionFault,
    all_transition_faults,
    transition_coverage,
    transition_pair_masks,
)
from repro.gatelevel.bist_session import (
    BISTHardware,
    bist_fault_attribution,
    bist_fault_coverage,
    build_bist_hardware,
    jtag_session_signature,
)
from repro.gatelevel.structure import (
    CollapseMap,
    Structure,
    atpg_fault_order,
    collapse_map,
    resolve_collapse,
    resolve_guidance,
    scoap,
    structural_analysis,
    structure_stats,
)
from repro.gatelevel.vcd import dump_vcd, trace_to_vcd
from repro.gatelevel.vectors import (
    VectorFile,
    check_vectors,
    read_vectors,
    write_vectors,
)

__all__ = [
    "Gate",
    "Netlist",
    "NetlistError",
    "simulate",
    "parallel_simulate",
    "Fault",
    "all_faults",
    "collapse_faults",
    "fault_simulate",
    "detected_faults",
    "resolve_backend",
    "CompiledNetlist",
    "compiled",
    "have_kernel",
    "expand_datapath",
    "expand_composite",
    "combinational_atpg",
    "ATPGResult",
    "resolve_atpg_backend",
    "sequential_atpg",
    "SequentialATPGResult",
    "random_pattern_coverage",
    "bist_coverage_curve",
    "ScanChain",
    "apply_scan_test",
    "scan_test_detects",
    "stitch_scan_chain",
    "datapath_to_verilog",
    "netlist_to_verilog",
    "TestSet",
    "generate_tests",
    "TransitionFault",
    "all_transition_faults",
    "transition_coverage",
    "transition_pair_masks",
    "BISTHardware",
    "bist_fault_attribution",
    "bist_fault_coverage",
    "build_bist_hardware",
    "jtag_session_signature",
    "CollapseMap",
    "Structure",
    "atpg_fault_order",
    "collapse_map",
    "resolve_collapse",
    "resolve_guidance",
    "scoap",
    "structural_analysis",
    "structure_stats",
    "dump_vcd",
    "trace_to_vcd",
    "VectorFile",
    "check_vectors",
    "read_vectors",
    "write_vectors",
]
