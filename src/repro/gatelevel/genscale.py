"""Seeded synthetic netlists at 10k-100k gates for scale proofs.

The HLS front end in this repository produces datapaths of a few
hundred gates -- fine for equivalence tests, useless for measuring
shard dispatch cost.  This module grows reproducible gate-level designs
of arbitrary size: layered random combinational clouds over a bank of
D flip-flops (with feedback, so the sequential state actually evolves),
every dangling net mopped up into XOR observation trees, and optionally
a ``bist_en``-gated MISR (``sr0``) so the same design runs through the
BIST attribution path via :func:`bist_wrap`.

Everything is driven by one ``random.Random(seed)`` -- same
``(n_gates, seed, ...)`` arguments, same netlist, on any platform.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.gatelevel.faults import Fault, all_faults
from repro.gatelevel.gates import COMBINATIONAL_KINDS, Netlist

#: weighted kind pool for the combinational cloud; inverting kinds
#: dominate so the all-zero reset state does not freeze the machine.
_KIND_POOL = (
    "and", "or", "xor", "xor",
    "nand", "nand", "nor", "xnor",
    "not",
)

#: how far back the fanin bias window reaches -- keeps logic depth
#: growing (local structure) while global picks keep the cone wide.
_WINDOW = 24


def generate_netlist(
    n_gates: int,
    seed: int = 0,
    n_inputs: int | None = None,
    dff_ratio: float = 0.12,
    scan: bool = True,
    signature_bits: int = 0,
    buf_ratio: float = 0.0,
    name: str | None = None,
    kind_pool: Sequence[str] | None = None,
    window: int | None = None,
    pool_every: int = 8,
) -> Netlist:
    """A reproducible random sequential netlist of ``~n_gates`` gates.

    ``dff_ratio`` of the budget becomes scannable flip-flops whose
    names are forward-declared into the fanin pool (feedback loops
    through state, never through combinational logic, so the graph
    stays topologically sortable); ``dff_ratio=0`` yields a pure
    combinational design with no state at all.  ``signature_bits > 0``
    additionally builds a ``bist_en``-gated MISR register ``sr0`` fed
    from random taps -- the shape :func:`bist_wrap` turns into a
    :class:`~repro.gatelevel.bist_session.BISTHardware`.

    ``buf_ratio`` grows terminal buf/not chains (2-4 gates, chain
    interiors invisible to later fanin picks, so every link has exactly
    one consumer) with that probability per budget step -- the shape a
    technology mapper's buffer trees and inverter pairs take, and the
    designs the fault-collapsing benchmarks sweep.  ``buf_ratio=0``
    (the default) leaves the generator byte-identical to its historical
    output: the extra ``rng`` draw happens only inside the enabled
    branch.

    The remaining knobs parameterise the *shape* of the cloud and are
    what :mod:`repro.fuzz` steers: ``kind_pool`` is the weighted
    operator mix drawn from (default :data:`_KIND_POOL`), ``window``
    the fanin locality window (small = deep narrow logic, large = wide
    reconvergent cones), and ``pool_every`` how often a cloud net joins
    the global fanout pool (small = heavy multi-fanout reconvergence).
    The defaults reproduce the historical output bit-for-bit.
    """
    if n_gates < 8:
        raise ValueError(f"n_gates must be >= 8, got {n_gates}")
    if pool_every < 1:
        raise ValueError(f"pool_every must be >= 1, got {pool_every}")
    kinds = tuple(kind_pool) if kind_pool else _KIND_POOL
    for kind in kinds:
        if kind not in COMBINATIONAL_KINDS:
            raise ValueError(f"unknown gate kind {kind!r} in kind_pool")
    win = _WINDOW if window is None else max(1, int(window))
    rng = random.Random(seed)
    if n_inputs is None:
        n_inputs = min(256, max(8, n_gates // 64))
    n_dffs = 0 if dff_ratio <= 0 else max(1, round(n_gates * dff_ratio))
    n_comb = max(4, n_gates - n_dffs - 3 * signature_bits)
    nl = Netlist(name or f"genscale_s{seed}_g{n_gates}")

    inputs = [nl.add(f"i{k}", "input") for k in range(n_inputs)]
    dff_names = [f"d{k}" for k in range(n_dffs)]
    pool = inputs + dff_names
    comb: list[str] = []
    k = 0
    while k < n_comb:
        if buf_ratio and comb and rng.random() < buf_ratio:
            length = min(rng.randint(2, 4), n_comb - k)
            prev = comb[rng.randrange(
                max(0, len(comb) - win), len(comb))]
            for _ in range(length):
                kind = "buf" if rng.random() < 0.5 else "not"
                prev = nl.add(f"g{k}", kind, prev)
                k += 1
            # Only the chain tail joins the pickable window; the
            # interior links keep their single consumer.
            comb.append(prev)
            continue
        kind = rng.choice(kinds)
        arity = 1 if kind in ("not", "buf") else 2
        picks = []
        for _ in range(arity):
            if comb and rng.random() < 0.7:
                picks.append(comb[rng.randrange(
                    max(0, len(comb) - win), len(comb))])
            else:
                picks.append(pool[rng.randrange(len(pool))])
        comb.append(nl.add(f"g{k}", kind, *picks))
        if k % pool_every == 0:
            pool.append(comb[-1])
        k += 1

    # State bank last: the cloud already references the forward-declared
    # names, closing sequential feedback loops.
    for d in dff_names:
        nl.add(d, "dff", comb[rng.randrange(len(comb))], scan=scan)

    if signature_bits:
        nl.add("bist_en", "input")
        for i in range(signature_bits):
            tap = comb[rng.randrange(len(comb))]
            gated = nl.add(f"sr0_t{i}", "and", "bist_en", tap)
            prev = f"sr0_b{(i - 1) % signature_bits}"
            nl.add(f"sr0_x{i}", "xor", prev, gated)
        for i in range(signature_bits):
            nl.add(f"sr0_b{i}", "dff", f"sr0_x{i}", scan=False)

    _mop_up(nl)
    return nl


def _mop_up(nl: Netlist) -> None:
    """XOR-reduce every unread combinational net into observed outputs.

    Random clouds leave plenty of dangling drivers; folding them into a
    handful of XOR trees keeps :meth:`Netlist.validate` happy and --
    more importantly -- makes every gate's fault cone reach a primary
    output, so fault simulation at scale is not measuring dead logic.
    """
    consumed = {src for g in nl for src in g.inputs}
    pend = [
        g.name for g in nl
        if g.kind in COMBINATIONAL_KINDS and g.name not in consumed
    ]
    j = 0
    while len(pend) > 8:
        nxt = []
        for a, b in zip(pend[0::2], pend[1::2]):
            nxt.append(nl.add(f"m{j}", "xor", a, b))
            j += 1
        if len(pend) % 2:
            nxt.append(pend[-1])
        pend = nxt
    for net in pend:
        nl.add_output(net)


def random_patterns(
    netlist: Netlist,
    cycles: int,
    seed: int = 0,
    width: int = 64,
) -> list[dict[str, int]]:
    """``cycles`` packed PI assignments (``width`` patterns per bit)."""
    rng = random.Random(seed)
    pis = list(netlist.inputs())
    return [
        {pi: rng.getrandbits(width) for pi in pis}
        for _ in range(cycles)
    ]


def sample_faults(
    netlist: Netlist, n: int, seed: int = 0
) -> list[Fault]:
    """A deterministic ``n``-fault sample of the full fault universe."""
    universe = all_faults(netlist)
    if n >= len(universe):
        return list(universe)
    return random.Random(seed).sample(universe, n)


def bist_wrap(netlist: Netlist):
    """Wrap a ``signature_bits > 0`` genscale netlist as BIST hardware.

    The control record is minimal -- one ``bist_en`` enable, no mux
    selects, no module environments -- so attribution must be run with
    an explicit single session (``sessions=[["u0"]]``): everything the
    MISR taps is 'the unit under test'.
    """
    from repro.gatelevel.bist_session import BISTHardware

    if not any(g.name == "sr0_b0" for g in netlist.dffs()):
        raise ValueError(
            "netlist has no sr0 MISR; generate with signature_bits > 0"
        )
    return BISTHardware(
        netlist=netlist,
        control={"bist_en": "bist_en", "reg_sel": {}, "port_sel": {}},
        role_map={"sr0": "SR"},
        envs=(),
        datapath_name=netlist.name,
    )
