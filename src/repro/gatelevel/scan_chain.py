"""Scan-chain stitching and scan-based test application.

The scan insertion passes in :mod:`repro.scan` decide *which* registers
become scan registers; this module makes that concrete at the gate
level: the scan flip-flops are stitched into one or more shift chains
(``scan_in -> FF -> ... -> scan_out``) behind a ``scan_en`` mux, and
combinational test vectors are applied with the classic protocol:

1. shift the state portion of the vector in (``scan_en=1``, one cycle
   per bit of the longest chain -- multiple balanced chains shift in
   parallel, which is why testers use them),
2. apply the primary-input portion and capture one functional cycle
   (``scan_en=0``),
3. shift the captured response out.

:func:`apply_scan_test` simulates the full protocol cycle-accurately,
so detection results include any shift-path effects instead of assuming
ideal scan access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.gatelevel.faults import Fault
from repro.gatelevel.gates import Netlist
from repro.gatelevel.simulate import parallel_simulate


@dataclass(frozen=True)
class ScanChain:
    """One or more stitched scan chains over a netlist's scan DFFs."""

    netlist: Netlist
    chains: tuple[tuple[str, ...], ...]

    @property
    def order(self) -> tuple[str, ...]:
        """All scan FFs, chain by chain (compatibility accessor)."""
        return tuple(ff for chain in self.chains for ff in chain)

    @property
    def length(self) -> int:
        """Total scan FFs across chains."""
        return sum(len(c) for c in self.chains)

    @property
    def depth(self) -> int:
        """Shift cycles needed: the longest chain's length."""
        return max((len(c) for c in self.chains), default=0)

    def scan_in_name(self, k: int) -> str:
        return "scan_in" if len(self.chains) == 1 else f"scan_in{k}"


def stitch_scan_chain(
    netlist: Netlist,
    order: Sequence[str] | None = None,
    n_chains: int = 1,
) -> tuple[Netlist, ScanChain]:
    """Rebuild ``netlist`` with its scan DFFs stitched into chains.

    Adds ``scan_en`` plus one scan-in input per chain and exposes each
    chain's last FF as a primary output; every scan DFF's D input
    becomes ``mux(scan_en, previous-chain-bit, functional D)``.  The
    FFs are dealt round-robin into ``n_chains`` balanced chains.  The
    original netlist is not modified.
    """
    scan_ffs = [g.name for g in netlist.scan_dffs()]
    if order is None:
        order = sorted(scan_ffs)
    elif sorted(order) != sorted(scan_ffs):
        raise ValueError("order must permute exactly the scan DFFs")
    if n_chains < 1:
        raise ValueError("n_chains must be >= 1")
    n_chains = min(n_chains, max(1, len(order)))
    chains: list[list[str]] = [[] for _ in range(n_chains)]
    for i, ff in enumerate(order):
        chains[i % n_chains].append(ff)
    chains = [c for c in chains if c]

    out = Netlist(f"{netlist.name}+chain")
    chain_obj = ScanChain(out, tuple(tuple(c) for c in chains))
    out.add("scan_en", "input")
    chain_src: dict[str, str] = {}
    for k, chain in enumerate(chains):
        si = chain_obj.scan_in_name(k)
        out.add(si, "input")
        chain_src[chain[0]] = si
        for a, b in zip(chain, chain[1:]):
            chain_src[b] = a
    for gate in netlist:
        if gate.kind == "dff" and gate.scan:
            mux = f"scanmux_{gate.name}"
            out.add(mux, "mux", "scan_en", chain_src[gate.name],
                    gate.inputs[0])
            out.add(gate.name, "dff", mux, scan=True)
        else:
            out.add(gate.name, gate.kind, *gate.inputs, scan=gate.scan)
    out.outputs = list(netlist.outputs)
    for chain in chains:
        out.add_output(chain[-1])  # scan_out per chain
    out.validate()
    return out, chain_obj


@dataclass(frozen=True)
class ScanTestResult:
    """Outcome of applying one scan test."""

    po_values: dict[str, int]
    captured_state: dict[str, int]
    cycles_used: int


def apply_scan_test(
    chained: Netlist,
    chain: ScanChain,
    pi_values: Mapping[str, int],
    state_values: Mapping[str, int],
    forced: Mapping[str, int] | None = None,
) -> ScanTestResult:
    """Run the shift/capture protocol for one test, cycle-accurately.

    ``state_values`` gives the desired pre-capture value per scan FF;
    ``pi_values`` the primary-input portion.  Returns the primary
    outputs observed during the capture cycle and the response captured
    into the chains (read back via a full shift-out).  All chains shift
    in parallel, so the protocol costs ``2 * chain.depth + 1`` cycles.
    """
    pis = {pi: 0 for pi in chained.inputs()}
    pis.update(pi_values)
    topo = chained.topo_order()
    state: dict[str, int] = {}
    cycles = 0
    depth = chain.depth

    # -- shift in (parallel across chains): the bit for a chain's last
    # FF travels the whole chain, so present last-FF bits first; short
    # chains idle (shift zeros) during the leading cycles.
    for step in range(depth):
        piv = dict(pis)
        piv["scan_en"] = 1
        for k, ffs in enumerate(chain.chains):
            lead = depth - len(ffs)
            idx = len(ffs) - 1 - (step - lead)
            bit = (
                state_values.get(ffs[idx], 0)
                if 0 <= idx < len(ffs) else 0
            )
            piv[chain.scan_in_name(k)] = bit
        _vals, state = parallel_simulate(
            chained, piv, state, width=1, order=topo, forced=forced
        )
        cycles += 1

    # -- capture one functional cycle
    piv = dict(pis)
    piv["scan_en"] = 0
    vals, state = parallel_simulate(
        chained, piv, state, width=1, order=topo, forced=forced
    )
    cycles += 1
    po_values = {po: vals[po] for po in chained.outputs}

    # -- shift out (parallel): after s shifts, each chain's last FF
    # holds the capture of its element len-1-s.
    captured: dict[str, int] = {}
    for step in range(depth):
        for ffs in chain.chains:
            idx = len(ffs) - 1 - step
            if idx >= 0:
                captured[ffs[idx]] = state[ffs[-1]]
        piv = dict(pis)
        piv["scan_en"] = 1
        for k in range(len(chain.chains)):
            piv[chain.scan_in_name(k)] = 0
        _vals, state = parallel_simulate(
            chained, piv, state, width=1, order=topo, forced=forced
        )
        cycles += 1
    return ScanTestResult(po_values, captured, cycles)


def scan_test_detects(
    chained: Netlist,
    chain: ScanChain,
    fault: Fault,
    pi_values: Mapping[str, int],
    state_values: Mapping[str, int],
) -> bool:
    """True when the scan protocol exposes ``fault`` for this test."""
    forced = {fault.net: fault.stuck_at & 1}
    good = apply_scan_test(chained, chain, pi_values, state_values)
    bad = apply_scan_test(
        chained, chain, pi_values, state_values, forced=forced
    )
    if good.po_values != bad.po_values:
        return True
    return good.captured_state != bad.captured_state
