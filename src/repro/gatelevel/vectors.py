"""Plain-text test-vector files.

A minimal tester-interchange format for the test sets produced by
:mod:`repro.gatelevel.test_generation`: a header naming the input and
output columns, then one line per vector with the applied bits and the
expected (good-machine) response.  Round-trips losslessly; expected
responses are computed by simulation at write time so the file is
self-checking.

Format::

    # repro test vectors v1
    inputs a b scan_en ...
    outputs po_0 po_1 ...
    0101... -> 10...
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.gatelevel.gates import Netlist
from repro.gatelevel.simulate import parallel_simulate

_HEADER = "# repro test vectors v1"


@dataclass(frozen=True)
class VectorFile:
    """Parsed contents of a vector file."""

    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    vectors: tuple[tuple[dict[str, int], dict[str, int]], ...]

    def __len__(self) -> int:
        return len(self.vectors)


def _input_columns(netlist: Netlist) -> list[str]:
    cols = sorted(netlist.inputs())
    cols += sorted(g.name for g in netlist.scan_dffs())
    return cols


def write_vectors(
    netlist: Netlist,
    vectors: Sequence[Mapping[str, int]],
) -> str:
    """Render ``vectors`` (PI + scan-state assignments) with expected
    responses computed by one capture cycle each."""
    cols = _input_columns(netlist)
    outs = list(netlist.outputs)
    scan = {g.name for g in netlist.scan_dffs()}
    order = netlist.topo_order()
    buf = io.StringIO()
    buf.write(_HEADER + "\n")
    buf.write("inputs " + " ".join(cols) + "\n")
    buf.write("outputs " + " ".join(outs) + "\n")
    for vec in vectors:
        in_bits = "".join(str(vec.get(c, 0) & 1) for c in cols)
        out_bits = "".join(
            str(b) for b in _capture_response(netlist, order, scan, vec)
        )
        buf.write(f"{in_bits} -> {out_bits}\n")
    return buf.getvalue()


def _capture_response(netlist, order, scan, vec) -> list[int]:
    """Post-capture value of each output net for one vector.

    Output nets that are flip-flops report their *captured* (next
    state) value -- that is what a tester unloads through the chain.
    """
    piv = {k: v for k, v in vec.items() if k not in scan}
    state = {k: v for k, v in vec.items() if k in scan}
    vals, nxt = parallel_simulate(
        netlist, piv, state, width=1, order=order
    )
    dffs = {g.name for g in netlist.dffs()}
    return [
        (nxt[o] if o in dffs else vals[o]) & 1 for o in netlist.outputs
    ]


def read_vectors(text: str) -> VectorFile:
    """Parse a vector file; raises ValueError on malformed content."""
    lines = [l.strip() for l in text.splitlines() if l.strip()]
    if not lines or lines[0] != _HEADER:
        raise ValueError("not a repro vector file (bad header)")
    if not lines[1].startswith("inputs ") or not lines[2].startswith(
        "outputs "
    ):
        raise ValueError("missing inputs/outputs declarations")
    inputs = tuple(lines[1].split()[1:])
    outputs = tuple(lines[2].split()[1:])
    vectors = []
    for line in lines[3:]:
        try:
            in_bits, out_bits = (s.strip() for s in line.split("->"))
        except ValueError as exc:
            raise ValueError(f"malformed vector line: {line!r}") from exc
        if len(in_bits) != len(inputs) or len(out_bits) != len(outputs):
            raise ValueError(f"bit-count mismatch in line: {line!r}")
        vec = {c: int(b) for c, b in zip(inputs, in_bits)}
        exp = {o: int(b) for o, b in zip(outputs, out_bits)}
        vectors.append((vec, exp))
    return VectorFile(inputs, outputs, tuple(vectors))


def check_vectors(netlist: Netlist, vf: VectorFile) -> list[int]:
    """Re-simulate a parsed file; returns indices of failing vectors
    (empty when the netlist matches the recorded responses)."""
    scan = {g.name for g in netlist.scan_dffs()}
    order = netlist.topo_order()
    failing = []
    for i, (vec, exp) in enumerate(vf.vectors):
        got = _capture_response(netlist, order, scan, vec)
        if any(
            got[k] != exp[o] for k, o in enumerate(netlist.outputs)
            if o in exp
        ):
            failing.append(i)
    return failing
