"""Logic simulation: scalar (0/1) and parallel-pattern (bitwise).

Parallel simulation packs up to 64 test patterns into one Python int
per net and evaluates each gate once with bitwise operators -- the
standard trick that makes fault simulation affordable in pure Python.
"""

from __future__ import annotations

from typing import Mapping

from repro.gatelevel.gates import Netlist, NetlistError


def _eval_gate(kind: str, vals: list[int], mask: int) -> int:
    if kind == "buf":
        return vals[0]
    if kind == "not":
        return ~vals[0] & mask
    if kind == "and":
        return vals[0] & vals[1]
    if kind == "or":
        return vals[0] | vals[1]
    if kind == "nand":
        return ~(vals[0] & vals[1]) & mask
    if kind == "nor":
        return ~(vals[0] | vals[1]) & mask
    if kind == "xor":
        return vals[0] ^ vals[1]
    if kind == "xnor":
        return ~(vals[0] ^ vals[1]) & mask
    if kind == "mux":
        s, a, b = vals
        return (s & a) | (~s & b & mask)
    raise NetlistError(f"cannot evaluate gate kind {kind!r}")


def parallel_simulate(
    netlist: Netlist,
    pi_values: Mapping[str, int],
    state: Mapping[str, int] | None = None,
    width: int = 64,
    order: list[str] | None = None,
    forced: Mapping[str, int] | None = None,
) -> tuple[dict[str, int], dict[str, int]]:
    """Evaluate one clock cycle for ``width`` packed patterns.

    ``pi_values`` maps each primary input to a packed int (bit *i* =
    pattern *i*); ``state`` supplies current DFF outputs (default 0).
    ``forced`` overrides net values after evaluation -- the fault
    injection hook (a stuck-at-v fault forces the net to all-v).

    Returns ``(net_values, next_state)``.
    """
    mask = (1 << width) - 1
    state = state or {}
    forced = forced or {}
    values: dict[str, int] = {}
    if order is None:
        order = netlist.topo_order()
    for name in order:
        gate = netlist.gate(name)
        if gate.kind == "input":
            v = pi_values.get(name, 0) & mask
        elif gate.kind == "const0":
            v = 0
        elif gate.kind == "const1":
            v = mask
        elif gate.kind == "dff":
            v = state.get(name, 0) & mask
        else:
            v = _eval_gate(
                gate.kind, [values[i] for i in gate.inputs], mask
            )
        if name in forced:
            v = forced[name] & mask
        values[name] = v
    next_state = {}
    for g in netlist.dffs():
        next_state[g.name] = values[g.inputs[0]]
        if g.name in forced:
            # A fault on the FF output keeps forcing its state too.
            next_state[g.name] = forced[g.name] & mask
    return values, next_state


def simulate(
    netlist: Netlist,
    pi_values: Mapping[str, int],
    state: Mapping[str, int] | None = None,
) -> tuple[dict[str, int], dict[str, int]]:
    """Single-pattern convenience wrapper (values are 0/1)."""
    vals, nxt = parallel_simulate(netlist, pi_values, state, width=1)
    return vals, nxt


def simulate_sequence(
    netlist: Netlist,
    pi_sequence: list[Mapping[str, int]],
    initial_state: Mapping[str, int] | None = None,
    width: int = 64,
    forced: Mapping[str, int] | None = None,
) -> list[dict[str, int]]:
    """Clock the netlist through a vector sequence; returns per-cycle
    net values (packed)."""
    order = netlist.topo_order()
    state = dict(initial_state or {})
    out = []
    for piv in pi_sequence:
        vals, state = parallel_simulate(
            netlist, piv, state, width=width, order=order, forced=forced
        )
        out.append(vals)
    return out
