"""Combinational ATPG: a two-machine PODEM.

The good and faulty machines are simulated in 3-valued logic (0/1/X);
a fault is detected when some observation point is binary in both
machines with different values.  Decisions are made only at *control
points* (primary inputs and scan flip-flop outputs), per the PODEM
discipline; objectives are backtraced through X-paths.

Observation points are the primary outputs plus the D-inputs of scan
flip-flops (a scanned FF's captured value is unloadable); control
points are the primary inputs plus scan-FF outputs.  This gives the
standard scan-based combinational ATPG semantics used by the
experiments.

Two search-state engines produce *identical* results (same test, same
decision and backtrack counts, property-tested in
``tests/test_atpg_equivalence.py``):

* the **event-driven engine** (default): on each decision or backtrack
  only the fanout cone of the changed control point is re-evaluated,
  for both machines, and the D-frontier and detection state are
  maintained incrementally;
* the **reference engine**: whole-netlist 3-valued re-simulation of
  both machines on every search step, kept for equivalence checking.

Select with ``backend=`` (``"event"`` / ``"reference"``) or the
``REPRO_ATPG_BACKEND`` environment variable, mirroring the fault-sim
kernel's knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Mapping, Sequence

from repro.gatelevel.faults import Fault
from repro.gatelevel.gates import Netlist
from repro.gatelevel.structure import INF as _SCOAP_INF
from repro.gatelevel.structure import resolve_guidance

X = None

BACKEND_ENV = "REPRO_ATPG_BACKEND"


#: canonical ATPG engine names and their accepted aliases.
_ATPG_BACKEND_CHOICES = {
    "event": (),
    "reference": ("ref", "interp", "interpreter"),
}


def resolve_atpg_backend(backend: str | None = None) -> str:
    """Normalise an ATPG backend choice: explicit arg > env > event.

    Validated through :mod:`repro.knobs`, so a typo in
    ``REPRO_ATPG_BACKEND`` raises one actionable line up front instead
    of a bare ``ValueError`` inside a shard worker.
    """
    from repro.knobs import env_choice, normalize_choice

    if backend is None:
        return env_choice(BACKEND_ENV, "event", _ATPG_BACKEND_CHOICES)
    return normalize_choice(backend, "backend", _ATPG_BACKEND_CHOICES)

_NONCONTROLLING = {"and": 1, "nand": 1, "or": 0, "nor": 0}
_INVERTING = {"not", "nand", "nor", "xnor"}


def _eval3(kind: str, ins: list) -> int | None:
    if kind == "buf":
        return ins[0]
    if kind == "not":
        return None if ins[0] is X else 1 - ins[0]
    if kind in ("and", "nand"):
        if 0 in ins:
            v = 0
        elif X in ins:
            return X
        else:
            v = 1
        return v if kind == "and" else 1 - v
    if kind in ("or", "nor"):
        if 1 in ins:
            v = 1
        elif X in ins:
            return X
        else:
            v = 0
        return v if kind == "or" else 1 - v
    if kind in ("xor", "xnor"):
        if X in ins:
            return X
        v = ins[0] ^ ins[1]
        return v if kind == "xor" else 1 - v
    if kind == "mux":
        s, a, b = ins
        if s is X:
            return a if (a is not X and a == b) else X
        return a if s else b
    raise ValueError(f"cannot 3-value evaluate {kind!r}")


def sim3(
    netlist: Netlist,
    order: Sequence[str],
    assign: Mapping[str, int],
    forced: Mapping[str, int] | None = None,
) -> dict[str, int | None]:
    """3-valued simulation; unassigned inputs and DFF outputs are X."""
    return _sim3_gates(
        [netlist.gate(n) for n in order], assign, forced
    )


def _sim3_gates(
    gates: Sequence,
    assign: Mapping[str, int],
    forced: Mapping[str, int] | None = None,
) -> dict[str, int | None]:
    """:func:`sim3` over a pre-resolved topo-ordered gate list.

    PODEM simulates both machines on every decision, so the per-call
    name->gate dict resolution is hoisted out (the good-machine hot
    path; :func:`combinational_atpg` builds the list once).
    """
    forced = forced or {}
    values: dict[str, int | None] = {}
    for gate in gates:
        name = gate.name
        if gate.kind in ("input", "dff"):
            v = assign.get(name, X)
        elif gate.kind == "const0":
            v = 0
        elif gate.kind == "const1":
            v = 1
        else:
            v = _eval3(gate.kind, [values[i] for i in gate.inputs])
        if name in forced:
            v = forced[name]
        values[name] = v
    return values


@dataclass
class ATPGResult:
    """Outcome of one ATPG attempt."""

    fault: Fault
    detected: bool
    aborted: bool
    test: dict[str, int] | None
    backtracks: int
    decisions: int

    @property
    def effort(self) -> int:
        """Search effort: decisions + backtracks (the E-3.1 metric)."""
        return self.decisions + self.backtracks


def default_observe(netlist: Netlist) -> list[str]:
    return list(netlist.outputs) + [
        g.inputs[0] for g in netlist.scan_dffs()
    ]


def default_control(netlist: Netlist) -> set[str]:
    return set(netlist.inputs()) | {g.name for g in netlist.scan_dffs()}


def combinational_atpg(
    netlist: Netlist,
    fault: Fault,
    backtrack_limit: int = 500,
    observe: Sequence[str] | None = None,
    control: set[str] | None = None,
    forced_extra: Mapping[str, int] | None = None,
    backend: str | None = None,
    guidance: bool | None = None,
    structure=None,
) -> ATPGResult:
    """PODEM for one stuck-at fault.

    ``forced_extra`` injects the fault at additional nets (used by the
    time-frame expansion, where the same fault exists in every frame).
    ``backend`` selects the search-state engine (see module docstring);
    both engines return identical :class:`ATPGResult`\\ s.

    With ``guidance`` (default: the ``REPRO_ATPG_GUIDANCE`` knob, on)
    the backtrace picks the easiest-to-set candidate by SCOAP
    controllability instead of the first live one, which steers the
    search away from hard-to-justify branches; classification
    (detected / untestable) is search-order independent, only the
    returned vector and effort counts may differ.  ``structure``
    supplies a precomputed :class:`repro.gatelevel.structure.Structure`
    (shard workers resolve it off the payload plane); when omitted the
    cached per-netlist analysis is used.
    """
    backend = resolve_atpg_backend(backend)
    order = netlist.topo_order()
    if observe is None:
        observe = default_observe(netlist)
    if control is None:
        control = default_control(netlist)
    scoap = None
    if resolve_guidance(guidance):
        if structure is None:
            from repro.gatelevel.structure import structural_analysis

            structure = structural_analysis(netlist)
        scoap = (structure.cc0, structure.cc1, structure.co)
    forced = {fault.net: fault.stuck_at}
    forced.update(forced_extra or {})
    # A fault on a scan flip-flop's *output* net forces the captured
    # state too (see ``parallel_simulate``): the scan chain unloads the
    # stuck value while the good machine unloads whatever the D-input
    # captured.  That gives a second detection route the ordinary
    # observe list cannot see -- the fault is visible whenever the good
    # machine's D-input justifies to the opposite of the stuck value,
    # with no propagation through logic at all.
    scan_obs = None
    site_gate = netlist.gates.get(fault.net)
    if (site_gate is not None and site_gate.kind == "dff"
            and site_gate.scan and forced_extra is None):
        scan_obs = (site_gate.inputs[0], 1 - fault.stuck_at)
    reachable = _control_support(netlist, order, control)
    if backend == "event":
        engine: _ReferenceEngine | _EventEngine = _EventEngine(
            netlist, forced, observe
        )
    else:
        engine = _ReferenceEngine(netlist, forced, observe)

    assign: dict[str, int] = {}
    stack: list[list] = []  # [net, value, exhausted]
    backtracks = 0
    decisions = 0

    while True:
        engine.refresh(assign)
        good = engine.good
        if engine.detected() or (
            scan_obs is not None and good[scan_obs[0]] == scan_obs[1]
        ):
            return ATPGResult(fault, True, False, dict(assign),
                              backtracks, decisions)
        target = _find_target(
            netlist, fault, engine, control, assign, reachable, scoap,
            scan_obs,
        )
        if target is None:
            # Conflict or uncontrollable objective: backtrack.
            while stack and stack[-1][2]:
                net, _v, _e = stack.pop()
                del assign[net]
                engine.unassign(net)
            if not stack:
                aborted = backtracks >= backtrack_limit
                return ATPGResult(fault, False, aborted, None,
                                  backtracks, decisions)
            stack[-1][1] ^= 1
            stack[-1][2] = True
            assign[stack[-1][0]] = stack[-1][1]
            engine.set(stack[-1][0], stack[-1][1])
            backtracks += 1
            if backtracks >= backtrack_limit:
                return ATPGResult(fault, False, True, None,
                                  backtracks, decisions)
            continue
        net, val = target
        assign[net] = val
        engine.set(net, val)
        stack.append([net, val, False])
        decisions += 1


def _detected_at(observe, good, bad) -> bool:
    return any(
        good[o] is not X and bad[o] is not X and good[o] != bad[o]
        for o in observe
    )


def _find_target(netlist, fault, engine, control, assign, reachable,
                 scoap=None, scan_obs=None):
    """Next PODEM decision: activate the fault, then advance the
    D-frontier.  Returns a backtraced (control point, value) or None
    when every objective under the current assignment is hopeless.

    Every D-frontier gate is tried in turn (first by netlist scan
    order; with ``scoap`` guidance, easiest-to-observe first): a gate
    whose side input cannot be driven to its non-controlling value
    cannot propagate the fault *now*, but another frontier gate still
    can -- committing to the first gate and treating its backtrace
    failure as a conflict (the historical behaviour) manufactured
    search-order-dependent "untestable" verdicts.

    ``scan_obs`` is the scan-out detection route for a fault sitting on
    a scan flip-flop's output: justifying the FF's D-input to the
    opposite of the stuck value needs no propagation at all, so it is
    tried before fault activation.
    """
    good = engine.good
    if scan_obs is not None and good[scan_obs[0]] is X:
        target = _backtrace(
            netlist, good, control, assign, reachable,
            scan_obs[0], scan_obs[1], scoap=scoap,
        )
        if target is not None:
            return target
    site = good[fault.net]
    if site is X:
        return _backtrace(
            netlist, good, control, assign, reachable,
            fault.net, 1 - fault.stuck_at, scoap=scoap,
        )
    if site == fault.stuck_at:
        return None  # activation conflict under current assignment
    frontier = engine.frontier()
    if scoap is not None and len(frontier) > 1:
        co = scoap[2]
        # sorted() is stable: ties keep netlist scan order.
        frontier = sorted(
            frontier, key=lambda g: co.get(g, _SCOAP_INF)
        )
    for name in frontier:
        gate = netlist.gate(name)
        nc = _NONCONTROLLING.get(gate.kind)
        for src in gate.inputs:
            if good[src] is X:
                target = _backtrace(
                    netlist, good, control, assign, reachable,
                    src, nc if nc is not None else 1, scoap=scoap,
                )
                if target is not None:
                    return target
                break  # this gate cannot propagate under this assignment
    return None


def _d_frontier(netlist, good, bad) -> list[str]:
    out = []
    for g in netlist:
        if g.kind in ("input", "dff", "const0", "const1"):
            continue
        if good[g.name] is not X and bad[g.name] is not X:
            continue
        for src in g.inputs:
            gs, bs = good[src], bad[src]
            if gs is not X and bs is not X and gs != bs:
                out.append(g.name)
                break
    return out


class _ReferenceEngine:
    """Whole-netlist re-simulation on every search step (the original
    PODEM inner loop, kept as the equivalence baseline)."""

    def __init__(self, netlist: Netlist, forced: Mapping[str, int],
                 observe: Sequence[str]) -> None:
        self.netlist = netlist
        self.forced = forced
        self.observe = list(observe)
        self._gates = [netlist.gate(n) for n in netlist.topo_order()]
        self.good: dict[str, int | None] = {}
        self.bad: dict[str, int | None] = {}

    def refresh(self, assign: Mapping[str, int]) -> None:
        self.good = _sim3_gates(self._gates, assign)
        self.bad = _sim3_gates(self._gates, assign, forced=self.forced)

    def set(self, net: str, val: int) -> None:  # state read at refresh
        pass

    def unassign(self, net: str) -> None:
        pass

    def detected(self) -> bool:
        return _detected_at(self.observe, self.good, self.bad)

    def frontier(self) -> list[str]:
        return _d_frontier(self.netlist, self.good, self.bad)


_SOURCE_KINDS = ("input", "dff", "const0", "const1")


class _EventEngine:
    """Event-driven incremental search state.

    Both machines are fully simulated once (under the empty
    assignment); every subsequent decision/backtrack re-evaluates only
    the fanout cone of the changed control point, in topological order,
    stopping where values settle.  The D-frontier is a maintained set
    (queried as "first gate in netlist insertion order", matching
    :func:`_d_frontier`'s scan order exactly), and detection is a
    maintained set of observation points currently showing a binary
    good/bad difference.
    """

    def __init__(self, netlist: Netlist, forced: Mapping[str, int],
                 observe: Sequence[str]) -> None:
        self.netlist = netlist
        gates = netlist.gates
        self._gates = gates
        self.forced = {n: v for n, v in forced.items() if n in gates}
        order = netlist.topo_order()
        self._topo_pos = {n: i for i, n in enumerate(order)}
        self._order = order
        # _d_frontier scans gates in insertion order; the maintained
        # frontier must report its minimum under the same order.
        self._scan_pos = {n: i for i, n in enumerate(gates)}
        self._consumers = netlist.consumers()
        self.assign: dict[str, int] = {}
        topo_gates = [gates[n] for n in order]
        self.good = _sim3_gates(topo_gates, {})
        self.bad = _sim3_gates(topo_gates, {}, forced=self.forced)
        self._observe_set = set(observe)
        self._diff_obs = {
            o for o in self._observe_set
            if self.good[o] is not X and self.bad[o] is not X
            and self.good[o] != self.bad[o]
        }
        self._frontier = {
            g.name for g in netlist if self._is_frontier(g.name)
        }

    # -- engine interface ------------------------------------------------

    def refresh(self, assign: Mapping[str, int]) -> None:
        pass  # state is maintained by set()/unassign()

    def set(self, net: str, val: int) -> None:
        self.assign[net] = val
        self._propagate(net)

    def unassign(self, net: str) -> None:
        del self.assign[net]
        self._propagate(net)

    def detected(self) -> bool:
        return bool(self._diff_obs)

    def frontier(self) -> list[str]:
        return sorted(self._frontier, key=self._scan_pos.__getitem__)

    # -- incremental machinery -------------------------------------------

    def _eval_good(self, name: str):
        gate = self._gates[name]
        kind = gate.kind
        if kind in ("input", "dff"):
            return self.assign.get(name, X)
        if kind == "const0":
            return 0
        if kind == "const1":
            return 1
        good = self.good
        return _eval3(kind, [good[i] for i in gate.inputs])

    def _eval_bad(self, name: str):
        gate = self._gates[name]
        kind = gate.kind
        if kind in ("input", "dff"):
            return self.assign.get(name, X)
        if kind == "const0":
            return 0
        if kind == "const1":
            return 1
        bad = self.bad
        return _eval3(kind, [bad[i] for i in gate.inputs])

    def _propagate(self, root: str) -> None:
        """Re-evaluate the fanout cone of ``root`` in topological order,
        then refresh frontier/detection views for the changed nets."""
        topo_pos = self._topo_pos
        consumers = self._consumers
        forced = self.forced
        heap = [topo_pos[root]]
        queued = {root}
        changed: list[str] = []
        while heap:
            name = self._order[heappop(heap)]
            queued.discard(name)
            delta = False
            g = self._eval_good(name)
            if g != self.good[name]:
                self.good[name] = g
                delta = True
            if name in forced:
                b = forced[name]
            else:
                b = self._eval_bad(name)
            if b != self.bad[name]:
                self.bad[name] = b
                delta = True
            if delta:
                changed.append(name)
                for c in consumers.get(name, ()):
                    if c not in queued:
                        queued.add(c)
                        heappush(heap, topo_pos[c])
        if changed:
            self._update_views(changed)

    def _update_views(self, changed: list[str]) -> None:
        good, bad = self.good, self.bad
        recheck = set(changed)
        for name in changed:
            if name in self._observe_set:
                if (good[name] is not X and bad[name] is not X
                        and good[name] != bad[name]):
                    self._diff_obs.add(name)
                else:
                    self._diff_obs.discard(name)
            recheck.update(self._consumers.get(name, ()))
        frontier = self._frontier
        for name in recheck:
            if self._is_frontier(name):
                frontier.add(name)
            else:
                frontier.discard(name)

    def _is_frontier(self, name: str) -> bool:
        gate = self._gates[name]
        if gate.kind in _SOURCE_KINDS:
            return False
        good, bad = self.good, self.bad
        if good[name] is not X and bad[name] is not X:
            return False
        for src in gate.inputs:
            gs, bs = good[src], bad[src]
            if gs is not X and bs is not X and gs != bs:
                return True
        return False


def _control_support(netlist, order, control) -> set[str]:
    """Nets whose input cone contains a control point (so an X there can
    in principle be justified by PI/scan assignments)."""
    supported: set[str] = set()
    for name in order:
        if name in control:
            supported.add(name)
            continue
        gate = netlist.gate(name)
        if gate.kind in ("input", "dff", "const0", "const1"):
            continue
        if any(i in supported for i in gate.inputs):
            supported.add(name)
    return supported


def _backtrace(netlist, good, control, assign, reachable, net, val,
               scoap=None):
    """Find an X-path from the objective to an unassigned control point.

    A memoised depth-first search over the candidate X-inputs at each
    gate: when the preferred branch dead-ends (an already-assigned
    control point, unscanned state, a constant), the *next* candidate
    is tried instead of reporting a conflict.  Failure is therefore a
    property of the objective, not of the branch ordering -- the walk
    returns ``None`` only when **no** X-path to an unassigned control
    point exists, so SCOAP-guided and unguided searches reach the same
    conflicts and the same classification, differing only in which
    control assignment (and hence which vector) comes back first.

    ``scoap`` is an optional ``(cc0, cc1)`` pair of per-net SCOAP
    controllability maps; when present, candidates are tried
    cheapest-to-set first (deterministic: cost, then first-listed
    order) instead of plain first-listed order.
    """
    #: (net, val) pairs proven to have no X-path to an unassigned
    #: control point under the current assignment -- the memo that
    #: keeps the retry search linear in the cone size.
    dead: set[tuple[str, int]] = set()

    def ordered(candidates: list[str], want: int) -> list[str]:
        # Branches with no control point anywhere in their cone can
        # never terminate the walk; drop them outright.
        live = [s for s in candidates if s in reachable]
        if scoap is None or len(live) < 2:
            return live
        costs = scoap[0] if want == 0 else scoap[1]
        # sorted() is stable: equal costs fall back to first-listed
        # order, keeping the guided search deterministic.
        return sorted(live, key=lambda s: costs.get(s, _SCOAP_INF))

    def walk(net: str, val: int, depth: int):
        if depth > len(netlist) + 1:
            return None
        key = (net, val)
        if key in dead:
            return None
        found = _walk(net, val, depth)
        if found is None:
            dead.add(key)
        return found

    def _walk(net: str, val: int, depth: int):
        if net in control:
            if net in assign:
                return None
            return (net, val)
        gate = netlist.gate(net)
        if gate.kind in ("dff", "input", "const0", "const1"):
            return None  # uncontrollable source (unscanned state / const)
        kind = gate.kind
        if kind in _INVERTING:
            val = 1 - val
        if kind in ("buf", "not"):
            return walk(gate.inputs[0], val, depth + 1)
        if kind in ("and", "nand", "or", "nor"):
            # val (inversion already applied) is the AND/OR-part target;
            # both "all inputs to the non-controlling value" and "one
            # input to the controlling value" mean driving an X input to
            # val itself.
            xin = [s for s in gate.inputs if good[s] is X]
            for choice in ordered(xin, val):
                found = walk(choice, val, depth + 1)
                if found is not None:
                    return found
            return None
        if kind in ("xor", "xnor"):
            a, b = gate.inputs
            xin = [s for s in (a, b) if good[s] is X]
            for choice in ordered(xin, val):
                other = b if choice == a else a
                want = val ^ (good[other] if good[other] is not X else 0)
                found = walk(choice, want, depth + 1)
                if found is not None:
                    return found
            return None
        if kind == "mux":
            s, a, b = gate.inputs
            if good[s] is X and s in reachable:
                # steer toward a justifiable X data input first, but
                # keep the other select polarity as a fallback
                if good[a] is X and a in reachable:
                    sel_order = (1, 0)
                elif good[b] is X and b in reachable:
                    sel_order = (0, 1)
                elif good[a] is X:
                    sel_order = (1, 0)
                else:
                    sel_order = (0, 1)
                for sv in sel_order:
                    found = walk(s, sv, depth + 1)
                    if found is not None:
                        return found
                return None
            if good[s] is X:
                # select uncontrollable: try a data input that already
                # matches on both legs, else give up on this path
                xin = [d for d in (a, b) if good[d] is X]
                for choice in ordered(xin, val):
                    found = walk(choice, val, depth + 1)
                    if found is not None:
                        return found
                return None
            return walk(a if good[s] == 1 else b, val, depth + 1)
        return None

    return walk(net, val, 0)
