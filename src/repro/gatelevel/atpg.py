"""Combinational ATPG: a two-machine PODEM.

The good and faulty machines are simulated in 3-valued logic (0/1/X);
a fault is detected when some observation point is binary in both
machines with different values.  Decisions are made only at *control
points* (primary inputs and scan flip-flop outputs), per the PODEM
discipline; objectives are backtraced through X-paths.

Observation points are the primary outputs plus the D-inputs of scan
flip-flops (a scanned FF's captured value is unloadable); control
points are the primary inputs plus scan-FF outputs.  This gives the
standard scan-based combinational ATPG semantics used by the
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.gatelevel.faults import Fault
from repro.gatelevel.gates import Netlist

X = None

_NONCONTROLLING = {"and": 1, "nand": 1, "or": 0, "nor": 0}
_INVERTING = {"not", "nand", "nor", "xnor"}


def _eval3(kind: str, ins: list) -> int | None:
    if kind == "buf":
        return ins[0]
    if kind == "not":
        return None if ins[0] is X else 1 - ins[0]
    if kind in ("and", "nand"):
        if 0 in ins:
            v = 0
        elif X in ins:
            return X
        else:
            v = 1
        return v if kind == "and" else 1 - v
    if kind in ("or", "nor"):
        if 1 in ins:
            v = 1
        elif X in ins:
            return X
        else:
            v = 0
        return v if kind == "or" else 1 - v
    if kind in ("xor", "xnor"):
        if X in ins:
            return X
        v = ins[0] ^ ins[1]
        return v if kind == "xor" else 1 - v
    if kind == "mux":
        s, a, b = ins
        if s is X:
            return a if (a is not X and a == b) else X
        return a if s else b
    raise ValueError(f"cannot 3-value evaluate {kind!r}")


def sim3(
    netlist: Netlist,
    order: Sequence[str],
    assign: Mapping[str, int],
    forced: Mapping[str, int] | None = None,
) -> dict[str, int | None]:
    """3-valued simulation; unassigned inputs and DFF outputs are X."""
    return _sim3_gates(
        [netlist.gate(n) for n in order], assign, forced
    )


def _sim3_gates(
    gates: Sequence,
    assign: Mapping[str, int],
    forced: Mapping[str, int] | None = None,
) -> dict[str, int | None]:
    """:func:`sim3` over a pre-resolved topo-ordered gate list.

    PODEM simulates both machines on every decision, so the per-call
    name->gate dict resolution is hoisted out (the good-machine hot
    path; :func:`combinational_atpg` builds the list once).
    """
    forced = forced or {}
    values: dict[str, int | None] = {}
    for gate in gates:
        name = gate.name
        if gate.kind in ("input", "dff"):
            v = assign.get(name, X)
        elif gate.kind == "const0":
            v = 0
        elif gate.kind == "const1":
            v = 1
        else:
            v = _eval3(gate.kind, [values[i] for i in gate.inputs])
        if name in forced:
            v = forced[name]
        values[name] = v
    return values


@dataclass
class ATPGResult:
    """Outcome of one ATPG attempt."""

    fault: Fault
    detected: bool
    aborted: bool
    test: dict[str, int] | None
    backtracks: int
    decisions: int

    @property
    def effort(self) -> int:
        """Search effort: decisions + backtracks (the E-3.1 metric)."""
        return self.decisions + self.backtracks


def default_observe(netlist: Netlist) -> list[str]:
    return list(netlist.outputs) + [
        g.inputs[0] for g in netlist.scan_dffs()
    ]


def default_control(netlist: Netlist) -> set[str]:
    return set(netlist.inputs()) | {g.name for g in netlist.scan_dffs()}


def combinational_atpg(
    netlist: Netlist,
    fault: Fault,
    backtrack_limit: int = 500,
    observe: Sequence[str] | None = None,
    control: set[str] | None = None,
    forced_extra: Mapping[str, int] | None = None,
) -> ATPGResult:
    """PODEM for one stuck-at fault.

    ``forced_extra`` injects the fault at additional nets (used by the
    time-frame expansion, where the same fault exists in every frame).
    """
    order = netlist.topo_order()
    gates = [netlist.gate(n) for n in order]
    if observe is None:
        observe = default_observe(netlist)
    if control is None:
        control = default_control(netlist)
    forced = {fault.net: fault.stuck_at}
    forced.update(forced_extra or {})
    reachable = _control_support(netlist, order, control)

    assign: dict[str, int] = {}
    stack: list[list] = []  # [net, value, exhausted]
    backtracks = 0
    decisions = 0

    consumers: dict[str, list[str]] = {}
    for g in netlist:
        for src in g.inputs:
            consumers.setdefault(src, []).append(g.name)

    while True:
        good = _sim3_gates(gates, assign)
        bad = _sim3_gates(gates, assign, forced=forced)
        if _detected_at(observe, good, bad):
            return ATPGResult(fault, True, False, dict(assign),
                              backtracks, decisions)
        obj = _objective(netlist, fault, good, bad, consumers, forced)
        target = None
        if obj is not None:
            target = _backtrace(
                netlist, good, control, assign, reachable, *obj
            )
        if target is None:
            # Conflict or uncontrollable objective: backtrack.
            while stack and stack[-1][2]:
                net, _v, _e = stack.pop()
                del assign[net]
            if not stack:
                aborted = backtracks >= backtrack_limit
                return ATPGResult(fault, False, aborted, None,
                                  backtracks, decisions)
            stack[-1][1] ^= 1
            stack[-1][2] = True
            assign[stack[-1][0]] = stack[-1][1]
            backtracks += 1
            if backtracks >= backtrack_limit:
                return ATPGResult(fault, False, True, None,
                                  backtracks, decisions)
            continue
        net, val = target
        assign[net] = val
        stack.append([net, val, False])
        decisions += 1


def _detected_at(observe, good, bad) -> bool:
    return any(
        good[o] is not X and bad[o] is not X and good[o] != bad[o]
        for o in observe
    )


def _objective(netlist, fault, good, bad, consumers, forced):
    """Next PODEM objective: activate the fault, then advance the
    D-frontier.  Returns (net, value) or None when hopeless."""
    site = good[fault.net]
    if site is X:
        return (fault.net, 1 - fault.stuck_at)
    if site == fault.stuck_at:
        return None  # activation conflict under current assignment
    frontier = _d_frontier(netlist, good, bad)
    if not frontier:
        return None
    gate = netlist.gate(frontier[0])
    nc = _NONCONTROLLING.get(gate.kind)
    for src in gate.inputs:
        if good[src] is X:
            return (src, nc if nc is not None else 1)
    return None


def _d_frontier(netlist, good, bad) -> list[str]:
    out = []
    for g in netlist:
        if g.kind in ("input", "dff", "const0", "const1"):
            continue
        if good[g.name] is not X and bad[g.name] is not X:
            continue
        for src in g.inputs:
            gs, bs = good[src], bad[src]
            if gs is not X and bs is not X and gs != bs:
                out.append(g.name)
                break
    return out


def _control_support(netlist, order, control) -> set[str]:
    """Nets whose input cone contains a control point (so an X there can
    in principle be justified by PI/scan assignments)."""
    supported: set[str] = set()
    for name in order:
        if name in control:
            supported.add(name)
            continue
        gate = netlist.gate(name)
        if gate.kind in ("input", "dff", "const0", "const1"):
            continue
        if any(i in supported for i in gate.inputs):
            supported.add(name)
    return supported


def _backtrace(netlist, good, control, assign, reachable, net, val):
    """Walk an X-path from the objective to an unassigned control point,
    preferring branches whose cone contains a control point."""

    def pick(candidates: list[str]) -> str | None:
        live = [s for s in candidates if s in reachable]
        if live:
            return live[0]
        return candidates[0] if candidates else None

    seen = 0
    while True:
        seen += 1
        if seen > len(netlist) + 1:
            return None
        if net in control:
            if net in assign:
                return None
            return (net, val)
        gate = netlist.gate(net)
        if gate.kind in ("dff", "input", "const0", "const1"):
            return None  # uncontrollable source (unscanned state / const)
        kind = gate.kind
        if kind in _INVERTING:
            val = 1 - val
        if kind in ("buf", "not"):
            net = gate.inputs[0]
            continue
        if kind in ("and", "nand", "or", "nor"):
            # val (inversion already applied) is the AND/OR-part target;
            # both "all inputs to the non-controlling value" and "one
            # input to the controlling value" mean driving an X input to
            # val itself.
            xin = [s for s in gate.inputs if good[s] is X]
            choice = pick(xin)
            if choice is None:
                return None
            net = choice
            continue
        if kind in ("xor", "xnor"):
            a, b = gate.inputs
            xin = [s for s in (a, b) if good[s] is X]
            choice = pick(xin)
            if choice is None:
                return None
            other = b if choice == a else a
            net, val = choice, val ^ (good[other] if good[other] is not X else 0)
            continue
        if kind == "mux":
            s, a, b = gate.inputs
            if good[s] is X and s in reachable:
                # steer toward a justifiable X data input
                if good[a] is X and a in reachable:
                    net, val = s, 1
                elif good[b] is X and b in reachable:
                    net, val = s, 0
                elif good[a] is X:
                    net, val = s, 1
                else:
                    net, val = s, 0
                continue
            if good[s] is X:
                # select uncontrollable: try a data input that already
                # matches on both legs, else give up on this path
                xin = [d for d in (a, b) if good[d] is X]
                choice = pick(xin)
                if choice is None:
                    return None
                net = choice
                continue
            net = a if good[s] == 1 else b
            continue
        return None
