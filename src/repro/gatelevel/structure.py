"""Structural testability analysis: SCOAP measures + fault collapsing.

Two classical structure-only analyses, computed once per netlist and
cached by content hash so shards and warm serve workers never repeat
them:

* **SCOAP testability measures** -- 0/1-controllability (``CC0`` /
  ``CC1``) and observability (``CO``) per net, Goldstein's rules over
  the levelized schedule.  On the numpy kernel the whole pass is a
  handful of vectorized sweeps over the compiled ``(level, opcode)``
  program groups; a pure-Python walk over the topo order produces the
  identical numbers when numpy is absent.  Non-scan flip-flops are
  handled by bounded fixpoint iteration (controllability flows forward
  through the D pin at +1 per time frame, observability backward), so
  feedback loops converge to the capped sentinel instead of diverging.

* **Structural fault collapsing** -- equivalence classes over the stem
  (gate-output-net) fault universe.  A fault on net ``a`` whose *only*
  consumer is gate ``g`` is machine-identical to a fault on ``g``'s
  output for the classical input<->output rules (buf/not both
  polarities with polarity tracking through inverters, AND/NAND s-a-0,
  OR/NOR s-a-1): the two faulty machines differ *only* at ``a``, and
  ``a`` is unobservable (not a primary output, single fanout, never a
  scan/observed state bit -- DFF outputs are excluded as sources and
  DFFs accept no rule, so collapsing never crosses state).  Machine
  identity makes representative-only simulation **exact**: first
  detection cycles, coverage, and BIST session/checkpoint attribution
  expand back byte-identically (:meth:`CollapseMap.expand`).
  Single-fanout dominance edges (e.g. AND output s-a-1 is covered by
  any test for a single-fanout input s-a-1) are also computed, but --
  dominance is not detection-identical -- they are exposed for
  reporting/targeting layers only and never used for expansion.

Knobs: ``REPRO_FAULT_COLLAPSE`` (default on) gates representative
simulation in every fault-facing hot path, ``REPRO_ATPG_GUIDANCE``
(default on) gates SCOAP-guided PODEM backtrace and hardest-first
fault targeting.  Both accept explicit ``collapse=`` / ``guidance=``
arguments that override the environment.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Mapping, Sequence, TypeVar
from weakref import WeakKeyDictionary

from repro.gatelevel.faults import Fault, all_faults
from repro.gatelevel.gates import Netlist

COLLAPSE_ENV = "REPRO_FAULT_COLLAPSE"
GUIDANCE_ENV = "REPRO_ATPG_GUIDANCE"

#: the "uncontrollable / unobservable" sentinel.  Large enough that no
#: real cost reaches it, small enough that sums of a few sentinels stay
#: far inside int64 (every update clamps back to the cap).
INF = 1 << 40

#: fixpoint passes for sequential (non-scan DFF) relaxation; values are
#: monotone non-increasing so this is a convergence bound, not a knob.
_MAX_PASSES = 64

_T = TypeVar("_T")

#: equivalence rules: fault (a, v) on the single-fanout input net of a
#: ``kind`` gate == fault (out, rule[v]) on its output net.
_EQUIV_RULES: dict[str, tuple[tuple[int, int], ...]] = {
    "buf": ((0, 0), (1, 1)),
    "not": ((0, 1), (1, 0)),
    "and": ((0, 0),),
    "nand": ((0, 1),),
    "or": ((1, 1),),
    "nor": ((1, 0),),
}

#: dominance rules: a test for fault (a, v) on a single-fanout input of
#: a ``kind`` gate always detects fault (out, rule[v]) too.  The
#: complementary polarities to the equivalence rules.
_DOMINANCE_RULES: dict[str, tuple[tuple[int, int], ...]] = {
    "and": ((1, 1),),
    "nand": ((1, 0),),
    "or": ((0, 0),),
    "nor": ((0, 1),),
}


def resolve_collapse(collapse: bool | None = None) -> bool:
    """Fault-collapsing switch: explicit arg > env > on."""
    from repro.knobs import env_flag

    if collapse is None:
        return env_flag(COLLAPSE_ENV, True)
    return bool(collapse)


def resolve_guidance(guidance: bool | None = None) -> bool:
    """SCOAP-guided-ATPG switch: explicit arg > env > on."""
    from repro.knobs import env_flag

    if guidance is None:
        return env_flag(GUIDANCE_ENV, True)
    return bool(guidance)


# ---------------------------------------------------------------------------
# fault collapsing


class CollapseMap:
    """Equivalence classes over a netlist's stem fault universe.

    ``rep_of`` maps every collapsible fault to its representative (the
    class member nearest the observation points); faults absent from
    the map are their own representative.  ``classes`` maps each
    representative with a non-trivial class to the full sorted member
    tuple (representative included).  ``dominance`` maps a dominated
    fault to one covering fault (reporting metadata only -- see module
    docstring).
    """

    __slots__ = ("rep_of", "classes", "dominance", "universe_size")

    def __init__(
        self,
        rep_of: Mapping[Fault, Fault],
        classes: Mapping[Fault, tuple[Fault, ...]],
        dominance: Mapping[Fault, Fault],
        universe_size: int,
    ) -> None:
        self.rep_of = dict(rep_of)
        self.classes = dict(classes)
        self.dominance = dict(dominance)
        self.universe_size = universe_size

    def rep(self, fault: Fault) -> Fault:
        """The representative simulated/targeted in place of ``fault``."""
        return self.rep_of.get(fault, fault)

    def representatives(self, faults: Iterable[Fault]) -> list[Fault]:
        """Deduplicated representatives of ``faults``, first-seen order.

        A representative may lie outside the given subset (the class
        member nearest the outputs); machine identity makes simulating
        it in place of the members exact regardless.
        """
        seen: set[Fault] = set()
        out: list[Fault] = []
        for f in faults:
            r = self.rep_of.get(f, f)
            if r not in seen:
                seen.add(r)
                out.append(r)
        return out

    def expand(
        self,
        results: Mapping[Fault, _T],
        faults: Sequence[Fault],
    ) -> dict[Fault, _T]:
        """Representative results -> per-fault results, caller's order.

        Exact for any detection-shaped value (detected flag, first
        detection cycle, BIST ``(session, checkpoint)``): equivalent
        faults produce identical machines at every observation point.
        """
        rep_of = self.rep_of
        return {f: results[rep_of.get(f, f)] for f in faults}

    @property
    def ratio(self) -> float:
        """Representatives / universe (1.0 == nothing collapsed)."""
        if not self.universe_size:
            return 1.0
        reps = self.universe_size - len(self.rep_of) + len(self.classes)
        return reps / self.universe_size


def _build_collapse_map(netlist: Netlist) -> CollapseMap:
    outputs = set(netlist.outputs)
    dff_nets = {g.name for g in netlist.dffs()}
    consumers = netlist.consumers()

    # One equivalence edge per collapsible (net, polarity).  Sources
    # must be unobservable: not a primary output, not state (DFF
    # outputs feed the scan-reload/next-state compare), exactly one
    # consumer (duplicate pins count twice, correctly excluding
    # g(a, a)); the consumer carries a rule and -- by construction of
    # _EQUIV_RULES -- is always combinational.
    edge: dict[tuple[str, int], tuple[str, int]] = {}
    dom: dict[Fault, Fault] = {}
    for g in netlist:
        if g.kind in ("const0", "const1"):
            continue
        a = g.name
        if a in outputs or a in dff_nets:
            continue
        cons = consumers.get(a, [])
        if len(cons) != 1:
            continue
        consumer = netlist.gate(cons[0])
        for v, ov in _EQUIV_RULES.get(consumer.kind, ()):
            edge[(a, v)] = (consumer.name, ov)
        for v, ov in _DOMINANCE_RULES.get(consumer.kind, ()):
            dom[Fault(consumer.name, ov)] = Fault(a, v)

    universe = all_faults(netlist)
    resolved: dict[tuple[str, int], tuple[str, int]] = {}

    def resolve(key: tuple[str, int]) -> tuple[str, int]:
        chain = []
        while key in edge and key not in resolved:
            chain.append(key)
            key = edge[key]
        key = resolved.get(key, key)
        for k in chain:  # path compression
            resolved[k] = key
        return key

    rep_of: dict[Fault, Fault] = {}
    members: dict[Fault, list[Fault]] = {}
    for f in universe:
        root = resolve((f.net, f.stuck_at))
        if root != (f.net, f.stuck_at):
            rep = Fault(*root)
            rep_of[f] = rep
            members.setdefault(rep, []).append(f)
    classes = {
        rep: tuple(sorted(ms + [rep])) for rep, ms in members.items()
    }
    return CollapseMap(rep_of, classes, dom, len(universe))


# ---------------------------------------------------------------------------
# SCOAP


def _cap(x: int) -> int:
    return x if x < INF else INF


def _scoap_python(netlist: Netlist) -> tuple[dict, dict, dict]:
    """Reference SCOAP; identical numbers to the vectorized path."""
    order = netlist.topo_order()
    gates = [netlist.gate(n) for n in order]
    cc0: dict[str, int] = {}
    cc1: dict[str, int] = {}
    scan = {g.name for g in netlist.scan_dffs()}
    nonscan = [g for g in gates if g.kind == "dff" and g.name not in scan]
    for g in gates:
        if g.kind == "dff":
            cc0[g.name] = cc1[g.name] = 1 if g.name in scan else INF

    def forward() -> None:
        for g in gates:
            k, name = g.kind, g.name
            if k == "input":
                cc0[name] = cc1[name] = 1
            elif k == "const0":
                cc0[name], cc1[name] = 1, INF
            elif k == "const1":
                cc0[name], cc1[name] = INF, 1
            elif k == "dff":
                pass  # relaxed between passes
            elif k == "buf":
                a = g.inputs[0]
                cc0[name] = _cap(cc0[a] + 1)
                cc1[name] = _cap(cc1[a] + 1)
            elif k == "not":
                a = g.inputs[0]
                cc0[name] = _cap(cc1[a] + 1)
                cc1[name] = _cap(cc0[a] + 1)
            elif k in ("and", "nand"):
                a, b = g.inputs
                z = _cap(min(cc0[a], cc0[b]) + 1)
                o = _cap(cc1[a] + cc1[b] + 1)
                cc0[name], cc1[name] = (z, o) if k == "and" else (o, z)
            elif k in ("or", "nor"):
                a, b = g.inputs
                z = _cap(cc0[a] + cc0[b] + 1)
                o = _cap(min(cc1[a], cc1[b]) + 1)
                cc0[name], cc1[name] = (z, o) if k == "or" else (o, z)
            elif k in ("xor", "xnor"):
                a, b = g.inputs
                even = _cap(min(cc0[a] + cc0[b], cc1[a] + cc1[b]) + 1)
                odd = _cap(min(cc0[a] + cc1[b], cc1[a] + cc0[b]) + 1)
                cc0[name], cc1[name] = (
                    (even, odd) if k == "xor" else (odd, even)
                )
            elif k == "mux":
                s, a, b = g.inputs
                cc0[name] = _cap(
                    min(cc1[s] + cc0[a], cc0[s] + cc0[b]) + 1
                )
                cc1[name] = _cap(
                    min(cc1[s] + cc1[a], cc0[s] + cc1[b]) + 1
                )
            else:  # pragma: no cover - kinds are closed
                raise ValueError(f"no SCOAP rule for {k!r}")

    forward()
    for _ in range(_MAX_PASSES):
        changed = False
        for g in nonscan:
            v0 = _cap(cc0[g.inputs[0]] + 1)
            v1 = _cap(cc1[g.inputs[0]] + 1)
            if (v0, v1) != (cc0[g.name], cc1[g.name]):
                cc0[g.name], cc1[g.name] = v0, v1
                changed = True
        if not changed:
            break
        forward()

    co: dict[str, int] = {n: INF for n in order}
    for out in netlist.outputs:
        co[out] = 0
    for g in netlist.scan_dffs():
        co[g.inputs[0]] = 0  # captured value is unloadable: observed

    def backward() -> bool:
        changed = False

        def drop(net: str, cand: int) -> None:
            nonlocal changed
            cand = _cap(cand)
            if cand < co[net]:
                co[net] = cand
                changed = True

        for g in reversed(gates):
            k, name = g.kind, g.name
            if k in ("input", "const0", "const1", "dff"):
                continue
            base = co[name]
            if base >= INF:
                continue
            if k in ("buf", "not"):
                drop(g.inputs[0], base + 1)
            elif k in ("and", "nand"):
                a, b = g.inputs
                drop(a, base + cc1[b] + 1)
                drop(b, base + cc1[a] + 1)
            elif k in ("or", "nor"):
                a, b = g.inputs
                drop(a, base + cc0[b] + 1)
                drop(b, base + cc0[a] + 1)
            elif k in ("xor", "xnor"):
                a, b = g.inputs
                drop(a, base + min(cc0[b], cc1[b]) + 1)
                drop(b, base + min(cc0[a], cc1[a]) + 1)
            elif k == "mux":
                s, a, b = g.inputs
                drop(s, base + min(cc0[a] + cc1[b],
                                   cc1[a] + cc0[b]) + 1)
                drop(a, base + cc1[s] + 1)
                drop(b, base + cc0[s] + 1)
        return changed

    backward()
    for _ in range(_MAX_PASSES):
        changed = False
        for g in nonscan:
            cand = _cap(co[g.name] + 1)
            if cand < co[g.inputs[0]]:
                co[g.inputs[0]] = cand
                changed = True
        if not changed:
            break
        # Keep iterating while the state edges move even if the
        # combinational sweep is quiet: a DFF whose D-input is another
        # DFF's output cascades through state edges alone.
        backward()
    return cc0, cc1, co


def _scoap_numpy(netlist: Netlist) -> tuple[dict, dict, dict]:
    """Vectorized SCOAP over the compiled ``(level, opcode)`` program.

    Instruction groups within a level only read strictly-lower levels,
    so sweeping the program in order is the same dataflow as the
    reference topo walk -- the two paths produce identical integers.
    """
    import numpy as np

    from repro.gatelevel import kernel as K

    comp = K.compiled(netlist)
    n = comp.n_gates
    cc0 = np.full(n, INF, dtype=np.int64)
    cc1 = np.full(n, INF, dtype=np.int64)
    cc0[comp.input_rows] = 1
    cc1[comp.input_rows] = 1
    cc0[comp.const0_rows] = 1
    cc1[comp.const1_rows] = 1
    scan_dff_rows = comp.dff_rows[comp.scan_pos]
    cc0[scan_dff_rows] = 1
    cc1[scan_dff_rows] = 1
    nonscan = np.setdiff1d(
        np.arange(len(comp.dff_rows)), comp.scan_pos
    )
    ns_rows = comp.dff_rows[nonscan]
    ns_d = comp.dff_d_rows[nonscan]

    def forward() -> None:
        for op, dst, a, b, c in comp.program:
            if op == K.OP_BUF:
                z, o = cc0[a] + 1, cc1[a] + 1
            elif op == K.OP_NOT:
                z, o = cc1[a] + 1, cc0[a] + 1
            elif op in (K.OP_AND, K.OP_NAND):
                z = np.minimum(cc0[a], cc0[b]) + 1
                o = cc1[a] + cc1[b] + 1
                if op == K.OP_NAND:
                    z, o = o, z
            elif op in (K.OP_OR, K.OP_NOR):
                z = cc0[a] + cc0[b] + 1
                o = np.minimum(cc1[a], cc1[b]) + 1
                if op == K.OP_NOR:
                    z, o = o, z
            elif op in (K.OP_XOR, K.OP_XNOR):
                even = np.minimum(cc0[a] + cc0[b], cc1[a] + cc1[b]) + 1
                odd = np.minimum(cc0[a] + cc1[b], cc1[a] + cc0[b]) + 1
                z, o = (even, odd) if op == K.OP_XOR else (odd, even)
            else:  # OP_MUX: fanin order (s, a, b)
                z = np.minimum(cc1[a] + cc0[b], cc0[a] + cc0[c]) + 1
                o = np.minimum(cc1[a] + cc1[b], cc0[a] + cc1[c]) + 1
            cc0[dst] = np.minimum(z, INF)
            cc1[dst] = np.minimum(o, INF)

    forward()
    if len(ns_rows):
        for _ in range(_MAX_PASSES):
            v0 = np.minimum(cc0[ns_d] + 1, INF)
            v1 = np.minimum(cc1[ns_d] + 1, INF)
            if (np.array_equal(v0, cc0[ns_rows])
                    and np.array_equal(v1, cc1[ns_rows])):
                break
            cc0[ns_rows] = v0
            cc1[ns_rows] = v1
            forward()

    co = np.full(n, INF, dtype=np.int64)
    co[comp.output_rows] = 0
    co[comp.dff_d_rows[comp.scan_pos]] = 0

    def backward() -> bool:
        before = co.copy()
        for op, dst, a, b, c in reversed(comp.program):
            base = co[dst]
            if op in (K.OP_BUF, K.OP_NOT):
                np.minimum.at(co, a, np.minimum(base + 1, INF))
            elif op in (K.OP_AND, K.OP_NAND):
                np.minimum.at(co, a, np.minimum(base + cc1[b] + 1, INF))
                np.minimum.at(co, b, np.minimum(base + cc1[a] + 1, INF))
            elif op in (K.OP_OR, K.OP_NOR):
                np.minimum.at(co, a, np.minimum(base + cc0[b] + 1, INF))
                np.minimum.at(co, b, np.minimum(base + cc0[a] + 1, INF))
            elif op in (K.OP_XOR, K.OP_XNOR):
                np.minimum.at(co, a, np.minimum(
                    base + np.minimum(cc0[b], cc1[b]) + 1, INF))
                np.minimum.at(co, b, np.minimum(
                    base + np.minimum(cc0[a], cc1[a]) + 1, INF))
            else:  # OP_MUX (s, a, b) = (a, b, c)
                np.minimum.at(co, a, np.minimum(
                    base + np.minimum(cc0[b] + cc1[c],
                                      cc1[b] + cc0[c]) + 1, INF))
                np.minimum.at(co, b, np.minimum(base + cc1[a] + 1, INF))
                np.minimum.at(co, c, np.minimum(base + cc0[a] + 1, INF))
        return not np.array_equal(before, co)

    backward()
    if len(ns_rows):
        for _ in range(_MAX_PASSES):
            cand = np.minimum(co[ns_rows] + 1, INF)
            better = cand < co[ns_d]
            if not better.any():
                break
            np.minimum.at(co, ns_d, cand)
            # No early exit on a quiet combinational sweep: DFF-to-DFF
            # state edges cascade without touching any comb gate.
            backward()

    names = comp.names
    return (
        dict(zip(names, cc0.tolist())),
        dict(zip(names, cc1.tolist())),
        dict(zip(names, co.tolist())),
    )


# ---------------------------------------------------------------------------
# the cached analysis record


class Structure:
    """One netlist's structural analysis: SCOAP + collapse map."""

    __slots__ = ("digest", "cc0", "cc1", "co", "collapse")

    def __init__(self, digest: str, cc0: Mapping[str, int],
                 cc1: Mapping[str, int], co: Mapping[str, int],
                 collapse: CollapseMap) -> None:
        self.digest = digest
        self.cc0 = dict(cc0)
        self.cc1 = dict(cc1)
        self.co = dict(co)
        self.collapse = collapse

    def difficulty(self, fault: Fault) -> int:
        """Detect-cost estimate: set the site to the error value, then
        propagate -- the hardest-first ATPG targeting key."""
        cc = self.cc1 if fault.stuck_at == 0 else self.cc0
        return _cap(cc.get(fault.net, INF) + self.co.get(fault.net, INF))


#: per-instance (version, outputs) -> Structure memo.
_ANALYSES: "WeakKeyDictionary[Netlist, tuple]" = WeakKeyDictionary()

#: per-process content-hash -> Structure LRU (warm-worker reuse; same
#: sizing knob as the kernel's netlist cache).
_STRUCT_BY_HASH: "OrderedDict[str, Structure]" = OrderedDict()

_STATS = {
    "built": 0, "instance_hits": 0, "hash_hits": 0,
    "resolve_hits": 0, "resolve_misses": 0, "evictions": 0,
}


def structural_analysis(netlist: Netlist) -> Structure:
    """The cached :class:`Structure` for ``netlist``.

    Memoised on the instance (version + output list, the
    :func:`repro.gatelevel.kernel.compiled` discipline) and in a
    process-wide content-hash LRU, so equal-content netlists arriving
    in a warm worker -- or republished by the serve layer -- are
    analysed exactly once per process.
    """
    from repro.gatelevel.kernel import have_kernel, netlist_hash

    sig = (netlist.version, tuple(netlist.outputs))
    hit = _ANALYSES.get(netlist)
    if hit is not None and hit[0] == sig:
        _STATS["instance_hits"] += 1
        return hit[1]
    digest = netlist_hash(netlist)
    cached = _STRUCT_BY_HASH.get(digest)
    if cached is not None:
        _STRUCT_BY_HASH.move_to_end(digest)
        _STATS["hash_hits"] += 1
        _ANALYSES[netlist] = (sig, cached)
        return cached
    if have_kernel():
        cc0, cc1, co = _scoap_numpy(netlist)
    else:
        cc0, cc1, co = _scoap_python(netlist)
    struct = Structure(digest, cc0, cc1, co,
                       _build_collapse_map(netlist))
    _STATS["built"] += 1
    _ANALYSES[netlist] = (sig, struct)
    _remember(digest, struct)
    return struct


def _remember(digest: str, struct: Structure) -> None:
    from repro.flow.shm import default_cache_size

    _STRUCT_BY_HASH[digest] = struct
    _STRUCT_BY_HASH.move_to_end(digest)
    limit = default_cache_size()
    while len(_STRUCT_BY_HASH) > limit:
        _STRUCT_BY_HASH.popitem(last=False)
        _STATS["evictions"] += 1


def collapse_map(netlist: Netlist) -> CollapseMap:
    """The netlist's cached :class:`CollapseMap`."""
    return structural_analysis(netlist).collapse


def scoap(netlist: Netlist) -> tuple[dict, dict, dict]:
    """``(CC0, CC1, CO)`` per net name (cached; see module docstring)."""
    s = structural_analysis(netlist)
    return s.cc0, s.cc1, s.co


def atpg_fault_order(
    faults: Sequence[Fault], structure: Structure
) -> list[Fault]:
    """Hardest-first deterministic targeting order.

    Random-resistant (high CC + CO) faults are searched while the
    vector budget is young and easy faults still fall out of fault
    dropping for free; ties break on the fault itself, so the order --
    and hence the generated test set -- is reproducible.
    """
    return sorted(faults, key=lambda f: (-structure.difficulty(f), f))


# ---------------------------------------------------------------------------
# shard/worker plumbing


def pack_scoap(structure: Structure, netlist: Netlist):
    """``(n, 3)`` int64 ``[CC0, CC1, CO]`` rows in topo order.

    The shm-publishable form: topo row indices are content-determined,
    so a worker holding the hash-cached netlist rebuilds the exact
    name-keyed measures without recomputing a single pass.
    """
    import numpy as np

    order = netlist.topo_order()
    arr = np.empty((len(order), 3), dtype=np.int64)
    for i, name in enumerate(order):
        arr[i, 0] = structure.cc0[name]
        arr[i, 1] = structure.cc1[name]
        arr[i, 2] = structure.co[name]
    return arr


def resolve_structure(digest: str, payload, netlist: Netlist) -> Structure:
    """Worker-side :class:`Structure` for ``digest``, decoding at most
    once per process.

    ``payload`` supplies the packed SCOAP rows on a cache miss: an
    ``(n, 3)`` array, a zero-argument callable returning one (the shm
    transport's lazy attach), or ``None`` to recompute locally (pickle
    transport -- the analysis is deterministic, so the recompute is
    byte-identical to the parent's copy).
    """
    cached = _STRUCT_BY_HASH.get(digest)
    if cached is not None:
        _STRUCT_BY_HASH.move_to_end(digest)
        _STATS["resolve_hits"] += 1
        return cached
    _STATS["resolve_misses"] += 1
    if callable(payload):
        payload = payload()
    if payload is None:
        return structural_analysis(netlist)
    order = netlist.topo_order()
    cc0 = {n: int(payload[i, 0]) for i, n in enumerate(order)}
    cc1 = {n: int(payload[i, 1]) for i, n in enumerate(order)}
    co = {n: int(payload[i, 2]) for i, n in enumerate(order)}
    struct = Structure(digest, cc0, cc1, co,
                       _build_collapse_map(netlist))
    _remember(digest, struct)
    return struct


def structure_stats() -> dict[str, int]:
    """Per-process analysis-cache counters (surfaced in ``/metrics``)."""
    return dict(_STATS, entries=len(_STRUCT_BY_HASH))


def record_collapse_metrics(total: int, representatives: int) -> None:
    """Stage metrics for one representative-simulation decision."""
    from repro.flow.metrics import record_metric

    record_metric("faults_total", total)
    record_metric("faults_representative", representatives)
    record_metric(
        "collapse_ratio",
        round(representatives / total, 4) if total else 1.0,
    )
