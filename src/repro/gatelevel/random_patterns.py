"""Pseudorandom-pattern (BIST) fault coverage.

Applies LFSR-generated patterns to the primary inputs (and scan
flip-flops, modelling TPGR-configured registers) and fault-simulates,
producing the coverage curves the BIST experiments report.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.bist.registers import LFSR
from repro.gatelevel.faults import Fault, all_faults, coverage
from repro.gatelevel.fault_sim import fault_simulate
from repro.gatelevel.gates import Netlist
from repro.gatelevel.structure import (
    collapse_map,
    record_collapse_metrics,
    resolve_collapse,
)


def _packed_random(rng: random.Random, width: int) -> int:
    return rng.getrandbits(width)


def random_pattern_coverage(
    netlist: Netlist,
    n_patterns: int = 256,
    seed: int = 1,
    faults: Sequence[Fault] | None = None,
    sequence_length: int = 1,
    backend: str | None = None,
    collapse: bool | None = None,
) -> float:
    """Stuck-at coverage of ``n_patterns`` pseudorandom patterns.

    Patterns are packed 64 wide; with ``sequence_length > 1`` each
    packed pattern set runs for that many cycles (responses can
    propagate through unscanned state).  Fault dropping is on inside
    each block too (``drop_detected``), so a fault detected by cycle
    *c* never simulates cycles past *c*; ``backend`` selects the
    compiled kernel (default) or the reference interpreter.  With
    ``collapse`` (default on) equivalence classes are collapsed once
    up front and only representatives simulated -- a detected
    representative means every class member is detected, so the
    coverage fraction is unchanged.
    """
    rng = random.Random(seed)
    if faults is None:
        faults = all_faults(netlist)
    work = list(faults)
    cmap = None
    if resolve_collapse(collapse):
        cmap = collapse_map(netlist)
        reps = cmap.representatives(work)
        if len(reps) < len(work):
            record_collapse_metrics(len(work), len(reps))
            work = reps
        else:
            cmap = None
    pis = netlist.inputs()
    detected: set[Fault] = set()
    remaining = work
    done = 0
    while done < n_patterns and remaining:
        width = min(64, n_patterns - done)
        seq = [
            {pi: _packed_random(rng, width) for pi in pis}
            for _ in range(sequence_length)
        ]
        results = fault_simulate(
            netlist, remaining, seq, width=width, drop_detected=True,
            backend=backend, collapse=False,
        )
        detected.update(f for f, d in results.items() if d)
        # results preserves fault order, so the survivors fall straight
        # out of it -- no O(n^2) re-listing against a membership list.
        remaining = [f for f, d in results.items() if not d]
        done += width
    if cmap is not None:
        n_detected = sum(1 for f in faults if cmap.rep(f) in detected)
    else:
        n_detected = len(detected)
    return coverage(n_detected, len(faults))


def bist_coverage_curve(
    netlist: Netlist,
    checkpoints: Sequence[int] = (16, 32, 64, 128, 256),
    seed: int = 1,
    faults: Sequence[Fault] | None = None,
    collapse: bool | None = None,
) -> list[tuple[int, float]]:
    """(patterns, coverage) at each checkpoint, LFSR-driven.

    One LFSR per primary input (distinct seeds), applying a single
    *continuous* pattern sequence -- as an in-situ TPGR configuration
    would -- so fault effects propagate through unscanned state across
    cycles.  Coverage at checkpoint n counts faults first detected
    within the first n patterns.
    """
    from repro.gatelevel.fault_sim import fault_simulate_cycles

    if faults is None:
        faults = all_faults(netlist)
    pis = netlist.inputs()
    lfsrs = {
        pi: LFSR(16, seed=(seed + 17 * k) | 1) for k, pi in enumerate(pis)
    }
    horizon = max(checkpoints)
    seq = [
        {pi: lfsrs[pi].step() & 1 for pi in pis} for _ in range(horizon)
    ]
    # fault_simulate_cycles collapses internally and expands the
    # per-fault first-detection cycles exactly.
    cycles = fault_simulate_cycles(
        netlist, faults, seq, width=1, collapse=collapse
    )
    curve: list[tuple[int, float]] = []
    for target in sorted(checkpoints):
        det = sum(1 for c in cycles.values() if c is not None and c < target)
        curve.append((target, coverage(det, len(faults))))
    return curve
