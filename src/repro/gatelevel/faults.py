"""Single-stuck-at fault universe with equivalence collapsing.

Faults live on gate output nets (stem faults).  Input-pin faults are
equivalence-collapsed onto stems using the classical rules: a stuck-at
fault on the only input of a buffer/inverter is equivalent to a stem
fault, an input s-a-0 of an AND equals its output s-a-0, an input
s-a-1 of an OR equals its output s-a-1, etc.  For the architecture
comparisons in this reproduction the stem universe preserves all
coverage *orderings*, which is what the experiments assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gatelevel.gates import Netlist


@dataclass(frozen=True, order=True)
class Fault:
    """A single stuck-at fault on a net."""

    net: str
    stuck_at: int  # 0 or 1

    def __str__(self) -> str:
        return f"{self.net}/sa{self.stuck_at}"


def all_faults(netlist: Netlist, include_dffs: bool = True) -> list[Fault]:
    """Both polarities on every gate/input/DFF output net."""
    out: list[Fault] = []
    for gate in netlist:
        if gate.kind == "dff" and not include_dffs:
            continue
        if gate.kind in ("const0", "const1"):
            continue  # a stuck constant is either redundant or itself
        out.append(Fault(gate.name, 0))
        out.append(Fault(gate.name, 1))
    return sorted(out)


def collapse_faults(netlist: Netlist, faults: list[Fault]) -> list[Fault]:
    """Drop faults dominated through single-fanout buffers/inverters.

    A fault on a net whose only consumer is a buf (same polarity) or
    inverter (opposite polarity) is equivalent to the fault on that
    consumer's output; keep the one nearest the outputs.
    """
    consumers: dict[str, list[str]] = {}
    for gate in netlist:
        for src in gate.inputs:
            consumers.setdefault(src, []).append(gate.name)
    outputs = set(netlist.outputs)

    drop: set[Fault] = set()
    for f in faults:
        if f.net in outputs:
            continue
        cons = consumers.get(f.net, [])
        if len(cons) != 1:
            continue
        g = netlist.gate(cons[0])
        if g.kind == "buf":
            drop.add(f)
        elif g.kind == "not":
            drop.add(f)
    return [f for f in faults if f not in drop]


def coverage(detected: int, total: int) -> float:
    """Fault coverage as a fraction in [0, 1]."""
    return detected / total if total else 1.0
