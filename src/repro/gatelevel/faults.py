"""Single-stuck-at fault universe with equivalence collapsing.

Faults live on gate output nets (stem faults).  Input-pin faults are
equivalence-collapsed onto stems using the classical rules: a stuck-at
fault on the only input of a buffer/inverter is equivalent to a stem
fault, an input s-a-0 of an AND equals its output s-a-0, an input
s-a-1 of an OR equals its output s-a-1, etc.  For the architecture
comparisons in this reproduction the stem universe preserves all
coverage *orderings*, which is what the experiments assert.

Full structural collapsing (equivalence classes with polarity
tracking, dominance edges, representative expansion) lives in
:mod:`repro.gatelevel.structure`; the :func:`collapse_faults` helper
here survives only as a deprecated wrapper over it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.gatelevel.gates import Netlist


@dataclass(frozen=True, order=True)
class Fault:
    """A single stuck-at fault on a net."""

    net: str
    stuck_at: int  # 0 or 1

    def __str__(self) -> str:
        return f"{self.net}/sa{self.stuck_at}"


def all_faults(netlist: Netlist, include_dffs: bool = True) -> list[Fault]:
    """Both polarities on every gate/input/DFF output net."""
    out: list[Fault] = []
    for gate in netlist:
        if gate.kind == "dff" and not include_dffs:
            continue
        if gate.kind in ("const0", "const1"):
            continue  # a stuck constant is either redundant or itself
        out.append(Fault(gate.name, 0))
        out.append(Fault(gate.name, 1))
    return sorted(out)


def collapse_faults(netlist: Netlist, faults: list[Fault]) -> list[Fault]:
    """Deprecated: use :func:`repro.gatelevel.structure.collapse_map`.

    Historical drop-only collapsing lost the polarity mapping through
    inverters (a fault collapsed through a ``not`` consumer is
    equivalent to the *opposite* polarity on the consumer's output),
    so callers could not expand results back.  This wrapper now
    returns the polarity-correct representative set from
    :class:`repro.gatelevel.structure.CollapseMap` -- representatives
    may lie outside the given list (the class member nearest the
    outputs), which is what makes expansion exact.
    """
    warnings.warn(
        "collapse_faults is deprecated; use "
        "repro.gatelevel.structure.collapse_map for the full "
        "CollapseMap (representatives + exact expansion)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.gatelevel.structure import collapse_map

    return collapse_map(netlist).representatives(faults)


def coverage(detected: int, total: int) -> float:
    """Fault coverage as a fraction in [0, 1]."""
    return detected / total if total else 1.0
