"""Structural Verilog export.

The survey (section 2) emphasises that "most HDL descriptions use
Verilog, VHDL or C" and that test synthesis tools interoperate through
netlists; this module lets the library hand its artifacts to external
tools:

* :func:`netlist_to_verilog` -- a gate-level :class:`Netlist` as a flat
  structural module (primitive gates + behavioral DFFs).
* :func:`datapath_to_verilog` -- a bound :class:`Datapath` as an RTL
  module: registers, word-level operators, and the control interface
  (load enables and mux selects as input ports), matching the expansion
  semantics of :mod:`repro.gatelevel.expand`.

Both outputs are plain IEEE-1364 subsets (no vendor extensions).
"""

from __future__ import annotations

import io

from repro.gatelevel.gates import Netlist
from repro.hls.datapath import Datapath

_GATE_PRIMS = {
    "and": "and", "or": "or", "nand": "nand", "nor": "nor",
    "xor": "xor", "xnor": "xnor", "not": "not", "buf": "buf",
}


def _ident(name: str) -> str:
    """Verilog-legal identifier (escape anything exotic)."""
    ok = all(c.isalnum() or c == "_" for c in name) and not name[0].isdigit()
    return name if ok else f"\\{name} "


def netlist_to_verilog(netlist: Netlist, module_name: str | None = None) -> str:
    """Render a gate-level netlist as structural Verilog."""
    name = module_name or netlist.name.replace(":", "_").replace("+", "_")
    buf = io.StringIO()
    inputs = netlist.inputs()
    outputs = list(netlist.outputs)
    ports = [_ident(p) for p in inputs] + ["clk"] + [
        f"po_{i}" for i in range(len(outputs))
    ]
    buf.write(f"module {_ident(name)} (\n")
    buf.write(",\n".join(f"  {p}" for p in ports))
    buf.write("\n);\n")
    for pi in inputs:
        buf.write(f"  input {_ident(pi)};\n")
    buf.write("  input clk;\n")
    for i in range(len(outputs)):
        buf.write(f"  output po_{i};\n")
    dffs = netlist.dffs()
    for g in netlist:
        if g.kind == "input":
            continue
        decl = "reg" if g.kind == "dff" else "wire"
        buf.write(f"  {decl} {_ident(g.name)};\n")
    buf.write("\n")
    for i, net in enumerate(outputs):
        buf.write(f"  assign po_{i} = {_ident(net)};\n")
    n = 0
    for g in netlist:
        if g.kind in _GATE_PRIMS:
            ins = ", ".join(_ident(x) for x in g.inputs)
            buf.write(
                f"  {_GATE_PRIMS[g.kind]} g{n} ({_ident(g.name)}, {ins});\n"
            )
            n += 1
        elif g.kind == "mux":
            s, a, b = (_ident(x) for x in g.inputs)
            buf.write(
                f"  assign {_ident(g.name)} = {s} ? {a} : {b};\n"
            )
        elif g.kind == "const0":
            buf.write(f"  assign {_ident(g.name)} = 1'b0;\n")
        elif g.kind == "const1":
            buf.write(f"  assign {_ident(g.name)} = 1'b1;\n")
    if dffs:
        buf.write("\n  always @(posedge clk) begin\n")
        for g in dffs:
            buf.write(
                f"    {_ident(g.name)} <= {_ident(g.inputs[0])};"
                f"{'  // scan' if g.scan else ''}\n"
            )
        buf.write("  end\n")
    buf.write("endmodule\n")
    return buf.getvalue()


_OP_VERILOG = {
    "+": "+", "-": "-", "*": "*", "&": "&", "|": "|", "^": "^",
    "<": "<", ">": ">", "==": "==",
}


def datapath_to_verilog(
    datapath: Datapath, module_name: str | None = None
) -> str:
    """Render a bound data path as an RTL Verilog module.

    Control signals (register load/select, unit port/function selects)
    become input ports, mirroring the "control fully accessible in test
    mode" interface of :func:`repro.gatelevel.expand.expand_datapath`.
    """
    name = module_name or datapath.name.replace(":", "_")
    buf = io.StringIO()
    width = max(r.width for r in datapath.registers)
    w = f"[{width - 1}:0]"

    pis = [v.name for v in datapath.cdfg.primary_inputs()]
    pos = [v.name for v in datapath.cdfg.primary_outputs()]
    port_srcs = datapath.unit_input_sources()
    reg_srcs = datapath.register_sources()

    ctrl_ports: list[str] = []
    for r in datapath.registers:
        ctrl_ports.append(f"{r.name}_load")
        if len(reg_srcs[r.name]) > 1:
            ctrl_ports.append(f"{r.name}_sel")
    for u in datapath.units:
        for p, srcs in enumerate(port_srcs.get(u.name, [])):
            if len(srcs) > 1:
                ctrl_ports.append(f"{u.name}_p{p}_sel")
        if len(u.kinds) > 1:
            ctrl_ports.append(f"{u.name}_fn")

    ports = (
        ["clk"] + [f"pi_{p}" for p in pis] + ctrl_ports
        + [f"po_{p}" for p in pos]
    )
    buf.write(f"module {_ident(name)} (\n")
    buf.write(",\n".join(f"  {_ident(p)}" for p in ports))
    buf.write("\n);\n")
    buf.write("  input clk;\n")
    for p in pis:
        buf.write(f"  input {w} pi_{p};\n")
    for p in ctrl_ports:
        wdecl = "" if p.endswith("_load") else "[3:0] "
        buf.write(f"  input {wdecl}{_ident(p)};\n")
    for p in pos:
        buf.write(f"  output {w} po_{p};\n")
    for r in datapath.registers:
        buf.write(f"  reg {w} {r.name};"
                  f"{'  // scan' if r.scan else ''}\n")
    for u in datapath.units:
        buf.write(f"  wire {w} {u.name}_out;\n")
        for p in range(len(port_srcs.get(u.name, []))):
            buf.write(f"  wire {w} {u.name}_p{p};\n")
    buf.write("\n")

    # unit input muxes and function
    for u in datapath.units:
        for p, srcs in enumerate(port_srcs.get(u.name, [])):
            ordered = sorted(srcs)
            if len(ordered) == 1:
                buf.write(f"  assign {u.name}_p{p} = {ordered[0]};\n")
            else:
                expr = ordered[-1]
                for k in range(len(ordered) - 2, -1, -1):
                    expr = (f"({_ident(f'{u.name}_p{p}_sel')} == {k}) ? "
                            f"{ordered[k]} : ({expr})")
                buf.write(f"  assign {u.name}_p{p} = {expr};\n")
        kinds = sorted(u.kinds)
        a, b = f"{u.name}_p0", f"{u.name}_p1"
        if len(port_srcs.get(u.name, [])) < 2:
            b = a
        exprs = [f"({a} {_OP_VERILOG[k]} {b})" for k in kinds]
        if len(exprs) == 1:
            buf.write(f"  assign {u.name}_out = {exprs[0]};\n")
        else:
            expr = exprs[-1]
            for k in range(len(exprs) - 2, -1, -1):
                expr = (f"({_ident(f'{u.name}_fn')} == {k}) ? "
                        f"{exprs[k]} : ({expr})")
            buf.write(f"  assign {u.name}_out = {expr};\n")
    buf.write("\n  always @(posedge clk) begin\n")
    for r in datapath.registers:
        ordered = sorted(reg_srcs[r.name])
        def src_expr(s: str) -> str:
            return f"pi_{s[3:]}" if s.startswith("PI:") else f"{s}_out"
        if not ordered:
            continue
        if len(ordered) == 1:
            data = src_expr(ordered[0])
        else:
            data = src_expr(ordered[-1])
            for k in range(len(ordered) - 2, -1, -1):
                data = (f"({_ident(f'{r.name}_sel')} == {k}) ? "
                        f"{src_expr(ordered[k])} : ({data})")
        buf.write(
            f"    if ({r.name}_load) {r.name} <= {data};\n"
        )
    buf.write("  end\n\n")
    for p in pos:
        reg = datapath.register_of_variable(p)
        buf.write(f"  assign po_{p} = {reg.name};\n")
    buf.write("endmodule\n")
    return buf.getvalue()
