"""Transition (gate-delay) fault model -- the survey's future work.

Section 7b: "all the existing high-level approaches consider only the
stuck-at-fault model; other testing methodologies like delay fault
testing ... have not yet been addressed."  This module addresses it
for the substrate so high-level techniques can be evaluated against
it:

* a **transition fault** is a net slow to rise (``STR``) or slow to
  fall (``STF``);
* detection needs a *vector pair*: the first vector sets the net to the
  initial value, the second launches the transition and propagates the
  (late, i.e. still-old) value to an observation point;
* the faulty machine is simulated cycle-accurately: on the launch
  cycle the slow net presents its *previous* value whenever it would
  make the slow transition, and behaves normally otherwise.

Scan-based application uses launch-on-capture: the pair's first vector
is scanned in / applied, the second captured functionally -- which is
exactly the two-cycle simulation below with scan flip-flops as
observation points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.gatelevel.gates import COMBINATIONAL_KINDS, Netlist
from repro.gatelevel.simulate import parallel_simulate


@dataclass(frozen=True, order=True)
class TransitionFault:
    """A slow-to-rise (rising=True) or slow-to-fall transition fault."""

    net: str
    rising: bool

    def __str__(self) -> str:
        return f"{self.net}/{'STR' if self.rising else 'STF'}"


def all_transition_faults(netlist: Netlist) -> list[TransitionFault]:
    """Both transition polarities on every combinational/DFF net."""
    out = []
    for g in netlist:
        if g.kind in COMBINATIONAL_KINDS or g.kind == "dff":
            out.append(TransitionFault(g.name, True))
            out.append(TransitionFault(g.name, False))
    return sorted(out)


def _observable(netlist: Netlist, a_vals, a_state, b_vals, b_state) -> int:
    diff = 0
    for po in netlist.outputs:
        diff |= a_vals[po] ^ b_vals[po]
    for g in netlist.scan_dffs():
        diff |= a_state[g.name] ^ b_state[g.name]
    return diff


def transition_fault_detected(
    netlist: Netlist,
    fault: TransitionFault,
    pair: tuple[Mapping[str, int], Mapping[str, int]],
    width: int = 64,
    initial_state: Mapping[str, int] | None = None,
    backend: str | None = None,
) -> int:
    """Packed mask of patterns in ``pair`` that detect ``fault``.

    Both machines run the two cycles; in the faulty machine the slow
    net's launch-cycle value is overridden to its initialisation-cycle
    value on exactly the bit positions where the slow transition would
    occur.
    """
    masks = transition_pair_masks(
        netlist, pair, [fault], width=width,
        initial_state=initial_state, backend=backend,
    )
    return masks[fault]


def transition_pair_masks(
    netlist: Netlist,
    pair: tuple[Mapping[str, int], Mapping[str, int]],
    faults: Sequence[TransitionFault],
    width: int = 64,
    initial_state: Mapping[str, int] | None = None,
    backend: str | None = None,
) -> dict[TransitionFault, int]:
    """Detection masks for many faults under one vector pair.

    The good machine runs once per pair; on the compiled-kernel backend
    each faulty machine is a cone-restricted launch-cycle replay (the
    interpreter re-evaluates the full netlist per fault).
    """
    from repro.gatelevel.fault_sim import resolve_backend

    if resolve_backend(backend) == "kernel":
        from repro.gatelevel.kernel import transition_pair_detect

        raw = transition_pair_detect(
            netlist, pair, [(f.net, f.rising) for f in faults],
            width=width, initial_state=initial_state,
        )
        return {f: raw[(f.net, f.rising)] for f in faults}
    return _transition_pair_masks_interp(
        netlist, pair, faults, width, initial_state
    )


def _transition_pair_masks_interp(
    netlist: Netlist,
    pair: tuple[Mapping[str, int], Mapping[str, int]],
    faults: Sequence[TransitionFault],
    width: int = 64,
    initial_state: Mapping[str, int] | None = None,
) -> dict[TransitionFault, int]:
    v1, v2 = pair
    order = netlist.topo_order()
    state0 = dict(initial_state or {})

    # Good machine, shared across the pair's faults.
    g1, gs1 = parallel_simulate(netlist, v1, state0, width, order)
    g2, gs2 = parallel_simulate(netlist, v2, gs1, width, order)

    mask = (1 << width) - 1
    out: dict[TransitionFault, int] = {}
    for fault in faults:
        # Faulty machine: cycle 1 identical (fault only delays
        # transitions *launched* by the pair); cycle 2 with the net's
        # transitioning bits frozen at their cycle-1 value.
        before = g1[fault.net]
        after = g2[fault.net]
        if fault.rising:
            slow_bits = ~before & after  # 0 -> 1 transitions delayed
        else:
            slow_bits = before & ~after  # 1 -> 0 transitions delayed
        slow_bits &= mask
        if not slow_bits:
            out[fault] = 0
            continue
        faulty_value = (after & ~slow_bits) | (before & slow_bits)
        f2, fs2 = parallel_simulate(
            netlist, v2, gs1, width, order,
            forced={fault.net: faulty_value},
        )
        out[fault] = _observable(netlist, g2, gs2, f2, fs2) & slow_bits
    return out


def transition_coverage(
    netlist: Netlist,
    pairs: Sequence[tuple[Mapping[str, int], Mapping[str, int]]],
    faults: Sequence[TransitionFault] | None = None,
    width: int = 64,
    backend: str | None = None,
) -> float:
    """Fraction of transition faults detected by the vector pairs."""
    if faults is None:
        faults = all_transition_faults(netlist)
    remaining = list(faults)
    detected = 0
    for pair in pairs:
        if not remaining:
            break
        masks = transition_pair_masks(
            netlist, pair, remaining, width=width, backend=backend
        )
        still = []
        for f in remaining:
            if masks[f]:
                detected += 1
            else:
                still.append(f)
        remaining = still
    return detected / len(faults) if faults else 1.0


def random_pair_coverage(
    netlist: Netlist,
    n_pairs: int = 64,
    seed: int = 1,
    faults: Sequence[TransitionFault] | None = None,
    backend: str | None = None,
) -> float:
    """Transition coverage of pseudorandom launch-on-capture pairs."""
    import random

    rng = random.Random(seed)
    pis = netlist.inputs()
    width = 32
    pairs = []
    for _ in range((n_pairs + width - 1) // width):
        v1 = {pi: rng.getrandbits(width) for pi in pis}
        v2 = {pi: rng.getrandbits(width) for pi in pis}
        pairs.append((v1, v2))
    return transition_coverage(
        netlist, pairs, faults=faults, width=width, backend=backend
    )
