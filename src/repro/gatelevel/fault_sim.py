"""Parallel-pattern serial-fault simulation.

For each fault, the netlist is re-simulated with the faulty net forced
and the outputs (plus scan-FF states, which are observable) compared
against the good machine, ``width`` patterns at a time.

Two engines produce bit-identical results:

* the **compiled kernel** (:mod:`repro.gatelevel.kernel`): levelized
  numpy program, arbitrary word width, cone-restricted faulty
  evaluation — the default;
* the **reference interpreter** below: per-gate dict walk, kept for
  equivalence checking and numpy-free environments.

Select with ``backend=`` (``"kernel"`` / ``"interp"``) or the
``REPRO_FAULTSIM_BACKEND`` environment variable.  ``shards=`` (or
``REPRO_FAULTSIM_SHARDS``) splits the fault list across worker
processes; the merged result is byte-identical to a serial run.
"""

from __future__ import annotations

import time
from typing import Mapping, Sequence

from repro.flow.metrics import record_metric
from repro.gatelevel.faults import Fault
from repro.gatelevel.gates import Netlist
from repro.gatelevel.simulate import parallel_simulate
from repro.gatelevel.structure import (
    collapse_map,
    record_collapse_metrics,
    resolve_collapse,
)

BACKEND_ENV = "REPRO_FAULTSIM_BACKEND"
SHARDS_ENV = "REPRO_FAULTSIM_SHARDS"
#: below this many faults a process pool costs more than it saves
MIN_FAULTS_PER_SHARD = 16


#: canonical backend names and their accepted aliases.
_BACKEND_CHOICES = {
    "kernel": (),
    "interp": ("interpreter", "reference"),
}


def resolve_backend(backend: str | None = None) -> str:
    """Normalise a backend choice: explicit arg > env > kernel.

    Bad values -- from either source -- raise a one-line
    :class:`repro.knobs.KnobError` naming the knob, instead of a bare
    ``ValueError`` deep inside a worker process.
    """
    from repro.gatelevel import kernel
    from repro.knobs import env_choice, normalize_choice

    if backend is None:
        backend = env_choice(BACKEND_ENV, "kernel", _BACKEND_CHOICES)
    else:
        backend = normalize_choice(backend, "backend", _BACKEND_CHOICES)
    if backend == "interp":
        return "interp"
    return "kernel" if kernel.have_kernel() else "interp"


def resolve_shards(shards: int | None = None) -> int:
    from repro.knobs import coerce_int, env_int

    if shards is None:
        return env_int(SHARDS_ENV, 1, minimum=1)
    return coerce_int(shards, "shards", minimum=1)


def _observable_difference(
    netlist: Netlist,
    good_vals: dict[str, int],
    good_state: dict[str, int],
    bad_vals: dict[str, int],
    bad_state: dict[str, int],
) -> int:
    """Packed mask of patterns where the fault is visible."""
    diff = 0
    for out in netlist.outputs:
        diff |= good_vals[out] ^ bad_vals[out]
    for g in netlist.scan_dffs():
        diff |= good_state[g.name] ^ bad_state[g.name]
    return diff


def fault_simulate(
    netlist: Netlist,
    faults: Sequence[Fault],
    pi_sequence: Sequence[Mapping[str, int]],
    width: int = 64,
    initial_state: Mapping[str, int] | None = None,
    drop_detected: bool = False,
    backend: str | None = None,
    shards: int | None = None,
    collapse: bool | None = None,
) -> dict[Fault, bool]:
    """Simulate a vector sequence against every fault; fault -> detected."""
    cycles = fault_simulate_cycles(
        netlist, faults, pi_sequence, width=width,
        initial_state=initial_state, drop_detected=drop_detected,
        backend=backend, shards=shards, collapse=collapse,
    )
    return {f: c is not None for f, c in cycles.items()}


def fault_simulate_cycles(
    netlist: Netlist,
    faults: Sequence[Fault],
    pi_sequence: Sequence[Mapping[str, int]],
    width: int = 64,
    initial_state: Mapping[str, int] | None = None,
    drop_detected: bool = False,
    backend: str | None = None,
    shards: int | None = None,
    collapse: bool | None = None,
) -> dict[Fault, int | None]:
    """Simulate a vector sequence against every fault.

    ``pi_sequence`` is a list of per-cycle packed PI assignments (each
    int packs ``width`` patterns that run as independent sequences).
    Scan flip-flops count as observation points each cycle, and their
    state is *not* corrupted across cycles in the faulty machine (scan
    reload), unless the fault sits on the scan FF itself.

    With ``drop_detected`` the simulation walks cycles outermost and
    retires each fault the moment it is detected; once every fault is
    detected the remaining cycles -- including the good-machine
    simulation of them -- are skipped entirely.  Results are identical
    either way (per fault, the same cycles are simulated up to its
    first detection); only the amount of work for fully-detected fault
    lists differs.

    With ``collapse`` (default: the ``REPRO_FAULT_COLLAPSE`` knob, on)
    only one representative per structural equivalence class is
    simulated and the per-class result is fanned back out -- exact, not
    approximate, because equivalent faults produce identical machines
    (see :mod:`repro.gatelevel.structure`).

    Returns fault -> first detecting cycle index (None if undetected),
    in the order the faults were given.
    """
    backend = resolve_backend(backend)
    shards = resolve_shards(shards)
    if resolve_collapse(collapse):
        cmap = collapse_map(netlist)
        reps = cmap.representatives(faults)
        if len(reps) < len(faults):
            record_collapse_metrics(len(faults), len(reps))
            res = fault_simulate_cycles(
                netlist, reps, pi_sequence, width=width,
                initial_state=initial_state,
                drop_detected=drop_detected, backend=backend,
                shards=shards, collapse=False,
            )
            return cmap.expand(res, list(faults))
    if shards > 1 and len(faults) >= 2 * MIN_FAULTS_PER_SHARD:
        return _fault_simulate_sharded(
            netlist, faults, pi_sequence, width, initial_state,
            drop_detected, backend, shards,
        )
    t0 = time.perf_counter()
    if backend == "kernel":
        from repro.gatelevel.kernel import compiled

        comp = compiled(netlist)
        result = comp.fault_simulate_cycles(
            faults, pi_sequence, width=width,
            initial_state=initial_state, drop_detected=drop_detected,
        )
        _record_pps(comp._pattern_cycles, time.perf_counter() - t0)
        return result
    result = _fault_simulate_cycles_interp(
        netlist, faults, pi_sequence, width, initial_state, drop_detected
    )
    work = sum(
        width * (len(pi_sequence) if c is None else c + 1)
        for c in result.values()
    )
    _record_pps(work, time.perf_counter() - t0)
    return result


def _record_pps(pattern_cycles: int, seconds: float, shard: int | None = None) -> None:
    if seconds > 0 and pattern_cycles:
        name = "patterns_per_s" if shard is None else f"shard{shard}_pps"
        record_metric(name, round(pattern_cycles / seconds, 1))


# ---------------------------------------------------------------------------
# fault-parallel sharding

def _encode_fault_block(netlist: Netlist, faults: Sequence[Fault]):
    """Faults as an ``(n, 2)`` int64 array of (topo row, stuck value).

    The topo index is content-determined, so a worker decoding against
    its own (or a hash-cached) copy of the netlist reconstructs exactly
    the caller's fault list.  Faults on unknown nets (legal: they read
    as undetectable) cannot be row-encoded and come back positionally
    in ``extras``.
    """
    import numpy as np

    index = {name: i for i, name in enumerate(netlist.topo_order())}
    arr = np.empty((len(faults), 2), dtype=np.int64)
    extras: dict[int, Fault] = {}
    for pos, f in enumerate(faults):
        row = index.get(f.net, -1)
        arr[pos, 0] = row
        arr[pos, 1] = f.stuck_at
        if row < 0:
            extras[pos] = f
    return arr, extras


def _decode_fault_block(netlist: Netlist, block) -> list[Fault]:
    """Inverse of :func:`_encode_fault_block` for one shard's slice."""
    from repro.flow import shm

    handle, start, end, extras = block
    arr = shm.attach_array(handle)
    names = netlist.topo_order()
    out: list[Fault] = []
    for pos in range(start, end):
        row = int(arr[pos, 0])
        if row < 0:
            out.append(extras[pos])
        else:
            out.append(Fault(names[row], int(arr[pos, 1])))
    return out


def _shard_worker(args):
    (shard_index, digest, netlist, chunk, pi_sequence, width,
     initial_state, drop_detected, backend) = args
    from repro.flow import chaos
    from repro.gatelevel.kernel import resolve_netlist

    chaos.checkpoint(f"faultsim_shard:{shard_index}")
    # The pickle transport ships the body every task, but the hash
    # cache still deduplicates the *compiled* program across tasks in a
    # warm worker (the shipped copy is dropped on a hit).
    netlist = resolve_netlist(digest, netlist)
    t0 = time.perf_counter()
    # collapse=False: the parent collapsed before sharding, so the
    # chunk already holds representatives only.
    res = fault_simulate_cycles(
        netlist, chunk, pi_sequence, width=width,
        initial_state=initial_state, drop_detected=drop_detected,
        backend=backend, shards=1, collapse=False,
    )
    work = sum(
        width * (len(pi_sequence) if c is None else c + 1)
        for c in res.values()
    )
    return res, work, time.perf_counter() - t0


def _shard_worker_shm(args):
    (shard_index, digest, net_ref, fault_block, pi_ref, width,
     state_ref, drop_detected, backend) = args
    from repro.flow import chaos, shm
    from repro.gatelevel.kernel import compiled, resolve_netlist

    chaos.checkpoint(f"faultsim_shard:{shard_index}")
    netlist = resolve_netlist(
        digest, lambda: shm.attach_bytes(net_ref.handle)
    )
    chunk = (_decode_fault_block(netlist, fault_block)
             if isinstance(fault_block, tuple)
             else shm.fetch_object(fault_block))
    initial_state = shm.fetch_object(state_ref) if state_ref else None
    t0 = time.perf_counter()
    if backend == "kernel" and isinstance(pi_ref, shm.ShmHandle):
        comp = compiled(netlist)
        res = comp.fault_simulate_cycles(
            chunk, None, width=width, initial_state=initial_state,
            drop_detected=drop_detected,
            pi_words=shm.attach_array(pi_ref),
        )
        work = comp._pattern_cycles
    else:
        pi_sequence = shm.fetch_object(pi_ref)
        res = fault_simulate_cycles(
            netlist, chunk, pi_sequence, width=width,
            initial_state=initial_state, drop_detected=drop_detected,
            backend=backend, shards=1, collapse=False,
        )
        work = sum(
            width * (len(pi_sequence) if c is None else c + 1)
            for c in res.values()
        )
    return res, work, time.perf_counter() - t0


def _fault_simulate_sharded(
    netlist: Netlist,
    faults: Sequence[Fault],
    pi_sequence: Sequence[Mapping[str, int]],
    width: int,
    initial_state: Mapping[str, int] | None,
    drop_detected: bool,
    backend: str,
    shards: int,
) -> dict[Fault, int | None]:
    """Split the fault list across worker processes; deterministic merge.

    Faults are partitioned into contiguous chunks (fault independence
    makes any partition exact, contiguity keeps each shard's locality);
    the merged dict is rebuilt in the caller's fault order, so a sharded
    run is byte-identical to a serial one.

    Payloads travel over the transport picked by
    :func:`repro.flow.shm.resolve_transport` (``REPRO_SHARD_TRANSPORT``):
    under ``shm`` the netlist body, the packed pattern words, and the
    fault index array are published once in shared memory and each
    shard's args are a few hundred bytes of references; under ``pickle``
    every shard ships the full payload through the pool pipe (the
    historical path, kept as baseline and fallback).  Results are
    byte-identical across transports and shard counts.

    Runs on :func:`repro.flow.resilience.run_sharded`: a shard whose
    worker crashes or dies is retried once in a fresh pool and then
    executed in-process, so worker loss degrades throughput, never the
    result.  Fallbacks are visible as the ``shard_fallbacks`` /
    ``shard_pool_rebuilds`` flow metrics.
    """
    from repro.flow import shm
    from repro.flow.resilience import run_sharded
    from repro.gatelevel import kernel

    shards = min(shards, max(1, len(faults) // MIN_FAULTS_PER_SHARD))
    if shards <= 1:
        return fault_simulate_cycles(
            netlist, faults, pi_sequence, width=width,
            initial_state=initial_state, drop_detected=drop_detected,
            backend=backend, shards=1, collapse=False,
        )
    bounds = [round(i * len(faults) / shards) for i in range(shards + 1)]
    chunks = [list(faults[bounds[i]:bounds[i + 1]]) for i in range(shards)]
    state = dict(initial_state) if initial_state else None
    transport = shm.resolve_transport()
    digest, blob = kernel.netlist_blob(netlist)
    merged: dict[Fault, int | None] = {}
    if transport == "shm":
        with shm.PayloadPlane() as plane:
            net_ref = plane.publish_object(None, blob=blob,
                                           digest=digest)
            if kernel.have_kernel():
                arr, extras = _encode_fault_block(netlist, list(faults))
                fh = plane.publish_array(arr)
                blocks = [
                    (fh, bounds[i], bounds[i + 1],
                     {p: f for p, f in extras.items()
                      if bounds[i] <= p < bounds[i + 1]})
                    for i in range(shards)
                ]
            else:
                blocks = [plane.publish_object(c) for c in chunks]
            if backend == "kernel":
                pi_ref = plane.publish_array(
                    kernel.compiled(netlist).pack_pi_sequence(
                        list(pi_sequence), width
                    )
                )
            else:
                pi_ref = plane.publish_object(list(pi_sequence))
            state_ref = plane.publish_object(state) if state else None
            args = [
                (i, digest, net_ref, blocks[i], pi_ref, width,
                 state_ref, drop_detected, backend)
                for i in range(shards)
            ]
            _record_payload_bytes(args, plane)
            results, info = run_sharded(
                _shard_worker_shm, args, max_workers=shards,
                label="faultsim_shard",
            )
    else:
        args = [(i, digest, netlist, chunk, list(pi_sequence), width,
                 state, drop_detected, backend)
                for i, chunk in enumerate(chunks)]
        _record_payload_bytes(args, None)
        results, info = run_sharded(
            _shard_worker, args, max_workers=shards,
            label="faultsim_shard",
        )
    for i, (res, work, secs) in enumerate(results):
        _record_pps(work, secs, shard=i)
        merged.update(res)
    _record_shard_info(info)
    return {f: merged[f] for f in faults}


def _record_payload_bytes(args: Sequence, plane) -> None:
    """Surface dispatch cost (bytes through the pool pipe) in flow
    metrics -- skipped when no collector is open, so the sizing pickle
    never taxes bare library calls."""
    from repro.flow.metrics import metrics_active
    from repro.flow.shm import payload_nbytes

    if not metrics_active():
        return
    record_metric("payload_bytes",
                  sum(payload_nbytes(a) for a in args))
    if plane is not None:
        record_metric("shm_bytes", plane.total_bytes)


def _record_shard_info(info: Mapping[str, int]) -> None:
    """Surface shard-recovery events in the current flow metrics."""
    for name in ("shard_retries", "shard_fallbacks", "pool_rebuilds",
                 "shard_errors"):
        if info.get(name):
            key = "shard_pool_rebuilds" if name == "pool_rebuilds" else name
            record_metric(key, info[name])


# ---------------------------------------------------------------------------
# reference interpreter

def _fault_simulate_cycles_interp(
    netlist: Netlist,
    faults: Sequence[Fault],
    pi_sequence: Sequence[Mapping[str, int]],
    width: int = 64,
    initial_state: Mapping[str, int] | None = None,
    drop_detected: bool = False,
) -> dict[Fault, int | None]:
    order = netlist.topo_order()
    mask = (1 << width) - 1
    scan_names = {g.name for g in netlist.scan_dffs()}

    def forced_for(fault: Fault) -> dict[str, int]:
        return {fault.net: 0 if fault.stuck_at == 0 else mask}

    if drop_detected:
        detected: dict[Fault, int | None] = {f: None for f in faults}
        states = {f: dict(initial_state or {}) for f in faults}
        good_state = dict(initial_state or {})
        active = list(faults)
        for cycle, piv in enumerate(pi_sequence):
            if not active:
                break
            gvals, gnxt = parallel_simulate(
                netlist, piv, good_state, width=width, order=order
            )
            good_state = gnxt
            still_active = []
            for fault in active:
                vals, nxt = parallel_simulate(
                    netlist, piv, states[fault], width=width,
                    order=order, forced=forced_for(fault),
                )
                if _observable_difference(netlist, gvals, gnxt, vals,
                                          nxt):
                    detected[fault] = cycle
                    states.pop(fault, None)
                    continue
                # Scan reload: scanned state follows the good machine.
                for name in scan_names:
                    if name != fault.net:
                        nxt[name] = gnxt[name]
                states[fault] = nxt
                still_active.append(fault)
            active = still_active
        return detected

    # Good-machine trace.
    good: list[tuple[dict[str, int], dict[str, int]]] = []
    state = dict(initial_state or {})
    for piv in pi_sequence:
        vals, nxt = parallel_simulate(
            netlist, piv, state, width=width, order=order
        )
        good.append((vals, nxt))
        state = nxt

    detected = {}
    for fault in faults:
        forced = forced_for(fault)
        state = dict(initial_state or {})
        seen: int | None = None
        for cycle, piv in enumerate(pi_sequence):
            vals, nxt = parallel_simulate(
                netlist, piv, state, width=width, order=order,
                forced=forced,
            )
            gvals, gnxt = good[cycle]
            if _observable_difference(netlist, gvals, gnxt, vals, nxt):
                seen = cycle
                break
            # Scan reload: scanned state follows the good machine.
            for name in scan_names:
                if name != fault.net:
                    nxt[name] = gnxt[name]
            state = nxt
        detected[fault] = seen
    return detected


def detected_faults(results: Mapping[Fault, bool]) -> list[Fault]:
    """The detected subset of a :func:`fault_simulate` result, sorted."""
    return sorted(f for f, d in results.items() if d)
