"""Parallel-pattern serial-fault simulation.

For each fault, the netlist is re-simulated with the faulty net forced
and the outputs (plus scan-FF states, which are observable) compared
against the good machine, 64 patterns at a time.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.gatelevel.faults import Fault
from repro.gatelevel.gates import Netlist
from repro.gatelevel.simulate import parallel_simulate


def _observable_difference(
    netlist: Netlist,
    good_vals: dict[str, int],
    good_state: dict[str, int],
    bad_vals: dict[str, int],
    bad_state: dict[str, int],
) -> int:
    """Packed mask of patterns where the fault is visible."""
    diff = 0
    for out in netlist.outputs:
        diff |= good_vals[out] ^ bad_vals[out]
    for g in netlist.scan_dffs():
        diff |= good_state[g.name] ^ bad_state[g.name]
    return diff


def fault_simulate(
    netlist: Netlist,
    faults: Sequence[Fault],
    pi_sequence: Sequence[Mapping[str, int]],
    width: int = 64,
    initial_state: Mapping[str, int] | None = None,
) -> dict[Fault, bool]:
    """Simulate a vector sequence against every fault; fault -> detected."""
    cycles = fault_simulate_cycles(
        netlist, faults, pi_sequence, width=width,
        initial_state=initial_state,
    )
    return {f: c is not None for f, c in cycles.items()}


def fault_simulate_cycles(
    netlist: Netlist,
    faults: Sequence[Fault],
    pi_sequence: Sequence[Mapping[str, int]],
    width: int = 64,
    initial_state: Mapping[str, int] | None = None,
) -> dict[Fault, int | None]:
    """Simulate a vector sequence against every fault.

    ``pi_sequence`` is a list of per-cycle packed PI assignments (each
    int packs ``width`` patterns that run as independent sequences).
    Scan flip-flops count as observation points each cycle, and their
    state is *not* corrupted across cycles in the faulty machine (scan
    reload), unless the fault sits on the scan FF itself.

    Returns fault -> first detecting cycle index (None if undetected).
    """
    order = netlist.topo_order()
    mask = (1 << width) - 1
    scan_names = {g.name for g in netlist.scan_dffs()}

    # Good-machine trace.
    good: list[tuple[dict[str, int], dict[str, int]]] = []
    state = dict(initial_state or {})
    for piv in pi_sequence:
        vals, nxt = parallel_simulate(
            netlist, piv, state, width=width, order=order
        )
        good.append((vals, nxt))
        state = nxt

    detected: dict[Fault, int | None] = {}
    for fault in faults:
        forced = {fault.net: 0 if fault.stuck_at == 0 else mask}
        state = dict(initial_state or {})
        seen: int | None = None
        for cycle, piv in enumerate(pi_sequence):
            vals, nxt = parallel_simulate(
                netlist, piv, state, width=width, order=order,
                forced=forced,
            )
            gvals, gnxt = good[cycle]
            if _observable_difference(netlist, gvals, gnxt, vals, nxt):
                seen = cycle
                break
            # Scan reload: scanned state follows the good machine.
            for name in scan_names:
                if name != fault.net:
                    nxt[name] = gnxt[name]
            state = nxt
        detected[fault] = seen
    return detected


def detected_faults(results: Mapping[Fault, bool]) -> list[Fault]:
    """The detected subset of a :func:`fault_simulate` result, sorted."""
    return sorted(f for f, d in results.items() if d)
