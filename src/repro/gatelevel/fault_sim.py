"""Parallel-pattern serial-fault simulation.

For each fault, the netlist is re-simulated with the faulty net forced
and the outputs (plus scan-FF states, which are observable) compared
against the good machine, 64 patterns at a time.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.gatelevel.faults import Fault
from repro.gatelevel.gates import Netlist
from repro.gatelevel.simulate import parallel_simulate


def _observable_difference(
    netlist: Netlist,
    good_vals: dict[str, int],
    good_state: dict[str, int],
    bad_vals: dict[str, int],
    bad_state: dict[str, int],
) -> int:
    """Packed mask of patterns where the fault is visible."""
    diff = 0
    for out in netlist.outputs:
        diff |= good_vals[out] ^ bad_vals[out]
    for g in netlist.scan_dffs():
        diff |= good_state[g.name] ^ bad_state[g.name]
    return diff


def fault_simulate(
    netlist: Netlist,
    faults: Sequence[Fault],
    pi_sequence: Sequence[Mapping[str, int]],
    width: int = 64,
    initial_state: Mapping[str, int] | None = None,
    drop_detected: bool = False,
) -> dict[Fault, bool]:
    """Simulate a vector sequence against every fault; fault -> detected."""
    cycles = fault_simulate_cycles(
        netlist, faults, pi_sequence, width=width,
        initial_state=initial_state, drop_detected=drop_detected,
    )
    return {f: c is not None for f, c in cycles.items()}


def fault_simulate_cycles(
    netlist: Netlist,
    faults: Sequence[Fault],
    pi_sequence: Sequence[Mapping[str, int]],
    width: int = 64,
    initial_state: Mapping[str, int] | None = None,
    drop_detected: bool = False,
) -> dict[Fault, int | None]:
    """Simulate a vector sequence against every fault.

    ``pi_sequence`` is a list of per-cycle packed PI assignments (each
    int packs ``width`` patterns that run as independent sequences).
    Scan flip-flops count as observation points each cycle, and their
    state is *not* corrupted across cycles in the faulty machine (scan
    reload), unless the fault sits on the scan FF itself.

    With ``drop_detected`` the simulation walks cycles outermost and
    retires each fault the moment it is detected; once every fault is
    detected the remaining cycles -- including the good-machine
    simulation of them -- are skipped entirely.  Results are identical
    either way (per fault, the same cycles are simulated up to its
    first detection); only the amount of work for fully-detected fault
    lists differs.

    Returns fault -> first detecting cycle index (None if undetected).
    """
    order = netlist.topo_order()
    mask = (1 << width) - 1
    scan_names = {g.name for g in netlist.scan_dffs()}

    def forced_for(fault: Fault) -> dict[str, int]:
        return {fault.net: 0 if fault.stuck_at == 0 else mask}

    if drop_detected:
        detected: dict[Fault, int | None] = {f: None for f in faults}
        states = {f: dict(initial_state or {}) for f in faults}
        good_state = dict(initial_state or {})
        active = list(faults)
        for cycle, piv in enumerate(pi_sequence):
            if not active:
                break
            gvals, gnxt = parallel_simulate(
                netlist, piv, good_state, width=width, order=order
            )
            good_state = gnxt
            still_active = []
            for fault in active:
                vals, nxt = parallel_simulate(
                    netlist, piv, states[fault], width=width,
                    order=order, forced=forced_for(fault),
                )
                if _observable_difference(netlist, gvals, gnxt, vals,
                                          nxt):
                    detected[fault] = cycle
                    states.pop(fault, None)
                    continue
                # Scan reload: scanned state follows the good machine.
                for name in scan_names:
                    if name != fault.net:
                        nxt[name] = gnxt[name]
                states[fault] = nxt
                still_active.append(fault)
            active = still_active
        return detected

    # Good-machine trace.
    good: list[tuple[dict[str, int], dict[str, int]]] = []
    state = dict(initial_state or {})
    for piv in pi_sequence:
        vals, nxt = parallel_simulate(
            netlist, piv, state, width=width, order=order
        )
        good.append((vals, nxt))
        state = nxt

    detected = {}
    for fault in faults:
        forced = forced_for(fault)
        state = dict(initial_state or {})
        seen: int | None = None
        for cycle, piv in enumerate(pi_sequence):
            vals, nxt = parallel_simulate(
                netlist, piv, state, width=width, order=order,
                forced=forced,
            )
            gvals, gnxt = good[cycle]
            if _observable_difference(netlist, gvals, gnxt, vals, nxt):
                seen = cycle
                break
            # Scan reload: scanned state follows the good machine.
            for name in scan_names:
                if name != fault.net:
                    nxt[name] = gnxt[name]
            state = nxt
        detected[fault] = seen
    return detected


def detected_faults(results: Mapping[Fault, bool]) -> list[Fault]:
    """The detected subset of a :func:`fault_simulate` result, sorted."""
    return sorted(f for f, d in results.items() if d)
