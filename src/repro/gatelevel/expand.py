"""Bit-level expansion of data paths (and composites with controllers).

Registers become D flip-flops with load-enable and source-select muxes,
functional units become ripple-carry adders / subtractors / array
multipliers / comparators / bitwise logic with function-select muxes,
and the interconnect becomes binary-select mux trees.

Two entry points:

* :func:`expand_datapath` -- control signals become primary inputs
  (the "control signals fully controllable in test mode" assumption of
  survey section 3.5).
* :func:`expand_composite` -- a :class:`~repro.hls.controller.Controller`
  is synthesized alongside and drives those control nets, which is the
  configuration where controller/data-path interaction problems appear
  (experiment E-3.5).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.gatelevel.gates import Netlist, NetlistError, sweep_dead_logic
from repro.hls.controller import Controller
from repro.hls.datapath import Datapath


class _Builder:
    """Netlist construction helpers with unique naming.

    ``ns`` namespaces generated gate names so two builders' outputs can
    be merged into one netlist without collisions.
    """

    def __init__(self, name: str, ns: str = "") -> None:
        self.nl = Netlist(name)
        self._n = 0
        self._ns = ns
        self.zero = self.nl.add("_zero", "const0")
        self.one = self.nl.add("_one", "const1")

    def fresh(self, prefix: str) -> str:
        self._n += 1
        return f"{self._ns}{prefix}_{self._n}"

    def g(self, kind: str, *ins: str, prefix: str = "n") -> str:
        folded = self._fold(kind, ins)
        if folded is not None:
            return folded
        return self.nl.add(self.fresh(prefix), kind, *ins)

    def _fold(self, kind: str, ins: tuple[str, ...]) -> str | None:
        """Peephole constant folding: constant/duplicate operands never
        produce gates, keeping the fault universe free of by-construction
        redundancies (truncated carries, and-with-zero, ...)."""
        Z, O = self.zero, self.one
        if kind == "buf":
            return ins[0]
        if kind == "not":
            return O if ins[0] == Z else Z if ins[0] == O else None
        if kind in ("and", "or", "xor"):
            a, b = ins
            if a == b:
                return a if kind in ("and", "or") else Z
            for x, y in ((a, b), (b, a)):
                if kind == "and" and x == Z:
                    return Z
                if kind == "and" and x == O:
                    return y
                if kind == "or" and x == O:
                    return O
                if kind == "or" and x == Z:
                    return y
                if kind == "xor" and x == Z:
                    return y
                if kind == "xor" and x == O:
                    return self.g("not", y, prefix="fold")
        if kind == "mux":
            s, a, b = ins
            if s == O or a == b:
                return a
            if s == Z:
                return b
        return None

    # ------------------------------------------------------------------
    # word-level building blocks (LSB-first bit vectors)

    def word_input(self, name: str, width: int) -> list[str]:
        return [self.nl.add(f"{name}_b{i}", "input") for i in range(width)]

    def mux_word(self, sel: str, a: Sequence[str], b: Sequence[str]) -> list[str]:
        """sel ? a : b, bitwise."""
        return [self.g("mux", sel, x, y, prefix="mx") for x, y in zip(a, b)]

    def mux_tree(
        self, selects: Sequence[str], words: Sequence[Sequence[str]]
    ) -> list[str]:
        """Binary-select tree over ``words`` (len <= 2**len(selects))."""
        if len(words) == 1:
            return list(words[0])
        level = list(words)
        for s in selects:
            nxt = []
            for i in range(0, len(level), 2):
                if i + 1 < len(level):
                    nxt.append(self.mux_word(s, level[i + 1], level[i]))
                else:
                    nxt.append(level[i])
            level = nxt
            if len(level) == 1:
                break
        if len(level) != 1:
            raise NetlistError("mux tree: not enough select lines")
        return level[0]

    def full_adder(self, a: str, b: str, c: str) -> tuple[str, str]:
        # Constant operands fold away in g(), so constant-carry adders
        # simplify to half adders automatically.
        axb = self.g("xor", a, b, prefix="fa")
        s = self.g("xor", axb, c, prefix="fa")
        t1 = self.g("and", a, b, prefix="fa")
        t2 = self.g("and", axb, c, prefix="fa")
        cout = self.g("or", t1, t2, prefix="fa")
        return s, cout

    def adder(
        self, a: Sequence[str], b: Sequence[str], sub: bool = False
    ) -> tuple[list[str], str]:
        """Ripple add (or subtract: a + ~b + 1).  Returns (sum, carry)."""
        carry = self.one if sub else self.zero
        out = []
        for ai, bi in zip(a, b):
            bb = self.g("not", bi, prefix="sb") if sub else bi
            s, carry = self.full_adder(ai, bb, carry)
            out.append(s)
        return out, carry

    def multiplier(self, a: Sequence[str], b: Sequence[str]) -> list[str]:
        """Shift-and-add array multiplier, truncated to len(a) bits."""
        width = len(a)
        acc = [self.zero] * width
        for j in range(width):
            addend = [
                self.g("and", a[i - j], b[j], prefix="pp")
                if i >= j else self.zero
                for i in range(width)
            ]
            acc, _c = self.adder(acc, addend)
        return acc

    def less_than(self, a: Sequence[str], b: Sequence[str]) -> list[str]:
        """Unsigned a < b -> bit 0; upper bits zero."""
        _diff, carry = self.adder(a, b, sub=True)
        borrow = self.g("not", carry, prefix="lt")
        return [borrow] + [self.zero] * (len(a) - 1)

    def equals(self, a: Sequence[str], b: Sequence[str]) -> list[str]:
        bits = [self.g("xnor", x, y, prefix="eq") for x, y in zip(a, b)]
        acc = bits[0]
        for nxt in bits[1:]:
            acc = self.g("and", acc, nxt, prefix="eq")
        return [acc] + [self.zero] * (len(a) - 1)

    def bitwise(self, kind: str, a: Sequence[str], b: Sequence[str]) -> list[str]:
        return [self.g(kind, x, y, prefix="bw") for x, y in zip(a, b)]

    def apply_kind(self, kind: str, ports: Sequence[Sequence[str]]) -> list[str]:
        a, b = ports[0], ports[1] if len(ports) > 1 else ports[0]
        if kind == "+":
            return self.adder(a, b)[0]
        if kind == "-":
            return self.adder(a, b, sub=True)[0]
        if kind == "*":
            return self.multiplier(a, b)
        if kind == "<":
            return self.less_than(a, b)
        if kind == ">":
            return self.less_than(b, a)
        if kind == "==":
            return self.equals(a, b)
        if kind in ("&", "|", "^"):
            return self.bitwise(
                {"&": "and", "|": "or", "^": "xor"}[kind], a, b
            )
        if kind == "select":
            if len(ports) < 3:
                raise NetlistError("select needs three ports")
            # condition is the LSB reduction-OR of port 0
            cond = ports[0][0]
            for bit in ports[0][1:]:
                cond = self.g("or", cond, bit, prefix="sc")
            return self.mux_word(cond, ports[1], ports[2])
        raise NetlistError(f"no gate expansion for operation kind {kind!r}")


def _select_width(n: int) -> int:
    return max(1, math.ceil(math.log2(n))) if n > 1 else 0


def _bist_bit(
    b: "_Builder",
    register,
    q_bits: Sequence[str],
    data_bits: Sequence[str],
    i: int,
    role: str,
) -> str:
    """Next-state bit ``i`` of a register in its BIST configuration.

    TPGR (and session-active CBILBO): Fibonacci LFSR over the
    register's own bits.  SR / BILBO: MISR -- the LFSR shift XORed with
    the register's functional data input, compacting a response word
    every test cycle.
    """
    from repro.bist.registers import taps_for

    width = register.width
    if width < 2:
        # degenerate 1-bit register: toggle (TPGR) / xor-compact (SR)
        if role in ("TPGR", "CBILBO"):
            return b.g("not", q_bits[0], prefix="bg")
        return b.g("xor", q_bits[0], data_bits[0], prefix="bg")
    if i == 0:
        fb = None
        for t in taps_for(width):
            bit = q_bits[t - 1]
            fb = bit if fb is None else b.g("xor", fb, bit, prefix="bg")
        # XNOR feedback: the all-zero reset state is then a live state
        # (the lockup moves to all-ones), so no seeding logic is needed.
        shifted = b.g("not", fb, prefix="bg")
    else:
        shifted = q_bits[i - 1]
    if role in ("TPGR", "CBILBO"):
        return shifted
    return b.g("xor", shifted, data_bits[i], prefix="bg")


def expand_datapath(
    datapath: Datapath,
    bist_roles: Mapping[str, str] | None = None,
) -> tuple[Netlist, dict]:
    """Expand ``datapath`` with control nets as primary inputs.

    Returns the netlist and a *control map* describing the control
    nets, used by :func:`expand_composite` and the experiments::

        {
          "reg_load":   {reg: net},
          "reg_sel":    {reg: ([sel nets], [source names])},
          "port_sel":   {(unit, port): ([sel nets], [source regs])},
          "fn_sel":     {unit: ([sel nets], [kinds])},
        }

    With ``bist_roles`` (register name -> "TPGR" | "SR" | "BILBO" |
    "CBILBO"), a ``bist_en`` input is added and the named registers get
    in-situ test hardware at the bit level: TPGRs become LFSRs over
    their own bits, SRs become MISRs compacting their functional data
    input every cycle (BILBO/CBILBO are realised as their
    session-active role: BILBO as SR, CBILBO as an LFSR that is also
    made scan-observable).  The control map gains ``"bist_en"``.
    """
    b = _Builder(f"gates:{datapath.name}")

    # Register state bits (Q) come first so units can reference them.
    q: dict[str, list[str]] = {}
    for r in datapath.registers:
        q[r.name] = [f"{r.name}_b{i}" for i in range(r.width)]

    control: dict = {"reg_load": {}, "reg_sel": {}, "port_sel": {}, "fn_sel": {}}

    # Primary-input buses.
    pi_bus: dict[str, list[str]] = {}
    for var in datapath.cdfg.primary_inputs():
        pi_bus[var.name] = b.word_input(f"pi_{var.name}", var.width)

    def pad(bits: list[str], width: int) -> list[str]:
        return (bits + [b.zero] * width)[:width]

    # Functional units.
    unit_out: dict[str, list[str]] = {}
    port_srcs = datapath.unit_input_sources()
    for unit in datapath.units:
        ports: list[list[str]] = []
        for p, srcs in enumerate(port_srcs.get(unit.name, [])):
            sources = sorted(srcs)
            nsel = _select_width(len(sources))
            sels = [
                b.nl.add(f"{unit.name}_p{p}_sel{k}", "input")
                for k in range(nsel)
            ]
            words = [pad(q[s], unit.width) for s in sources]
            ports.append(b.mux_tree(sels, words) if words else
                         [b.zero] * unit.width)
            control["port_sel"][(unit.name, p)] = (sels, sources)
        min_ports = 3 if "select" in unit.kinds else 2
        while len(ports) < min_ports:
            ports.append([b.zero] * unit.width)
        kinds = sorted(unit.kinds)
        results = [b.apply_kind(k, ports) for k in kinds]
        nfn = _select_width(len(kinds))
        fns = [
            b.nl.add(f"{unit.name}_fn{k}", "input") for k in range(nfn)
        ]
        unit_out[unit.name] = b.mux_tree(fns, results)
        control["fn_sel"][unit.name] = (fns, kinds)

    # Registers: D = load ? mux(sources) : Q, optionally wrapped in
    # in-situ BIST hardware.
    bist_roles = bist_roles or {}
    bist_en = None
    if bist_roles:
        bist_en = b.nl.add("bist_en", "input")
        control["bist_en"] = bist_en
    reg_sources = datapath.register_sources()
    for r in datapath.registers:
        sources = sorted(reg_sources[r.name])
        words = []
        for s in sources:
            if s.startswith("PI:"):
                words.append(pad(pi_bus[s[3:]], r.width))
            else:
                words.append(pad(unit_out[s], r.width))
        nsel = _select_width(len(sources))
        sels = [
            b.nl.add(f"{r.name}_sel{k}", "input") for k in range(nsel)
        ]
        load = b.nl.add(f"{r.name}_load", "input")
        control["reg_load"][r.name] = load
        control["reg_sel"][r.name] = (sels, sources)
        if words:
            data = b.mux_tree(sels, words)
        else:
            data = q[r.name]
        role = bist_roles.get(r.name)
        scan_flag = r.scan or r.transparent_scan
        for i in range(r.width):
            d = b.g("mux", load, data[i], q[r.name][i], prefix="ld")
            if role is not None and bist_en is not None:
                test_d = _bist_bit(b, r, q[r.name], data, i, role)
                d = b.g("mux", bist_en, test_d, d, prefix="bd")
            b.nl.add(
                q[r.name][i], "dff", d,
                scan=scan_flag or role == "CBILBO",
            )

    # Primary outputs: bits of the registers holding PO variables.
    for var in datapath.cdfg.primary_outputs():
        reg = datapath.register_of_variable(var.name)
        for i in range(min(var.width, reg.width)):
            b.nl.add_output(q[reg.name][i])

    swept = sweep_dead_logic(b.nl)
    return swept, control


def expand_composite(
    datapath: Datapath,
    controller: Controller,
    extra_words: Sequence[Mapping[str, object]] = (),
) -> Netlist:
    """Expand data path *plus* its microcode controller.

    The controller is a step counter plus decode logic driving the
    data-path control nets; the only primary inputs left are the data
    buses (and, when ``extra_words`` are given, the test-mode selects
    of the controller-DFT redesign [14]: ``tm_en`` forces the extra
    control vectors in rotation, restoring controllability of the
    control nets).
    """
    nl, control = expand_datapath(datapath)
    words = [w.signals for w in controller.words] + [dict(w) for w in extra_words]
    n_states = len(controller.words)
    sbits = max(1, math.ceil(math.log2(n_states)))

    # Namespaced builder: its generated nets never collide with the
    # copied data-path nets.
    b = _Builder(f"composite:{datapath.name}", ns="c_")
    # -- controller state counter
    state_q = [f"cstate_b{i}" for i in range(sbits)]
    # increment: state + 1 mod n_states (synchronous wrap via compare).
    inc, _carry = b.adder(state_q, [b.one] + [b.zero] * (sbits - 1))
    # wrap when state == n_states - 1
    last_code = n_states - 1
    eqbits = []
    for i, sq in enumerate(state_q):
        bit = sq if (last_code >> i) & 1 else b.g("not", sq, prefix="wr")
        eqbits.append(bit)
    at_last = eqbits[0]
    for x in eqbits[1:]:
        at_last = b.g("and", at_last, x, prefix="wr")
    # Synchronous reset: without it the controller state would be
    # uninitialisable and no sequential test could ever be justified.
    reset = b.nl.add("reset", "input")
    clear = b.g("or", reset, at_last, prefix="ns")
    next_state = [
        b.g("mux", clear, b.zero, inc[i], prefix="ns") for i in range(sbits)
    ]
    tm_en = None
    tm_sel: list[str] = []
    if extra_words:
        tm_en = b.nl.add("tm_en", "input")
        tm_sel = [
            b.nl.add(f"tm_sel{i}", "input")
            for i in range(max(1, math.ceil(math.log2(len(extra_words)))))
        ]

    def state_decode(code: int) -> str:
        bits = []
        for i, sq in enumerate(state_q):
            bits.append(sq if (code >> i) & 1 else b.g("not", sq, prefix="dc"))
        acc = bits[0]
        for x in bits[1:]:
            acc = b.g("and", acc, x, prefix="dc")
        return acc

    state_hit = {code: state_decode(code) for code in range(n_states)}

    def extra_hit(idx: int) -> str:
        bits = [tm_en]
        for i, s in enumerate(tm_sel):
            bits.append(s if (idx >> i) & 1 else b.g("not", s, prefix="tm"))
        acc = bits[0]
        for x in bits[1:]:
            acc = b.g("and", acc, x, prefix="tm")
        return acc

    extra_hits = [extra_hit(i) for i in range(len(extra_words))]

    def signal_net(value_fn) -> str:
        """OR of minterms where the signal is asserted."""
        terms = []
        for code in range(n_states):
            if value_fn(words[code]):
                hit = state_hit[code]
                if tm_en is not None:
                    ntm = b.g("not", tm_en, prefix="tm")
                    hit = b.g("and", hit, ntm, prefix="tm")
                terms.append(hit)
        for i, w in enumerate(words[n_states:]):
            if value_fn(w):
                terms.append(extra_hits[i])
        if not terms:
            return b.zero
        acc = terms[0]
        for t in terms[1:]:
            acc = b.g("or", acc, t, prefix="sg")
        return acc

    # -- control nets, rebuilt as decode logic
    ctrl_nets: dict[str, str] = {}
    for reg, load_net in control["reg_load"].items():
        ctrl_nets[load_net] = signal_net(
            lambda w, reg=reg: w.get(f"{reg}.load") == 1
        )
    for reg, (sels, sources) in control["reg_sel"].items():
        for k, sel_net in enumerate(sels):
            ctrl_nets[sel_net] = signal_net(
                lambda w, reg=reg, k=k, sources=sources: _sel_bit(
                    w.get(f"{reg}.sel"), sources, k
                )
            )
    for (unit, port), (sels, sources) in control["port_sel"].items():
        for k, sel_net in enumerate(sels):
            ctrl_nets[sel_net] = signal_net(
                lambda w, unit=unit, port=port, k=k, sources=sources:
                _sel_bit(w.get(f"{unit}.sel{port}"), sources, k)
            )
    for unit, (fns, kinds) in control["fn_sel"].items():
        for k, fn_net in enumerate(fns):
            ctrl_nets[fn_net] = signal_net(
                lambda w, unit=unit, k=k, kinds=kinds: _sel_bit(
                    w.get(f"{unit}.fn"), kinds, k
                )
            )

    # -- copy the datapath netlist, remapping control inputs
    remap = dict(ctrl_nets)
    remap["_zero"] = b.zero
    remap["_one"] = b.one
    for gate in nl:
        if gate.kind == "input" and gate.name in remap:
            continue  # replaced by controller logic
        if gate.name in ("_zero", "_one"):
            continue  # shared constants
        newins = tuple(remap.get(i, i) for i in gate.inputs)
        b.nl.add(gate.name, gate.kind, *newins, scan=gate.scan)
    for i, sq in enumerate(state_q):
        b.nl.add(sq, "dff", next_state[i])
    for out in nl.outputs:
        b.nl.add_output(out)
    return sweep_dead_logic(b.nl)


def _sel_bit(value, sources, k) -> bool:
    """Bit ``k`` of the binary index of ``value`` in ``sources``."""
    if value is None or value not in sources:
        return False
    return bool((list(sources).index(value) >> k) & 1)
