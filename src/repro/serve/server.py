"""Stdlib-only asyncio HTTP/JSON front end for the scheduler.

One event loop owns admission, dedupe, and fair queueing
(:mod:`repro.serve.scheduler`); flow execution happens in a bounded
thread executor against the shared warm registry
(:mod:`repro.serve.registry`).  The HTTP layer itself is a deliberately
small HTTP/1.1 implementation over ``asyncio.start_server`` -- no new
dependencies, ``Connection: close`` per request.

Endpoints::

    POST /jobs                submit {"flow", "params"?, "tenant"?}
                              -> 202 job status | 400/404 | 429+Retry-After
    GET  /jobs/<id>           job status (+ live per-stage metrics);
                              ?wait=SECONDS long-polls until done
    GET  /jobs/<id>/result    result payload (rendered text byte-identical
                              to the batch CLI, JSON-safe artifacts,
                              metrics); 202 while pending, 500 if failed
    GET  /healthz             liveness + queue/pool snapshot
    GET  /metrics             counters, cache and pool stats, per tenant
    GET  /knobs               the validated REPRO_* knob registry
    GET  /flows               discoverable flow API surface
    POST /shutdown            graceful stop (used by CI and benches)
"""

from __future__ import annotations

import asyncio
import json
import time
import urllib.parse
from typing import Any

from repro import knobs
from repro.flow.resilience import set_shard_pool_provider
from repro.serve.registry import WarmRegistry
from repro.serve.scheduler import (
    AdmissionError,
    BadSubmissionError,
    Scheduler,
    UnknownFlowError,
)

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 429: "Too Many Requests",
    500: "Internal Server Error",
}

#: long-poll ceiling so a dropped client cannot pin a handler forever.
MAX_WAIT_SECONDS = 60.0


class Server:
    """The service: registry + scheduler + HTTP front end."""

    def __init__(
        self,
        *,
        host: str | None = None,
        port: int | None = None,
        workers: int | None = None,
        jobs: int | None = None,
        queue_limit: int | None = None,
        retry_after: float | None = None,
        weights: dict[str, float] | None = None,
        cache_dir: str | None = None,
        registry: WarmRegistry | None = None,
        flows=None,
        batch_window: float | None = None,
    ) -> None:
        self.host = host if host is not None else knobs.env_str(
            "REPRO_SERVE_HOST", "127.0.0.1")
        self.port = port if port is not None else knobs.env_int(
            "REPRO_SERVE_PORT", 8351, minimum=0, maximum=65535)
        workers = workers if workers is not None else knobs.env_int(
            "REPRO_SERVE_WORKERS", 2, minimum=1)
        jobs = jobs if jobs is not None else knobs.env_int(
            "REPRO_SERVE_JOBS", 2, minimum=1)
        queue_limit = (queue_limit if queue_limit is not None
                       else knobs.env_int("REPRO_SERVE_QUEUE", 64,
                                          minimum=1))
        retry_after = (retry_after if retry_after is not None
                       else knobs.env_float("REPRO_SERVE_RETRY_AFTER",
                                            1.0, minimum=0.01))
        if weights is None:
            weights = knobs.env_weights("REPRO_SERVE_WEIGHTS")
        if registry is None:
            registry = WarmRegistry(
                cache_dir,
                max_entries=knobs.env_int("REPRO_SERVE_MEMCACHE", 256,
                                          minimum=0),
                jobs=jobs,
            )
        self.registry = registry
        self.scheduler = Scheduler(
            cache=registry.cache,
            pools=registry.pools,
            workers=workers,
            jobs=jobs,
            queue_limit=queue_limit,
            retry_after=retry_after,
            weights=weights,
            flows=flows,
            batch_window=batch_window,
        )
        self.started_at = time.time()
        self._server: asyncio.AbstractServer | None = None
        self._closed: asyncio.Event | None = None

    # -- lifecycle ---------------------------------------------------

    async def start(self) -> None:
        self._closed = asyncio.Event()
        # Kernel shard dispatch inside job threads reuses the warm pool,
        # so persistent workers keep their compiled-program caches hot
        # across requests (torn down again in close()).
        set_shard_pool_provider(self.registry.pools)
        # Fork the warm pool's workers now, while only the event loop
        # is running.  ProcessPoolExecutor forks lazily on first submit;
        # once request threads exist, that fork can inherit an importlib
        # module lock held by a concurrent batch run mid-lazy-import and
        # the child deadlocks on its first numpy attribute access.
        await asyncio.get_running_loop().run_in_executor(
            None, self.registry.pools.prewarm)
        await self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.close()
        set_shard_pool_provider(None)
        self.registry.close()
        if self._closed is not None:
            self._closed.set()

    async def wait_closed(self) -> None:
        if self._closed is not None:
            await self._closed.wait()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- HTTP plumbing -----------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await asyncio.wait_for(reader.readline(), 30.0)
            parts = request.decode("latin1").split()
            if len(parts) < 2:
                return
            method, target = parts[0].upper(), parts[1]
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", 0) or 0)
            body = await reader.readexactly(length) if length else b""
            parsed = urllib.parse.urlsplit(target)
            query = dict(urllib.parse.parse_qsl(parsed.query))
            try:
                status, payload, extra = await self._route(
                    method, parsed.path, query, body
                )
            except Exception as exc:  # handler bug: keep serving
                status, payload, extra = 500, {
                    "error": f"{type(exc).__name__}: {exc}"
                }, {}
            blob = json.dumps(payload, default=str).encode()
            head = [
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
                "Content-Type: application/json",
                f"Content-Length: {len(blob)}",
                "Connection: close",
            ]
            head.extend(f"{k}: {v}" for k, v in extra.items())
            writer.write(
                ("\r\n".join(head) + "\r\n\r\n").encode() + blob
            )
            await writer.drain()
        except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                ConnectionError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- routing -----------------------------------------------------

    async def _route(
        self, method: str, path: str, query: dict[str, str], body: bytes
    ) -> tuple[int, Any, dict[str, str]]:
        if path == "/healthz" and method == "GET":
            return 200, self._healthz(), {}
        if path == "/metrics" and method == "GET":
            return 200, self._metrics(), {}
        if path == "/knobs" and method == "GET":
            return 200, {
                name: {"type": kind, "default": default, "help": desc}
                for name, (kind, default, desc)
                in sorted(knobs.KNOWN_KNOBS.items())
            }, {}
        if path == "/flows" and method == "GET":
            from repro.flow.flows import describe_flows

            return 200, describe_flows(), {}
        if path == "/jobs" and method == "POST":
            return await self._submit(body)
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            job_id, _, tail = rest.partition("/")
            if method != "GET":
                return 405, {"error": "use GET"}, {}
            if tail == "":
                return await self._status(job_id, query)
            if tail == "result":
                return self._result(job_id)
        if path == "/shutdown" and method == "POST":
            asyncio.get_running_loop().create_task(self.close())
            return 200, {"ok": True, "message": "shutting down"}, {}
        return 404, {"error": f"no route {method} {path}"}, {}

    def _healthz(self) -> dict[str, Any]:
        return {
            "ok": True,
            "uptime_s": round(time.time() - self.started_at, 3),
            "queued": self.scheduler.queued_executions(),
            "running": self.scheduler.running_executions(),
            "pool": self.registry.pools.stats(),
        }

    def _metrics(self) -> dict[str, Any]:
        from repro.gatelevel.batch import batch_stats
        from repro.gatelevel.structure import structure_stats

        stats = self.scheduler.stats()
        stats["registry"] = self.registry.stats()
        stats["structure"] = structure_stats()
        stats["batch"] = batch_stats()
        stats["uptime_s"] = round(time.time() - self.started_at, 3)
        return stats

    async def _submit(
        self, body: bytes
    ) -> tuple[int, Any, dict[str, str]]:
        try:
            payload = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            return 400, {"error": f"bad JSON body: {exc}"}, {}
        if not isinstance(payload, dict) or "flow" not in payload:
            return 400, {"error": 'body must be {"flow": name, ...}'}, {}
        params = payload.get("params") or {}
        if not isinstance(params, dict):
            return 400, {"error": "params must be an object"}, {}
        tenant = str(payload.get("tenant") or "default")
        try:
            job = await self.scheduler.submit(
                str(payload["flow"]), params, tenant
            )
        except UnknownFlowError as exc:
            return 404, {"error": str(exc.args[0])}, {}
        except BadSubmissionError as exc:
            return 400, {"error": str(exc)}, {}
        except AdmissionError as exc:
            return 429, {
                "error": str(exc),
                "retry_after_s": exc.retry_after,
            }, {"Retry-After": f"{exc.retry_after:g}"}
        return 202, job.status(), {}

    async def _status(
        self, job_id: str, query: dict[str, str]
    ) -> tuple[int, Any, dict[str, str]]:
        job = self.scheduler.job(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}, {}
        wait = query.get("wait")
        if wait:
            try:
                seconds = min(float(wait), MAX_WAIT_SECONDS)
            except ValueError:
                return 400, {"error": f"bad wait={wait!r}"}, {}
            try:
                await asyncio.wait_for(
                    job.execution.done.wait(), max(seconds, 0.0)
                )
            except asyncio.TimeoutError:
                pass
        return 200, job.status(), {}

    def _result(self, job_id: str) -> tuple[int, Any, dict[str, str]]:
        job = self.scheduler.job(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}, {}
        exe = job.execution
        if exe.state in ("queued", "running"):
            return 202, {"state": exe.state, "id": job_id}, {}
        if exe.state == "failed":
            return 500, {"state": "failed", "id": job_id,
                         "error": exe.error}, {}
        return 200, dict(exe.result or {}, id=job_id, state="done"), {}


# -- entry points -------------------------------------------------------

def _resolve_prewarm(prewarm: str | None) -> list[str]:
    from repro.flow.flows import FLOWS

    if prewarm is None or prewarm.strip().lower() == "none":
        return []
    if prewarm.strip().lower() == "all":
        return sorted(FLOWS)
    return [p.strip() for p in prewarm.split(",") if p.strip()]


async def _amain(server: Server, prewarm: str | None) -> None:
    names = _resolve_prewarm(prewarm)
    if names:
        await asyncio.get_running_loop().run_in_executor(
            None, server.registry.prewarm, names
        )
    await server.start()
    print(f"repro.serve listening on {server.url}", flush=True)
    await server.wait_closed()


def serve_forever(
    *,
    host: str | None = None,
    port: int | None = None,
    workers: int | None = None,
    jobs: int | None = None,
    queue_limit: int | None = None,
    cache_dir: str | None = None,
    prewarm: str | None = None,
) -> int:
    """Blocking entry point behind ``python -m repro.flow serve``."""
    server = Server(
        host=host, port=port, workers=workers, jobs=jobs,
        queue_limit=queue_limit, cache_dir=cache_dir,
    )
    try:
        asyncio.run(_amain(server, prewarm))
    except KeyboardInterrupt:
        pass
    return 0


class BackgroundServer:
    """A server on its own event-loop thread (tests and benches).

    The blocking :mod:`repro.serve.client` cannot share a thread with
    the server's event loop, so this runs the loop in a daemon thread
    and exposes the bound URL once serving::

        with BackgroundServer(workers=2) as bg:
            ServeClient(bg.url).run("table1")
    """

    def __init__(self, **server_kwargs: Any) -> None:
        import threading

        self._kwargs = dict(server_kwargs)
        self._kwargs.setdefault("port", 0)
        self.server: Server | None = None
        self.error: BaseException | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surfaced by start()
            self.error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self.server = Server(**self._kwargs)
        self.loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server.wait_closed()

    def start(self) -> "BackgroundServer":
        self._thread.start()
        self._ready.wait(timeout=60)
        if self.error is not None:
            raise RuntimeError(
                f"server failed to start: {self.error}"
            ) from self.error
        if self.server is None or self._server_port() is None:
            raise RuntimeError("server failed to start in time")
        return self

    def _server_port(self) -> int | None:
        return self.server.port if self.server else None

    @property
    def url(self) -> str:
        assert self.server is not None
        return self.server.url

    def stop(self) -> None:
        if self.server is None or self.error is not None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.close(), self.loop
        )
        try:
            future.result(timeout=30)
        except Exception:
            pass
        self._thread.join(timeout=30)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
