"""repro.serve: long-running testability-as-a-service layer.

A single warm process serving the flow engine over HTTP/JSON
(stdlib-only): compiled netlists, levelized schedules, the flow cache,
and a persistent worker pool stay hot across requests, while a small
asyncio scheduler adds in-flight dedupe, admission control, and
weighted fair queueing in front of the existing
:class:`~repro.flow.runner.Runner`.

Modules:

* :mod:`repro.serve.registry`  -- warm cache + persistent pool
* :mod:`repro.serve.scheduler` -- dedupe / admission / WFQ
* :mod:`repro.serve.server`    -- asyncio HTTP front end
* :mod:`repro.serve.client`    -- blocking client (tests, CI, benches)

Start a server with ``python -m repro.flow serve`` (or
``python -m repro.serve``); see ``docs/service.md``.
"""

from repro.serve.client import (  # noqa: F401
    JobFailed,
    QueueFull,
    ServeClient,
    ServeError,
)
from repro.serve.registry import (  # noqa: F401
    WarmCache,
    WarmPoolProvider,
    WarmRegistry,
)
from repro.serve.scheduler import (  # noqa: F401
    AdmissionError,
    BadSubmissionError,
    Scheduler,
    UnknownFlowError,
    flow_recipe_key,
)
from repro.serve.server import (  # noqa: F401
    BackgroundServer,
    Server,
    serve_forever,
)
