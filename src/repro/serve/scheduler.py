"""Job scheduling for the testability service.

Three scheduler semantics turn the batch flow engine into something
that can face concurrent multi-tenant traffic:

**In-flight dedupe.**  Every submission is keyed by its *recipe hash*
-- the same content-addressed stage keys the flow cache uses
(:meth:`repro.flow.runner.Runner.stage_keys`), folded into one digest.
A submission whose key matches an execution that is still queued or
running attaches to it instead of enqueuing new work: a thousand
identical ``fullscan`` submissions compute once and fan the result out
to a thousand jobs.  (Identical submissions *after* completion still
dedupe at stage level through the shared warm cache.)

**Admission control.**  The queue of distinct pending executions is
bounded; a submission that would grow it past ``queue_limit`` raises
:class:`AdmissionError` (the HTTP layer turns it into ``429`` with a
``Retry-After`` hint).  Dedupe attaches are always admitted -- they add
no work.

**Weighted fair queueing.**  Executions are queued per tenant and
dispatched by virtual finish time: tenant ``t`` with weight ``w`` is
charged ``1/w`` of virtual time per execution, so a tenant that floods
the queue cannot starve the others -- dispatch interleaves
proportionally to weight no matter how bursty the arrivals are.

Execution itself is the *existing* engine: each dispatched execution
runs ``Runner.run`` (shared warm cache, shared persistent pool via the
:class:`~repro.flow.resilience.PoolProvider` seam) in a thread of a
bounded executor, inheriting the whole PR-5 resilience story --
worker-loss rebuilds, timeout recycles, serial fallback, cache
quarantine -- without the server restarting anything.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.flow.cli import render_artifacts
from repro.flow.metrics import FlowMetrics
from repro.flow.runner import Runner, format_failure, is_unavailable


class UnknownFlowError(KeyError):
    """Submission names a flow the registry does not have."""


class BadSubmissionError(ValueError):
    """Submission params do not fit the flow builder."""


class AdmissionError(RuntimeError):
    """The pending queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


def flow_recipe_key(flow, stage_keys: Mapping[str, str]) -> str:
    """One digest identifying a whole flow execution."""
    body = "\n".join(
        [f"flow:{flow.name}"]
        + [f"{name}={stage_keys[name]}" for name in sorted(stage_keys)]
    )
    return hashlib.sha256(body.encode()).hexdigest()


def json_safe_artifacts(
    artifacts: Mapping[str, Any]
) -> tuple[dict[str, Any], list[str]]:
    """Split artifacts into a JSON-serialisable dict and omitted names.

    Flows carry rich intermediates (datapaths, netlists) next to their
    table specs; clients get everything JSON can express and the names
    of what it cannot, so nothing silently disappears.
    """
    import json

    safe: dict[str, Any] = {}
    omitted: list[str] = []
    for name, value in artifacts.items():
        if is_unavailable(value):
            safe[name] = {
                "unavailable": {"stage": value.stage,
                                "reason": value.reason}
            }
            continue
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            omitted.append(name)
        else:
            safe[name] = value
    return safe, omitted


class Execution:
    """One distinct recipe run; possibly fanned out to many jobs."""

    def __init__(self, key: str, flow_name: str,
                 params: dict[str, Any], tenant: str) -> None:
        self.key = key
        self.flow_name = flow_name
        self.params = params
        self.tenant = tenant
        self.state = "queued"  # queued | running | done | failed
        self.vft = 0.0
        self.queued_at = time.time()
        self.started_at = 0.0
        self.finished_at = 0.0
        self.metrics: FlowMetrics | None = None
        self.result: dict[str, Any] | None = None
        self.error = ""
        self.job_ids: list[str] = []
        self.done = asyncio.Event()


@dataclass
class Job:
    """One client submission, attached to exactly one execution."""

    id: str
    tenant: str
    created_at: float
    deduped: bool
    execution: Execution

    def status(self) -> dict[str, Any]:
        exe = self.execution
        try:
            metrics = exe.metrics.to_dict() if exe.metrics else None
        except RuntimeError:  # live snapshot raced a stage update
            metrics = None
        return {
            "id": self.id,
            "flow": exe.flow_name,
            "params": exe.params,
            "tenant": self.tenant,
            "key": exe.key,
            "state": exe.state,
            "deduped": self.deduped,
            "created_at": self.created_at,
            "queued_at": exe.queued_at,
            "started_at": exe.started_at or None,
            "finished_at": exe.finished_at or None,
            "error": exe.error,
            "fanout": len(exe.job_ids),
            "metrics": metrics,
        }


@dataclass
class Counters:
    submitted: int = 0
    deduped: int = 0
    rejected: int = 0
    runs: int = 0
    completed: int = 0
    failed: int = 0
    batches: int = 0
    batch_fused: int = 0
    by_tenant: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "submitted": self.submitted,
            "deduped": self.deduped,
            "rejected": self.rejected,
            "runs": self.runs,
            "completed": self.completed,
            "failed": self.failed,
            "batches": self.batches,
            "batch_fused": self.batch_fused,
            "by_tenant": dict(self.by_tenant),
        }


class Scheduler:
    """Dedupe + admission + WFQ in front of the flow engine."""

    def __init__(
        self,
        *,
        cache=None,
        pools=None,
        workers: int = 2,
        jobs: int = 1,
        queue_limit: int = 64,
        retry_after: float = 1.0,
        weights: Mapping[str, float] | None = None,
        flows: Mapping[str, Callable] | None = None,
        batch_window: float | None = None,
        batchable: Mapping[str, tuple[Callable, Callable]] | None = None,
    ) -> None:
        from repro.gatelevel.batch import resolve_batch_window

        self.cache = cache
        self.pools = pools
        self.workers = max(1, workers)
        self.jobs = max(1, jobs)
        self.queue_limit = max(1, queue_limit)
        self.retry_after = retry_after
        self.weights = dict(weights or {})
        if flows is None:
            from repro.flow.flows import FLOWS
            flows = FLOWS
        self.flows = flows
        self.batch_window = resolve_batch_window(batch_window)
        if batchable is None:
            from repro.flow.flows import BATCHABLE
            batchable = BATCHABLE
        self.batchable = dict(batchable)

        self.jobs_by_id: dict[str, Job] = {}
        self.inflight: dict[str, Execution] = {}
        self.queues: dict[str, deque[Execution]] = {}
        self.vtime = 0.0
        self.tenant_vft: dict[str, float] = {}
        self.counters = Counters()
        self.dispatch_log: list[str] = []  # execution keys, in order

        self._ids = itertools.count(1)
        self._wake: asyncio.Event | None = None
        self._tasks: list[asyncio.Task] = []
        self._closing = False
        # Separate executors: key hashing must never wait behind a
        # long flow execution, or dedupe registration would stall.
        self._run_pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="serve-run")
        self._key_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-key")

    # -- lifecycle ---------------------------------------------------

    async def start(self) -> None:
        self._wake = asyncio.Event()
        self._tasks = [
            asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
            for i in range(self.workers)
        ]

    async def close(self, drain: bool = False) -> None:
        if drain:
            while self.queued_executions() or any(
                e.state == "running" for e in self.inflight.values()
            ):
                await asyncio.sleep(0.02)
        self._closing = True
        if self._wake is not None:
            self._wake.set()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._run_pool.shutdown(wait=False, cancel_futures=True)
        self._key_pool.shutdown(wait=False, cancel_futures=True)

    # -- submission --------------------------------------------------

    def _build_and_key(self, flow_name: str, params: dict[str, Any]):
        try:
            builder = self.flows[flow_name]
        except KeyError:
            raise UnknownFlowError(
                f"unknown flow {flow_name!r}; available: "
                f"{', '.join(sorted(self.flows))}"
            ) from None
        try:
            flow = builder(**params)
            keys = Runner().stage_keys(flow)
        except UnknownFlowError:
            raise
        except Exception as exc:
            raise BadSubmissionError(
                f"cannot build flow {flow_name!r} with params "
                f"{params!r}: {type(exc).__name__}: {exc}"
            ) from None
        return flow_recipe_key(flow, keys)

    def queued_executions(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def running_executions(self) -> int:
        return sum(
            1 for e in self.inflight.values() if e.state == "running"
        )

    async def submit(self, flow_name: str,
                     params: Mapping[str, Any] | None = None,
                     tenant: str = "default") -> Job:
        """Admit one submission; returns its :class:`Job`.

        Raises :class:`UnknownFlowError` / :class:`BadSubmissionError`
        for malformed requests and :class:`AdmissionError` when the
        queue is full.
        """
        params = dict(params or {})
        loop = asyncio.get_running_loop()
        key = await loop.run_in_executor(
            self._key_pool, self._build_and_key, flow_name, params
        )
        # No awaits between the checks below and registration: the
        # event loop serialises them, so dedupe cannot race.
        self.counters.submitted += 1
        self.counters.by_tenant[tenant] = (
            self.counters.by_tenant.get(tenant, 0) + 1
        )
        existing = self.inflight.get(key)
        if existing is not None:
            job = self._attach(existing, tenant, deduped=True)
            self.counters.deduped += 1
            return job
        if self.queued_executions() >= self.queue_limit:
            self.counters.rejected += 1
            raise AdmissionError(
                f"queue full ({self.queue_limit} pending executions)",
                retry_after=self.retry_after,
            )
        exe = Execution(key, flow_name, params, tenant)
        self._enqueue(exe, tenant)
        self.inflight[key] = exe
        return self._attach(exe, tenant, deduped=False)

    def _attach(self, exe: Execution, tenant: str, deduped: bool) -> Job:
        job = Job(
            id=f"j{next(self._ids):06d}",
            tenant=tenant,
            created_at=time.time(),
            deduped=deduped,
            execution=exe,
        )
        exe.job_ids.append(job.id)
        self.jobs_by_id[job.id] = job
        return job

    # -- weighted fair queueing --------------------------------------

    def _enqueue(self, exe: Execution, tenant: str) -> None:
        weight = max(float(self.weights.get(tenant, 1.0)), 1e-9)
        start = max(self.vtime, self.tenant_vft.get(tenant, 0.0))
        exe.vft = start + 1.0 / weight
        self.tenant_vft[tenant] = exe.vft
        self.queues.setdefault(tenant, deque()).append(exe)
        if self._wake is not None:
            self._wake.set()

    def _pick(self) -> Execution | None:
        best: tuple[float, str] | None = None
        for tenant, queue in self.queues.items():
            if not queue:
                continue
            head = queue[0]
            rank = (head.vft, tenant)
            if best is None or rank < best:
                best = rank
        if best is None:
            return None
        exe = self.queues[best[1]].popleft()
        self.vtime = max(self.vtime, exe.vft)
        return exe

    # -- execution ---------------------------------------------------

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._closing:
            exe = self._pick()
            if exe is None:
                self._wake.clear()
                await self._wake.wait()
                continue
            group = await self._coalesce(exe)
            for e in group:
                self.dispatch_log.append(e.key)
                e.state = "running"
                e.started_at = time.time()
                self.counters.runs += 1
            try:
                if len(group) == 1:
                    exe.result = await loop.run_in_executor(
                        self._run_pool, self._run, exe
                    )
                else:
                    _key_fn, run_fn = self.batchable[exe.flow_name]
                    results = await loop.run_in_executor(
                        self._run_pool, self._run_batch, group, run_fn
                    )
                    for e, res in zip(group, results):
                        e.result = res
                    self.counters.batches += 1
                    self.counters.batch_fused += len(group)
                for e in group:
                    e.state = "done"
                    self.counters.completed += 1
            except asyncio.CancelledError:
                for e in group:
                    e.state = "failed"
                    e.error = "server shutdown"
                raise
            except Exception as exc:
                for e in group:
                    e.state = "failed"
                    e.error = format_failure(exc)
                    self.counters.failed += 1
            finally:
                for e in group:
                    e.finished_at = time.time()
                    if self.inflight.get(e.key) is e:
                        del self.inflight[e.key]
                    e.done.set()

    async def _coalesce(self, exe: Execution) -> list[Execution]:
        """The dispatch group for ``exe``: itself plus every compatible
        queued execution present once the coalescing window closes.

        Only flows registered in :data:`repro.flow.flows.BATCHABLE`
        coalesce, and only with executions whose batch key (params
        minus the design under test) agrees -- incompatible
        submissions are left queued untouched.  With ``batch_window``
        zero (the default) this is a no-op and dispatch is exactly the
        pre-batching behaviour.
        """
        if self.batch_window <= 0 or exe.flow_name not in self.batchable:
            return [exe]
        key_fn, _run_fn = self.batchable[exe.flow_name]
        try:
            bkey = key_fn(exe.params)
        except Exception:
            return [exe]
        await asyncio.sleep(self.batch_window)
        group = [exe]
        for tenant, queue in self.queues.items():
            remaining: deque[Execution] = deque()
            for cand in queue:
                joined = False
                if cand.flow_name == exe.flow_name:
                    try:
                        joined = key_fn(cand.params) == bkey
                    except Exception:
                        joined = False
                if joined:
                    group.append(cand)
                else:
                    remaining.append(cand)
            self.queues[tenant] = remaining
        return group

    def _run_batch(self, group: list[Execution],
                   run_fn: Callable) -> list[dict[str, Any]]:
        """Execute one fused group (runner thread)."""
        results = run_fn(
            [e.params for e in group],
            cache=self.cache, pools=self.pools, jobs=self.jobs,
        )
        if len(results) != len(group):  # pragma: no cover - contract
            raise RuntimeError(
                f"batch runner returned {len(results)} results for "
                f"{len(group)} executions"
            )
        return results

    def _run(self, exe: Execution) -> dict[str, Any]:
        """Execute one recipe on the warm engine (runner thread)."""
        flow = self.flows[exe.flow_name](**exe.params)
        metrics = FlowMetrics(flow=flow.name, jobs=self.jobs)
        exe.metrics = metrics  # live view for status polls
        runner = Runner(cache=self.cache, pools=self.pools)
        result = runner.run(flow, jobs=self.jobs, metrics=metrics)
        artifacts, omitted = json_safe_artifacts(result.artifacts)
        return {
            "rendered": render_artifacts(result),
            "artifacts": artifacts,
            "omitted": omitted,
            "keys": result.keys,
            "ok": result.ok,
        }

    # -- introspection -----------------------------------------------

    def job(self, job_id: str) -> Job | None:
        return self.jobs_by_id.get(job_id)

    def stats(self) -> dict[str, Any]:
        return {
            "counters": self.counters.to_dict(),
            "queued": self.queued_executions(),
            "running": self.running_executions(),
            "inflight_keys": len(self.inflight),
            "jobs_tracked": len(self.jobs_by_id),
            "workers": self.workers,
            "pool_jobs": self.jobs,
            "queue_limit": self.queue_limit,
            "weights": dict(self.weights),
            "virtual_time": self.vtime,
            "batch_window": self.batch_window,
            "batchable_flows": sorted(self.batchable),
        }
