"""Blocking HTTP client for the testability service.

Stdlib-only (:mod:`http.client`): tests, benchmarks, and CI drive the
server through this instead of hand-rolled sockets.  One call per
request (``Connection: close`` on the wire), so a single
:class:`ServeClient` is safe to share across threads.

Typical use::

    client = ServeClient("http://127.0.0.1:8351")
    result = client.run("table1")          # submit + wait + fetch
    print(result["rendered"], end="")      # byte-identical to the CLI
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Any


class ServeError(RuntimeError):
    """Any non-retryable error response from the service."""

    def __init__(self, status: int, payload: Any) -> None:
        super().__init__(f"HTTP {status}: {payload}")
        self.status = status
        self.payload = payload


class JobFailed(ServeError):
    """The flow execution behind a job raised."""


class QueueFull(ServeError):
    """429: admission control rejected the submission."""

    def __init__(self, status: int, payload: Any,
                 retry_after: float) -> None:
        super().__init__(status, payload)
        self.retry_after = retry_after


class ServeClient:
    """Small blocking client over :mod:`http.client`."""

    def __init__(self, url: str, timeout: float = 120.0) -> None:
        parsed = urllib.parse.urlsplit(url if "//" in url
                                       else f"http://{url}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.timeout = timeout

    # -- wire --------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Any = None) -> tuple[int, Any, dict[str, str]]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = (json.dumps(body).encode()
                       if body is not None else None)
            headers = {"Content-Type": "application/json"} if payload \
                else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            resp_headers = {k.lower(): v
                            for k, v in response.getheaders()}
            try:
                decoded = json.loads(raw) if raw else None
            except json.JSONDecodeError:
                decoded = raw.decode(errors="replace")
            return response.status, decoded, resp_headers
        finally:
            conn.close()

    def _get(self, path: str) -> Any:
        status, payload, _ = self._request("GET", path)
        if status >= 400:
            raise ServeError(status, payload)
        return payload

    # -- jobs --------------------------------------------------------

    def submit(
        self,
        flow: str,
        params: dict[str, Any] | None = None,
        tenant: str = "default",
        *,
        retries: int = 0,
    ) -> dict[str, Any]:
        """POST /jobs; returns the job status dict (with ``id``).

        ``retries`` > 0 re-submits after a 429, sleeping the server's
        ``Retry-After`` hint between attempts; when retries run out the
        :class:`QueueFull` propagates so callers see backpressure.
        """
        body = {"flow": flow, "params": params or {}, "tenant": tenant}
        for attempt in range(retries + 1):
            status, payload, headers = self._request(
                "POST", "/jobs", body
            )
            if status == 429:
                hint = float(headers.get("retry-after", 1.0) or 1.0)
                if attempt < retries:
                    time.sleep(hint)
                    continue
                raise QueueFull(status, payload, retry_after=hint)
            if status >= 400:
                raise ServeError(status, payload)
            return payload
        raise AssertionError("unreachable")

    def status(self, job_id: str, wait: float | None = None) -> dict:
        path = f"/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait:g}"
        return self._get(path)

    def wait(self, job_id: str,
             timeout: float = 300.0) -> dict[str, Any]:
        """Long-poll until the job leaves queued/running."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} still pending after {timeout}s"
                )
            state = self.status(job_id, wait=min(remaining, 10.0))
            if state["state"] in ("done", "failed"):
                return state

    def result(self, job_id: str) -> dict[str, Any]:
        status, payload, _ = self._request(
            "GET", f"/jobs/{job_id}/result"
        )
        if status == 500:
            raise JobFailed(status, payload)
        if status >= 400 or status == 202:
            raise ServeError(status, payload)
        return payload

    def run(
        self,
        flow: str,
        params: dict[str, Any] | None = None,
        tenant: str = "default",
        *,
        timeout: float = 300.0,
        retries: int = 8,
    ) -> dict[str, Any]:
        """submit + wait + result, the blocking one-call path."""
        job = self.submit(flow, params, tenant, retries=retries)
        state = self.wait(job["id"], timeout=timeout)
        if state["state"] == "failed":
            raise JobFailed(500, state.get("error", "flow failed"))
        return self.result(job["id"])

    # -- introspection ----------------------------------------------

    def healthz(self) -> dict[str, Any]:
        return self._get("/healthz")

    def metrics(self) -> dict[str, Any]:
        return self._get("/metrics")

    def knobs(self) -> dict[str, Any]:
        return self._get("/knobs")

    def flows(self) -> list[dict[str, Any]]:
        return self._get("/flows")

    def shutdown(self) -> dict[str, Any]:
        status, payload, _ = self._request("POST", "/shutdown")
        if status >= 400:
            raise ServeError(status, payload)
        return payload

    def wait_until_up(self, timeout: float = 30.0) -> dict[str, Any]:
        """Poll /healthz until the server answers (startup races)."""
        deadline = time.monotonic() + timeout
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (ConnectionError, OSError, ServeError) as exc:
                last = exc
                time.sleep(0.05)
        raise TimeoutError(
            f"server at {self.host}:{self.port} not up after "
            f"{timeout}s: {last}"
        )
