"""``python -m repro.serve`` — alias for ``python -m repro.flow serve``."""

import sys

from repro.flow.cli import main

if __name__ == "__main__":
    raise SystemExit(main(["serve", *sys.argv[1:]]))
