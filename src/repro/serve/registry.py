"""The hot state one server process shares across every job.

Batch CLI runs pay three start-up costs per invocation: interpreter +
module import, worker-pool spawn, and cold cache probes (disk seek +
unpickle per stage).  The registry is what the service keeps alive so
repeat traffic pays none of them:

* :class:`WarmCache` -- the shared :class:`~repro.flow.cache.FlowCache`
  with an in-memory LRU layer in front of the on-disk store.  A repeat
  submission's stage lookups are dictionary probes; results are
  deep-copied on the way in and out so the memo can never observe (or
  leak) a mutation.
* :class:`WarmPoolProvider` -- one persistent ``ProcessPoolExecutor``
  handed to every :class:`~repro.flow.runner.Runner` through the
  :class:`~repro.flow.resilience.PoolProvider` seam.  Workers survive
  across flow runs, so per-process state -- imported modules, the
  :func:`repro.gatelevel.kernel.compiled` ``CompiledNetlist`` memo,
  cached ``Netlist.topo_order``/levelized schedules/``consumers()`` --
  stays warm between jobs.  ``release`` is a no-op (the pool lives on);
  ``discard`` (broken pool, runaway worker) really kills it and the
  next ``acquire`` rebuilds, which is exactly the runner's inherited
  worker-loss recovery.
* :meth:`WarmRegistry.prewarm` -- hashes flow recipes (filling the
  stage/module fingerprint caches) and spins the pool workers up
  before the first request lands.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Mapping

from repro.flow.cache import FlowCache
from repro.flow.resilience import PoolProvider, kill_pool


class WarmCache(FlowCache):
    """A FlowCache with a bounded in-memory layer over the disk store."""

    def __init__(self, root: str | None = None,
                 max_entries: int = 256) -> None:
        super().__init__(root)
        self.max_entries = max(0, max_entries)
        self._memo: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0

    def get(self, key: str) -> dict[str, Any] | None:
        with self._lock:
            if key in self._memo:
                self._memo.move_to_end(key)
                self.memory_hits += 1
                return copy.deepcopy(self._memo[key])
            got = super().get(key)
            if got is not None:
                self.disk_hits += 1
                self._remember(key, got)
            else:
                self.misses += 1
            return got

    def put(self, key: str, stage_name: str,
            artifacts: Mapping[str, Any]) -> int:
        with self._lock:
            size = super().put(key, stage_name, artifacts)
            self._remember(key, artifacts)
            return size

    def _remember(self, key: str, artifacts: Mapping[str, Any]) -> None:
        if not self.max_entries:
            return
        try:
            snapshot = copy.deepcopy(dict(artifacts))
        except Exception:
            return  # uncopyable artifacts stay disk-only
        with self._lock:
            self._memo[key] = snapshot
            self._memo.move_to_end(key)
            while len(self._memo) > self.max_entries:
                self._memo.popitem(last=False)

    def clear(self) -> int:
        with self._lock:
            self._memo.clear()
            return super().clear()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._memo),
                "max_entries": self.max_entries,
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "corrupt_quarantined": self.corrupt_quarantined,
            }

    def __getstate__(self) -> dict[str, Any]:
        state = super().__getstate__()
        state["_memo"] = OrderedDict()  # hot layer is process-local
        return state


class WarmPoolProvider(PoolProvider):
    """One persistent worker pool shared by every flow execution."""

    def __init__(self, jobs: int = 2) -> None:
        self.jobs = max(1, jobs)
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        self.builds = 0       # pools created (first build included)
        self.discards = 0     # pools killed after breakage/timeouts
        self.warm_acquires = 0

    def acquire(self, jobs: int) -> ProcessPoolExecutor:
        # ``jobs`` is the runner's request; the warm pool is sized once
        # (REPRO_SERVE_JOBS) and shared, so the larger of the two wins
        # only at build time.
        with self._lock:
            pool = self._pool
            if pool is not None and not getattr(pool, "_broken", False):
                self.warm_acquires += 1
                return pool
            pool = ProcessPoolExecutor(
                max_workers=max(self.jobs, 1)
            )
            self._pool = pool
            self.builds += 1
            return pool

    def discard(self, pool: ProcessPoolExecutor) -> int:
        with self._lock:
            if pool is self._pool:
                self._pool = None
            self.discards += 1
        return kill_pool(pool)

    def release(self, pool: ProcessPoolExecutor) -> None:
        """Healthy pools stay warm for the next flow."""

    def prewarm(self) -> None:
        """Spin the worker processes up before the first request.

        ``ProcessPoolExecutor`` spawns workers lazily on submit; a
        round of no-op tasks forces every worker into existence (and
        through module import) now instead of on the first job.
        """
        try:
            pool = self.acquire(self.jobs)
            futs = [pool.submit(int, 0) for _ in range(self.jobs)]
        except Exception:
            return  # sandboxes without pools: the runner goes serial
        for fut in futs:
            try:
                fut.result(timeout=60)
            except Exception:
                return

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            kill_pool(pool)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "jobs": self.jobs,
                "alive": self._pool is not None,
                "builds": self.builds,
                "discards": self.discards,
                "warm_acquires": self.warm_acquires,
            }


class WarmRegistry:
    """Bundle of warm state (cache + pool) a server shares across jobs."""

    def __init__(self, cache_dir: str | None = None,
                 max_entries: int = 256, jobs: int = 2) -> None:
        self.cache = WarmCache(cache_dir, max_entries=max_entries)
        self.pools = WarmPoolProvider(jobs)
        self.prewarmed: list[str] = []

    def prewarm(self, flow_names: list[str] | None = None) -> list[str]:
        """Hash recipes for ``flow_names`` and spin up the worker pool.

        Recipe hashing walks every stage fingerprint (source hashes of
        the stage function and its ``code_deps`` packages) -- all
        ``lru_cache``-backed, so the first real submission computes its
        key in microseconds instead of hashing the whole package tree.
        """
        from repro.flow.flows import get_flow
        from repro.flow.runner import Runner

        runner = Runner()
        for name in flow_names or []:
            try:
                runner.stage_keys(get_flow(name))
            except Exception:
                continue  # a broken builder must not block serving
            self.prewarmed.append(name)
        self.pools.prewarm()
        return self.prewarmed

    def stats(self) -> dict[str, Any]:
        return {
            "cache": self.cache.stats(),
            "pool": self.pools.stats(),
            "prewarmed": list(self.prewarmed),
        }

    def close(self) -> None:
        self.pools.close()
