"""Arithmetic BIST with subspace state coverage, after [28]
(Mukherjee/Kassab/Rajski/Tyszer, VTS'95 -- survey section 5.4).

"Instead of using special BIST hardware like TPGRs and SRs, functional
units can be used to perform test pattern generation and test response
compaction."  Patterns come from accumulator-style arithmetic
generators; their quality at each operation's inputs -- after
degradation through intervening operations -- is measured by *subspace
state coverage*: the fraction of k-bit windows' value space exercised.

High-level synthesis is guided by the metric: "assignment of operations
to functional units is done to maximize the state coverage obtained at
the inputs of each functional unit" (the states seen at a unit's inputs
are the union over the operations mapped to it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.cdfg.graph import CDFG
from repro.cdfg.interpret import run_sequence
from repro.hls.allocation import Allocation, AllocationError
from repro.hls.binding import FUBinding
from repro.hls.scheduling import Schedule


def accumulator_stream(
    width: int, increment: int, seed: int, length: int
) -> list[int]:
    """The arithmetic TPG of [28]: x(t+1) = x(t) + increment (mod 2^w).

    Odd increments sweep the full 2^w space.
    """
    mask = (1 << width) - 1
    out = []
    x = seed & mask
    for _ in range(length):
        out.append(x)
        x = (x + increment) & mask
    return out


def subspace_states(values: Sequence[int], width: int, k: int) -> set[tuple[int, int]]:
    """All observed (window position, k-bit pattern) states."""
    if k > width:
        raise ValueError(f"subspace width {k} exceeds word width {width}")
    states: set[tuple[int, int]] = set()
    for v in values:
        for pos in range(width - k + 1):
            states.add((pos, (v >> pos) & ((1 << k) - 1)))
    return states


def subspace_state_coverage(
    values: Sequence[int], width: int, k: int
) -> float:
    """Fraction of the k-bit subspace state space covered by ``values``."""
    total = (width - k + 1) * (1 << k)
    return len(subspace_states(values, width, k)) / total


@dataclass(frozen=True)
class OperationCoverage:
    """Per-operation input state sets under the arithmetic generators."""

    states: Mapping[str, frozenset[tuple[int, int, int]]]  # op -> {(port,pos,pat)}
    width: int
    k: int

    def coverage_of(self, op_states: frozenset) -> float:
        ports = {p for p, _pos, _pat in op_states} or {0, 1}
        total = len(ports) * (self.width - self.k + 1) * (1 << self.k)
        return len(op_states) / total


def measure_operation_coverage(
    cdfg: CDFG,
    n_vectors: int = 64,
    k: int = 3,
    seed: int = 1,
) -> OperationCoverage:
    """Simulate the behavior under accumulator generators at the PIs and
    collect the input states seen by every operation."""
    width = max(v.width for v in cdfg.variables.values())
    pis = sorted(v.name for v in cdfg.primary_inputs())
    streams = {
        name: accumulator_stream(
            cdfg.variable(name).width,
            increment=2 * (i + seed) + 1,
            seed=(i * 37 + seed) & 0xFF,
            length=n_vectors,
        )
        for i, name in enumerate(pis)
    }
    input_stream = [
        {name: streams[name][t] for name in pis} for t in range(n_vectors)
    ]
    trace = run_sequence(cdfg, input_stream)

    states: dict[str, set[tuple[int, int, int]]] = {
        op.name: set() for op in cdfg
    }
    for t, values in enumerate(trace):
        prev = trace[t - 1] if t > 0 else None
        for op in cdfg:
            w = cdfg.variable(op.output).width
            for port, var in enumerate(op.inputs):
                if var in op.carried:
                    val = prev[var] if prev is not None else 0
                else:
                    val = values[var]
                for pos in range(w - k + 1):
                    states[op.name].add(
                        (port, pos, (val >> pos) & ((1 << k) - 1))
                    )
    return OperationCoverage(
        {o: frozenset(s) for o, s in states.items()}, width, k
    )


def coverage_guided_binding(
    cdfg: CDFG,
    schedule: Schedule,
    allocation: Allocation,
    coverage: OperationCoverage,
) -> FUBinding:
    """Bind operations to units maximising per-unit input state coverage.

    Greedy in schedule order: each operation goes to the free unit whose
    state-set union it grows the most (the [28] objective), so units
    accumulate diverse input states and need no extra test hardware.
    """
    allocation.validate_for(cdfg)
    busy: set[tuple[str, int]] = set()
    unit_states: dict[str, set] = {}
    assignment: dict[str, str] = {}
    ordered = sorted(cdfg, key=lambda op: (schedule.step_of(op.name), op.name))
    for op in ordered:
        cls = allocation.unit_class(op.kind)
        s = schedule.step_of(op.name)
        best: tuple[int, str] | None = None
        for unit in allocation.unit_names(cls):
            if any((unit, s + d) in busy for d in range(op.delay)):
                continue
            have = unit_states.setdefault(unit, set())
            gain = len(coverage.states[op.name] - have)
            key = (-gain, unit)
            if best is None or key < best:
                best = key
        if best is None:
            raise AllocationError(
                f"coverage-guided binding: no free unit for {op.name!r}"
            )
        unit = best[1]
        assignment[op.name] = unit
        unit_states[unit].update(coverage.states[op.name])
        for d in range(op.delay):
            busy.add((unit, s + d))
    binding = FUBinding(assignment)
    binding.verify(cdfg, schedule)
    return binding


def unit_coverage(
    cdfg: CDFG,
    binding: FUBinding,
    coverage: OperationCoverage,
) -> dict[str, float]:
    """Union input-state coverage achieved at each unit."""
    unions: dict[str, set] = {}
    for op in cdfg:
        unions.setdefault(binding.unit_of(op.name), set()).update(
            coverage.states[op.name]
        )
    return {
        u: coverage.coverage_of(frozenset(s)) for u, s in unions.items()
    }
