"""MISR aliasing analysis.

A w-bit MISR maps error streams onto signatures; an error pattern
aliases when its syndrome is zero, which happens with probability
approaching ``2**-w`` for random error streams -- the classic result
BIST schemes budget for.  This module measures it empirically (the
in-situ experiments use the numbers to pick signature widths and
checkpoint counts) and provides the theoretical bound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bist.registers import MISR


def theoretical_aliasing_probability(width: int) -> float:
    """Asymptotic aliasing probability of a maximal-polynomial MISR."""
    return 2.0 ** -width


@dataclass(frozen=True)
class AliasingEstimate:
    """Empirical aliasing measurement."""

    width: int
    trials: int
    aliased: int

    @property
    def probability(self) -> float:
        return self.aliased / self.trials if self.trials else 0.0


def measure_aliasing(
    width: int,
    stream_length: int = 64,
    trials: int = 2000,
    error_bits: int = 3,
    seed: int = 1,
) -> AliasingEstimate:
    """Empirical aliasing probability for random multi-bit error streams.

    Each trial compacts a random good stream and the same stream with
    ``error_bits`` random bit flips; aliasing = identical signatures.
    """
    rng = random.Random(seed)
    mask = (1 << width) - 1
    aliased = 0
    for _ in range(trials):
        stream = [rng.getrandbits(width) for _ in range(stream_length)]
        bad = list(stream)
        for _ in range(error_bits):
            pos = rng.randrange(stream_length)
            bit = 1 << rng.randrange(width)
            bad[pos] ^= bit
        good_m, bad_m = MISR(width), MISR(width)
        for g, b in zip(stream, bad):
            good_m.absorb(g & mask)
            bad_m.absorb(b & mask)
        if good_m.signature == bad_m.signature:
            aliased += 1
    return AliasingEstimate(width, trials, aliased)


def checkpointed_aliasing(
    width: int,
    stream_length: int = 64,
    checkpoints: int = 4,
    trials: int = 2000,
    error_bits: int = 3,
    seed: int = 1,
) -> AliasingEstimate:
    """Aliasing probability when signatures are compared at several
    intermediate checkpoints (escaping requires aliasing at *all* of
    them), the scheme :mod:`repro.gatelevel.bist_session` uses."""
    rng = random.Random(seed)
    mask = (1 << width) - 1
    marks = {
        max(1, (k + 1) * stream_length // checkpoints)
        for k in range(checkpoints)
    }
    aliased = 0
    for _ in range(trials):
        stream = [rng.getrandbits(width) for _ in range(stream_length)]
        bad = list(stream)
        for _ in range(error_bits):
            pos = rng.randrange(stream_length)
            bad[pos] ^= 1 << rng.randrange(width)
        good_m, bad_m = MISR(width), MISR(width)
        detected = False
        for cycle, (g, b) in enumerate(zip(stream, bad), start=1):
            good_m.absorb(g & mask)
            bad_m.absorb(b & mask)
            if cycle in marks and good_m.signature != bad_m.signature:
                detected = True
                break
        if not detected:
            aliased += 1
    return AliasingEstimate(width, trials, aliased)
