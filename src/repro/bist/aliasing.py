"""MISR aliasing analysis.

A w-bit MISR maps error streams onto signatures; an error pattern
aliases when its syndrome is zero, which happens with probability
approaching ``2**-w`` for random error streams -- the classic result
BIST schemes budget for.  This module measures it empirically (the
in-situ experiments use the numbers to pick signature widths and
checkpoint counts) and provides the theoretical bound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bist.registers import MISR


def theoretical_aliasing_probability(width: int) -> float:
    """Asymptotic aliasing probability of a maximal-polynomial MISR."""
    return 2.0 ** -width


@dataclass(frozen=True)
class AliasingEstimate:
    """Empirical aliasing measurement."""

    width: int
    trials: int
    aliased: int

    @property
    def probability(self) -> float:
        return self.aliased / self.trials if self.trials else 0.0


def measure_aliasing(
    width: int,
    stream_length: int = 64,
    trials: int = 2000,
    error_bits: int = 3,
    seed: int = 1,
) -> AliasingEstimate:
    """Empirical aliasing probability for random multi-bit error streams.

    Each trial compacts a random good stream and the same stream with
    ``error_bits`` random bit flips; aliasing = identical signatures.
    """
    rng = random.Random(seed)
    mask = (1 << width) - 1
    aliased = 0
    for _ in range(trials):
        stream = [rng.getrandbits(width) for _ in range(stream_length)]
        bad = list(stream)
        for _ in range(error_bits):
            pos = rng.randrange(stream_length)
            bit = 1 << rng.randrange(width)
            bad[pos] ^= bit
        good_m, bad_m = MISR(width), MISR(width)
        for g, b in zip(stream, bad):
            good_m.absorb(g & mask)
            bad_m.absorb(b & mask)
        if good_m.signature == bad_m.signature:
            aliased += 1
    return AliasingEstimate(width, trials, aliased)


def checkpointed_aliasing(
    width: int,
    stream_length: int = 64,
    checkpoints: int = 4,
    trials: int = 2000,
    error_bits: int = 3,
    seed: int = 1,
) -> AliasingEstimate:
    """Aliasing probability when signatures are compared at several
    intermediate checkpoints (escaping requires aliasing at *all* of
    them), the scheme :mod:`repro.gatelevel.bist_session` uses."""
    rng = random.Random(seed)
    mask = (1 << width) - 1
    marks = {
        max(1, (k + 1) * stream_length // checkpoints)
        for k in range(checkpoints)
    }
    aliased = 0
    for _ in range(trials):
        stream = [rng.getrandbits(width) for _ in range(stream_length)]
        bad = list(stream)
        for _ in range(error_bits):
            pos = rng.randrange(stream_length)
            bad[pos] ^= 1 << rng.randrange(width)
        good_m, bad_m = MISR(width), MISR(width)
        detected = False
        for cycle, (g, b) in enumerate(zip(stream, bad), start=1):
            good_m.absorb(g & mask)
            bad_m.absorb(b & mask)
            if cycle in marks and good_m.signature != bad_m.signature:
                detected = True
                break
        if not detected:
            aliased += 1
    return AliasingEstimate(width, trials, aliased)


def measure_checkpoint_escapes(
    hardware,
    sessions=None,
    cycles: int = 64,
    faults=None,
    backend: str | None = None,
    shards: int | None = None,
) -> AliasingEstimate:
    """Gate-level aliasing: faults that *would* escape a final-only
    signature compare.

    Runs :func:`~repro.gatelevel.bist_session.bist_fault_attribution`
    twice over the same BIST hardware -- once with the default
    quarter-session checkpoints, once comparing only the end-of-session
    signature -- and counts the faults the intermediate checkpoints
    rescue.  A fault detected under checkpointing but missed by the
    final-only compare perturbed the signature registers mid-session
    and then aliased back to the golden signature by the last cycle:
    exactly the escape mode :func:`checkpointed_aliasing` models with
    random streams, measured here on real fault machines.  ``trials``
    is the number of faults detected with checkpointing, ``aliased``
    the subset the final-only compare loses.
    """
    from repro.gatelevel.bist_session import bist_fault_attribution

    full = bist_fault_attribution(
        hardware, sessions=sessions, cycles=cycles, faults=faults,
        backend=backend, shards=shards,
    )
    final_only = bist_fault_attribution(
        hardware, sessions=sessions, cycles=cycles, faults=faults,
        checkpoints=[cycles], backend=backend, shards=shards,
    )
    caught = {f for f, hit in full.items() if hit is not None}
    survived = {f for f, hit in final_only.items() if hit is None}
    width = sum(
        len(bits) for bits in hardware.signature_bit_nets().values()
    )
    return AliasingEstimate(width, len(caught), len(caught & survived))
