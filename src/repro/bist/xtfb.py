"""Extended TFB (XTFB) synthesis, after [19]
(Harmanani & Papachristou, ICCAD'93 -- survey section 5.1).

An XTFB "contains an ALU with multiple input as well as output
registers.  During test mode, while the two input registers are
configured as TPGRs, only one of the multiple output registers needs to
be configured as a SR, thus allowing the presence of self-adjacent
registers which have to be configured as TPGRs but not SRs."

Relative to the TFB restriction (one output register per ALU, no
self-adjacency at all), the XTFB relaxation merges more actions per
ALU and converts fewer registers to SRs, giving lower test area
overhead than both the TFB architecture and the BIST register
assignment of [3] -- while still avoiding CBILBOs entirely.

The optional ``sr_depth`` parameter implements the further relaxation
the survey describes: letting responses propagate through up to
``sr_depth`` downstream ALUs before capture removes even more SRs at
some fault-coverage cost (benchmarked in E-5.1b).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.cdfg.graph import CDFG
from repro.cdfg.lifetimes import variable_lifetimes
from repro.hls.estimate import AREA_MODEL, unit_area
from repro.hls.scheduling import Schedule
from repro.bist.tfb import Action, actions_of


@dataclass(frozen=True)
class XTFBAllocation:
    """Actions grouped per ALU, with per-register test roles."""

    blocks: tuple[tuple[Action, ...], ...]
    #: Per block: variables whose registers must be SRs.
    sr_variables: tuple[tuple[str, ...], ...]
    #: Per block: variables whose registers are TPGR-only (the allowed
    #: self-adjacent ones).
    tpgr_variables: tuple[tuple[str, ...], ...]
    design: str

    @property
    def num_xtfbs(self) -> int:
        return len(self.blocks)

    @property
    def num_srs(self) -> int:
        return sum(len(s) for s in self.sr_variables)

    @property
    def num_tpgr_only(self) -> int:
        return sum(len(t) for t in self.tpgr_variables)

    def area(self, cdfg: CDFG) -> float:
        """Total area: ALUs + one register per block + input muxes."""
        total = 0.0
        for block, srs in zip(self.blocks, self.sr_variables):
            width = max(cdfg.variable(a.variable).width for a in block)
            total += unit_area("alu", width)
            key = "bilbo_bit" if srs else "tpgr_bit"
            total += AREA_MODEL[key] * width
            fan = max(0, len(block) - 1)
            total += 2 * fan * AREA_MODEL["mux2_bit"] * width
        return total

    def test_overhead(self, cdfg: CDFG) -> float:
        """Extra area versus the same structure with plain registers.

        Every block register generates patterns (TPGR); only the
        SR-equipped blocks additionally capture (BILBO-class).  With
        ``sr_depth > 1`` fewer blocks carry the BILBO premium, which is
        where the XTFB relaxation beats the TFB architecture.
        """
        total = 0.0
        for block, srs in zip(self.blocks, self.sr_variables):
            width = max(cdfg.variable(a.variable).width for a in block)
            key = "bilbo_bit" if srs else "tpgr_bit"
            total += (AREA_MODEL[key] - AREA_MODEL["register_bit"]) * width
        return total


def map_to_xtfbs(
    cdfg: CDFG, schedule: Schedule, sr_depth: int = 1
) -> XTFBAllocation:
    """Group actions per ALU under the relaxed XTFB compatibility.

    Compatibility now only requires non-overlapping lifetimes (several
    output registers are allowed); self-adjacent output registers are
    permitted and configured as TPGRs.  One output register per block
    is an SR; with ``sr_depth > 1`` a block whose output feeds another
    block within ``sr_depth`` ALU hops may delegate capture downstream.
    """
    lifetimes = variable_lifetimes(cdfg, schedule.steps)
    acts = actions_of(cdfg)
    g = nx.Graph()
    g.add_nodes_from(range(len(acts)))
    for i in range(len(acts)):
        for j in range(i + 1, len(acts)):
            if lifetimes[acts[i].variable].overlaps(
                lifetimes[acts[j].variable]
            ):
                g.add_edge(i, j)
    colors = nx.coloring.greedy_color(g, strategy="largest_first")
    blocks: dict[int, list[Action]] = {}
    for idx, color in colors.items():
        blocks.setdefault(color, []).append(acts[idx])
    ordered = [
        tuple(sorted(blocks[c], key=lambda a: a.variable))
        for c in sorted(blocks)
    ]

    block_of: dict[str, int] = {}
    for b, block in enumerate(ordered):
        for action in block:
            block_of[action.variable] = b

    # Self-adjacent variables: outputs of a block that feed an
    # operation of the same block -> TPGR-only registers.
    tpgr_vars: list[list[str]] = [[] for _ in ordered]
    for b, block in enumerate(ordered):
        block_vars = {a.variable for a in block}
        for action in block:
            op = cdfg.operation(action.operation)
            for v in op.inputs:
                if v in block_vars:
                    tpgr_vars[b].append(v)
    tpgr_vars = [sorted(set(t)) for t in tpgr_vars]

    # SR selection.  With sr_depth == 1 every block captures its own
    # responses.  With sr_depth > 1, a block whose output reaches an
    # SR-equipped block within sr_depth - 1 ALU hops delegates capture
    # downstream, so several blocks share one SR (fewer SRs, some
    # fault-coverage loss -- the trade-off the survey describes).
    succ: dict[int, set[int]] = {b: set() for b in range(len(ordered))}
    for b, block in enumerate(ordered):
        for action in block:
            for c in cdfg.consumers_of(action.variable):
                tb = block_of.get(c.output)
                if tb is not None and tb != b:
                    succ[b].add(tb)

    def local_sr_choice(b: int) -> str:
        block_vars = [a.variable for a in ordered[b]]
        return next(
            (v for v in block_vars if v not in tpgr_vars[b]),
            block_vars[0],
        )

    sr_blocks: set[int] = set()
    # Reverse order so downstream capture points are decided first
    # (block indices correlate with coloring order, not topology, so we
    # simply iterate twice: mark, then sweep for uncovered).
    for b in range(len(ordered) - 1, -1, -1):
        if not _reaches_sr(b, succ, sr_blocks, sr_depth - 1):
            sr_blocks.add(b)
    sr_vars = [
        {local_sr_choice(b)} if b in sr_blocks else set()
        for b in range(len(ordered))
    ]
    return XTFBAllocation(
        tuple(ordered),
        tuple(tuple(sorted(s)) for s in sr_vars),
        tuple(tuple(t) for t in tpgr_vars),
        cdfg.name,
    )


def _reaches_sr(
    b: int,
    succ: dict[int, set[int]],
    sr_blocks: set[int],
    hops: int,
) -> bool:
    """True when an SR-equipped block lies within ``hops`` hops of ``b``."""
    if hops <= 0:
        return b in sr_blocks
    frontier = {b}
    seen = {b}
    for _ in range(hops):
        if frontier & sr_blocks:
            return True
        frontier = {
            t for f in frontier for t in succ[f] if t not in seen
        }
        seen |= frontier
        if not frontier:
            break
    return bool(frontier & sr_blocks) or b in sr_blocks
