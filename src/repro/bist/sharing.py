"""TPGR/SR sharing and exact CBILBO conditions, after [32]
(Parulkar/Gupta/Breuer, DAC'95 -- survey section 5.1).

To test every data-path module under pseudorandom BIST, each module
needs a TPGR at each input and an SR at some output.  [32] reduces BIST
area by (a) assigning registers so each converted register serves as
TPGR for *many* modules and/or SR for *many* modules, and (b) applying
exact conditions for when a self-adjacent register truly needs to be a
CBILBO: only when the register must simultaneously generate patterns
for and capture responses from the *same module in the same session*.
If the module's response can be captured by a *different* output
register, the self-adjacent register is configured as a TPGR only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bist.registers import BISTConfiguration, TestRole
from repro.hls.datapath import Datapath


@dataclass(frozen=True)
class ModuleTestEnvironment:
    """Registers used to test one functional unit under BIST."""

    unit: str
    tpgr_registers: tuple[str, ...]
    sr_register: str


def unit_io_registers(
    datapath: Datapath,
) -> dict[str, tuple[set[str], set[str]]]:
    """Per unit: (input register set, output register set)."""
    out: dict[str, tuple[set[str], set[str]]] = {}
    for t in datapath.transfers:
        ins, outs = out.setdefault(t.unit, (set(), set()))
        ins.update(t.source_registers)
        outs.add(t.dest_register)
    return out


def assign_test_roles(datapath: Datapath) -> tuple[
    BISTConfiguration, list[ModuleTestEnvironment]
]:
    """Assign TPGR/SR/BILBO/CBILBO roles per the [32] conditions.

    Every input register of a unit becomes a TPGR (shared across all
    units it feeds).  For each unit one output register is chosen as its
    SR, preferring (1) a register that is not simultaneously one of the
    unit's own inputs (avoiding the CBILBO condition) and (2) a register
    already serving as SR for another unit (sharing).  A register that
    is TPGR for some unit and SR for another becomes a BILBO; a CBILBO
    is required only when a unit's *every* output register is also one
    of its own inputs.

    The role annotations are written back onto the data path's
    registers and returned as a :class:`BISTConfiguration`.
    """
    io = unit_io_registers(datapath)
    tpgr: set[str] = set()
    for ins, _outs in io.values():
        tpgr.update(ins)

    sr: set[str] = set()
    cbilbo: set[str] = set()
    envs: list[ModuleTestEnvironment] = []
    for unit in sorted(io):
        ins, outs = io[unit]
        clean = sorted(outs - ins)
        shared_clean = [r for r in clean if r in sr]
        if shared_clean:
            choice = shared_clean[0]
        elif clean:
            choice = clean[0]
        else:
            # Exact CBILBO condition: every output is also an input of
            # this same unit -> concurrent generate + capture needed.
            choice = sorted(outs)[0]
            cbilbo.add(choice)
        sr.add(choice)
        envs.append(
            ModuleTestEnvironment(unit, tuple(sorted(ins)), choice)
        )

    roles: dict[str, TestRole] = {}
    for r in datapath.registers:
        name = r.name
        if name in cbilbo:
            roles[name] = TestRole.CBILBO
        elif name in tpgr and name in sr:
            roles[name] = TestRole.BILBO
        elif name in tpgr:
            roles[name] = TestRole.TPGR
        elif name in sr:
            roles[name] = TestRole.SR
        else:
            roles[name] = TestRole.NONE
        r.test_role = None if roles[name] is TestRole.NONE else roles[name].value
    return BISTConfiguration(roles), envs


def sharing_register_assignment(cdfg, schedule, binding):
    """Register assignment maximising TPGR/SR sharing, after [32].

    Variables that are inputs of many modules are steered into common
    registers (one TPGR serves them all), and likewise for outputs;
    input-role and output-role variables are kept apart so registers
    rarely need to be BILBOs.  Budgeted like the [3] assigner: never
    more registers than left-edge.
    """
    from repro.cdfg.lifetimes import variable_lifetimes
    from repro.hls.binding import (
        RegisterAssignment,
        assign_registers_left_edge,
    )

    lifetimes = variable_lifetimes(cdfg, schedule.steps)
    budget = assign_registers_left_edge(cdfg, schedule).num_registers

    is_in: set[str] = set()
    is_out: set[str] = set()
    for op in cdfg:
        is_in.update(op.inputs)
        is_out.add(op.output)

    def role(v: str) -> int:
        # 0: pure input-side, 1: mixed, 2: pure output-side
        if v in is_in and v in is_out:
            return 1
        return 0 if v in is_in else 2

    contents: list[list[str]] = []
    reg_role: list[int] = []
    register_of: dict[str, int] = {}
    order = sorted(
        lifetimes.values(), key=lambda lt: (lt.birth, lt.variable)
    )
    for lt in order:
        v = lt.variable
        r = role(v)
        compatible = [
            idx
            for idx, vs in enumerate(contents)
            if all(not lt.overlaps(lifetimes[m]) for m in vs)
        ]
        same_role = [idx for idx in compatible if reg_role[idx] == r]
        if same_role:
            idx = same_role[0]
        elif len(contents) < budget:
            idx = len(contents)
            contents.append([])
            reg_role.append(r)
        elif compatible:
            idx = compatible[0]
        else:
            idx = len(contents)
            contents.append([])
            reg_role.append(r)
        contents[idx].append(v)
        register_of[v] = idx
    result = RegisterAssignment(register_of)
    result.verify(lifetimes)
    return result
