"""Test-session scheduling and minimisation, after [20]
(Harris & Orailoglu, DAC'94 -- survey section 5.2).

"Two or more test paths sharing the same hardware (registers, ALUs,
multiplexers, buses) creates conflicts and forces the need for multiple
test sessions."  A session is a set of modules tested concurrently; the
minimum number of sessions is the chromatic number of the module
conflict graph.

Conflict rules (pseudorandom BIST semantics):

* two modules conflict when they share an SR (one signature register
  cannot compact two response streams at once);
* a module conflicts with any module whose SR it uses as a TPGR
  (the register cannot generate and capture simultaneously -- unless it
  is a CBILBO, which we price, not assume);
* TPGR sharing does *not* conflict: a pattern generator broadcasts.

:func:`session_aware_assignment` is the [20]-style synthesis knob: a
register assignment that avoids SR sharing between modules, trading a
few more converted registers for single-session testability (the
survey explicitly notes [32]-style sharing "may lead to test path
conflicts and hence reduced test concurrency").
"""

from __future__ import annotations

import networkx as nx

from repro.bist.sharing import ModuleTestEnvironment, unit_io_registers
from repro.hls.datapath import Datapath


def module_conflict_graph(
    envs: list[ModuleTestEnvironment],
    cbilbo_registers: set[str] | None = None,
) -> nx.Graph:
    """Build the test-conflict graph over functional units."""
    cbilbo = cbilbo_registers or set()
    g = nx.Graph()
    g.add_nodes_from(e.unit for e in envs)
    for i, a in enumerate(envs):
        for b in envs[i + 1:]:
            if a.sr_register == b.sr_register:
                g.add_edge(a.unit, b.unit, reason="shared SR")
                continue
            if (
                a.sr_register in b.tpgr_registers
                and a.sr_register not in cbilbo
            ) or (
                b.sr_register in a.tpgr_registers
                and b.sr_register not in cbilbo
            ):
                g.add_edge(a.unit, b.unit, reason="SR-as-TPGR")
    return g


def schedule_sessions(
    envs: list[ModuleTestEnvironment],
    cbilbo_registers: set[str] | None = None,
) -> list[list[str]]:
    """Partition modules into a minimal number of concurrent sessions.

    Greedy coloring of the conflict graph; exact on the small module
    counts of data-path BIST.
    """
    g = module_conflict_graph(envs, cbilbo_registers)
    colors = nx.coloring.greedy_color(g, strategy="largest_first")
    sessions: dict[int, list[str]] = {}
    for unit, c in colors.items():
        sessions.setdefault(c, []).append(unit)
    return [sorted(sessions[c]) for c in sorted(sessions)]


def path_based_sessions(datapath: Datapath) -> list[list[str]]:
    """Test-path-based session schedule, the [20] synthesis target.

    In the general scheme of section 5.2, "a test path through which
    test data can go from the TPGRs to the SR at the output of a logic
    block may pass through several ALUs": a unit whose responses can
    propagate through downstream transfers to a *terminal* register
    (one holding a primary output) is tested in the main session with
    capture at that terminal SR -- propagation through other units does
    not conflict, since under pseudorandom BIST every unit processes
    data regardless.  Only units whose responses cannot reach a
    terminal need a local SR; a local SR on a register that also feeds
    other units is the TPGR/SR role collision that forces an extra
    session.
    """
    reg_graph = nx.DiGraph()
    reg_graph.add_nodes_from(r.name for r in datapath.registers)
    feeds: dict[str, set[str]] = {r.name: set() for r in datapath.registers}
    for t in datapath.transfers:
        for src in set(t.source_registers):
            reg_graph.add_edge(src, t.dest_register)
            feeds[src].add(t.unit)
    terminals = {
        r.name for r in datapath.registers if r.is_output_register
    }
    main: list[str] = []
    local: list[tuple[str, str]] = []  # (unit, local SR register)
    io = unit_io_registers(datapath)
    for unit in sorted(io):
        _ins, outs = io[unit]
        reachable = any(
            nx.has_path(reg_graph, out, t)
            for out in outs
            for t in terminals
        )
        if reachable:
            main.append(unit)
        else:
            local.append((unit, sorted(outs)[0]))
    sessions: list[list[str]] = []
    if main:
        sessions.append(sorted(main))
    # Local-SR units: collide when the SR register feeds another unit
    # under test in the same session, or when they share the SR.
    g = nx.Graph()
    g.add_nodes_from(u for u, _r in local)
    for i, (u1, r1) in enumerate(local):
        for u2, r2 in local[i + 1:]:
            if r1 == r2 or u2 in feeds[r1] or u1 in feeds[r2]:
                g.add_edge(u1, u2)
    if local:
        colors = nx.coloring.greedy_color(g, strategy="largest_first")
        extra: dict[int, list[str]] = {}
        for u, c in colors.items():
            extra.setdefault(c, []).append(u)
        sessions.extend(sorted(extra[c]) for c in sorted(extra))
    return sessions


def session_aware_assignment(cdfg, schedule, binding):
    """Register assignment maximising test concurrency, after [20].

    Output variables of *different* units are kept in different
    registers (each unit gets a private SR candidate) and a unit's
    output variables avoid registers holding its own input variables
    (so the SR is never one of the unit's TPGRs).  Both rules may cost
    extra registers relative to left-edge -- the area price of test
    concurrency the survey notes.
    """
    from repro.cdfg.lifetimes import variable_lifetimes
    from repro.hls.binding import RegisterAssignment

    lifetimes = variable_lifetimes(cdfg, schedule.steps)
    out_unit: dict[str, str] = {}
    in_units: dict[str, set[str]] = {}
    for op in cdfg:
        unit = binding.unit_of(op.name)
        out_unit[op.output] = unit
        for v in op.inputs:
            in_units.setdefault(v, set()).add(unit)

    contents: list[list[str]] = []
    register_of: dict[str, int] = {}

    def conflicts(v: str, idx: int) -> bool:
        vu = out_unit.get(v)
        for m in contents[idx]:
            mu = out_unit.get(m)
            if vu is not None and mu is not None and vu != mu:
                return True  # two units' outputs -> shared SR
            if vu is not None and vu in in_units.get(m, ()):
                return True  # SR would double as this unit's TPGR
            if mu is not None and mu in in_units.get(v, ()):
                return True
        return False

    order = sorted(
        lifetimes.values(), key=lambda lt: (lt.birth, lt.variable)
    )
    for lt in order:
        v = lt.variable
        placed = False
        for idx, regvars in enumerate(contents):
            if any(lt.overlaps(lifetimes[m]) for m in regvars):
                continue
            if conflicts(v, idx):
                continue
            regvars.append(v)
            register_of[v] = idx
            placed = True
            break
        if not placed:
            contents.append([v])
            register_of[v] = len(contents) - 1
    result = RegisterAssignment(register_of)
    result.verify(lifetimes)
    return result


def session_aware_roles(
    datapath: Datapath,
) -> tuple[list[ModuleTestEnvironment], int]:
    """Choose SRs so modules avoid conflicts (maximal test concurrency).

    Each unit gets a *private* SR when possible: outputs not shared
    with other units' SRs and not among the unit's own inputs are
    preferred.  Returns the environments and the number of converted
    registers (TPGRs + SRs), the cost [20] pays for concurrency.
    """
    io = unit_io_registers(datapath)
    taken_sr: set[str] = set()
    envs: list[ModuleTestEnvironment] = []
    tpgr: set[str] = set()
    for unit in sorted(io):
        ins, outs = io[unit]
        tpgr.update(ins)
        candidates = sorted(outs - ins - taken_sr) or sorted(outs - taken_sr)
        choice = candidates[0] if candidates else sorted(outs)[0]
        taken_sr.add(choice)
        envs.append(
            ModuleTestEnvironment(unit, tuple(sorted(ins)), choice)
        )
    converted = len(tpgr | taken_sr)
    return envs, converted
