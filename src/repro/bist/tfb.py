"""Test-function-block (TFB) data-path synthesis, after [31]
(Papachristou/Chiu/Harmanani, DAC'91 -- survey section 5.1).

"The basic building block used to map a variable and the operation
which generates the variable is a test function block (TFB), which
consists of an ALU, a multiplexer at each of the inputs of the ALU, and
a test register (TPGR, SR, or BILBO) at the output of the ALU."

Mapping unit: the *action* ``(v, o(v))``.  Two actions are compatible
(mergeable into one TFB) iff (i) the lifetimes of their variables do
not overlap, and (ii) neither variable is an input of the other
action's operation -- condition (ii) is what guarantees the TFB's
output register never feeds its own ALU, so *no self-adjacent register
can form* and no CBILBO is ever needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.cdfg.graph import CDFG
from repro.cdfg.lifetimes import variable_lifetimes
from repro.hls.estimate import AREA_MODEL, unit_area
from repro.hls.scheduling import Schedule


@dataclass(frozen=True)
class Action:
    """A (variable, producing-operation) pair."""

    variable: str
    operation: str


@dataclass(frozen=True)
class TFBAllocation:
    """A partition of the CDFG's actions into test function blocks."""

    blocks: tuple[tuple[Action, ...], ...]
    design: str

    @property
    def num_tfbs(self) -> int:
        return len(self.blocks)

    @property
    def num_test_registers(self) -> int:
        """One BILBO-capable register per TFB output."""
        return len(self.blocks)

    def area(self, cdfg: CDFG) -> float:
        """Total area: ALUs + output test registers + input muxes."""
        total = 0.0
        for block in self.blocks:
            width = max(
                cdfg.variable(a.variable).width for a in block
            )
            total += unit_area("alu", width)
            total += AREA_MODEL["bilbo_bit"] * width
            fan = max(0, len(block) - 1)
            total += 2 * fan * AREA_MODEL["mux2_bit"] * width
        return total

    def test_overhead(self, cdfg: CDFG) -> float:
        """Extra area versus the same structure with plain registers.

        Every TFB output register is a BILBO (it generates patterns for
        downstream blocks and captures its own block's responses).
        """
        total = 0.0
        for block in self.blocks:
            width = max(cdfg.variable(a.variable).width for a in block)
            total += (
                AREA_MODEL["bilbo_bit"] - AREA_MODEL["register_bit"]
            ) * width
        return total


def actions_of(cdfg: CDFG) -> list[Action]:
    """All (variable, producer) actions; primary inputs have none."""
    return [
        Action(op.output, op.name)
        for op in sorted(cdfg, key=lambda o: o.name)
    ]


def compatible(cdfg: CDFG, lifetimes, a: Action, b: Action) -> bool:
    """The two-condition compatibility test of [31]."""
    if lifetimes[a.variable].overlaps(lifetimes[b.variable]):
        return False
    op_a = cdfg.operation(a.operation)
    op_b = cdfg.operation(b.operation)
    if a.variable in op_b.inputs or b.variable in op_a.inputs:
        return False
    # A variable that feeds its own producer (accumulator-style carried
    # self-input) is inherently self-adjacent; exclude such merges too.
    if a.variable in op_a.inputs or b.variable in op_b.inputs:
        return False
    return True


def map_to_tfbs(cdfg: CDFG, schedule: Schedule) -> TFBAllocation:
    """Partition actions into a near-minimal number of TFBs.

    Formulated as coloring of the incompatibility graph (equivalent to
    the prime-sequence cover of [31] on interval-structured lifetimes);
    greedy largest-first coloring is used.
    """
    lifetimes = variable_lifetimes(cdfg, schedule.steps)
    acts = actions_of(cdfg)
    g = nx.Graph()
    g.add_nodes_from(range(len(acts)))
    for i in range(len(acts)):
        for j in range(i + 1, len(acts)):
            if not compatible(cdfg, lifetimes, acts[i], acts[j]):
                g.add_edge(i, j)
    colors = nx.coloring.greedy_color(g, strategy="largest_first")
    blocks: dict[int, list[Action]] = {}
    for idx, color in colors.items():
        blocks.setdefault(color, []).append(acts[idx])
    ordered = [
        tuple(sorted(blocks[c], key=lambda a: a.variable))
        for c in sorted(blocks)
    ]
    return TFBAllocation(tuple(ordered), cdfg.name)


def verify_no_self_adjacency(cdfg: CDFG, allocation: TFBAllocation) -> None:
    """Raise if any TFB's output variable feeds that TFB's own ALU."""
    for block in allocation.blocks:
        block_vars = {a.variable for a in block}
        for action in block:
            op = cdfg.operation(action.operation)
            overlap = block_vars.intersection(op.inputs)
            if overlap:
                raise AssertionError(
                    f"TFB {block}: output variable(s) {sorted(overlap)} "
                    f"feed operation {op.name!r} in the same block"
                )
