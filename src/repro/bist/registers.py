"""Test register models: LFSR, MISR, BILBO, CBILBO (section 5).

The pseudorandom BIST methodology reconfigures functional registers as
test pattern generation registers (TPGRs) or signature registers (SRs);
a register implemented as a BILBO [21] supports both roles (one at a
time), while the concurrent BILBO (CBILBO) supports both *at once* at a
steep area/delay penalty.  The bit-true LFSR/MISR implementations here
drive the fault-coverage simulations in :mod:`repro.gatelevel`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Primitive polynomial tap positions (1-based bit indices) for every
#: width up to 32, giving maximal-length LFSR sequences (XAPP052-style
#: Fibonacci taps; verified empirically in the tests for w <= 20).
PRIMITIVE_TAPS: dict[int, tuple[int, ...]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    13: (13, 12, 11, 8),
    14: (14, 13, 12, 2),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 18, 17, 14),
    20: (20, 17),
    21: (21, 19),
    22: (22, 21),
    23: (23, 18),
    24: (24, 23, 22, 17),
    25: (25, 22),
    26: (26, 25, 24, 20),
    27: (27, 26, 25, 22),
    28: (28, 25),
    29: (29, 27),
    30: (30, 29, 28, 7),
    31: (31, 28),
    32: (32, 22, 2, 1),
}


class TestRole(enum.Enum):
    """Test-mode configuration of a data-path register."""

    NONE = "none"
    TPGR = "TPGR"
    SR = "SR"
    BILBO = "BILBO"      # TPGR or SR, one per session
    CBILBO = "CBILBO"    # TPGR and SR concurrently


def taps_for(width: int) -> tuple[int, ...]:
    """Primitive taps for ``width`` (2..32).

    Raises :class:`ValueError` outside the tabulated range; data-path
    registers never exceed 32 bits in this library.
    """
    if width in PRIMITIVE_TAPS:
        return PRIMITIVE_TAPS[width]
    raise ValueError(f"no primitive taps tabulated for width {width}")


class LFSR:
    """External-XOR (Fibonacci) linear feedback shift register."""

    def __init__(self, width: int, seed: int = 1,
                 taps: tuple[int, ...] | None = None) -> None:
        if width < 2:
            raise ValueError("LFSR width must be >= 2")
        if seed == 0:
            raise ValueError("LFSR seed must be nonzero")
        self.width = width
        self.taps = taps if taps is not None else taps_for(width)
        self.state = seed & ((1 << width) - 1)

    def step(self) -> int:
        """Advance one clock; returns the new state."""
        fb = 0
        for t in self.taps:
            fb ^= (self.state >> (t - 1)) & 1
        self.state = ((self.state << 1) | fb) & ((1 << self.width) - 1)
        return self.state

    def sequence(self, n: int) -> list[int]:
        """The next ``n`` states."""
        return [self.step() for _ in range(n)]


class MISR:
    """Multiple-input signature register (parallel-input LFSR)."""

    def __init__(self, width: int, seed: int = 0,
                 taps: tuple[int, ...] | None = None) -> None:
        if width < 2:
            raise ValueError("MISR width must be >= 2")
        self.width = width
        self.taps = taps if taps is not None else taps_for(width)
        self.state = seed & ((1 << width) - 1)

    def absorb(self, value: int) -> int:
        """Clock one response word into the signature."""
        fb = 0
        for t in self.taps:
            fb ^= (self.state >> (t - 1)) & 1
        self.state = (
            ((self.state << 1) | fb) ^ value
        ) & ((1 << self.width) - 1)
        return self.state

    @property
    def signature(self) -> int:
        return self.state


@dataclass(frozen=True)
class BISTConfiguration:
    """Assignment of test roles to a data path's registers."""

    roles: dict[str, TestRole]

    def count(self, role: TestRole) -> int:
        return sum(1 for r in self.roles.values() if r is role)

    @property
    def converted_registers(self) -> int:
        """Registers needing any test hardware at all."""
        return sum(
            1 for r in self.roles.values() if r is not TestRole.NONE
        )
