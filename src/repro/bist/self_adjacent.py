"""BIST register assignment minimising self-adjacent registers, after
[3] (Avra, ITC'91 -- survey section 5.1).

A register is *self-adjacent* when it is both an input and an output of
the same logic block (functional unit), because it would then have to
generate patterns for and capture responses from that block -- i.e. be
a CBILBO, "very expensive in terms of area and delay".

[3] avoids self-adjacency during register assignment by adding conflict
edges "between two nodes if the corresponding variables are an input
and output of the same module".  Our variant treats those edges as
*soft* constraints under a register budget: the assignment never uses
more registers than the conventional left-edge result (matching [3]'s
"equal number of total registers" outcome) and minimises violated soft
edges greedily.
"""

from __future__ import annotations

from typing import Mapping

from repro.cdfg.graph import CDFG
from repro.cdfg.lifetimes import variable_lifetimes
from repro.hls.binding import (
    FUBinding,
    RegisterAssignment,
    assign_registers_left_edge,
)
from repro.hls.datapath import Datapath
from repro.hls.scheduling import Schedule


def module_io_conflicts(
    cdfg: CDFG, binding: FUBinding
) -> set[tuple[str, str]]:
    """Variable pairs that would create self-adjacency if they shared a
    register: (input of an op on module M, output of an op on module M).
    """
    ins: dict[str, set[str]] = {}
    outs: dict[str, set[str]] = {}
    for op in cdfg:
        unit = binding.unit_of(op.name)
        ins.setdefault(unit, set()).update(op.inputs)
        outs.setdefault(unit, set()).add(op.output)
    conflicts: set[tuple[str, str]] = set()
    for unit in ins:
        for a in ins[unit]:
            for b in outs.get(unit, ()):
                if a != b:
                    conflicts.add(tuple(sorted((a, b))))
                else:
                    # A variable that is both input and output of the
                    # same module is self-adjacent by itself; no
                    # register assignment can avoid that (section 5.1's
                    # motivation for TFB/XTFB architectures).
                    pass
    return conflicts


def bist_register_assignment(
    cdfg: CDFG,
    schedule: Schedule,
    binding: FUBinding,
    max_passes: int = 8,
) -> RegisterAssignment:
    """Register assignment minimising self-adjacent registers ([3]).

    Starts from the conventional left-edge assignment (so the total
    register count matches [3]'s "equal number of total registers"
    result by construction) and then runs a local search: variables are
    moved between lifetime-compatible registers whenever the move
    reduces the number of self-adjacent registers.  The module-I/O
    conflict edges of [3] are what the move evaluation prices.
    """
    lifetimes = variable_lifetimes(cdfg, schedule.steps)
    base = assign_registers_left_edge(cdfg, schedule)
    register_of = dict(base.register_of)
    num_regs = base.num_registers

    var_in_unit: dict[str, set[str]] = {}
    var_out_unit: dict[str, set[str]] = {}
    for op in cdfg:
        unit = binding.unit_of(op.name)
        for v in op.inputs:
            var_in_unit.setdefault(v, set()).add(unit)
        var_out_unit.setdefault(op.output, set()).add(unit)

    def self_adjacent_count(assign: Mapping[str, int]) -> int:
        reg_in: dict[str, set[int]] = {}
        reg_out: dict[str, set[int]] = {}
        for v, idx in assign.items():
            for u in var_in_unit.get(v, ()):
                reg_in.setdefault(u, set()).add(idx)
            for u in var_out_unit.get(v, ()):
                reg_out.setdefault(u, set()).add(idx)
        sa: set[int] = set()
        for u in reg_in:
            sa |= reg_in[u] & reg_out.get(u, set())
        return len(sa)

    def compatible(v: str, idx: int) -> bool:
        lt = lifetimes[v]
        return all(
            not lt.overlaps(lifetimes[m])
            for m, r in register_of.items()
            if r == idx and m != v
        )

    current = self_adjacent_count(register_of)
    for _ in range(max_passes):
        improved = False
        for v in sorted(register_of):
            home = register_of[v]
            for idx in range(num_regs):
                if idx == home or not compatible(v, idx):
                    continue
                register_of[v] = idx
                candidate = self_adjacent_count(register_of)
                if candidate < current:
                    current = candidate
                    improved = True
                    break
                register_of[v] = home
        if not improved:
            break
    result = RegisterAssignment(register_of)
    result.verify(lifetimes)
    return result


def avra_test_overhead(datapath: Datapath) -> float:
    """Test-area overhead under the [3] assumption set.

    Every self-adjacent register becomes a CBILBO; every other register
    participating in a unit's test (any register, in a shared data
    path) becomes a BILBO.  Returned in the same gate-equivalent units
    as :mod:`repro.hls.estimate`.
    """
    from repro.hls.estimate import AREA_MODEL

    sa = set(self_adjacent_registers(datapath))
    overhead = 0.0
    for r in datapath.registers:
        if r.name in sa:
            overhead += (
                AREA_MODEL["cbilbo_bit"] - AREA_MODEL["register_bit"]
            ) * r.width
        else:
            overhead += (
                AREA_MODEL["bilbo_bit"] - AREA_MODEL["register_bit"]
            ) * r.width
    return overhead


def self_adjacent_registers(datapath: Datapath) -> list[str]:
    """Registers that are both an input and an output of some unit."""
    ins: dict[str, set[str]] = {}
    outs: dict[str, set[str]] = {}
    for t in datapath.transfers:
        ins.setdefault(t.unit, set()).update(t.source_registers)
        outs.setdefault(t.unit, set()).add(t.dest_register)
    out: set[str] = set()
    for unit in ins:
        out |= ins[unit] & outs.get(unit, set())
    return sorted(out)
