"""Test-behavior insertion and the three-session scheme, after [30,31]
(survey section 5.3).

"A test behavior, executed only in the test mode, is obtained by
inserting test points in the original behavior to enhance the
testability of required internal signals.  The test points need extra
primary I/O, implemented by extra TPGRs/SRs.  ...  A testing scheme is
proposed which uses the test behavior to generate tests for the
complete design, controller and data path, using only three test
sessions."

Testability of an internal signal under pseudorandom stimuli is
measured by its subspace state coverage (reusing the [28] metric):
variables whose value stream exercises little of their value space are
the hard-to-test ones that receive test points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bist.arithmetic import accumulator_stream, subspace_state_coverage
from repro.cdfg.graph import CDFG
from repro.cdfg.interpret import run_sequence
from repro.cdfg.transform import insert_test_statements


@dataclass(frozen=True)
class TestBehaviorResult:
    """Outcome of test-behavior insertion."""

    original: CDFG
    modified: CDFG
    controlled_variables: tuple[str, ...]
    observed_variables: tuple[str, ...]
    coverage_before: dict[str, float]

    @property
    def extra_tpgrs(self) -> int:
        """One extra TPGR per test input added (tmode pin excluded)."""
        return len(self.controlled_variables)

    @property
    def extra_srs(self) -> int:
        """The XOR-compacted test output needs one SR."""
        return 1 if self.observed_variables else 0


def signal_coverage(
    cdfg: CDFG, n_vectors: int = 64, k: int = 3, seed: int = 1
) -> dict[str, float]:
    """Subspace state coverage of every variable under pseudorandom
    (arithmetic-generator) primary-input stimuli."""
    pis = sorted(v.name for v in cdfg.primary_inputs())
    streams = {
        name: accumulator_stream(
            cdfg.variable(name).width, 2 * (i + seed) + 1,
            (i * 37 + seed) & 0xFF, n_vectors,
        )
        for i, name in enumerate(pis)
    }
    trace = run_sequence(
        cdfg,
        [{n: streams[n][t] for n in pis} for t in range(n_vectors)],
    )
    out: dict[str, float] = {}
    for var in cdfg.variables.values():
        values = [vals[var.name] for vals in trace]
        kk = min(k, var.width)
        out[var.name] = subspace_state_coverage(values, var.width, kk)
    return out


def insert_test_behavior(
    cdfg: CDFG,
    coverage_threshold: float = 0.5,
    n_vectors: int = 64,
    max_points: int = 4,
) -> TestBehaviorResult:
    """Add test statements for the lowest-coverage internal variables.

    Variables below ``coverage_threshold`` get a control test point
    (loadable from an extra TPGR in test mode) and are folded into the
    compacted test output (observed by an extra SR); at most
    ``max_points`` on each axis.
    """
    cov = signal_coverage(cdfg, n_vectors=n_vectors)
    internals = [
        v.name
        for v in cdfg.variables.values()
        if not v.is_input and not v.is_output
    ]
    hard = sorted(
        (v for v in internals if cov[v] < coverage_threshold),
        key=lambda v: (cov[v], v),
    )[:max_points]
    modified = (
        insert_test_statements(cdfg, control_vars=hard, observe_vars=hard)
        if hard
        else cdfg
    )
    return TestBehaviorResult(
        original=cdfg,
        modified=modified,
        controlled_variables=tuple(hard),
        observed_variables=tuple(hard),
        coverage_before=cov,
    )


@dataclass(frozen=True)
class ThreeSessionPlan:
    """The fixed three-session scheme of [31].

    Session 1 exercises the data path's functional units through the
    combined design+test behavior (I/O registers as TPGRs/SRs, test
    points supplying the hard internals); session 2 tests the
    controller (status inputs driven pseudorandomly, control word
    outputs compacted); session 3 exercises the interconnect (register
    -> mux -> register transfer paths).
    """

    design: str
    sessions: tuple[tuple[str, ...], ...]

    @property
    def num_sessions(self) -> int:
        return len(self.sessions)


def three_session_plan(result: TestBehaviorResult) -> ThreeSessionPlan:
    """Build the [31] session plan for a behavior with test behavior."""
    cdfg = result.modified
    fu_targets = tuple(sorted({op.kind for op in cdfg})) or ("datapath",)
    return ThreeSessionPlan(
        design=cdfg.name,
        sessions=(
            tuple(f"FU:{k}" for k in fu_targets),
            ("controller",),
            ("interconnect",),
        ),
    )
