"""Behavioral synthesis for BIST (survey section 5).

Implements the full ladder of BIST register-overhead techniques the
survey compares:

* :mod:`~repro.bist.registers` -- LFSR/MISR/BILBO/CBILBO models.
* :mod:`~repro.bist.self_adjacent` -- conflict-edge-augmented register
  assignment minimising self-adjacent registers [3].
* :mod:`~repro.bist.tfb` -- TFB architecture, zero self-adjacency [31].
* :mod:`~repro.bist.xtfb` -- XTFB relaxation, fewer SRs, still no
  CBILBOs [19].
* :mod:`~repro.bist.sharing` -- TPGR/SR sharing with exact CBILBO
  conditions [32].
* :mod:`~repro.bist.sessions` -- test-session minimisation [20].
* :mod:`~repro.bist.test_behavior` -- test behavior + three-session
  scheme [30,31].
* :mod:`~repro.bist.arithmetic` -- arithmetic BIST with subspace state
  coverage [28].
"""

from repro.bist.registers import (
    LFSR,
    MISR,
    BISTConfiguration,
    TestRole,
    taps_for,
)
from repro.bist.self_adjacent import (
    bist_register_assignment,
    module_io_conflicts,
    self_adjacent_registers,
)
from repro.bist.tfb import TFBAllocation, map_to_tfbs, verify_no_self_adjacency
from repro.bist.xtfb import XTFBAllocation, map_to_xtfbs
from repro.bist.sharing import (
    ModuleTestEnvironment,
    assign_test_roles,
    sharing_register_assignment,
    unit_io_registers,
)
from repro.bist.sessions import (
    module_conflict_graph,
    schedule_sessions,
    session_aware_roles,
)
from repro.bist.aliasing import (
    AliasingEstimate,
    checkpointed_aliasing,
    measure_aliasing,
    measure_checkpoint_escapes,
    theoretical_aliasing_probability,
)
from repro.bist.arithmetic import (
    OperationCoverage,
    accumulator_stream,
    coverage_guided_binding,
    measure_operation_coverage,
    subspace_state_coverage,
    unit_coverage,
)
from repro.bist.test_behavior import (
    TestBehaviorResult,
    ThreeSessionPlan,
    insert_test_behavior,
    signal_coverage,
    three_session_plan,
)

__all__ = [
    "AliasingEstimate",
    "checkpointed_aliasing",
    "measure_aliasing",
    "measure_checkpoint_escapes",
    "theoretical_aliasing_probability",
    "LFSR",
    "MISR",
    "BISTConfiguration",
    "TestRole",
    "taps_for",
    "bist_register_assignment",
    "module_io_conflicts",
    "self_adjacent_registers",
    "TFBAllocation",
    "map_to_tfbs",
    "verify_no_self_adjacency",
    "XTFBAllocation",
    "map_to_xtfbs",
    "ModuleTestEnvironment",
    "assign_test_roles",
    "sharing_register_assignment",
    "unit_io_registers",
    "module_conflict_graph",
    "schedule_sessions",
    "session_aware_roles",
    "OperationCoverage",
    "accumulator_stream",
    "coverage_guided_binding",
    "measure_operation_coverage",
    "subspace_state_coverage",
    "unit_coverage",
    "TestBehaviorResult",
    "ThreeSessionPlan",
    "insert_test_behavior",
    "signal_coverage",
    "three_session_plan",
]
